"""Retention budgeting across temperature and array density.

Translates the paper's Fig. 6 into retention-time language: for each
pitch, compute the worst-case Delta (victim P, all-P neighborhood) over
the operating temperature range, convert it to a mean retention time and
an array-level failure probability, and check it against the cache-class
and storage-class requirements of Section II-A.

Run:  python examples/retention_temperature.py
"""

import numpy as np

from repro import MTJDevice, PAPER_EVAL_DEVICE, RetentionAnalysis
from repro.device.retention import (
    SECONDS_PER_YEAR,
    array_retention_failure_probability,
    retention_time,
)
from repro.reporting import ascii_plot, format_table
from repro.units import celsius_to_kelvin

PITCH_RATIOS = (3.0, 2.0, 1.5)
TEMPS_C = np.linspace(0.0, 150.0, 31)
ARRAY_BITS = 8 * 2 ** 30  # a 1 GB array
REFRESH_INTERVAL = 3600.0  # seconds


def main():
    device = MTJDevice(PAPER_EVAL_DEVICE)
    analysis = RetentionAnalysis(device)
    temps_k = celsius_to_kelvin(TEMPS_C)

    series = {}
    rows = []
    for ratio in PITCH_RATIOS:
        pitch = ratio * device.params.ecd
        worst = analysis.worst_case_vs_temperature(temps_k, pitch)
        series[f"pitch={ratio}x eCD"] = (TEMPS_C, worst)

        for temp_c in (25.0, 85.0, 150.0):
            idx = int(np.argmin(np.abs(TEMPS_C - temp_c)))
            delta = float(worst[idx])
            t_ret = retention_time(delta)
            p_fail = array_retention_failure_probability(
                delta, REFRESH_INTERVAL, ARRAY_BITS)
            rows.append((
                f"{ratio:.1f}x", temp_c, delta,
                t_ret / SECONDS_PER_YEAR,
                p_fail,
                "storage" if t_ret > 10 * SECONDS_PER_YEAR else
                ("cache" if t_ret > 1.0 else "unusable"),
            ))

    print(ascii_plot(series,
                     title="Worst-case Delta_P(NP8=0) vs temperature",
                     x_label="T (C)", y_label="Delta"))
    print()
    print(format_table(
        ["pitch", "T (C)", "worst Delta", "retention (years)",
         "P(fail, 1 GB, 1 h)", "class"], rows, float_format=".3g"))
    print()
    print("Reading: inter-cell coupling costs only a fraction of a Delta "
          "unit (the paper's 'marginal degradation'), but the "
          "temperature slope dominates the retention budget — the 85 C "
          "corner, not the pitch, decides the application class.")


if __name__ == "__main__":
    main()
