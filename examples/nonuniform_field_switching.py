"""Non-uniform stray field and switching: beyond the macrospin.

Fig. 3d shows the intra-cell stray field varies across the FL (strongest
at the center); Wang et al. [10] report that this profile changes the
switching behaviour. The analytic models use the center value. This
script discretizes the FL into an exchange-coupled macrospin grid, loads
the actual radial field profile, and compares the STT switching time
against a grid seeing the uniform center/mean value — quantifying what
the center-point calibration ignores.

Run:  python examples/nonuniform_field_switching.py
"""

import numpy as np

from repro import MTJDevice, PAPER_EVAL_DEVICE
from repro.core import IntraCellModel
from repro.llg import MacrospinParameters, MultiMacrospinFL, make_fl_grid
from repro.reporting import format_table
from repro.units import am_to_oe


def main():
    device = MTJDevice(PAPER_EVAL_DEVICE)
    params = MacrospinParameters.from_device(
        device, use_activation_volume=False)
    grid = make_fl_grid(device.stack.radius, n_across=7)
    intra = IntraCellModel()

    def profile(pos):
        pts = np.column_stack([pos, np.zeros(pos.shape[0])])
        return intra.field_map(device.params.ecd, pts)[:, 2]

    fl_real = MultiMacrospinFL(params, grid,
                               device.stack.free_layer.thickness,
                               hz_profile=profile)
    print(f"FL grid: {grid.n_cells} cells, "
          f"cell = {grid.cell_size * 1e9:.1f} nm")
    print(f"local field: center {am_to_oe(fl_real.hz_local.min()):.0f} "
          f"Oe ... edge {am_to_oe(fl_real.hz_local.max()):.0f} Oe "
          f"(mean {am_to_oe(fl_real.hz_local.mean()):.0f} Oe)")
    print(f"grid STT threshold: "
          f"{fl_real.total_critical_current * 1e6:.0f} uA "
          "(geometric volume)")
    print()

    mean_field = float(np.mean(fl_real.hz_local))
    center_field = float(np.min(fl_real.hz_local))
    variants = {
        "non-uniform profile": fl_real,
        "uniform (disk mean)": MultiMacrospinFL(
            params, grid, device.stack.free_layer.thickness,
            hz_profile=lambda p: np.full(p.shape[0], mean_field)),
        "uniform (center value)": MultiMacrospinFL(
            params, grid, device.stack.free_layer.thickness,
            hz_profile=lambda p: np.full(p.shape[0], center_field)),
    }

    rows = []
    for overdrive in (1.5, 2.0, 3.0):
        current = overdrive * fl_real.total_critical_current
        times = {}
        for name, fl in variants.items():
            t_sw = fl.switch(current, max_time=40e-9, rng=11)
            times[name] = t_sw
        rows.append((
            f"{overdrive:.1f}x",
            *(times[name] * 1e9 if times[name] else float("nan")
              for name in variants),
        ))

    print(format_table(
        ["overdrive"] + [f"tw {name} (ns)" for name in variants],
        rows, float_format=".3g"))
    print()
    print("Reading: the center-value calibration (what the analytic "
          "chain uses) overstates the field most cells see, so it "
          "overestimates tw(AP->P) by ~10% at low overdrive; the true "
          "profile lands between the center and disk-mean "
          "approximations, and the discrepancy fades at high overdrive. "
          "The macrospin treatment is adequate but slightly "
          "conservative — consistent with Wang et al. [10].")


if __name__ == "__main__":
    main()
