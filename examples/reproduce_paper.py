"""Reproduce every figure of the paper and export the data.

Runs all ten experiments (Figs. 2a-6b), prints each one's data table,
paper-vs-measured comparison, and ASCII rendering, and writes CSV/JSON
artifacts under ``results/`` for external plotting.

Run:  python examples/reproduce_paper.py [output_dir]
"""

import sys

from repro.experiments.runner import main


if __name__ == "__main__":
    argv = sys.argv[1:] if len(sys.argv) > 1 else ["results"]
    raise SystemExit(main(argv))
