"""Optimal write voltage: error rate vs barrier breakdown.

Fig. 5's closing remark — higher voltage means faster, less
coupling-sensitive writes *but* more breakdown risk — as an actual
optimization. For each pitch, sweep the write voltage, combine the
write-error rate (thermal, coupling-corner aware) with the per-pulse
TDDB breakdown probability of the MgO barrier, and report the optimal
voltage and the residual failure floor.

Run:  python examples/voltage_optimization.py
"""

import numpy as np

from repro import MTJDevice, PAPER_EVAL_DEVICE
from repro.apps import WriteVoltageOptimizer
from repro.arrays import VictimAnalysis
from repro.arrays.pattern import ALL_P
from repro.reporting import ascii_plot, format_table

T_PULSE = 20e-9
PITCH_RATIOS = (3.0, 2.0, 1.5)


def main():
    device = MTJDevice(PAPER_EVAL_DEVICE)
    optimizer = WriteVoltageOptimizer(device)

    # The U-shape at the densest corner.
    victim = VictimAnalysis(device, 1.5 * device.params.ecd)
    hz_worst = victim.hz_total(ALL_P)
    voltages = np.linspace(0.85, 1.6, 40)
    wer, bd, total = optimizer.sweep(voltages, T_PULSE, hz_worst)
    print(ascii_plot(
        {
            "WER": (voltages, np.log10(wer + 1e-30)),
            "breakdown": (voltages, np.log10(bd + 1e-30)),
            "total": (voltages, np.log10(total + 1e-30)),
        },
        title=f"Failure per write vs voltage ({T_PULSE * 1e9:.0f} ns "
              "pulse, worst corner, pitch=1.5x eCD)",
        x_label="Vp (V)", y_label="log10 P(fail)"))
    print()

    rows = []
    for ratio in PITCH_RATIOS:
        pitch = ratio * device.params.ecd
        v_opt, failure = optimizer.worst_corner_optimum(T_PULSE, pitch)
        energy = (v_opt * device.params.resistance.current(
            device.params.ecd, "AP", v_opt) * T_PULSE)
        rows.append((f"{ratio:g}x", v_opt, failure,
                     energy * 1e15))

    print(format_table(
        ["pitch", "optimal Vp (V)", "failure floor per write",
         "write energy (fJ)"], rows, float_format=".3g"))
    print()
    print("Reading: the optimum sits where the falling WER curve meets "
          "the rising breakdown curve (~1.3 V here). Density barely "
          "moves the optimal voltage but raises the failure floor — the "
          "worst-case corner needs slightly more overdrive at every "
          "voltage, which is the breakdown side of the paper's Fig. 5 "
          "trade-off, quantified.")


if __name__ == "__main__":
    main()
