"""Array parametric yield under process variation and coupling.

The paper evaluates the nominal device; real arrays ship distributions.
This script Monte-Carlo-samples device instances (size/Hk/Delta0
variation as in the Fig. 2b error bars), applies the worst-case coupling
corner at each candidate pitch, and reports the fraction of devices
meeting retention and write-time specs — parametric yield vs density.

Run:  python examples/array_yield.py
"""

import numpy as np

from repro import PAPER_EVAL_DEVICE
from repro.apps import ArrayYieldAnalysis
from repro.arrays import areal_density_gbit_per_mm2
from repro.characterization import ProcessVariation
from repro.reporting import format_table

PITCH_RATIOS = (3.0, 2.5, 2.0, 1.75, 1.5)
N_SAMPLES = 150
SPECS = {"min_delta": 35.0, "max_tw": 18e-9, "probe_voltage": 0.9}


def main():
    ecd = PAPER_EVAL_DEVICE.ecd
    variation = ProcessVariation(sigma_ecd=0.04, sigma_hk=0.03,
                                 sigma_delta0=0.05)

    rows = []
    for ratio in PITCH_RATIOS:
        pitch = ratio * ecd
        analysis = ArrayYieldAnalysis(PAPER_EVAL_DEVICE, pitch,
                                      variation=variation)
        result = analysis.run(n_samples=N_SAMPLES, rng=2020, **SPECS)
        rows.append((
            f"{ratio:.2f}x",
            pitch * 1e9,
            areal_density_gbit_per_mm2(pitch),
            result.worst_delta_mean,
            result.worst_delta_std,
            result.n_retention_fail,
            result.n_write_fail,
            100.0 * result.yield_fraction,
        ))

    print(format_table(
        ["pitch", "(nm)", "Gb/mm^2", "worst Delta (mean)",
         "(std)", "#ret fail", "#write fail", "yield (%)"],
        rows, float_format=".3g"))
    print()
    print(f"Specs: worst-case Delta >= {SPECS['min_delta']}, worst-case "
          f"tw <= {SPECS['max_tw'] * 1e9:.0f} ns at "
          f"{SPECS['probe_voltage']} V; N = {N_SAMPLES} devices/point.")
    print()
    print("Reading: variation, not nominal coupling, dominates yield "
          "loss — but shrinking the pitch shifts the whole worst-case "
          "Delta distribution down and pushes marginal devices over the "
          "spec line, which is how the paper's 'marginal degradation' "
          "becomes a measurable yield cost.")


if __name__ == "__main__":
    main()
