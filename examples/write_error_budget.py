"""Write-error-rate budgeting: pulse width vs voltage vs pitch.

Extends the paper's Fig. 5 conclusion into error-rate space: the mean
switching time is not what a controller budgets — the pulse must push the
write-error rate (WER) below a target (typically 1e-6..1e-9 per write
before ECC). Using the thermal-initial-angle distribution behind Sun's
model, this script prints the WER-sized pulse for the worst-case
neighborhood (NP8 = 0) across voltages and pitches, and the extra pulse
the aggressive 1.5x-eCD array costs.

Run:  python examples/write_error_budget.py
"""

import numpy as np

from repro import MTJDevice, PAPER_EVAL_DEVICE
from repro.apps import WriteErrorModel
from repro.arrays import VictimAnalysis
from repro.arrays.pattern import ALL_P
from repro.reporting import ascii_plot, format_table

TARGET_WER = 1e-6
VOLTAGES = (0.85, 0.95, 1.05, 1.15)
PITCH_RATIOS = (3.0, 2.0, 1.5)


def main():
    device = MTJDevice(PAPER_EVAL_DEVICE)
    model = WriteErrorModel(device)

    # WER vs pulse width at one operating point, for intuition.
    victim = VictimAnalysis(device, 1.5 * device.params.ecd)
    hz_worst = victim.hz_total(ALL_P)
    pulses = np.linspace(5e-9, 60e-9, 40)
    wer = model.wer(pulses, vp=0.95, hz_stray=hz_worst)
    print(ascii_plot(
        {"worst case NP8=0": (pulses * 1e9, np.log10(wer + 1e-30))},
        title="WER vs pulse width (0.95 V, pitch=1.5x eCD)",
        x_label="pulse (ns)", y_label="log10 WER"))
    print()

    rows = []
    for ratio in PITCH_RATIOS:
        pitch = ratio * device.params.ecd
        for vp in VOLTAGES:
            pulse = model.worst_case_pulse(TARGET_WER, vp, pitch)
            penalty = model.pattern_pulse_penalty(TARGET_WER, vp, pitch)
            energy = (vp * device.params.resistance.current(
                device.params.ecd, "AP", vp) * pulse)
            rows.append((f"{ratio:.1f}x", vp, pulse * 1e9,
                         penalty * 1e9, energy * 1e15))

    print(format_table(
        ["pitch", "Vp (V)", f"pulse for WER={TARGET_WER:g} (ns)",
         "NP-pattern penalty (ns)", "write energy (fJ)"], rows,
        float_format=".3g"))
    print()
    print("Reading: the pattern penalty is what inter-cell coupling "
          "costs in guaranteed pulse width. It fades with voltage "
          "(as in Fig. 5) and with pitch; at 1.5x eCD and low voltage "
          "it is a visible slice of the write budget.")


if __name__ == "__main__":
    main()
