"""Density explorer: how dense can the array get before coupling bites?

The workload the paper's introduction motivates: a designer wants maximum
bits/mm^2 but must keep inter-cell coupling harmless. This script sweeps
the pitch for several device sizes, locates the Psi = 2 % threshold of
each, and prints the achievable density and what pushing to 1.5x eCD
(the sub-20 nm patterning limit of [7]) would cost.

Run:  python examples/density_explorer.py
"""

import numpy as np

from repro import coupling_factor, psi_threshold_pitch, psi_vs_pitch
from repro.arrays import areal_density_gbit_per_mm2
from repro.reporting import ascii_plot, format_table
from repro.stack import build_reference_stack
from repro.units import nm_to_m, oe_to_am

HC = oe_to_am(2200.0)  # measured FL coercivity
SIZES_NM = (20.0, 35.0, 55.0)


def main():
    rows = []
    series = {}
    for ecd_nm in SIZES_NM:
        ecd = nm_to_m(ecd_nm)
        pitches = np.linspace(1.5 * ecd, nm_to_m(200.0), 60)
        psi = psi_vs_pitch(ecd, pitches, HC)
        series[f"eCD={ecd_nm:.0f}nm"] = (pitches * 1e9, psi * 100)

        pitch_2pct = psi_threshold_pitch(ecd, HC, psi_target=0.02)
        pitch_dense = 1.5 * ecd
        psi_dense = coupling_factor(build_reference_stack(ecd),
                                    pitch_dense, HC)
        rows.append((
            ecd_nm,
            pitch_2pct * 1e9,
            areal_density_gbit_per_mm2(pitch_2pct),
            pitch_dense * 1e9,
            areal_density_gbit_per_mm2(pitch_dense),
            psi_dense * 100,
        ))

    print(ascii_plot(series, title="Coupling factor vs pitch",
                     x_label="pitch (nm)", y_label="Psi (%)"))
    print()
    print(format_table(
        ["eCD (nm)", "Psi=2% pitch (nm)", "density (Gb/mm^2)",
         "1.5x pitch (nm)", "density (Gb/mm^2)", "Psi at 1.5x (%)"],
        rows, float_format=".3g"))
    print()
    print("Reading: the Psi=2% column is the densest 'safe' design; the "
          "1.5x-eCD columns show the density upside and the coupling "
          "cost of the aggressive option.")


if __name__ == "__main__":
    main()
