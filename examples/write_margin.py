"""Write-margin analysis: sizing the write pulse against coupling.

The paper's Fig. 5 conclusion in engineering form: at aggressive pitches
the AP->P write time depends on what the neighbors store, so the write
pulse must cover the *worst-case* pattern (NP8 = 0) plus a statistical
margin. This script sweeps the write voltage, computes the worst-case
switching time and the pattern-induced penalty at three pitches, and
derives the pulse width needed for each design point.

Run:  python examples/write_margin.py
"""

import numpy as np

from repro import MTJDevice, PAPER_EVAL_DEVICE, SwitchingTimeAnalysis
from repro.core.psi import coupling_factor
from repro.reporting import ascii_plot, format_table

#: Pulse-width sizing margin on top of the worst-case mean switching time
#: (Sun's model gives the mean; real write circuits pad it).
PULSE_MARGIN = 1.5

PITCH_RATIOS = (3.0, 2.0, 1.5)
VOLTAGES = np.linspace(0.75, 1.20, 19)


def main():
    device = MTJDevice(PAPER_EVAL_DEVICE)
    analysis = SwitchingTimeAnalysis(device)

    series = {}
    rows = []
    for ratio in PITCH_RATIOS:
        pitch = ratio * device.params.ecd
        worst = analysis.tw_vs_voltage(VOLTAGES, "np0", pitch)
        best = analysis.tw_vs_voltage(VOLTAGES, "np255", pitch)
        series[f"{ratio}x worst (NP0)"] = (VOLTAGES, worst * 1e9)

        psi = coupling_factor(device.stack, pitch, device.params.hc)
        v_op = 0.90
        tw_worst = analysis.tw_vs_voltage(
            np.array([v_op]), "np0", pitch)[0]
        penalty = analysis.pattern_penalty(v_op, pitch)
        rows.append((
            f"{ratio:.1f}x eCD",
            psi * 100,
            tw_worst * 1e9,
            penalty * 1e9,
            PULSE_MARGIN * tw_worst * 1e9,
        ))

    print(ascii_plot(series,
                     title="Worst-case tw(AP->P) vs write voltage",
                     x_label="Vp (V)", y_label="tw (ns)"))
    print()
    print(format_table(
        ["pitch", "Psi (%)", "worst tw @0.9V (ns)",
         "pattern penalty (ns)", "sized pulse (ns)"], rows,
        float_format=".3g"))
    print()
    print("Reading: at 3x/2x eCD the pattern penalty is negligible; at "
          "1.5x eCD the pulse must be sized for NP8=0, costing write "
          "bandwidth exactly as the paper warns.")


if __name__ == "__main__":
    main()
