"""Coupling-aware memory test generation.

The paper's authors work on STT-MRAM test (refs [6], [14], [16]); the
coupling model directly drives test engineering. This script assesses a
design against write/retention specs across pitches, identifies where
coupling-induced faults become possible, and prints the sensitizing data
background and a march-style stress test for the worst corners — plus a
full-array stray-field map contrasting the stress background with a
benign checkerboard.

Run:  python examples/coupling_test_patterns.py
"""

import numpy as np

from repro import MTJDevice, PAPER_EVAL_DEVICE
from repro.apps import CouplingFaultAnalyzer
from repro.arrays import fast_array_field_map
from repro.arrays.pattern import checkerboard, solid
from repro.reporting import format_table
from repro.units import am_to_oe

PITCH_RATIOS = (3.0, 2.5, 2.0, 1.75, 1.5)
SPECS = {"pulse_budget": 14e-9, "write_voltage": 0.9, "min_delta": 36.0}


def main():
    device = MTJDevice(PAPER_EVAL_DEVICE)
    analyzer = CouplingFaultAnalyzer(device, PITCH_RATIOS[0]
                                     * device.params.ecd)

    rows = []
    for ratio in PITCH_RATIOS:
        assessment = CouplingFaultAnalyzer(
            device, ratio * device.params.ecd).assess(**SPECS)
        rows.append((
            f"{ratio:g}x",
            assessment.write_margin_ns,
            assessment.retention_margin,
            "yes" if assessment.write_fault_possible else "no",
            "yes" if assessment.retention_fault_possible else "no",
        ))
    print(format_table(
        ["pitch", "write margin (ns)", "retention margin (Delta)",
         "write fault?", "retention fault?"], rows, float_format=".3g"))
    print()

    name, pattern = analyzer.sensitizing_background("write_margin")
    print(f"Sensitizing background: {name} "
          f"(every victim sees NP8={pattern.to_int()})")
    print("March-style coupling stress test:")
    for element in analyzer.march_test(SPECS["write_voltage"]):
        print(f"  {element}")
    print()

    # Show why the background matters: per-cell total stray field under
    # the stress background vs a checkerboard, over a 12x12 tile.
    pitch = 1.5 * device.params.ecd
    stress = fast_array_field_map(device, pitch, solid(12, 12, 0).bits)
    benign = fast_array_field_map(device, pitch,
                                  checkerboard(12, 12).bits)
    print("Interior stray field (Oe) at pitch=1.5x eCD:")
    print(f"  stress background (solid-0): "
          f"{am_to_oe(np.nanmean(stress)):8.1f} (uniform)")
    print(f"  checkerboard:                mean "
          f"{am_to_oe(np.nanmean(benign)):8.1f}, "
          f"spread {am_to_oe(np.nanmax(benign) - np.nanmin(benign)):.1f}")
    print()
    print("Reading: the solid-0 background pushes every interior cell to "
          "its worst-case field simultaneously — one array write "
          "stresses all victims; the checkerboard leaves the array far "
          "from the corner and would mask coupling faults.")


if __name__ == "__main__":
    main()
