"""System-level UBER: what the density cost looks like to a user.

The paper quantifies how magnetic coupling degrades per-cell write
current, switching time, and thermal stability; this scenario carries
that to the number a memory designer budgets — the uncorrectable
bit-error rate of a coupled array under read/write traffic, with and
without SEC-DED ECC, across data patterns and pitches.

Run:  python examples/memsys_uber.py
"""

from repro import MTJDevice, PAPER_EVAL_DEVICE
from repro.memsys import build_engine, secded_margin_pitch, uber_sweep
from repro.memsys.sweeps import SWEEP_HEADERS
from repro.reporting import format_table

PITCH_RATIOS = (3.0, 2.0, 1.5)
TRANSACTIONS = 30_000
UBER_TARGET = 3.5e-4


def main():
    device = MTJDevice(PAPER_EVAL_DEVICE)

    print("Monte-Carlo runs (64x64 array, random traffic, "
          f"{TRANSACTIONS} transactions):")
    rows = []
    for ratio in PITCH_RATIOS:
        for ecc in ("none", "secded"):
            engine = build_engine(device,
                                  pitch=ratio * device.params.ecd,
                                  ecc=ecc, workload="random")
            result = engine.run(TRANSACTIONS, rng=2020)
            rows.append((f"{ratio:g}x", ecc, result.raw_ber,
                         result.uber, result.word_fail_rate,
                         result.words_corrected))
    print(format_table(
        ["pitch", "ecc", "raw BER", "UBER", "word fail", "#corrected"],
        rows, float_format=".3e"))

    print()
    print("Expectation-mode sweep (noise-free, worst-case pattern):")
    sweep = uber_sweep(device, pitch_ratios=PITCH_RATIOS,
                       patterns=("solid0", "checkerboard"))
    print(format_table(SWEEP_HEADERS, sweep.rows, float_format=".3e"))

    print()
    print("Rare-event fast path (binomial sampler, 256x256 array at "
          "nominal WER 1e-6):")
    engine = build_engine(device, pitch=2.0 * device.params.ecd,
                          rows=256, cols=256, workload="read-heavy",
                          nominal_wer=1e-6, sampler="binomial")
    result = engine.run(100_000, rng=2020)
    print(f"  {result.n_transactions} transactions, "
          f"{result.raw_bit_errors} raw bit errors observed, "
          f"UBER {result.uber:.2e} — a regime the per-cell bernoulli "
          "reference cannot reach in example-sized budgets.")

    ratio, uber = secded_margin_pitch(device, UBER_TARGET)
    print()
    if ratio is not None:
        print(f"SEC-DED holds a {UBER_TARGET:g} UBER budget down to "
              f"{ratio:g}x eCD (UBER {uber:.2e}); denser arrays need "
              "stronger ECC, longer pulses, or wider margins.")
    else:
        print(f"Even the widest pitch misses the {UBER_TARGET:g} UBER "
              f"budget (UBER {uber:.2e}).")
    print()
    print("Reading: ECC hides most of the coupling-induced write-error "
          "inflation, but the worst-case data pattern erodes the "
          "SEC-DED margin faster than the raw BER suggests — two "
          "coupled errors in one 72-bit word defeat the code, and the "
          "pair probability grows quadratically with the per-bit "
          "inflation the paper's Figs. 5/6 measure per cell.")


if __name__ == "__main__":
    main()
