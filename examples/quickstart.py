"""Quickstart: model one STT-MRAM cell and its 3x3 neighborhood.

Builds the paper's evaluation device (eCD = 35 nm), computes the stray
fields it lives in, and prints how the critical current, write time, and
retention change between the best- and worst-case data patterns.

Run:  python examples/quickstart.py
"""

from repro import MTJDevice, MTJState, PAPER_EVAL_DEVICE, VictimAnalysis
from repro.arrays.pattern import ALL_AP, ALL_P
from repro.reporting import format_table
from repro.units import am_to_oe


def main():
    device = MTJDevice(PAPER_EVAL_DEVICE)
    print("Device:", {k: round(v, 2) if isinstance(v, float) else v
                      for k, v in device.describe().items()})
    print()

    # The device's own fixed layers produce a stray field at its FL:
    hz_intra = device.intra_stray_field()
    print(f"Intra-cell stray field: {am_to_oe(hz_intra):8.1f} Oe "
          "(negative = anti-parallel to the RL)")
    print(f"Ic(AP->P): {device.ic('AP->P', hz_intra) * 1e6:6.2f} uA "
          f"(intrinsic {device.ic0() * 1e6:.2f} uA)")
    print(f"Ic(P->AP): {device.ic('P->AP', hz_intra) * 1e6:6.2f} uA")
    print()

    # Put the device in a dense array: pitch = 2x eCD (the paper's Psi=2%
    # design point is close to this).
    victim = VictimAnalysis(device, pitch=2.0 * device.params.ecd)
    rows = []
    for label, pattern in (("all neighbors P (NP8=0)", ALL_P),
                           ("all neighbors AP (NP8=255)", ALL_AP)):
        rows.append((
            label,
            am_to_oe(victim.hz_inter(pattern)),
            victim.ic("AP->P", pattern) * 1e6,
            victim.switching_time(0.9, pattern) * 1e9,
            victim.delta(MTJState.P, pattern),
        ))
    print(format_table(
        ["neighborhood", "Hz_inter (Oe)", "Ic AP->P (uA)",
         "tw @0.9V (ns)", "Delta_P"], rows))
    print()

    worst_delta, state, pattern = victim.worst_case_delta()
    print(f"Worst retention corner: Delta = {worst_delta:.1f} for the "
          f"{state.value} state under NP8={pattern.to_int()}")


if __name__ == "__main__":
    main()
