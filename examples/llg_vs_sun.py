"""Cross-check: stochastic LLG simulation vs Sun's analytical model.

The paper computes switching times with Sun's precessional formula
(Eq. 3-4). This script validates that model against the library's
independent stochastic Landau-Lifshitz-Gilbert-Slonczewski solver:

* the LLG threshold current matches Eq. 2's Ic exactly (same identity),
* 1/tw grows linearly with the overdrive current I - Ic,
* the absolute times agree within a small factor (the models differ in
  their treatment of the initial thermal angle).

Run:  python examples/llg_vs_sun.py   (takes ~1 minute)
"""

import numpy as np

from repro import MTJDevice, PAPER_EVAL_DEVICE
from repro.llg import (
    MacrospinParameters,
    SwitchingSimulation,
    stt_critical_current,
)
from repro.reporting import ascii_plot, format_table

CURRENTS_UA = np.array([75.0, 90.0, 105.0, 120.0, 135.0])
N_RUNS = 64


def main():
    device = MTJDevice(PAPER_EVAL_DEVICE)
    params = MacrospinParameters.from_device(device)

    print(f"Eq. 2 intrinsic Ic0:   {device.ic0() * 1e6:7.2f} uA")
    print(f"LLG threshold current: {stt_critical_current(params) * 1e6:7.2f}"
          " uA  (must match)")
    print()

    sun = device.sun_model()
    ic = device.ic0()
    rows = []
    llg_rates, sun_rates = [], []
    for i, current_ua in enumerate(CURRENTS_UA):
        current = current_ua * 1e-6
        result = SwitchingSimulation(params, current=current).run(
            n_runs=N_RUNS, max_time=120e-9, rng=100 + i)
        tw_llg = result.mean_time
        # Sun's model at the same overdrive current:
        tw_sun = 1.0 / (sun.rate_coefficient * (current - ic))
        rows.append((current_ua, tw_llg * 1e9, tw_sun * 1e9,
                     tw_llg / tw_sun, result.switched_fraction))
        llg_rates.append(1.0 / tw_llg)
        sun_rates.append(1.0 / tw_sun)

    print(format_table(
        ["I (uA)", "LLG tw (ns)", "Sun tw (ns)", "ratio", "switched"],
        rows, float_format=".3g"))
    print()

    overdrive = CURRENTS_UA - ic * 1e6
    print(ascii_plot(
        {"LLG 1/tw": (overdrive, np.array(llg_rates) / 1e9),
         "Sun 1/tw": (overdrive, np.array(sun_rates) / 1e9)},
        title="Switching rate vs overdrive current",
        x_label="I - Ic (uA)", y_label="1/tw (1/ns)"))
    print()

    # llg_rates were fit against overdrive in uA, so the slope is already
    # per uA; the Sun coefficient is per A.
    slope = np.polyfit(overdrive, llg_rates, 1)[0]
    print(f"LLG rate slope:  {slope / 1e9:.4f} (1/ns)/uA")
    print(f"Sun rate slope:  {sun.rate_coefficient / 1e9 * 1e-6:.4f} "
          "(1/ns)/uA")
    print("Reading: both models are linear in the overdrive. The "
          "absolute LLG times are a factor ~3-5 faster than the "
          "calibrated Sun model — the paper-matching calibration chooses "
          "a conservative effective polarization; the linear-in-overdrive "
          "structure (Eq. 3) is what the LLG confirms.")


if __name__ == "__main__":
    main()
