"""Read-disturb margin: how hard can you read a dense array?

Read sensing wants high read voltage (signal, speed — the paper's intro
cites 4 ns read sensing at 0.9 V write); disturb wants low. This script
sizes the maximum read voltage against a per-read disturb target across
pitches and neighborhood corners, showing that inter-cell coupling also
taxes the *read* budget at aggressive densities.

Run:  python examples/read_disturb_margin.py
"""

import numpy as np

from repro import MTJDevice, MTJState, PAPER_EVAL_DEVICE
from repro.apps import ReadDisturbAnalysis
from repro.arrays import VictimAnalysis
from repro.arrays.pattern import ALL_P
from repro.reporting import ascii_plot, format_table

DISTURB_TARGET = 1e-12   # per-read flip budget (pre-ECC)
T_READ = 10e-9
PITCH_RATIOS = (3.0, 2.0, 1.5)


def main():
    device = MTJDevice(PAPER_EVAL_DEVICE)
    analysis = ReadDisturbAnalysis(device)

    # Disturb probability vs read voltage at the worst corner.
    victim = VictimAnalysis(device, 1.5 * device.params.ecd)
    hz_worst = victim.hz_total(ALL_P)
    voltages = np.linspace(0.05, 0.5, 40)
    probs = np.array([
        analysis.disturb_probability(MTJState.P, v, T_READ, hz_worst)
        for v in voltages])
    print(ascii_plot(
        {"P state, NP8=0": (voltages, np.log10(probs + 1e-30))},
        title="Per-read disturb probability (pitch=1.5x eCD)",
        x_label="read voltage (V)", y_label="log10 P(disturb)"))
    print()

    rows = []
    for ratio in PITCH_RATIOS:
        pitch = ratio * device.params.ecd
        v_victim = VictimAnalysis(device, pitch)
        v_max_worst = analysis.max_read_voltage(
            MTJState.P, DISTURB_TARGET, T_READ,
            hz_stray=v_victim.hz_total(ALL_P))
        v_max_isolated = analysis.max_read_voltage(
            MTJState.P, DISTURB_TARGET, T_READ,
            hz_stray=device.intra_stray_field())
        reads = analysis.reads_to_failure(
            MTJState.P, 0.03, T_READ,
            hz_stray=v_victim.hz_total(ALL_P), budget=1e-6)
        rows.append((f"{ratio:g}x", v_max_isolated * 1e3,
                     v_max_worst * 1e3,
                     (v_max_isolated - v_max_worst) * 1e3, reads))

    print(format_table(
        ["pitch", "Vread max intra (mV)",
         "Vread max NP8=0 (mV)", "coupling cost (mV)",
         "reads@30mV to 1e-6"], rows, float_format=".3g"))
    print()
    print("Reading: a Delta0=45.5 device is genuinely read-disturb "
          "limited (hence the paper's gentle 20 mV readout). The "
          "worst-case neighborhood lowers Delta_P and Ic(P->AP) "
          "together, shaving several more millivolts off the safe read "
          "voltage at 1.5x eCD — a second, quieter coupling tax on top "
          "of the write-margin one.")


if __name__ == "__main__":
    main()
