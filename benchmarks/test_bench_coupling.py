"""Before/after benches for the vectorized kernel + sweep spine.

The headline bench evaluates the acceptance grid — 3 device sizes x 13
pitches x 256 NP8 patterns — twice over:

* *baseline*: the pre-refactor path, reconstructed faithfully — every
  kernel is a per-loop Python summation of analytic loop fields (one
  elliptic-integral call per sub-loop per point), kernels are cached per
  exact lateral offset (8 positions x 2 kinds per geometry), and the 256
  patterns are a per-pattern Python loop over the 8 positions;
* *vectorized*: the shipped path — 4 symmetry-reduced kernels per
  geometry, each one a single broadcasted all-loops call, patterns via
  ``hz_inter_batch``, all memoized in the process-wide KernelStore
  (cleared per round, so the timing is a cold start).

The test asserts numerical parity and a >= 5x speedup. A second bench
records the system-level sweep throughput on the same pitch axis.
"""

import time

import numpy as np
import pytest

from repro.arrays import InterCellCoupling, get_kernel_store
from repro.arrays.layout import Neighborhood3x3
from repro.arrays.pattern import NeighborhoodPattern
from repro.fields import LoopCollection, layer_to_loops
from repro.stack import build_reference_stack

#: The acceptance grid: 3 sizes x 13 pitches x 256 patterns.
SIZES = (35e-9, 45e-9, 55e-9)
RATIOS = tuple(np.linspace(1.5, 3.0, 13))
ALL_NP8 = np.arange(256)


def _baseline_grid():
    """The pre-refactor evaluation of the full grid."""
    results = {}
    for ecd in SIZES:
        stack = build_reference_stack(ecd)
        for ratio in RATIOS:
            positions = Neighborhood3x3(
                pitch=ratio * ecd).aggressor_positions()
            cache = {}
            for pos in positions:
                key = (round(pos[0], 15), round(pos[1], 15))
                for kind, layers, direction in (
                        ("fixed", stack.fixed_layers(), None),
                        ("fl", (stack.free_layer,), +1)):
                    loops = []
                    for layer in layers:
                        loops.extend(layer_to_loops(
                            layer, stack.radius, center_xy=pos,
                            direction=direction))
                    cache[key + (kind,)] = float(
                        LoopCollection(loops).field_per_loop(
                            (0.0, 0.0, 0.0))[2])
            values = np.empty(256)
            for v in range(256):
                pattern = NeighborhoodPattern.from_int(v)
                signs = pattern.signs()
                total = 0.0
                for i, pos in enumerate(positions):
                    key = (round(pos[0], 15), round(pos[1], 15))
                    total += cache[key + ("fixed",)]
                    total += signs[i] * cache[key + ("fl",)]
                values[v] = total
            results[(ecd, float(ratio))] = values
    return results


def _vectorized_grid():
    """The shipped evaluation of the same grid, from a cold store."""
    get_kernel_store().clear()
    return _vectorized_grid_no_clear()


def test_kernel_grid_vectorized_5x_speedup(benchmark):
    t0 = time.perf_counter()
    baseline = _baseline_grid()
    t_baseline = time.perf_counter() - t0

    vectorized = benchmark.pedantic(_vectorized_grid, rounds=3,
                                    iterations=1)

    for key, expected in baseline.items():
        np.testing.assert_allclose(vectorized[key], expected,
                                   rtol=1e-9, atol=1e-6)

    t_vectorized = benchmark.stats.stats.min
    speedup = t_baseline / t_vectorized
    print(f"\nkernel grid ({len(SIZES)} sizes x {len(RATIOS)} pitches "
          f"x 256 patterns): baseline {t_baseline * 1e3:.0f} ms, "
          f"vectorized {t_vectorized * 1e3:.0f} ms -> "
          f"{speedup:.1f}x")
    assert speedup >= 5.0, (
        f"vectorized path only {speedup:.1f}x faster than the per-loop "
        f"baseline (acceptance: >= 5x)")


def test_warm_store_grid_revisit(benchmark):
    """Revisiting the grid with a warm store is pure table lookups."""
    get_kernel_store().clear()
    _vectorized_grid_no_clear()

    result = benchmark.pedantic(_vectorized_grid_no_clear, rounds=3,
                                iterations=1)
    assert len(result) == len(SIZES) * len(RATIOS)
    stats = get_kernel_store().stats()
    assert stats["hits"] > stats["misses"]


def _vectorized_grid_no_clear():
    results = {}
    for ecd in SIZES:
        stack = build_reference_stack(ecd)
        for ratio in RATIOS:
            coupling = InterCellCoupling(stack, float(ratio) * ecd)
            results[(ecd, float(ratio))] = coupling.hz_inter_batch(
                ALL_NP8)
    return results


def test_uber_sweep_throughput(benchmark):
    """System-level sweep throughput over the 13-pitch axis."""
    from repro.device import MTJDevice, PAPER_EVAL_DEVICE
    from repro.memsys import uber_sweep
    device = MTJDevice(PAPER_EVAL_DEVICE)

    def run():
        get_kernel_store().clear()
        # uber_sweep wants the density axis widest-first, densest last.
        return uber_sweep(device,
                          pitch_ratios=tuple(reversed(RATIOS)),
                          patterns=("solid0",), rows=16, cols=16)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.all_passed, [
        c.metric for c in result.comparisons if not c.passed]
    n_points = len(RATIOS) * 1 * 2
    elapsed = benchmark.stats.stats.min
    print(f"\nuber sweep: {n_points} grid points in "
          f"{elapsed * 1e3:.0f} ms "
          f"({n_points / elapsed:.0f} points/s cold)")
