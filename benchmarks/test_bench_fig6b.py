"""Bench: regenerate paper Fig. 6b (worst-case Delta at three pitches).

Times the worst-corner Delta_P(NP8=0) temperature sweeps at 3x / 2x /
1.5x eCD and asserts the "marginal degradation" conclusion.
"""

from repro.experiments import fig6b


def test_fig6b_worst_case_delta(figure_bench):
    result = figure_bench(fig6b.run)
    assert 0.0 <= result.extras["degradation_at_25c"] < 5.0
