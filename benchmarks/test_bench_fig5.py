"""Bench: regenerate paper Fig. 5 (tw vs Vp at 3x / 2x / 1.5x eCD).

Times the 12-curve switching-time family (3 pitches x 4 stray cases x 26
voltages) and asserts the Psi / penalty structure of the paper's panels.
"""

from repro.experiments import fig5


def test_fig5_tw_vs_voltage(figure_bench):
    result = figure_bench(fig5.run)
    penalties = result.extras["penalties_ns"]
    assert penalties[1.5] > penalties[3.0]
