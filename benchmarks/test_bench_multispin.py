"""Benches for the multi-macrospin FL and the report generator."""

import numpy as np
import pytest

from repro.core.intra import IntraCellModel
from repro.device import MTJDevice, PAPER_EVAL_DEVICE
from repro.llg import MacrospinParameters, MultiMacrospinFL, make_fl_grid


@pytest.fixture(scope="module")
def multispin_fl():
    device = MTJDevice(PAPER_EVAL_DEVICE)
    params = MacrospinParameters.from_device(
        device, use_activation_volume=False)
    grid = make_fl_grid(device.stack.radius, n_across=5)
    intra = IntraCellModel()

    def profile(pos):
        pts = np.column_stack([pos, np.zeros(pos.shape[0])])
        return intra.field_map(device.params.ecd, pts)[:, 2]

    return MultiMacrospinFL(params, grid,
                            device.stack.free_layer.thickness,
                            hz_profile=profile)


def test_multispin_step(benchmark, multispin_fl):
    rng = np.random.default_rng(1)
    m = multispin_fl.uniform_state(-1.0)
    m[:, 0] += 0.02 * rng.standard_normal(multispin_fl.grid.n_cells)
    m /= np.linalg.norm(m, axis=1, keepdims=True)

    out = benchmark(multispin_fl.step, m, 1e-12, rng, 5e3)
    assert out.shape == m.shape


def test_multispin_switch_transient(benchmark, multispin_fl):
    current = 2.0 * multispin_fl.total_critical_current

    t_sw = benchmark.pedantic(
        lambda: multispin_fl.switch(current, max_time=20e-9, rng=3),
        rounds=3, iterations=1)
    assert t_sw is not None


def test_report_generation(benchmark):
    from repro.experiments.base import Comparison, ExperimentResult
    from repro.experiments.report import build_report
    results = {
        f"fig{i}": ExperimentResult(
            experiment_id=f"fig{i}", title="t",
            headers=["a"], rows=[(float(j),) for j in range(20)],
            comparisons=[Comparison("m", 1.0, 1.0, True, "")])
        for i in range(10)
    }

    text = benchmark(build_report, results)
    assert text.startswith("# Reproduction report")
