"""Benches for the application-layer analyses.

Times the design-space sweep, the WER pulse sizing, and a Monte-Carlo
yield run — the workloads a designer iterates on top of the coupling
model.
"""

import pytest

from repro.apps import (
    ArrayYieldAnalysis,
    DesignSpaceExplorer,
    WriteErrorModel,
)
from repro.device import MTJDevice, PAPER_EVAL_DEVICE


def test_design_space_sweep_3x4(benchmark):
    explorer = DesignSpaceExplorer(PAPER_EVAL_DEVICE)

    points = benchmark.pedantic(
        lambda: explorer.sweep([25e-9, 35e-9, 45e-9],
                               [1.5, 2.0, 2.5, 3.0]),
        rounds=3, iterations=1)
    assert len(points) == 12
    assert all(p.worst_delta > 0 for p in points)


def test_wer_pulse_sizing(benchmark):
    model = WriteErrorModel(MTJDevice(PAPER_EVAL_DEVICE))

    pulse = benchmark(model.worst_case_pulse, 1e-6, 0.95, 52.5e-9)
    assert 1e-9 < pulse < 200e-9


def test_yield_monte_carlo_50_samples(benchmark):
    analysis = ArrayYieldAnalysis(PAPER_EVAL_DEVICE, 70e-9)

    result = benchmark.pedantic(
        lambda: analysis.run(n_samples=50, rng=1),
        rounds=3, iterations=1)
    assert result.n_samples == 50
