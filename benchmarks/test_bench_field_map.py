"""Before/after bench for the batched full-array field map.

``array_field_map`` used to evaluate every interior cell with a Python
loop — ``neighborhood_of(row, col)`` decoding plus four kernel-store
lookups (fingerprint hashing included) *per cell*. The shipped path
computes the whole map as one numpy expression over shifted slices of
the bit array, with the four symmetry-reduced kernels fetched once
through ``KernelStore.kernel_batch``.

This bench reconstructs the pre-batch per-cell loop faithfully as the
baseline and asserts the acceptance criteria on a 64x64 map: the
vectorized map is bit-identical (NaN border included) and >= 3x faster.
The kernel-store is warmed before either path is timed, so the
comparison isolates the map assembly itself.
"""

import time

import numpy as np

from repro.arrays import ArrayLayout, InterCellCoupling
from repro.arrays.pattern import random_pattern
from repro.arrays.victim import array_field_map
from repro.device import MTJDevice, PAPER_EVAL_DEVICE

ROWS = COLS = 64


def _loop_field_map(device, layout, data_pattern):
    """The pre-batch implementation, reconstructed faithfully."""
    rows, cols = layout.rows, layout.cols
    coupling = InterCellCoupling(device.stack, layout.pitch)
    intra = device.intra_stray_field()
    out = np.full((rows, cols), np.nan)
    for row in range(1, rows - 1):
        for col in range(1, cols - 1):
            np8 = data_pattern.neighborhood_of(row, col)
            out[row, col] = intra + coupling.hz_inter_fast(np8)
    return out


def test_array_field_map_batch_3x_speedup(benchmark):
    device = MTJDevice(PAPER_EVAL_DEVICE)
    layout = ArrayLayout(pitch=2.0 * device.params.ecd, rows=ROWS,
                         cols=COLS)
    pattern = random_pattern(ROWS, COLS, rng=7)

    # Warm the four kernels so both paths time map assembly, not the
    # one-off elliptic-integral work.
    InterCellCoupling(device.stack, layout.pitch).kernels()

    t0 = time.perf_counter()
    baseline = _loop_field_map(device, layout, pattern)
    t_baseline = time.perf_counter() - t0

    vectorized = benchmark.pedantic(
        lambda: array_field_map(device, layout, pattern), rounds=3,
        iterations=1)

    # Machine-precision acceptance: identical bits, NaN border included.
    np.testing.assert_array_equal(vectorized, baseline)

    t_vectorized = benchmark.stats.stats.min
    speedup = t_baseline / t_vectorized
    print(f"\narray_field_map ({ROWS}x{COLS}): per-cell loop "
          f"{t_baseline * 1e3:.1f} ms, batched {t_vectorized * 1e3:.2f}"
          f" ms -> {speedup:.0f}x")
    assert speedup >= 3.0, (
        f"batched field map only {speedup:.1f}x faster than the "
        f"per-cell loop (acceptance: >= 3x)")


def test_kernel_batch_matches_scalar_on_window(benchmark):
    """Batch kernels of a 5x5 window: parity + cold-store timing."""
    from repro.arrays.kernel_store import KernelStore
    device = MTJDevice(PAPER_EVAL_DEVICE)
    pitch = 2.0 * device.params.ecd
    offsets = [(i * pitch, j * pitch)
               for i in range(-2, 3) for j in range(-2, 3)
               if (i, j) != (0, 0)]

    def cold_batch():
        store = KernelStore()
        return store.kernel_batch(device.stack, offsets, "fl")

    batch = benchmark.pedantic(cold_batch, rounds=3, iterations=1)
    scalar_store = KernelStore()
    scalar = np.array([scalar_store.kernel(device.stack, off, "fl")
                       for off in offsets])
    np.testing.assert_array_equal(batch, scalar)
