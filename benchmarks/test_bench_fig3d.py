"""Bench: regenerate paper Fig. 3d (radial Hz_s_intra profiles).

Times the four radial line scans (20/35/55/90 nm devices).
"""

from repro.experiments import fig3d


def test_fig3d_radial_profiles(figure_bench):
    result = figure_bench(fig3d.run)
    centers = result.extras["center_values_oe"]
    # Headline ordering: smaller devices see stronger center fields.
    assert abs(centers[35.0]) > abs(centers[90.0])
