"""Benches for array-scale coupling evaluation.

Times the cold-cache kernel construction, the warm 256-pattern sweep, and
a full-array (9x9) victim field map — the operations a memory designer
sweeps over pitch/size design spaces.
"""

import numpy as np
import pytest

from repro.arrays import ArrayLayout, InterCellCoupling
from repro.arrays.pattern import checkerboard
from repro.arrays.victim import array_field_map
from repro.device import MTJDevice, PAPER_EVAL_DEVICE
from repro.stack import build_reference_stack


def test_coupling_kernels_cold(benchmark):
    stack = build_reference_stack(55e-9)

    def build_and_evaluate():
        coupling = InterCellCoupling(stack, 90e-9)  # empty cache
        return coupling.kernels()

    kernels = benchmark(build_and_evaluate)
    assert kernels.fl_direct < 0


def test_np8_sweep_warm(benchmark):
    coupling = InterCellCoupling(build_reference_stack(55e-9), 90e-9)
    coupling.kernels()  # warm the cache

    values = benchmark(coupling.hz_inter_all)
    assert values.shape == (256,)
    assert int(np.argmin(values)) == 0


def test_array_field_map_9x9(benchmark):
    device = MTJDevice(PAPER_EVAL_DEVICE)
    layout = ArrayLayout(pitch=70e-9, rows=9, cols=9)
    pattern = checkerboard(9, 9)

    result = benchmark.pedantic(
        lambda: array_field_map(device, layout, pattern),
        rounds=3, iterations=1)
    assert np.isfinite(result[1:-1, 1:-1]).all()
