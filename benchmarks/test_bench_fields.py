"""Benches for the magnetostatic solver kernels.

Compares the cost of the exact elliptic-integral solution against the
discrete Biot-Savart summation (the paper's method) at equal accuracy, and
times the stack-level field evaluation used everywhere else.
"""

import numpy as np
import pytest

from repro.fields import (
    LoopCollection,
    layer_to_loops,
    loop_field_analytic,
    loop_field_biot_savart,
)
from repro.stack import build_reference_stack


@pytest.fixture(scope="module")
def eval_points():
    rng = np.random.default_rng(3)
    pts = rng.uniform(-60e-9, 60e-9, size=(512, 3))
    # Keep points off the wire radius band to avoid singular samples.
    r = np.hypot(pts[:, 0], pts[:, 1])
    pts[:, 2] += np.where(np.abs(r - 17.5e-9) < 2e-9, 5e-9, 0.0)
    return pts


def test_analytic_loop_512_points(benchmark, eval_points):
    result = benchmark(loop_field_analytic, 2e-3, 17.5e-9, eval_points)
    assert result.shape == (512, 3)
    assert np.all(np.isfinite(result))


def test_biot_savart_720_segments_512_points(benchmark, eval_points):
    result = benchmark(loop_field_biot_savart, 2e-3, 17.5e-9,
                       eval_points, 720)
    assert result.shape == (512, 3)


def test_stack_fixed_layers_center_field(benchmark):
    stack = build_reference_stack(55e-9)
    loops = []
    for layer in stack.fixed_layers():
        loops.extend(layer_to_loops(layer, stack.radius))
    collection = LoopCollection(loops)
    point = np.array([[0.0, 0.0, 0.0]])

    hz = benchmark(collection.field_z, point)
    assert hz[0] < 0  # anti-parallel to the RL, as measured.
