"""Bench: regenerate paper Fig. 6a (Delta vs temperature, pitch = 2x eCD).

Times the 7-curve Delta(T) family over 16 temperatures including the
Bloch-law scaling, and asserts the Delta0 = 45.5 anchor and the worst-case
ordering.
"""

from repro.experiments import fig6a


def test_fig6a_delta_vs_temperature(figure_bench):
    result = figure_bench(fig6a.run)
    assert result.extras["pitch_ratio"] == 2.0
