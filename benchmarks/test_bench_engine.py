"""Rare-event fast-path benches: binomial vs bernoulli sampler.

The headline bench is the acceptance criterion of the sampling fast
path: a 1024 x 1024 array trimmed to ``nominal_wer = 1e-6`` (a
realistic shipping part, not the accelerated-stress corner) running
1e6 transactions — a regime where the bernoulli reference burns one
uniform draw per cell per mechanism while the binomial path draws
per-class flip counts over bit-packed state. The run must be >= 10x
faster under ``sampler="binomial"``, with ``expected_rates``
bit-identical across samplers and the Monte-Carlo counters of the two
pinned-seed runs statistically equivalent.

Configuration notes: the workload is the checkerboard stress pattern at
a 90% read fraction — the retention/read-disturb-dominated corner the
fast path targets, with the background pinned so the incremental class
maps stay on their sparse path (random write data falls back to full
recomputes past the documented threshold). ``batch_size=2048`` refreshes
the class maps every 2k transactions; both samplers run identical
settings, so the comparison is like for like at equal fidelity.

A second axis rides along: the compiled engine backend. With numba
installed, the JIT backend must beat the numpy reference by >= 5x on
the same chip-1024 binomial workload (skipped cleanly otherwise), and
the popcount byte-table fallback's narrow-row column loop must not
regress against the one-shot gather it replaced.

A third axis is the array topology: on machines with >= 4 cores the
chip-1024 array reorganized as 2 banks x 2 subarrays must run its four
sub-runs on a process pool >= 2x faster than the flat single-stream
engine at the same operating point.

Every run's throughput lands in ``BENCH_memsys.json`` (repo root, or
``$REPRO_BENCH_OUT``) as a trajectory over array size, sampler,
backend, and topology; CI uploads the file as an artifact so
regressions leave a trace.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.device import MTJDevice, PAPER_EVAL_DEVICE
from repro.memsys import build_engine
from repro.memsys.bitplane import _POPCOUNT_TABLE, _popcount_rows_table
from repro.memsys.traffic import StressPatternWorkload

#: Floor asserted on the 1024 x 1024 binomial-vs-bernoulli ratio.
SPEEDUP_FLOOR = 10.0

#: Floor asserted on the 1024 x 1024 numba-vs-numpy backend ratio.
BACKEND_SPEEDUP_FLOOR = 5.0

#: Floor asserted on the 4-shard banked chip over the flat engine when
#: the shards fan out over a process pool (requires >= 4 cores).
TOPOLOGY_SPEEDUP_FLOOR = 2.0

TRANSACTIONS = 1_000_000
BATCH_SIZE = 2048
SEED = 1


def _bench_out_path():
    override = os.environ.get("REPRO_BENCH_OUT")
    if override:
        return override
    repo_root = os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))
    return os.path.join(repo_root, "BENCH_memsys.json")


def _engine(device, side, sampler, backend=None):
    return build_engine(
        device, pitch=70e-9, rows=side, cols=side, ecc="secded",
        workload=StressPatternWorkload("checkerboard",
                                       read_fraction=0.9),
        nominal_wer=1e-6, sampler=sampler, backend=backend)


def _timed_run(engine, n=TRANSACTIONS, repeats=1):
    """(best seconds, last result) of ``repeats`` identical runs."""
    best, result = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = engine.run(n, rng=SEED, batch_size=BATCH_SIZE)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, result


@pytest.fixture(scope="module")
def device():
    return MTJDevice(PAPER_EVAL_DEVICE)


def test_binomial_fast_path_speedup_1024(device):
    """>= 10x on 1024 x 1024 at nominal_wer = 1e-6, counters agree."""
    runs = {}
    for sampler in ("binomial", "bernoulli"):
        engine = _engine(device, 1024, sampler)
        runs[sampler] = _timed_run(engine, repeats=2)

    t_binomial, r_binomial = runs["binomial"]
    t_bernoulli, r_bernoulli = runs["bernoulli"]
    speedup = t_bernoulli / t_binomial
    # Record the measured trajectory first: a failed assert below must
    # still leave BENCH_memsys.json for the CI artifact.
    _record_bench(speedup, t_bernoulli, t_binomial, runs)
    print(f"\n1024x1024, {TRANSACTIONS} txn, nominal_wer=1e-6: "
          f"bernoulli {t_bernoulli:.2f}s "
          f"({TRANSACTIONS / t_bernoulli:.0f} txn/s), "
          f"binomial {t_binomial:.2f}s "
          f"({TRANSACTIONS / t_binomial:.0f} txn/s) "
          f"-> {speedup:.1f}x")

    # Statistical equivalence of the pinned-seed Monte-Carlo counters:
    # every independent-event counter must sit within a generous
    # binomial/Poisson confidence band of its sibling.
    for counter in ("write_errors", "disturb_flips", "retention_flips",
                    "raw_bit_errors"):
        a = getattr(r_bernoulli, counter)
        b = getattr(r_binomial, counter)
        tol = 6.0 * np.sqrt(a + b + 1.0) + 25.0
        assert abs(a - b) <= tol, (counter, a, b)
    assert r_binomial.n_transactions == TRANSACTIONS
    for r in (r_binomial, r_bernoulli):
        assert r.n_reads + r.n_writes == TRANSACTIONS

    # Expectation mode draws nothing: bit-identical across samplers.
    expected = [
        _engine(device, 1024, sampler).expected_rates(rng=0)
        for sampler in ("bernoulli", "binomial")]
    assert expected[0] == expected[1]

    assert speedup >= SPEEDUP_FLOOR, (
        f"binomial fast path only {speedup:.1f}x over bernoulli "
        f"(floor {SPEEDUP_FLOOR}x)")


def _record_bench(speedup, t_bernoulli, t_binomial, runs_1024):
    """Append this run's throughput trajectory to BENCH_memsys.json."""
    trajectory = [
        {"sampler": sampler, "backend": result.config["backend"],
         "rows": 1024, "cols": 1024,
         "transactions": TRANSACTIONS, "batch_size": BATCH_SIZE,
         "nominal_wer": 1e-6, "seconds": round(seconds, 4),
         "txn_per_s": round(TRANSACTIONS / seconds, 1)}
        for sampler, (seconds, result) in runs_1024.items()]
    payload = {
        "bench": "memsys_engine",
        "speedup_1024": {
            "bernoulli_s": round(t_bernoulli, 4),
            "binomial_s": round(t_binomial, 4),
            "speedup": round(speedup, 2),
            "floor": SPEEDUP_FLOOR,
        },
        "trajectory": trajectory,
    }
    path = _bench_out_path()
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}")


def _merge_bench(update, extra_points=()):
    """Fold ``update`` keys and trajectory points into the bench file.

    The headline sampler bench rewrites the file from scratch; every
    later test merges so a partial run (or a skipped numba leg) never
    wipes the numbers that were already measured.
    """
    path = _bench_out_path()
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        payload = {"bench": "memsys_engine", "trajectory": []}
    payload.update(update)
    payload.setdefault("trajectory", []).extend(extra_points)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}")


def test_numba_backend_speedup_1024(device):
    """JIT backend >= 5x over numpy on the chip-1024 binomial preset.

    Both engines run the exact workload the ``chip-1024`` CLI preset
    ships (1024 x 1024, checkerboard at 90% reads, SEC-DED,
    ``nominal_wer = 1e-6``, binomial sampler) — only the backend
    differs. A warm-up run triggers JIT compilation before timing so
    the floor measures steady-state kernels, not compile time.
    """
    pytest.importorskip("numba")
    from repro.memsys.backends import get_backend
    assert get_backend("numba").ready(), "numba backend failed self-check"

    runs = {}
    for backend in ("numba", "numpy"):
        engine = _engine(device, 1024, "binomial", backend=backend)
        assert engine.backend.name == backend
        engine.run(10_000, rng=SEED, batch_size=BATCH_SIZE)  # JIT warm-up
        runs[backend] = _timed_run(engine, repeats=2)

    t_numba, r_numba = runs["numba"]
    t_numpy, r_numpy = runs["numpy"]
    speedup = t_numpy / t_numba
    # Record before asserting so a floor miss still leaves the artifact.
    _merge_bench(
        {"backend_speedup_1024": {
            "numpy_s": round(t_numpy, 4),
            "numba_s": round(t_numba, 4),
            "speedup": round(speedup, 2),
            "floor": BACKEND_SPEEDUP_FLOOR,
        }},
        [{"sampler": "binomial", "backend": backend, "rows": 1024,
          "cols": 1024, "transactions": TRANSACTIONS,
          "batch_size": BATCH_SIZE, "nominal_wer": 1e-6,
          "seconds": round(seconds, 4),
          "txn_per_s": round(TRANSACTIONS / seconds, 1)}
         for backend, (seconds, _) in runs.items()])
    print(f"\n1024x1024 binomial, {TRANSACTIONS} txn: "
          f"numpy {t_numpy:.2f}s, numba {t_numba:.2f}s "
          f"-> {speedup:.1f}x")

    # The backends must agree exactly: same seed, same draws, same
    # counters — the JIT path is a reimplementation, not an approximation.
    for counter in ("write_errors", "disturb_flips", "retention_flips",
                    "raw_bit_errors", "uncorrectable_words"):
        assert getattr(r_numba, counter) == getattr(r_numpy, counter), \
            counter

    assert speedup >= BACKEND_SPEEDUP_FLOOR, (
        f"numba backend only {speedup:.1f}x over numpy "
        f"(floor {BACKEND_SPEEDUP_FLOOR}x)")


def test_popcount_table_narrow_rows_not_slower():
    """The column-loop byte-table popcount beats the gather it replaced.

    ``_popcount_rows_table`` is the numpy < 2.0 fallback for the
    per-word diff; the engine diffs narrow rows (a 72-bit codeword is
    2 lanes = 16 byte columns), where accumulating one looked-up
    column at a time avoids the ``(n, 16)`` gathered temp. Assert the
    adaptive path is not slower than the one-shot gather on that shape
    (measured ~1.2x faster; floored at parity minus jitter).
    """
    rng = np.random.default_rng(SEED)
    lanes = rng.integers(0, 2**63, size=(131_072, 2), dtype=np.uint64)
    u8 = np.ascontiguousarray(lanes).view(np.uint8)

    def gather_reference(lanes):
        return _POPCOUNT_TABLE[np.ascontiguousarray(lanes)
                               .view(np.uint8)].sum(axis=1,
                                                    dtype=np.int64)

    assert np.array_equal(_popcount_rows_table(lanes),
                          gather_reference(lanes))

    def best_of(fn, repeats=7):
        best = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn(lanes)
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        return best

    t_column = best_of(_popcount_rows_table)
    t_gather = best_of(gather_reference)
    ratio = t_gather / t_column
    _merge_bench({"popcount_narrow_rows": {
        "rows": int(lanes.shape[0]), "byte_cols": int(u8.shape[1]),
        "gather_ms": round(t_gather * 1e3, 4),
        "column_ms": round(t_column * 1e3, 4),
        "ratio": round(ratio, 3),
    }})
    print(f"\npopcount (131072, 16 bytes): gather {t_gather * 1e3:.3f}ms, "
          f"column loop {t_column * 1e3:.3f}ms -> {ratio:.2f}x")
    assert ratio >= 0.9, (
        f"column-loop popcount regressed to {ratio:.2f}x of the gather")


def test_banked_process_speedup_chip_1024(device):
    """4-shard banked chip >= 2x over flat on a process pool.

    The chip-1024 preset's array reorganized as 2 banks x 2 subarrays
    runs its four 512 x 512 sub-runs concurrently on the process
    executor; against the flat single-stream engine at the identical
    operating point that must buy >= 2x wall-clock once four cores are
    available. Skipped on smaller machines — with fewer cores the pool
    serializes and only measures pickling overhead.

    The bernoulli sampler keeps per-batch work proportional to cells,
    so the sharded sub-arrays genuinely have 1/4 of the per-stream
    work — the regime banking targets (the binomial path is already
    near size-independent, so sharding cannot help it much).
    """
    if (os.cpu_count() or 1) < 4:
        pytest.skip("needs >= 4 cores for a meaningful process fan-out")

    n = 200_000
    flat = _engine(device, 1024, "bernoulli")
    t_flat, r_flat = _timed_run(flat, n=n)

    banked = build_engine(
        device, pitch=70e-9, rows=1024, cols=1024, ecc="secded",
        workload=StressPatternWorkload("checkerboard",
                                       read_fraction=0.9),
        nominal_wer=1e-6, sampler="bernoulli", topology="banked",
        banks=2, subarrays=2)
    t0 = time.perf_counter()
    r_banked = banked.run(n, rng=SEED, batch_size=BATCH_SIZE,
                          executor="process", jobs=4)
    t_banked = time.perf_counter() - t0

    speedup = t_flat / t_banked
    # Record before asserting so a floor miss still leaves the artifact.
    _merge_bench(
        {"topology_speedup_1024": {
            "flat_s": round(t_flat, 4),
            "banked_s": round(t_banked, 4),
            "speedup": round(speedup, 2),
            "floor": TOPOLOGY_SPEEDUP_FLOOR,
        }},
        [{"sampler": "bernoulli", "backend": r_banked.config["backend"],
          "topology": "banked", "banks": 2, "subarrays": 2,
          "executor": "process", "rows": 1024, "cols": 1024,
          "transactions": n, "batch_size": BATCH_SIZE,
          "nominal_wer": 1e-6, "seconds": round(t_banked, 4),
          "txn_per_s": round(n / t_banked, 1)}])
    print(f"\n1024x1024 bernoulli, {n} txn: flat {t_flat:.2f}s, "
          f"banked 2x2/process {t_banked:.2f}s -> {speedup:.1f}x")

    assert r_banked.n_transactions == n
    assert r_banked.config["topology"] == "banked"
    for counter in ("write_errors", "disturb_flips",
                    "retention_flips", "raw_bit_errors"):
        a = getattr(r_flat, counter)
        b = getattr(r_banked, counter)
        tol = 6.0 * np.sqrt(a + b + 1.0) + 25.0
        assert abs(a - b) <= tol, (counter, a, b)

    assert speedup >= TOPOLOGY_SPEEDUP_FLOOR, (
        f"banked process fan-out only {speedup:.1f}x over flat "
        f"(floor {TOPOLOGY_SPEEDUP_FLOOR}x)")


def test_binomial_throughput_scales_with_array_size(device):
    """Fast-path throughput stays near-flat as the array grows.

    The binomial path's whole-array work is O(50 classes + flips), so
    quadrupling the cell count must not quadruple the runtime — assert
    the 1024 x 1024 run keeps >= 1/4 of the 256 x 256 throughput (the
    reference path degrades ~linearly in cells per batch). Throughputs
    are appended to BENCH_memsys.json next to the speedup record.
    """
    n = 250_000
    rates = {}
    backend = None
    for side in (256, 512, 1024):
        engine = _engine(device, side, "binomial")
        seconds, result = _timed_run(engine, n=n)
        assert result.n_transactions == n
        rates[side] = n / seconds
        backend = result.config["backend"]
        print(f"\nbinomial {side}x{side}: {rates[side]:.0f} txn/s")
    assert rates[1024] >= rates[256] / 4.0, rates

    _merge_bench({}, [
        {"sampler": "binomial", "backend": backend,
         "rows": side, "cols": side,
         "transactions": n, "batch_size": BATCH_SIZE,
         "nominal_wer": 1e-6, "seconds": round(n / rate, 4),
         "txn_per_s": round(rate, 1)}
        for side, rate in rates.items()])
