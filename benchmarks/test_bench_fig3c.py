"""Bench: regenerate paper Fig. 3c (3-D stray-field map, eCD = 55 nm).

Times the vector-field evaluation of the RL+HL sources on a 3-D grid
(13^3 = 2197 points by default).
"""

from repro.experiments import fig3c


def test_fig3c_field_map(figure_bench):
    result = figure_bench(fig3c.run)
    assert result.extras["field"].shape[1] == 3
    assert result.extras["field"].shape[0] == 13 ** 3
