"""Benches for the stochastic LLG solver.

Times a single Heun step over a 256-spin ensemble and a full switching
transient — the cost drivers of LLG-based write-error analysis.
"""

import numpy as np
import pytest

from repro.device import MTJDevice, PAPER_EVAL_DEVICE
from repro.llg import (
    HeunIntegrator,
    MacrospinParameters,
    SwitchingSimulation,
)
from repro.llg.simulate import default_time_step, thermal_initial_tilt


@pytest.fixture(scope="module")
def params():
    return MacrospinParameters.from_device(MTJDevice(PAPER_EVAL_DEVICE))


def test_heun_step_256_spins(benchmark, params):
    integrator = HeunIntegrator(params, default_time_step(params),
                                a_j=5e3, thermal=True)
    rng = np.random.default_rng(1)
    m = thermal_initial_tilt(params, rng, 256, around=-1.0)

    out = benchmark(integrator.step, m, rng)
    assert out.shape == (256, 3)
    np.testing.assert_allclose(np.linalg.norm(out, axis=1), 1.0,
                               rtol=1e-9)


def test_switching_transient_32_runs(benchmark, params):
    sim = SwitchingSimulation(params, current=100e-6)

    result = benchmark.pedantic(
        lambda: sim.run(n_runs=32, max_time=30e-9, rng=7),
        rounds=3, iterations=1)
    assert result.switched_fraction > 0.9
