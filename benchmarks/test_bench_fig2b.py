"""Bench: regenerate paper Fig. 2b (Hz_s_intra vs eCD, calibrated model).

Times the full calibration loop: synthetic measurement ensemble, linear
least-squares moment fit, and the dense model curve.
"""

from repro.experiments import fig2b


def test_fig2b_intra_calibration(figure_bench):
    result = figure_bench(fig2b.run)
    # Headline: the calibrated curve matches the measured data.
    rmse = [c for c in result.comparisons
            if c.metric.startswith("model-vs-measured")][0]
    assert rmse.measured < 20.0
