"""Benches for the system-level reliability engine.

The headline bench runs >= 1e5 transactions on a 64x64 array inside the
timer — the engine's rounds are pure numpy array steps, so the cost per
transaction is dominated by gather/scatter over the word map, not by
Python dispatch.
"""

import pytest

from repro.device import MTJDevice, PAPER_EVAL_DEVICE
from repro.memsys import HammingSECDED, build_engine, uber_sweep


@pytest.fixture(scope="module")
def device():
    return MTJDevice(PAPER_EVAL_DEVICE)


@pytest.mark.parametrize("sampler", ["bernoulli", "binomial"])
def test_engine_100k_transactions_64x64(benchmark, device, sampler):
    engine = build_engine(device, pitch=70e-9, rows=64, cols=64,
                          ecc="secded", workload="random",
                          sampler=sampler)

    result = benchmark.pedantic(
        lambda: engine.run(100_000, rng=1), rounds=3, iterations=1)
    assert result.n_transactions == 100_000
    assert result.raw_bit_errors > 0
    assert 0.0 < result.uber < result.raw_ber
    print(f"\n{sampler}: raw BER {result.raw_ber:.3e} -> UBER "
          f"{result.uber:.3e} "
          f"({result.words_corrected} words corrected)")


def test_secded_encode_decode_throughput(benchmark):
    import numpy as np
    ecc = HammingSECDED(64)
    rng = np.random.default_rng(0)
    data = (rng.random((20_000, 64)) < 0.5).astype(np.int8)

    def round_trip():
        cw = ecc.encode(data)
        decoded, outcomes = ecc.decode(cw)
        return decoded, outcomes

    decoded, outcomes = benchmark.pedantic(round_trip, rounds=3,
                                           iterations=1)
    assert (outcomes == 0).all()
    assert (decoded == data).all()


def test_expectation_sweep(benchmark, device):
    result = benchmark.pedantic(
        lambda: uber_sweep(device, pitch_ratios=(3.0, 2.0, 1.5)),
        rounds=3, iterations=1)
    assert result.all_passed, [
        c.metric for c in result.comparisons if not c.passed]
