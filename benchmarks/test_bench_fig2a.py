"""Bench: regenerate paper Fig. 2a (R-H hysteresis loop measurement).

Times one full 1000-point stochastic R-H sweep plus extraction and checks
the extracted Hc / Hoffset / eCD against the paper's Section III values.
"""

from repro.experiments import fig2a


def test_fig2a_rh_loop(figure_bench):
    result = figure_bench(fig2a.run)
    rows = dict((r[0], r[1]) for r in result.rows)
    # Headline: positive offset, wafer-scale coercivity.
    assert rows["Hoffset"] > 0
    assert 1500.0 < rows["Hc"] < 3200.0
