"""Bench: regenerate paper Fig. 4a (Hz_s_inter vs neighborhood pattern).

Times the 256-pattern NP8 sweep (kernel construction + class collapse) at
eCD = 55 nm, pitch = 90 nm, and asserts the -16 / +64 Oe extremes and the
15 / 5 Oe per-neighbor steps.
"""

from repro.experiments import fig4a


def test_fig4a_np8_sweep(figure_bench):
    result = figure_bench(fig4a.run)
    table = result.extras["class_table_oe"]
    assert table[(4, 4)] - table[(0, 0)] > 60.0
