"""Benches for the measurement-emulation pipelines.

Times the paper's two statistical measurements: the 1000-cycle switching
probability curve (Section V-A) and the repeated R-H loop protocol
(Section III), plus the Hk/Delta0 extraction fit.
"""

import numpy as np
import pytest

from repro.characterization import (
    RHMeasurement,
    fit_hk_delta0,
    switching_probability_curve,
)
from repro.device import MTJDevice
from repro.experiments.data import wafer_device_parameters
from repro.units import nm_to_m, oe_to_am


@pytest.fixture(scope="module")
def device55():
    return MTJDevice(wafer_device_parameters(nm_to_m(55.0)))


@pytest.fixture(scope="module")
def psw_curve(device55):
    fields = np.linspace(oe_to_am(1200.0), oe_to_am(3800.0), 40)
    _, probs = switching_probability_curve(
        device55, fields, n_cycles=1000, rng=7)
    return fields, probs


def test_psw_curve_1000_cycles(benchmark, device55):
    fields = np.linspace(oe_to_am(1200.0), oe_to_am(3800.0), 40)

    _, probs = benchmark(switching_probability_curve, device55, fields,
                         1000, 1e-3, 5)
    assert probs.max() > 0.99


def test_hk_delta0_fit(benchmark, device55, psw_curve):
    fields, probs = psw_curve
    stray = device55.intra_stray_field()

    fit = benchmark(fit_hk_delta0, fields, probs, 1e-3, stray)
    assert fit.hk == pytest.approx(device55.params.hk, rel=0.08)


def test_rh_measurement_5_cycles(benchmark, device55):
    measurement = RHMeasurement(device55)

    stats = benchmark.pedantic(
        lambda: measurement.run(n_cycles=5, rng=3),
        rounds=3, iterations=1)
    assert stats.hoffset_oe > 0
