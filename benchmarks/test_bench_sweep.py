"""Benches for the sweep executors: distributed scaling vs serial.

The headline bench is the acceptance criterion of the distributed
executor: the default memsys sweep (`uber_sweep` — default patterns,
ECCs, array size, seed) with its pitch axis densified to the resolution
the paper's density conclusions need (60 ratios across the 1.5x-3x eCD
span, 360 points) must run >= 2x faster on a 4-worker spool-directory
broker than serially, with byte-identical result tables. The measured
scaling point is appended to ``BENCH_memsys.json`` (the CI artifact)
whether or not the floor holds, so regressions leave a trace.

The speedup floor is only asserted when the host exposes a core per
worker (CI's runners do): a wall-clock parallel speedup cannot exist
on a single core and 4 time-sliced workers on 2 cores cap below 2x,
but the determinism assertion (distributed == serial) runs everywhere.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.device import MTJDevice, PAPER_EVAL_DEVICE
from repro.memsys import uber_sweep

#: Floor asserted on the 4-worker distributed-vs-serial ratio.
SPEEDUP_FLOOR = 2.0

WORKERS = 4

#: The default sweep's 1.5x-3x eCD pitch span at dense resolution.
DENSE_RATIOS = tuple(np.linspace(3.0, 1.5, 60))


def _bench_out_path():
    override = os.environ.get("REPRO_BENCH_OUT")
    if override:
        return override
    repo_root = os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))
    return os.path.join(repo_root, "BENCH_memsys.json")


def _usable_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_sweep(device, **kwargs):
    t0 = time.perf_counter()
    result = uber_sweep(device, pitch_ratios=DENSE_RATIOS, seed=0,
                        **kwargs)
    return time.perf_counter() - t0, result


def _record_scaling(t_serial, t_distributed, speedup, n_points):
    """Merge the sweep scaling point into BENCH_memsys.json."""
    path = _bench_out_path()
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        payload = {"bench": "memsys_engine", "trajectory": []}
    cpus = _usable_cpus()
    from repro.memsys.backends import resolve_backend
    payload["sweep_scaling"] = {
        "executor": "distributed",
        "workers": WORKERS,
        # The engine backend the point was measured with (numba when
        # REPRO_ENGINE_BACKEND selects it and the JIT is importable,
        # else the numpy reference) — numbers from different backends
        # are different experiments and must not be compared silently.
        "backend": resolve_backend(None).name,
        "n_points": n_points,
        "serial_s": round(t_serial, 4),
        "distributed_s": round(t_distributed, 4),
        "speedup": round(speedup, 2),
        "floor": SPEEDUP_FLOOR,
        "cpus": cpus,
        # A speedup measured while the workers time-slice one core
        # says nothing about scaling — flag it so readers (and future
        # re-records on multi-core runners) don't compare apples to
        # time-sliced oranges.
        "single_core": cpus < 2,
    }
    if cpus < 2:
        payload["sweep_scaling"]["note"] = (
            f"measured on {cpus} CPU(s): {WORKERS} workers "
            "time-sliced a single core, so the speedup is not a "
            "scaling datum; re-record on a >=2-core runner")
    payload.setdefault("trajectory", []).append(
        {"bench": "sweep", "executor": "distributed",
         "workers": WORKERS, "n_points": n_points,
         "seconds": round(t_distributed, 4),
         "points_per_s": round(n_points / t_distributed, 1)})
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}")


@pytest.fixture(scope="module")
def device():
    return MTJDevice(PAPER_EVAL_DEVICE)


def test_distributed_sweep_speedup_vs_serial(device):
    """>= 2x with 4 workers on the dense default grid, tables equal."""
    t_serial, serial = _timed_sweep(device)
    t_distributed, distributed = _timed_sweep(
        device, executor="distributed", jobs=WORKERS)
    n_points = serial.extras["sweep"]["n_points"]
    speedup = t_serial / t_distributed
    # Record first: a failed floor must still leave the artifact.
    _record_scaling(t_serial, t_distributed, speedup, n_points)
    print(f"\n{n_points}-point dense pitch sweep: serial "
          f"{t_serial:.2f}s, distributed({WORKERS}) "
          f"{t_distributed:.2f}s -> {speedup:.2f}x")

    # Determinism is asserted unconditionally — the distributed run
    # must be byte-identical to serial at bench scale too.
    assert distributed.rows == serial.rows
    assert distributed.extras["uber"] == serial.extras["uber"]
    assert serial.all_passed, [
        c.metric for c in serial.comparisons if not c.passed]

    cpus = _usable_cpus()
    if cpus < WORKERS:
        # 4 workers on fewer than 4 cores time-slice; the 2x floor is
        # only a fair bar when every worker has a core (CI's runners
        # do). The measurement above is recorded either way.
        pytest.skip(f"only {cpus} CPU(s) visible for {WORKERS} "
                    f"workers: the {SPEEDUP_FLOOR}x floor needs a "
                    f"core per worker (measured {speedup:.2f}x, "
                    f"recorded)")
    assert speedup >= SPEEDUP_FLOOR, (
        f"distributed executor only {speedup:.2f}x over serial "
        f"(floor {SPEEDUP_FLOOR}x with {WORKERS} workers on "
        f"{cpus} CPUs)")


def test_work_stealing_schedule_has_small_tail(device):
    """The guided schedule front-loads big chunks and thins the tail —
    the property that lets fast workers absorb a slow worker's share."""
    from repro.sweep import schedule_chunks
    n_points = len(DENSE_RATIOS) * 6
    bounds = schedule_chunks(n_points, WORKERS)
    sizes = [stop - start for start, stop in bounds]
    assert sum(sizes) == n_points
    assert sizes == sorted(sizes, reverse=True)
    # The tail chunk is tiny relative to the head: a straggler can
    # lose at most one small chunk's worth of work to rebalancing.
    assert sizes[-1] * 8 <= sizes[0]
