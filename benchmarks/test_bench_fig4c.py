"""Bench: regenerate paper Fig. 4c (Ic vs pitch under stray fields).

Times the 8-curve (2 directions x 4 cases) Ic sweep over 25 pitches and
asserts the 57.2 / 61.7 / 52.8 uA anchors of Section V-A.
"""

from repro.experiments import fig4c


def test_fig4c_ic_vs_pitch(figure_bench):
    result = figure_bench(fig4c.run)
    anchors = result.extras["anchors_ua"]
    assert abs(anchors["ic0"] - 57.2) < 0.3
