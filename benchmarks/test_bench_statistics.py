"""Benches for the pattern statistics, retention map, and optimizer."""

import numpy as np
import pytest

from repro.apps import WriteVoltageOptimizer
from repro.arrays import (
    InterCellCoupling,
    pattern_field_distribution,
    retention_map,
)
from repro.arrays.pattern import random_pattern
from repro.arrays.statistics import expected_retention_failure_rate
from repro.device import MTJDevice, PAPER_EVAL_DEVICE
from repro.stack import build_reference_stack


@pytest.fixture(scope="module")
def device():
    return MTJDevice(PAPER_EVAL_DEVICE)


def test_pattern_distribution(benchmark):
    coupling = InterCellCoupling(build_reference_stack(55e-9), 90e-9)
    coupling.kernels()

    dist = benchmark(pattern_field_distribution, coupling, 0.5)
    assert sum(dist.probabilities) == pytest.approx(1.0)


def test_data_aware_retention_rate(benchmark, device):
    rate = benchmark.pedantic(
        lambda: expected_retention_failure_rate(
            device, 52.5e-9, 1e6),
        rounds=3, iterations=1)
    assert rate > 0


def test_retention_map_24x24(benchmark, device):
    bits = random_pattern(24, 24, rng=2).bits

    rmap = benchmark.pedantic(
        lambda: retention_map(device, 70e-9, bits),
        rounds=3, iterations=1)
    assert np.isfinite(rmap.delta[1:-1, 1:-1]).all()


def test_voltage_optimization(benchmark, device):
    optimizer = WriteVoltageOptimizer(device)
    h = device.intra_stray_field()

    v_opt = benchmark.pedantic(
        lambda: optimizer.optimal_voltage(20e-9, h),
        rounds=3, iterations=1)
    assert 0.8 < v_opt < 1.6
