"""Benches for the extended-neighborhood model and the fast array map.

Also regenerates the two extension experiments (truncation-error budget
and WER pulse sizing) the repository adds beyond the paper's figures.
"""

import numpy as np
import pytest

from repro.arrays import ExtendedNeighborhood, fast_array_field_map
from repro.arrays.pattern import random_pattern
from repro.device import MTJDevice, PAPER_EVAL_DEVICE
from repro.experiments import ext_neighborhood, ext_wer
from repro.stack import build_reference_stack


def test_extended_kernels_5x5(benchmark):
    stack = build_reference_stack(55e-9)

    def build():
        return ExtendedNeighborhood(stack, 90e-9, order=2).kernels()

    kernels = benchmark.pedantic(build, rounds=3, iterations=1)
    assert len(kernels) == 24


def test_fast_map_128x128(benchmark):
    device = MTJDevice(PAPER_EVAL_DEVICE)
    bits = random_pattern(128, 128, rng=1).bits

    def run():
        return fast_array_field_map(device, 70e-9, bits, order=1)

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    assert np.isfinite(out[1:-1, 1:-1]).all()


def test_ext_neighborhood_experiment(figure_bench):
    result = figure_bench(ext_neighborhood.run, rounds=2)
    # Headline: the 3x3 window misses a material fraction of the
    # variation at the paper's design point.
    trunc = result.extras["truncation_by_pitch"][90.0]
    assert 0.1 < trunc < 0.4


def test_ext_wer_experiment(figure_bench):
    result = figure_bench(ext_wer.run)
    penalties = result.extras["penalties_ns"]
    assert penalties[1.5] > penalties[3.0]
