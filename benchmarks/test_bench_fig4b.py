"""Bench: regenerate paper Fig. 4b (Psi vs pitch, three device sizes).

Times 3 x 40 pitch evaluations of the coupling factor plus three bisection
threshold searches, and asserts the Psi = 2 % -> ~80 nm anchor.
"""

from repro.experiments import fig4b


def test_fig4b_psi_sweep(figure_bench):
    result = figure_bench(fig4b.run, rounds=2)
    thresholds = result.extras["thresholds_nm"]
    assert 70.0 < thresholds[35.0] < 90.0
