"""Ablation benches for the modeling choices DESIGN.md calls out.

Three ablations, each timing the variants and asserting the accuracy
relationship that justifies the default:

* sub-loop (solenoid) discretization of thick layers vs midplane lumping,
* analytic elliptic-integral loop field vs discrete Biot-Savart at equal
  accuracy,
* FL-center field evaluation vs disk-averaged evaluation (the paper
  calibrates at the center; the ablation quantifies what averaging would
  change).
"""

import numpy as np
import pytest

from repro.fields import (
    LoopCollection,
    disk_average,
    layer_to_loops,
    loop_field_analytic,
    loop_field_biot_savart,
)
from repro.stack import build_reference_stack
from repro.units import am_to_oe


@pytest.fixture(scope="module")
def stack():
    return build_reference_stack(35e-9)


class TestSubloopAblation:
    def _center_field(self, stack, n_sub):
        loops = []
        for layer in stack.fixed_layers():
            loops.extend(layer_to_loops(layer, stack.radius,
                                        n_sub=n_sub))
        return LoopCollection(loops).field((0.0, 0.0, 0.0))[2]

    def test_lumped_vs_solenoid_accuracy(self, stack, benchmark):
        reference = self._center_field(stack, 64)
        lumped = self._center_field(stack, 1)
        default = benchmark(self._center_field, stack, None or 8)
        err_lumped = abs(lumped - reference)
        err_default = abs(default - reference)
        # The default discretization must reduce the lumping error by
        # at least 10x; report the numbers for the record.
        print(f"\ncenter field: reference={am_to_oe(reference):.2f} Oe, "
              f"lumped err={am_to_oe(err_lumped):.3f} Oe, "
              f"8-subloop err={am_to_oe(err_default):.4f} Oe")
        assert err_default < 0.1 * err_lumped


class TestSolverAblation:
    def test_biot_savart_segments_for_analytic_accuracy(self, benchmark,
                                                        stack):
        """How many segments does the discrete solver need to match the
        analytic solution to 0.1 %? (And how much slower is it there?)"""
        point = np.array([20e-9, 11e-9, 4e-9])
        exact = loop_field_analytic(1.5e-3, stack.radius, point)

        needed = None
        for n in (30, 60, 120, 240, 480):
            approx = loop_field_biot_savart(1.5e-3, stack.radius, point,
                                            n_segments=n)
            rel = (np.linalg.norm(approx - exact)
                   / np.linalg.norm(exact))
            if rel < 1e-3:
                needed = n
                break
        assert needed is not None, "discrete solver failed to converge"
        print(f"\nsegments needed for 0.1% accuracy: {needed}")

        result = benchmark(loop_field_biot_savart, 1.5e-3, stack.radius,
                           point, needed)
        assert np.all(np.isfinite(result))


class TestEvaluationPointAblation:
    def test_center_vs_disk_average(self, benchmark, stack):
        """The paper calibrates at the FL center; the disk-averaged field
        is systematically weaker (the profile peaks at the center,
        Fig. 3d). Quantify the ratio and time the averaged evaluation."""
        loops = []
        for layer in stack.fixed_layers():
            loops.extend(layer_to_loops(layer, stack.radius))
        collection = LoopCollection(loops)

        center = collection.field((0.0, 0.0, 0.0))[2]
        averaged = benchmark(
            disk_average, collection.field, stack.radius * 0.95, 8, 16,
            0.0)[2]
        ratio = averaged / center
        print(f"\ncenter={am_to_oe(center):.1f} Oe, "
              f"disk avg={am_to_oe(averaged):.1f} Oe, ratio={ratio:.3f}")
        assert 0.3 < ratio < 1.0
