"""Benchmark-suite configuration.

Every figure bench regenerates one paper figure end to end inside the
benchmark timer, asserts the reproduction criteria, and prints the headline
series (visible with ``pytest -s``).
"""

from __future__ import annotations

import os

import pytest


def pytest_collection_modifyitems(items):
    """Tag benchmark items with the ``bench`` marker.

    The tier-1 suite (`python -m pytest`) collects ``tests/`` only (see
    ``pyproject.toml``); the marker lets `-m bench` select or deselect
    the benchmark suite when both paths are given explicitly. The hook
    receives the whole session's items, so guard on the path — marking
    everything would deselect the tier-1 suite under `-m "not bench"`.
    """
    bench_dir = os.path.dirname(__file__)
    for item in items:
        if str(item.path).startswith(bench_dir + os.sep):
            item.add_marker(pytest.mark.bench)


@pytest.fixture(autouse=True)
def isolated_kernel_store(monkeypatch):
    """Give every bench a cold, memory-only process-wide kernel store.

    The store is process-wide by design, so without this reset a bench
    that runs after another would time warm lookups (and read polluted
    hit/miss stats) instead of the cold-start behavior it claims to
    measure. Disk backing is stripped too: an operator's
    ``REPRO_KERNEL_CACHE`` must not turn a cold-path bench into a disk
    read. Benches that want a warm store warm it themselves.
    """
    from repro.arrays.kernel_store import get_kernel_store
    monkeypatch.delenv("REPRO_KERNEL_CACHE", raising=False)
    store = get_kernel_store()
    store.detach_disk()
    store.clear()
    yield store
    store.clear()


def print_result(result, max_rows=8):
    """Print an experiment's headline table and comparisons."""
    from repro.experiments import render
    print()
    print(render(result, max_rows=max_rows, plot=False))


@pytest.fixture
def figure_bench(benchmark):
    """Run a figure generator under the benchmark timer (few rounds).

    Returns the ExperimentResult of the last round after asserting that
    every paper-vs-measured criterion passed.
    """

    def run(generator, rounds=3, **kwargs):
        result = benchmark.pedantic(
            lambda: generator(**kwargs), rounds=rounds, iterations=1)
        assert result.all_passed, [
            c.metric for c in result.comparisons if not c.passed]
        print_result(result)
        return result

    return run
