"""Physical constants used throughout the library.

All values are CODATA-2018 SI values. The library computes internally in SI
units; see :mod:`repro.units` for conversions to the practical CGS units
(Oe, emu/cc) used by the paper.
"""

from __future__ import annotations

import math

#: Vacuum permeability ``mu_0`` [T*m/A].
MU0 = 4.0e-7 * math.pi

#: Elementary charge ``e`` [C].
ELEMENTARY_CHARGE = 1.602176634e-19

#: Reduced Planck constant ``hbar`` [J*s].
HBAR = 1.054571817e-34

#: Boltzmann constant ``k_B`` [J/K].
BOLTZMANN = 1.380649e-23

#: Bohr magneton ``mu_B`` [J/T].
BOHR_MAGNETON = 9.2740100783e-24

#: Gyromagnetic ratio of the electron ``gamma`` [rad/(s*T)].
GYROMAGNETIC_RATIO = 1.76085963023e11

#: Euler--Mascheroni constant ``C`` (appears in Sun's switching-time model).
EULER_GAMMA = 0.5772156649015329

#: Default thermal-activation attempt frequency ``f_0`` [Hz].
#:
#: The conventional value for perpendicular MTJ free layers; enters the
#: Neel--Arrhenius retention model and the swept-field switching model.
ATTEMPT_FREQUENCY = 1.0e9

#: Absolute zero offset: T[K] = T[degC] + ZERO_CELSIUS.
ZERO_CELSIUS = 273.15

#: Room temperature used by the paper for device parameters [K] (25 degC).
ROOM_TEMPERATURE = 298.15
