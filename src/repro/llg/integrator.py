"""Stochastic Heun integrator for the LLGS equation.

The Heun (predictor-corrector) scheme converges to the Stratonovich
interpretation of the stochastic LLG equation, which is the physically
correct one for the thermal field (Garcia-Palacios & Lazaro, PRB 58, 1998).
Each step draws one thermal field realization, used in both the predictor
and the corrector stage, and renormalizes ``|m| = 1`` afterwards.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..validation import require_positive
from .macrospin import effective_field, llgs_rhs
from .thermal_field import sample_thermal_field


class HeunIntegrator:
    """Integrates an ensemble of macrospins through time.

    Parameters
    ----------
    params:
        :class:`~repro.llg.macrospin.MacrospinParameters`.
    dt:
        Time step [s]. Should resolve the precession period
        ``2 pi / (gamma mu0 Hk)`` by a factor >~ 50.
    h_applied:
        Constant applied/stray field [A/m], shape (3,) (optional).
    a_j:
        Slonczewski torque amplitude [A/m] (0 for no current).
    thermal:
        Include the thermal fluctuation field.
    """

    def __init__(self, params, dt, h_applied=None, a_j=0.0, thermal=True):
        require_positive(dt, "dt")
        self.params = params
        self.dt = float(dt)
        self.h_applied = (None if h_applied is None
                          else np.asarray(h_applied, dtype=float))
        self.a_j = float(a_j)
        self.thermal = bool(thermal)

    def _rhs(self, m, h_thermal):
        h_eff = effective_field(m, self.params.hk, self.h_applied)
        if h_thermal is not None:
            h_eff = h_eff + h_thermal
        return llgs_rhs(m, h_eff, self.params, a_j=self.a_j)

    def step(self, m, rng):
        """Advance the ensemble ``m`` (shape (..., 3)) by one time step."""
        m = np.asarray(m, dtype=float)
        h_th = None
        if self.thermal:
            h_th = sample_thermal_field(
                self.params, self.dt, rng, m.shape[:-1])

        k1 = self._rhs(m, h_th)
        m_pred = m + self.dt * k1
        m_pred /= np.linalg.norm(m_pred, axis=-1, keepdims=True)
        k2 = self._rhs(m_pred, h_th)
        m_new = m + 0.5 * self.dt * (k1 + k2)
        norm = np.linalg.norm(m_new, axis=-1, keepdims=True)
        if not np.all(np.isfinite(norm)) or np.any(norm == 0.0):
            raise SimulationError(
                "LLG state became non-finite; reduce the time step")
        return m_new / norm

    def run(self, m0, n_steps, rng, record_every=0):
        """Integrate ``n_steps`` steps from ``m0``.

        Returns the final state, and optionally a trajectory sampled every
        ``record_every`` steps (shape (n_samples, ..., 3)).
        """
        m = np.asarray(m0, dtype=float).copy()
        trajectory = []
        for i in range(int(n_steps)):
            m = self.step(m, rng)
            if record_every and (i + 1) % record_every == 0:
                trajectory.append(m.copy())
        if record_every:
            return m, np.asarray(trajectory)
        return m, None
