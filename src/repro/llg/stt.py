"""Slonczewski spin-transfer torque as an equivalent field.

The damping-like STT term of the LLGS equation is
``-gamma' a_J m x (m x p)`` with the torque amplitude expressed as a field::

    a_J = hbar * eta * I / (2 e mu0 Ms V)      [A/m]

where ``I`` is the charge current through the junction, ``eta`` the STT
efficiency and ``V`` the magnetic volume. The macrospin instability
threshold of a perpendicular layer is ``a_J = alpha * Hk``, which reproduces
the paper's Eq. 2 exactly (with the barrier identity; see
:func:`stt_critical_current` and the test suite).
"""

from __future__ import annotations

from ..constants import ELEMENTARY_CHARGE, HBAR, MU0
from ..validation import require_positive


def slonczewski_field(current, eta, ms, volume):
    """Torque amplitude ``a_J`` [A/m] for a charge current [A].

    Positive current is defined as the polarity that destabilizes the AP
    state (drives AP -> P).
    """
    require_positive(eta, "eta")
    require_positive(ms, "ms")
    require_positive(volume, "volume")
    return (HBAR * eta * current
            / (2.0 * ELEMENTARY_CHARGE * MU0 * ms * volume))


def stt_critical_current(params, hz_applied=0.0, direction="AP->P"):
    """Macrospin STT threshold current [A] for ``direction``.

    The instability condition is ``a_J = alpha * (Hk -/+ Hz)`` — a +z field
    deepens the P well and shallows the AP well. Inverting
    :func:`slonczewski_field`::

        Ic = 2 e mu0 Ms V alpha (Hk -/+ Hz) / (hbar eta)

    which equals Eq. 2 of the paper via ``mu0 Ms V Hk = 2 Delta0 kB T``.
    """
    sign = -1.0 if direction == "AP->P" else +1.0
    h_threshold = params.hk + sign * float(hz_applied)
    return (2.0 * ELEMENTARY_CHARGE * MU0 * params.ms * params.volume
            * params.alpha * h_threshold / (HBAR * params.eta))
