"""Macrospin parameters and the LLGS right-hand side.

Model
-----
The FL is a single magnetic moment ``m`` (unit vector). Its energy terms are
reduced to an effective uniaxial anisotropy field along z (``Hk`` already
contains the demagnetization correction of a thin circular film) plus any
applied/stray field. The dynamics follow the Landau-Lifshitz-Gilbert
equation with the Slonczewski torque written as an equivalent field term::

    dm/dt = -g' [ m x H + alpha m x (m x H) + a_J m x (m x p) / (...) ]

with ``g' = gamma mu0 / (1 + alpha^2)`` and the standard grouping of the
STT terms (see :func:`llgs_rhs`). Fields are in A/m throughout; ``p`` is
the spin-polarization direction (the RL magnetization, +z here).

Vectorization: all functions accept ``m`` of shape (..., 3) so whole
ensembles integrate in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import GYROMAGNETIC_RATIO, MU0, ROOM_TEMPERATURE
from ..validation import require_in_range, require_positive


@dataclass(frozen=True)
class MacrospinParameters:
    """Parameters of one macrospin free layer.

    Parameters
    ----------
    ms:
        Saturation magnetization [A/m].
    hk:
        Effective uniaxial anisotropy field [A/m] (demag folded in).
    volume:
        Magnetic volume [m^3] — sets the thermal field strength and the
        moment. Use the activation volume to align thresholds with the
        measured ``Delta0``/``Ic0``; the geometric volume gives the pure
        macrospin picture.
    alpha:
        Gilbert damping.
    eta:
        STT efficiency (spin polarization factor of Slonczewski's torque).
    temperature:
        Bath temperature [K] for the thermal field.
    """

    ms: float
    hk: float
    volume: float
    alpha: float
    eta: float
    temperature: float = ROOM_TEMPERATURE

    def __post_init__(self):
        require_positive(self.ms, "ms")
        require_positive(self.hk, "hk")
        require_positive(self.volume, "volume")
        require_positive(self.alpha, "alpha")
        require_in_range(self.eta, "eta", 0.0, 1.0, inclusive=False)
        require_positive(self.temperature, "temperature")

    @property
    def moment(self):
        """Magnetic moment [A*m^2]."""
        return self.ms * self.volume

    @property
    def delta(self):
        """Thermal stability factor of this macrospin."""
        from ..constants import BOLTZMANN
        return (0.5 * MU0 * self.ms * self.hk * self.volume
                / (BOLTZMANN * self.temperature))

    @property
    def gamma_prime(self):
        """``gamma mu0 / (1 + alpha^2)`` [m/(A s)]."""
        return GYROMAGNETIC_RATIO * MU0 / (1.0 + self.alpha * self.alpha)

    @classmethod
    def from_device(cls, device, use_activation_volume=True):
        """Build macrospin parameters from an :class:`MTJDevice`.

        With ``use_activation_volume=True`` the thermal/threshold behaviour
        matches the measured ``Delta0`` and ``Ic0`` of the device.
        """
        params = device.params
        volume = (device.activation_volume if use_activation_volume
                  else device.fl_volume)
        return cls(
            ms=device.stack.free_layer.material.ms,
            hk=params.hk,
            volume=volume,
            alpha=params.alpha,
            eta=params.eta,
            temperature=params.temperature,
        )


def effective_field(m, hk, h_applied=None):
    """Deterministic effective field [A/m] for magnetization ``m``.

    ``H_eff = Hk * mz * z_hat + H_applied``. ``m`` has shape (..., 3);
    ``h_applied`` broadcasts against it.
    """
    m = np.asarray(m, dtype=float)
    h = np.zeros_like(m)
    h[..., 2] = hk * m[..., 2]
    if h_applied is not None:
        h = h + np.asarray(h_applied, dtype=float)
    return h


def llgs_rhs(m, h_eff, params, a_j=0.0, p_direction=(0.0, 0.0, 1.0)):
    """Right-hand side ``dm/dt`` of the LLGS equation.

    Parameters
    ----------
    m:
        Magnetization unit vectors, shape (..., 3).
    h_eff:
        Effective field [A/m] including any stochastic term, shape
        broadcastable to ``m``.
    params:
        :class:`MacrospinParameters`.
    a_j:
        Slonczewski torque amplitude expressed as a field [A/m]
        (see :func:`repro.llg.stt.slonczewski_field`).
    p_direction:
        Spin-polarization unit vector (RL direction).

    Returns
    -------
    numpy.ndarray
        ``dm/dt`` [1/s], same shape as ``m``.
    """
    m = np.asarray(m, dtype=float)
    h = np.asarray(h_eff, dtype=float)
    p = np.asarray(p_direction, dtype=float)

    m_cross_h = np.cross(m, h)
    m_cross_m_cross_h = np.cross(m, m_cross_h)
    rhs = -(m_cross_h + params.alpha * m_cross_m_cross_h)
    if a_j != 0.0:
        m_cross_p = np.cross(m, np.broadcast_to(p, m.shape))
        m_cross_m_cross_p = np.cross(m, m_cross_p)
        # Slonczewski damping-like torque plus its small alpha-tilt partner.
        rhs = rhs - a_j * (m_cross_m_cross_p
                           - params.alpha * m_cross_p)
    return params.gamma_prime * rhs
