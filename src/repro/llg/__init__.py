"""Stochastic macrospin Landau-Lifshitz-Gilbert-Slonczewski solver.

The paper's switching-time results come from Sun's analytical model; this
subpackage provides an independent, lower-level cross-check: a single-domain
(macrospin) LLG solver with Slonczewski spin-transfer torque and the thermal
fluctuation field, integrated with the stochastic Heun scheme.

It validates that (i) the STT threshold current matches Eq. 2 and (ii) the
inverse switching time grows linearly with the overdrive current in the
precessional regime, the functional form behind Eq. 3.
"""

from .field_switching import (
    astroid_switching_field,
    simulate_switching_field,
)
from .integrator import HeunIntegrator
from .macrospin import MacrospinParameters, effective_field, llgs_rhs
from .multispin import FLGrid, MultiMacrospinFL, make_fl_grid
from .simulate import (
    SwitchingResult,
    SwitchingSimulation,
    equilibrium_ensemble,
    relax,
)
from .stt import slonczewski_field, stt_critical_current
from .thermal_field import thermal_field_sigma

__all__ = [
    "FLGrid",
    "HeunIntegrator",
    "MacrospinParameters",
    "MultiMacrospinFL",
    "make_fl_grid",
    "SwitchingResult",
    "SwitchingSimulation",
    "astroid_switching_field",
    "simulate_switching_field",
    "effective_field",
    "equilibrium_ensemble",
    "llgs_rhs",
    "relax",
    "slonczewski_field",
    "stt_critical_current",
    "thermal_field_sigma",
]
