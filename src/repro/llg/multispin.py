"""Micromagnetic-lite free layer: a grid of exchange-coupled macrospins.

The paper's Fig. 3d shows the intra-cell stray field is *not* uniform
over the FL cross-section; Wang et al. [10] report that this non-uniform
profile changes switching via micromagnetic simulation. The single-
macrospin model cannot see position dependence; this module discretizes
the FL disk into a square grid of macrospin cells coupled by the exchange
field

``H_ex,i = (2 A_ex / (mu0 Ms a^2)) * sum_j (m_j - m_i)``

(nearest neighbors j, cell size ``a``, exchange stiffness ``A_ex``), with
each cell seeing the *local* stray field sampled from the coupling model.
It is not a replacement for OOMMF/mumax3 — it is the smallest model that
can express the paper's non-uniformity observation dynamically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import GYROMAGNETIC_RATIO, MU0
from ..errors import ParameterError, SimulationError
from ..validation import require_int_in_range, require_positive
from .macrospin import MacrospinParameters
from .stt import slonczewski_field
from .thermal_field import thermal_field_sigma

#: Typical CoFeB exchange stiffness [J/m].
DEFAULT_EXCHANGE_STIFFNESS = 1.5e-11


@dataclass(frozen=True)
class FLGrid:
    """Discretization of the FL disk into macrospin cells.

    Attributes
    ----------
    positions:
        (N, 2) cell-center coordinates [m] (cells inside the disk).
    cell_size:
        Grid spacing [m].
    neighbors:
        Tuple of (i, j) index pairs of nearest-neighbor cells.
    """

    positions: np.ndarray
    cell_size: float
    neighbors: tuple

    @property
    def n_cells(self):
        """Number of cells."""
        return self.positions.shape[0]


def make_fl_grid(radius, n_across=7):
    """Discretize a disk of ``radius`` into an ``n_across``-wide grid."""
    require_positive(radius, "radius")
    n_across = require_int_in_range(n_across, "n_across", 2, 64)
    cell = 2.0 * radius / n_across
    coords = (np.arange(n_across) + 0.5) * cell - radius
    inside = []
    index_of = {}
    for iy, y in enumerate(coords):
        for ix, x in enumerate(coords):
            if math.hypot(x, y) <= radius - 0.5 * cell * 0.0:
                if math.hypot(x, y) <= radius:
                    index_of[(ix, iy)] = len(inside)
                    inside.append((x, y))
    neighbors = []
    for (ix, iy), i in index_of.items():
        for dx, dy in ((1, 0), (0, 1)):
            j = index_of.get((ix + dx, iy + dy))
            if j is not None:
                neighbors.append((i, j))
    if not inside:
        raise ParameterError("grid too coarse: no cell inside the disk")
    return FLGrid(positions=np.asarray(inside, dtype=float),
                  cell_size=cell, neighbors=tuple(neighbors))


class MultiMacrospinFL:
    """Exchange-coupled macrospin grid with a position-dependent field.

    Parameters
    ----------
    params:
        Per-cell :class:`MacrospinParameters`; ``volume`` is overridden
        by the cell volume (cell_size^2 * thickness).
    grid:
        :class:`FLGrid` of the FL disk.
    thickness:
        FL thickness [m].
    hz_profile:
        Callable ``(N, 2) positions -> (N,) Hz`` giving the local stray
        field [A/m]; None means zero.
    exchange_stiffness:
        ``A_ex`` [J/m].
    """

    def __init__(self, params, grid, thickness,
                 hz_profile=None,
                 exchange_stiffness=DEFAULT_EXCHANGE_STIFFNESS):
        if not isinstance(params, MacrospinParameters):
            raise ParameterError(
                f"params must be MacrospinParameters, got {type(params)!r}")
        require_positive(thickness, "thickness")
        require_positive(exchange_stiffness, "exchange_stiffness")
        self.grid = grid
        self.thickness = float(thickness)
        cell_volume = grid.cell_size ** 2 * self.thickness
        self.params = MacrospinParameters(
            ms=params.ms, hk=params.hk, volume=cell_volume,
            alpha=params.alpha, eta=params.eta,
            temperature=params.temperature)
        self.exchange_field_scale = (
            2.0 * exchange_stiffness
            / (MU0 * params.ms * grid.cell_size ** 2))
        if hz_profile is None:
            self.hz_local = np.zeros(grid.n_cells)
        else:
            self.hz_local = np.asarray(hz_profile(grid.positions),
                                       dtype=float)
            if self.hz_local.shape != (grid.n_cells,):
                raise ParameterError(
                    "hz_profile must return one Hz per grid cell")
        # Vectorized exchange bookkeeping.
        if grid.neighbors:
            pairs = np.asarray(grid.neighbors, dtype=np.intp)
            self._nb_i = pairs[:, 0]
            self._nb_j = pairs[:, 1]
        else:
            self._nb_i = np.empty(0, dtype=np.intp)
            self._nb_j = np.empty(0, dtype=np.intp)

    @property
    def total_critical_current(self):
        """STT threshold [A] of the whole grid (geometric volume)."""
        from ..constants import ELEMENTARY_CHARGE, HBAR
        total_volume = self.params.volume * self.grid.n_cells
        return (2.0 * ELEMENTARY_CHARGE * MU0 * self.params.ms
                * total_volume * self.params.alpha * self.params.hk
                / (HBAR * self.params.eta))

    def effective_field(self, m):
        """Per-cell effective field [A/m]: anisotropy + local + exchange."""
        h = np.zeros_like(m)
        h[:, 2] = self.params.hk * m[:, 2] + self.hz_local
        if self._nb_i.size:
            diff = self.exchange_field_scale * (m[self._nb_j]
                                                - m[self._nb_i])
            np.add.at(h, self._nb_i, diff)
            np.subtract.at(h, self._nb_j, diff)
        return h

    def step(self, m, dt, rng=None, a_j=0.0):
        """One Heun step of the coupled system; returns the new state."""
        require_positive(dt, "dt")
        gamma_prime = self.params.gamma_prime
        alpha = self.params.alpha

        h_th = 0.0
        if rng is not None:
            sigma = thermal_field_sigma(self.params, dt)
            h_th = sigma * rng.standard_normal(m.shape)

        def rhs(state):
            h = self.effective_field(state) + h_th
            mxh = np.cross(state, h)
            mxmxh = np.cross(state, mxh)
            out = -(mxh + alpha * mxmxh)
            if a_j != 0.0:
                p = np.array([0.0, 0.0, 1.0])
                mxp = np.cross(state, np.broadcast_to(p, state.shape))
                mxmxp = np.cross(state, mxp)
                out -= a_j * (mxmxp - alpha * mxp)
            return gamma_prime * out

        k1 = rhs(m)
        pred = m + dt * k1
        pred /= np.linalg.norm(pred, axis=1, keepdims=True)
        k2 = rhs(pred)
        new = m + 0.5 * dt * (k1 + k2)
        norm = np.linalg.norm(new, axis=1, keepdims=True)
        if not np.all(np.isfinite(norm)):
            raise SimulationError("multispin state became non-finite")
        return new / norm

    def uniform_state(self, mz=1.0):
        """All cells aligned along ``mz`` = +/-1."""
        m = np.zeros((self.grid.n_cells, 3))
        m[:, 2] = float(np.sign(mz))
        return m

    def average_mz(self, m):
        """Volume-averaged mz (all cells equal volume)."""
        return float(np.mean(m[:, 2]))

    def default_time_step(self, resolution=60.0):
        """A step resolving the fastest precession in the system.

        The stiffest mode precesses in the anisotropy field *plus* the
        exchange field of up to 4 fully-misaligned neighbors; for fine
        grids the exchange term dominates and a step based on ``Hk``
        alone is unstable.
        """
        h_max = (self.params.hk + 4.0 * self.exchange_field_scale
                 + float(np.max(np.abs(self.hz_local), initial=0.0)))
        period = 2.0 * math.pi / (GYROMAGNETIC_RATIO * MU0 * h_max)
        return period / resolution

    def switch(self, current, max_time=60e-9, dt=None, rng=None,
               threshold=0.5, initial_mz=-1.0):
        """Drive the grid with an STT current until net reversal.

        ``current`` is the total junction current [A], shared equally by
        the cells. Returns the switching time [s] or None.
        """
        if dt is None:
            dt = self.default_time_step()
        rng = np.random.default_rng(rng)
        per_cell = current / self.grid.n_cells
        a_j = slonczewski_field(per_cell, self.params.eta,
                                self.params.ms, self.params.volume)
        m = self.uniform_state(initial_mz)
        # Thermal tilt to break the symmetric stall.
        m[:, 0] += 0.02 * rng.standard_normal(self.grid.n_cells)
        m /= np.linalg.norm(m, axis=1, keepdims=True)

        n_steps = int(math.ceil(max_time / dt))
        target = -float(initial_mz)
        for step_idx in range(n_steps):
            m = self.step(m, dt, rng=rng, a_j=a_j)
            if target * self.average_mz(m) >= threshold:
                return (step_idx + 1) * dt
        return None
