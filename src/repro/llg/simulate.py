"""High-level stochastic LLG simulations.

Provides ensemble switching-time simulation (the LLG counterpart of Sun's
``tw``), relaxation runs, and equilibrium sampling used by the
fluctuation-dissipation tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..constants import GYROMAGNETIC_RATIO, MU0
from ..errors import ParameterError, SimulationError
from ..validation import require_int_in_range, require_positive
from .integrator import HeunIntegrator
from .stt import slonczewski_field


def default_time_step(params, resolution=60.0):
    """A time step resolving the precession period by ``resolution``."""
    period = 2.0 * math.pi / (GYROMAGNETIC_RATIO * MU0 * params.hk)
    return period / resolution


def thermal_initial_tilt(params, rng, n, around=-1.0):
    """Initial states tilted thermally around ``mz = around``.

    Draws transverse components from the equilibrium Gaussian
    ``<mx^2> = 1/(2 Delta)`` — the standard way to seed STT switching runs
    (a perfectly aligned macrospin feels zero torque).
    """
    sigma = math.sqrt(1.0 / (2.0 * params.delta))
    mx = sigma * rng.standard_normal(n)
    my = sigma * rng.standard_normal(n)
    mz = np.sign(around) * np.sqrt(np.clip(1.0 - mx**2 - my**2, 0.0, 1.0))
    return np.stack([mx, my, mz], axis=-1)


@dataclass
class SwitchingResult:
    """Outcome of an ensemble switching simulation.

    Attributes
    ----------
    times:
        Switching times [s] of the runs that switched.
    n_runs:
        Ensemble size.
    n_switched:
        How many runs crossed the detection threshold.
    """

    times: np.ndarray
    n_runs: int
    n_switched: int

    @property
    def switched_fraction(self):
        """Fraction of the ensemble that switched."""
        return self.n_switched / self.n_runs

    @property
    def mean_time(self):
        """Mean switching time [s] over the switched runs."""
        if self.n_switched == 0:
            raise SimulationError("no run switched; cannot average")
        return float(np.mean(self.times))

    @property
    def std_time(self):
        """Standard deviation of the switching time [s]."""
        if self.n_switched == 0:
            raise SimulationError("no run switched; cannot average")
        return float(np.std(self.times))


class SwitchingSimulation:
    """STT switching of an ensemble of macrospins.

    Parameters
    ----------
    params:
        :class:`~repro.llg.macrospin.MacrospinParameters`.
    current:
        Charge current [A]; positive drives AP -> P.
    hz_applied:
        Constant out-of-plane stray/applied field [A/m].
    dt:
        Time step [s] (default: precession period / 60).
    thermal:
        Include the thermal field (default True).
    """

    def __init__(self, params, current, hz_applied=0.0, dt=None,
                 thermal=True):
        self.params = params
        self.current = float(current)
        self.hz_applied = float(hz_applied)
        self.dt = default_time_step(params) if dt is None else float(dt)
        require_positive(self.dt, "dt")
        self.thermal = thermal

    def _integrator(self):
        a_j = slonczewski_field(
            self.current, self.params.eta, self.params.ms,
            self.params.volume)
        h_applied = np.array([0.0, 0.0, self.hz_applied])
        return HeunIntegrator(self.params, self.dt, h_applied=h_applied,
                              a_j=a_j, thermal=self.thermal)

    def run(self, n_runs=64, max_time=100.0e-9, threshold=0.5, rng=None,
            initial_mz=-1.0):
        """Integrate ``n_runs`` macrospins until they cross ``threshold``.

        Parameters
        ----------
        n_runs:
            Ensemble size.
        max_time:
            Simulation horizon [s]; runs that have not switched by then are
            counted as not switched.
        threshold:
            ``mz`` crossing that defines a switch (sign opposite to
            ``initial_mz``).
        rng:
            Seed or :class:`numpy.random.Generator`.
        initial_mz:
            -1 starts in AP (current drives AP->P), +1 starts in P.

        Returns
        -------
        SwitchingResult
        """
        n_runs = require_int_in_range(n_runs, "n_runs", 1, 1_000_000)
        require_positive(max_time, "max_time")
        if initial_mz not in (-1.0, 1.0, -1, 1):
            raise ParameterError(
                f"initial_mz must be -1 or +1, got {initial_mz!r}")
        rng = np.random.default_rng(rng)

        integrator = self._integrator()
        m = thermal_initial_tilt(self.params, rng, n_runs,
                                 around=float(initial_mz))
        n_steps = int(math.ceil(max_time / self.dt))
        switch_step = np.full(n_runs, -1, dtype=np.int64)
        active = np.ones(n_runs, dtype=bool)
        target_sign = -float(initial_mz)

        for step in range(n_steps):
            if not np.any(active):
                break
            m[active] = integrator.step(m[active], rng)
            crossed = active & (target_sign * m[:, 2] >= threshold)
            switch_step[crossed] = step + 1
            active &= ~crossed

        switched = switch_step > 0
        times = switch_step[switched].astype(float) * self.dt
        return SwitchingResult(times=times, n_runs=n_runs,
                               n_switched=int(np.sum(switched)))


def relax(params, m0, duration, rng=None, hz_applied=0.0, thermal=False,
          dt=None):
    """Relax a state for ``duration`` seconds (no current).

    Returns the final magnetization; with ``thermal=False`` this shows the
    deterministic damped motion toward the easy axis.
    """
    require_positive(duration, "duration")
    dt = default_time_step(params) if dt is None else float(dt)
    rng = np.random.default_rng(rng)
    integrator = HeunIntegrator(
        params, dt, h_applied=np.array([0.0, 0.0, float(hz_applied)]),
        a_j=0.0, thermal=thermal)
    n_steps = int(math.ceil(duration / dt))
    m, _ = integrator.run(np.asarray(m0, dtype=float), n_steps, rng)
    return m


def equilibrium_ensemble(params, n_samples=512, burn_in_time=2.0e-9,
                         sample_time=2.0e-9, n_snapshots=8, rng=None,
                         dt=None, around=1.0):
    """Sample thermal-equilibrium magnetizations around one easy direction.

    Runs ``n_samples`` independent macrospins with the thermal field only,
    discards ``burn_in_time``, then collects ``n_snapshots`` snapshots over
    ``sample_time``. Returns an array of shape
    (n_snapshots * n_samples, 3) for statistics such as the equipartition
    check ``<mx^2> = 1/(2 Delta)``.
    """
    rng = np.random.default_rng(rng)
    dt = default_time_step(params) if dt is None else float(dt)
    integrator = HeunIntegrator(params, dt, thermal=True)

    m = thermal_initial_tilt(params, rng, n_samples, around=around)
    burn_steps = int(math.ceil(burn_in_time / dt))
    m, _ = integrator.run(m, burn_steps, rng)

    snapshots = []
    steps_between = max(1, int(math.ceil(sample_time / dt / n_snapshots)))
    for _ in range(n_snapshots):
        m, _ = integrator.run(m, steps_between, rng)
        snapshots.append(m.copy())
    return np.concatenate(snapshots, axis=0)
