"""Thermal fluctuation field for the stochastic LLG equation.

Brown's fluctuation-dissipation result: the thermal field is white Gaussian
noise per Cartesian component with

``sigma_H = sqrt( 2 alpha kB T / (gamma mu0^2 Ms V dt) )``   [A/m]

for a discrete time step ``dt``. The equipartition test in the test suite
verifies the prefactor: in equilibrium the transverse components satisfy
``<mx^2> = <my^2> = 1 / (2 Delta)`` for ``Delta >> 1``.
"""

from __future__ import annotations

import math

from ..constants import BOLTZMANN, GYROMAGNETIC_RATIO, MU0
from ..validation import require_positive


def thermal_field_sigma(params, dt):
    """Standard deviation [A/m] of each thermal-field component.

    Parameters
    ----------
    params:
        :class:`~repro.llg.macrospin.MacrospinParameters`.
    dt:
        Integration time step [s].
    """
    require_positive(dt, "dt")
    numerator = 2.0 * params.alpha * BOLTZMANN * params.temperature
    denominator = (GYROMAGNETIC_RATIO * MU0 * MU0 * params.ms
                   * params.volume * dt)
    return math.sqrt(numerator / denominator)


def sample_thermal_field(params, dt, rng, shape):
    """Draw thermal field vectors of ``shape + (3,)`` [A/m]."""
    sigma = thermal_field_sigma(params, dt)
    return sigma * rng.standard_normal(tuple(shape) + (3,))
