"""Field-driven switching of a macrospin: the Stoner-Wohlfarth model.

The hysteresis module's barrier law ``Delta0 (1 - H/Hk)^2`` assumes a
field aligned with the easy axis; the general zero-temperature switching
threshold of a uniaxial macrospin follows the Stoner-Wohlfarth astroid::

    h_sw(psi) = (cos(psi)^(2/3) + sin(psi)^(2/3))^(-3/2)

where ``psi`` is the angle between the applied field and the easy axis
and ``h_sw`` is in units of ``Hk``. This module provides the astroid and
an LLG-based numerical switching-field finder used to validate both the
astroid and the hysteresis model's use of ``Hk`` as the aligned-field
threshold.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ParameterError, SimulationError
from ..validation import require_in_range, require_positive
from .integrator import HeunIntegrator
from .simulate import default_time_step


def astroid_switching_field(psi, hk):
    """Stoner-Wohlfarth switching field [A/m] at field angle ``psi``.

    ``psi`` is the angle [rad] between the applied field and the easy
    axis, in (0, pi/2]; the aligned case (psi -> 0) gives ``Hk`` and the
    45-degree case gives ``Hk / 2``. Vectorized over ``psi``.
    """
    require_positive(hk, "hk")
    psi_arr = np.asarray(psi, dtype=float)
    if np.any((psi_arr < 0) | (psi_arr > math.pi / 2)):
        raise ParameterError("psi must lie in [0, pi/2]")
    c = np.abs(np.cos(psi_arr)) ** (2.0 / 3.0)
    s = np.abs(np.sin(psi_arr)) ** (2.0 / 3.0)
    h = hk * (c + s) ** (-1.5)
    if np.isscalar(psi) or np.asarray(psi).ndim == 0:
        return float(h)
    return h


def simulate_switching_field(params, psi, h_max_ratio=1.2, n_steps=25,
                             relax_time=3.0e-9, rng=None):
    """Numerical (zero-temperature LLG) switching field [A/m].

    Ramps the applied-field magnitude at fixed angle ``psi`` from 0 to
    ``h_max_ratio * Hk``, relaxing the magnetization at each level, and
    returns the first field at which the easy-axis component flips.

    Parameters
    ----------
    params:
        :class:`~repro.llg.macrospin.MacrospinParameters`.
    psi:
        Field angle from the easy axis [rad], in (0, pi/2].
    h_max_ratio:
        Ramp ceiling in units of ``Hk``.
    n_steps:
        Number of field levels in the ramp.
    relax_time:
        Relaxation time per level [s].
    rng:
        Seed/generator (only used to break symmetric stalls).
    """
    require_in_range(psi, "psi", 1e-4, math.pi / 2)
    require_positive(relax_time, "relax_time")
    rng = np.random.default_rng(rng)
    dt = default_time_step(params)
    steps_per_level = int(math.ceil(relax_time / dt))

    # Start in the +z well; the field points into the opposite hemisphere
    # at angle psi from -z, so it eventually reverses the state.
    m = np.array([1e-3, 0.0, math.sqrt(1.0 - 1e-6)])
    levels = np.linspace(0.0, h_max_ratio * params.hk, n_steps + 1)[1:]
    for level in levels:
        h_applied = np.array([
            level * math.sin(psi), 0.0, -level * math.cos(psi)])
        integrator = HeunIntegrator(params, dt, h_applied=h_applied,
                                    thermal=False)
        m, _ = integrator.run(m, steps_per_level, rng)
        if m[2] < 0.0:
            return float(level)
    raise SimulationError(
        f"no switching up to {h_max_ratio} * Hk at psi={psi:.3f} rad; "
        "increase h_max_ratio")
