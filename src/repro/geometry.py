"""Layer and device geometry primitives.

The MTJ pillar is modeled as a stack of coaxial cylindrical layers. Each
:class:`Layer` records its vertical extent (``z_bottom``/``z_top``, in
metres, measured in the device frame where z=0 is the *free-layer midplane*)
and its role in the stack. The lateral size is shared by all layers of one
pillar and is expressed as the electrical critical diameter (eCD) of the
device.

Conventions
-----------
* +z points from the pinned layers toward the free layer and is the
  reference-layer magnetization direction (see DESIGN.md section 4).
* Layers are listed from the *top* of the pillar downward; the free layer
  sits above the tunnel barrier, the SAF below it (bottom-pinned stack as in
  the paper's Fig. 1a).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import GeometryError
from .materials import Material
from .validation import require_positive


class LayerRole(enum.Enum):
    """Functional role of a layer within the MTJ stack."""

    FREE = "free"
    BARRIER = "barrier"
    REFERENCE = "reference"
    SPACER = "spacer"
    HARD = "hard"
    CAP = "cap"


#: Roles whose layers carry a magnetic moment in the coupling model.
MAGNETIC_ROLES = (LayerRole.FREE, LayerRole.REFERENCE, LayerRole.HARD)


@dataclass(frozen=True)
class Layer:
    """One cylindrical layer of an MTJ pillar.

    Parameters
    ----------
    role:
        Functional role (:class:`LayerRole`).
    material:
        The :class:`~repro.materials.Material` of the layer.
    z_bottom, z_top:
        Vertical extent [m] in the device frame (z=0 at FL midplane).
    direction:
        Magnetization direction along z: +1, -1, or 0 for non-magnetic
        layers. The free layer's direction is its *initial/default* state;
        the dynamic state lives on the device object.
    """

    role: LayerRole
    material: Material
    z_bottom: float
    z_top: float
    direction: int = 0

    def __post_init__(self):
        if self.z_top <= self.z_bottom:
            raise GeometryError(
                f"layer {self.role.value}: z_top ({self.z_top}) must be "
                f"above z_bottom ({self.z_bottom})")
        if self.direction not in (-1, 0, 1):
            raise GeometryError(
                f"layer {self.role.value}: direction must be -1, 0 or +1, "
                f"got {self.direction!r}")
        if self.direction != 0 and not self.material.is_magnetic:
            raise GeometryError(
                f"layer {self.role.value}: non-magnetic material "
                f"{self.material.name!r} cannot have a direction")
        if self.direction == 0 and self.is_magnetic_role:
            raise GeometryError(
                f"layer {self.role.value}: magnetic layer needs direction")

    @property
    def thickness(self):
        """Layer thickness [m]."""
        return self.z_top - self.z_bottom

    @property
    def z_center(self):
        """Midplane z coordinate [m]."""
        return 0.5 * (self.z_bottom + self.z_top)

    @property
    def is_magnetic_role(self):
        """True for FL/RL/HL layers (those that source stray fields)."""
        return self.role in MAGNETIC_ROLES

    @property
    def moment_per_area(self):
        """Areal moment ``Ms * t`` [A], signed by ``direction``."""
        return self.direction * self.material.ms * self.thickness


@dataclass(frozen=True)
class PillarGeometry:
    """Lateral geometry of one MTJ pillar.

    The electrical critical diameter (eCD) is the diameter inferred from the
    parallel resistance and the RA product; it is the effective magnetic
    diameter used throughout the paper.
    """

    ecd: float

    def __post_init__(self):
        require_positive(self.ecd, "ecd")

    @property
    def radius(self):
        """Pillar radius [m]."""
        return 0.5 * self.ecd

    @property
    def area(self):
        """Pillar cross-sectional area [m^2]."""
        import math
        return math.pi * self.radius ** 2


def check_no_overlap(layers):
    """Validate that ``layers`` do not overlap vertically.

    ``layers`` may be in any order; the check sorts them by ``z_bottom``.
    Raises :class:`~repro.errors.GeometryError` on overlap.
    """
    ordered = sorted(layers, key=lambda la: la.z_bottom)
    for below, above in zip(ordered, ordered[1:]):
        if above.z_bottom < below.z_top - 1e-15:
            raise GeometryError(
                f"layers {below.role.value} and {above.role.value} overlap: "
                f"{below.z_top} > {above.z_bottom}")
    return ordered
