"""Parameter extraction from measured loops and resistances.

Implements the extraction formulas of the paper's Section III:

* ``Hc = (Hsw_p - Hsw_n) / 2``,
* ``Hoffset = (Hsw_p + Hsw_n) / 2`` with ``Hs_intra = -Hoffset``,
* ``eCD = sqrt(4/pi * RA / RP)`` from the loop's low resistance level.
"""

from __future__ import annotations

import numpy as np

from ..device.resistance import ecd_from_rp
from ..errors import MeasurementError
from ..units import am_to_oe


def extract_hc_oe(loops):
    """Mean coercivity [Oe] over an iterable of HysteresisLoop objects."""
    values = [loop.coercivity for loop in loops]
    if not values:
        raise MeasurementError("no loops given")
    return am_to_oe(float(np.mean(values)))


def extract_offset_oe(loops):
    """Mean offset field [Oe] over an iterable of loops."""
    values = [loop.offset_field for loop in loops]
    if not values:
        raise MeasurementError("no loops given")
    return am_to_oe(float(np.mean(values)))


def extract_ecd(ra, loop):
    """Device eCD [m] from its RA product [Ohm*m^2] and one loop's RP.

    The paper's method: the RA product is a wafer-level constant measured
    at blanket stage; the loop's low resistance level gives RP, and the eCD
    follows from ``RP = RA / area``.
    """
    return ecd_from_rp(ra, loop.rp)


def loop_statistics(loops):
    """Summary dict over an iterable of loops (fields in Oe).

    Keys: ``hsw_p_oe``, ``hsw_n_oe``, ``hc_oe``, ``hoffset_oe``,
    ``stray_oe`` (mean values), plus ``hsw_p_std_oe``/``hsw_n_std_oe``.
    """
    loops = list(loops)
    if not loops:
        raise MeasurementError("no loops given")
    hsw_p = np.array([loop.hsw_p for loop in loops], dtype=float)
    hsw_n = np.array([loop.hsw_n for loop in loops], dtype=float)
    if np.any(np.isnan(hsw_p)) or np.any(np.isnan(hsw_n)):
        raise MeasurementError("some loops lack switching events")
    hc = 0.5 * (hsw_p - hsw_n)
    hoffset = 0.5 * (hsw_p + hsw_n)
    return {
        "hsw_p_oe": am_to_oe(float(np.mean(hsw_p))),
        "hsw_p_std_oe": am_to_oe(float(np.std(hsw_p))),
        "hsw_n_oe": am_to_oe(float(np.mean(hsw_n))),
        "hsw_n_std_oe": am_to_oe(float(np.std(hsw_n))),
        "hc_oe": am_to_oe(float(np.mean(hc))),
        "hoffset_oe": am_to_oe(float(np.mean(hoffset))),
        "stray_oe": -am_to_oe(float(np.mean(hoffset))),
    }
