"""Repeated R-H loop measurement with cycle statistics.

The switching points of an MTJ are stochastic; the paper measures each
device repeatedly (1000 cycles for the switching-probability analysis) and
reports the device-to-device spread as error bars. :class:`RHMeasurement`
runs ``n_cycles`` simulated loops on one device and aggregates the per-cycle
extractions into an :class:`RHStatistics` record.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device.mtj import MTJDevice
from ..errors import MeasurementError, ParameterError
from ..units import am_to_oe
from ..validation import require_int_in_range


@dataclass(frozen=True)
class RHStatistics:
    """Aggregated results of repeated R-H loop measurements.

    All field statistics are stored in A/m; the ``*_oe`` properties convert
    for reporting.
    """

    hsw_p_mean: float
    hsw_p_std: float
    hsw_n_mean: float
    hsw_n_std: float
    rp: float
    rap: float
    n_cycles: int
    n_valid: int

    @property
    def hc(self):
        """Mean coercivity [A/m]."""
        return 0.5 * (self.hsw_p_mean - self.hsw_n_mean)

    @property
    def hoffset(self):
        """Mean offset field [A/m]."""
        return 0.5 * (self.hsw_p_mean + self.hsw_n_mean)

    @property
    def stray_field(self):
        """Inferred stray field at the FL [A/m] (= -Hoffset)."""
        return -self.hoffset

    @property
    def hc_oe(self):
        """Mean coercivity [Oe]."""
        return am_to_oe(self.hc)

    @property
    def hoffset_oe(self):
        """Mean offset field [Oe]."""
        return am_to_oe(self.hoffset)

    @property
    def tmr(self):
        """TMR ratio at the read voltage."""
        return self.rap / self.rp - 1.0


class RHMeasurement:
    """Runs repeated loop measurements on one device.

    Parameters
    ----------
    device:
        :class:`~repro.device.mtj.MTJDevice` under test.
    protocol:
        Optional :class:`~repro.device.hysteresis.SweepProtocol` override.
    hz_stray:
        Optional stray-field override [A/m] (defaults to the device's own
        intra-cell field, the isolated-device situation).
    """

    def __init__(self, device, protocol=None, hz_stray=None):
        if not isinstance(device, MTJDevice):
            raise ParameterError(
                f"device must be an MTJDevice, got {type(device)!r}")
        self.device = device
        self.simulator = device.rh_simulator(protocol=protocol,
                                             hz_stray=hz_stray)

    def run(self, n_cycles=25, rng=None):
        """Measure ``n_cycles`` loops; returns :class:`RHStatistics`.

        Cycles in which the device failed to complete a switching cycle
        (possible at very short sweeps) are dropped; at least one valid
        cycle is required.
        """
        n_cycles = require_int_in_range(n_cycles, "n_cycles", 1, 1_000_000)
        rng = np.random.default_rng(rng)
        hsw_p, hsw_n = [], []
        rp_values, rap_values = [], []
        for _ in range(n_cycles):
            loop = self.simulator.simulate(rng=rng)
            if loop.hsw_p is None or loop.hsw_n is None:
                continue
            hsw_p.append(loop.hsw_p)
            hsw_n.append(loop.hsw_n)
            rp_values.append(loop.rp)
            rap_values.append(loop.rap)
        if not hsw_p:
            raise MeasurementError(
                "no cycle produced a complete hysteresis loop")
        return RHStatistics(
            hsw_p_mean=float(np.mean(hsw_p)),
            hsw_p_std=float(np.std(hsw_p)),
            hsw_n_mean=float(np.mean(hsw_n)),
            hsw_n_std=float(np.std(hsw_n)),
            rp=float(np.mean(rp_values)),
            rap=float(np.mean(rap_values)),
            n_cycles=n_cycles,
            n_valid=len(hsw_p),
        )
