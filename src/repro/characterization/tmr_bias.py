"""TMR-vs-bias measurement emulation and V_half extraction.

The switching-time model needs the bias roll-off of the AP resistance
(paper Eq. 4's nonlinear ``R(Vp)``). Experimentally this comes from R-V
sweeps in both states; the standard summary parameters are the zero-bias
TMR and ``V_half``, the bias where the TMR has dropped to half. This
module emulates the measurement (with instrument noise) and fits the
``TMR(V) = TMR0 / (1 + V^2/Vh^2)`` law back out — closing the loop on the
resistance model exactly the way the R-H loop modules do for the stray
field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..device.mtj import MTJDevice
from ..errors import CalibrationError, ParameterError
from ..validation import require_fraction, require_positive


@dataclass(frozen=True)
class TmrBiasFit:
    """Result of the TMR(V) fit.

    Attributes
    ----------
    tmr0:
        Zero-bias TMR ratio.
    v_half:
        Half-TMR voltage [V].
    rmse:
        RMS residual of the TMR fit (dimensionless TMR units).
    """

    tmr0: float
    v_half: float
    rmse: float


def measure_rv_curves(device, voltages, rng=None, noise=0.005):
    """Emulated R-V measurement of both states.

    Parameters
    ----------
    device:
        :class:`~repro.device.mtj.MTJDevice`.
    voltages:
        Bias points [V] (positive; the model is bias-symmetric).
    rng:
        Seed or generator.
    noise:
        1-sigma relative resistance measurement noise.

    Returns
    -------
    (r_p, r_ap):
        Arrays of measured resistances [Ohm] per bias point.
    """
    if not isinstance(device, MTJDevice):
        raise ParameterError(
            f"device must be an MTJDevice, got {type(device)!r}")
    require_fraction(noise, "noise")
    voltages = np.asarray(voltages, dtype=float)
    if voltages.ndim != 1 or voltages.size == 0:
        raise ParameterError("voltages must be a non-empty 1-D array")
    if np.any(voltages < 0):
        raise ParameterError("voltages must be >= 0")
    rng = np.random.default_rng(rng)
    params = device.params
    r_p = np.array([params.resistance.rp(params.ecd)
                    for _ in voltages])
    r_ap = np.array([params.resistance.rap(params.ecd, float(v))
                     for v in voltages])
    r_p = r_p * (1.0 + noise * rng.standard_normal(voltages.size))
    r_ap = r_ap * (1.0 + noise * rng.standard_normal(voltages.size))
    return r_p, r_ap


def fit_tmr_bias(voltages, r_p, r_ap, v_half_guess=0.5):
    """Fit ``TMR0`` and ``V_half`` from measured R-V curves.

    Raises :class:`~repro.errors.CalibrationError` when the data cannot
    constrain the roll-off (e.g. all points at one bias).
    """
    voltages = np.asarray(voltages, dtype=float)
    r_p = np.asarray(r_p, dtype=float)
    r_ap = np.asarray(r_ap, dtype=float)
    if not (voltages.shape == r_p.shape == r_ap.shape):
        raise CalibrationError("voltages, r_p, r_ap must match in shape")
    if voltages.size < 3:
        raise CalibrationError("need at least 3 bias points")
    if np.ptp(voltages) <= 0:
        raise CalibrationError(
            "bias points are degenerate; cannot fit the roll-off")
    require_positive(v_half_guess, "v_half_guess")

    tmr_measured = r_ap / np.mean(r_p) - 1.0
    if np.any(tmr_measured <= 0):
        raise CalibrationError("measured TMR must be positive")

    def model(v, tmr0, v_half):
        return tmr0 / (1.0 + (v / v_half) ** 2)

    try:
        popt, _ = optimize.curve_fit(
            model, voltages, tmr_measured,
            p0=[float(tmr_measured.max()), v_half_guess],
            bounds=([1e-3, 1e-3], [20.0, 10.0]), maxfev=10_000)
    except (RuntimeError, ValueError) as exc:
        raise CalibrationError(f"TMR(V) fit failed: {exc}") from exc

    tmr0, v_half = float(popt[0]), float(popt[1])
    residual = model(voltages, tmr0, v_half) - tmr_measured
    return TmrBiasFit(tmr0=tmr0, v_half=v_half,
                      rmse=float(np.sqrt(np.mean(residual ** 2))))
