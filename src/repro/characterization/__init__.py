"""Measurement emulation and parameter extraction.

The paper calibrates its models against silicon measurements. This
subpackage reproduces the full measurement methodology on the physics-based
device models:

* :mod:`repro.characterization.rh_loop` — repeated R-H loop measurements
  with statistics over cycles (Section III),
* :mod:`repro.characterization.extraction` — Hc / Hoffset / eCD extraction,
* :mod:`repro.characterization.switching_prob` — switching probability vs
  field from repeated cycling (Section V-A),
* :mod:`repro.characterization.fitting` — the Thomas-et-al. curve fit
  extracting ``Hk`` and ``Delta0`` from switching-probability data,
* :mod:`repro.characterization.vsm` — blanket-film ``Ms*t`` measurement,
* :mod:`repro.characterization.variation` — device-to-device process
  variation ensembles.
"""

from .bake import BakeResult, delta_from_bake, plan_bake, run_bake_test
from .extraction import (
    extract_ecd,
    extract_hc_oe,
    extract_offset_oe,
    loop_statistics,
)
from .fitting import SwitchingFieldFit, fit_hk_delta0
from .rh_loop import RHMeasurement, RHStatistics
from .switching_prob import (
    switching_probability_curve,
    switching_probability_model,
)
from .tmr_bias import TmrBiasFit, fit_tmr_bias, measure_rv_curves
from .variation import ProcessVariation, sample_device_parameters
from .vsm import VSMMeasurement, measure_blanket_moments

__all__ = [
    "BakeResult",
    "ProcessVariation",
    "RHMeasurement",
    "delta_from_bake",
    "plan_bake",
    "run_bake_test",
    "RHStatistics",
    "SwitchingFieldFit",
    "TmrBiasFit",
    "VSMMeasurement",
    "extract_ecd",
    "extract_hc_oe",
    "extract_offset_oe",
    "fit_hk_delta0",
    "fit_tmr_bias",
    "measure_rv_curves",
    "loop_statistics",
    "measure_blanket_moments",
    "sample_device_parameters",
    "switching_probability_curve",
    "switching_probability_model",
]
