"""Extraction of ``Hk`` and ``Delta0`` from switching-probability data.

Implements the curve-fitting technique of Thomas et al. [21] referenced by
the paper's Section V-A: the measured ``P_sw(H)`` staircase is fit with the
thermal-activation model of
:func:`repro.characterization.switching_prob.switching_probability_model`,
yielding the anisotropy field and the intrinsic thermal stability factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..constants import ATTEMPT_FREQUENCY
from ..errors import CalibrationError
from ..units import am_to_oe
from ..validation import require_positive
from .switching_prob import switching_probability_model


@dataclass(frozen=True)
class SwitchingFieldFit:
    """Result of the Hk/Delta0 extraction.

    Attributes
    ----------
    hk:
        Fitted anisotropy field [A/m].
    delta0:
        Fitted intrinsic thermal stability factor.
    rmse:
        Root-mean-square residual of the probability fit.
    """

    hk: float
    delta0: float
    rmse: float

    @property
    def hk_oe(self):
        """Fitted ``Hk`` in oersted."""
        return am_to_oe(self.hk)


def fit_hk_delta0(fields, probabilities, t_pulse, hz_stray=0.0,
                  attempt_frequency=ATTEMPT_FREQUENCY,
                  hk_guess=None, delta0_guess=40.0):
    """Fit ``(Hk, Delta0)`` to a measured ``P_sw(H)`` curve.

    Parameters
    ----------
    fields:
        Applied fields [A/m].
    probabilities:
        Measured switching probabilities (same length).
    t_pulse:
        Pulse duration used in the measurement [s].
    hz_stray:
        Stray field at the FL during the measurement [A/m]. Pass the value
        inferred from the loop offset; an error here biases ``Hk``.
    attempt_frequency:
        Attempt frequency assumed by the model [Hz].
    hk_guess, delta0_guess:
        Initial guesses; ``hk_guess`` defaults to twice the median
        switching field, a robust starting point.

    Returns
    -------
    SwitchingFieldFit

    Raises
    ------
    CalibrationError
        If the optimizer fails or the data has no transition.
    """
    fields = np.asarray(fields, dtype=float)
    probs = np.asarray(probabilities, dtype=float)
    if fields.shape != probs.shape or fields.ndim != 1:
        raise CalibrationError(
            "fields and probabilities must be 1-D arrays of equal length")
    if fields.size < 4:
        raise CalibrationError("need at least 4 points to fit 2 parameters")
    if probs.max() < 0.5 or probs.min() > 0.5:
        raise CalibrationError(
            "data does not bracket the 50% switching point; widen the "
            "field range")
    require_positive(t_pulse, "t_pulse")

    if hk_guess is None:
        crossing = fields[int(np.argmin(np.abs(probs - 0.5)))]
        hk_guess = max(2.0 * abs(crossing), 1.0)

    def model(h, hk, delta0):
        return switching_probability_model(
            h, hk, delta0, t_pulse, hz_stray=hz_stray,
            attempt_frequency=attempt_frequency)

    try:
        popt, _ = optimize.curve_fit(
            model, fields, probs, p0=[hk_guess, delta0_guess],
            bounds=([1.0, 1.0], [np.inf, 1000.0]), maxfev=20_000)
    except (RuntimeError, ValueError) as exc:
        raise CalibrationError(f"Hk/Delta0 fit failed: {exc}") from exc

    hk_fit, delta0_fit = float(popt[0]), float(popt[1])
    residual = model(fields, hk_fit, delta0_fit) - probs
    rmse = float(np.sqrt(np.mean(residual ** 2)))
    return SwitchingFieldFit(hk=hk_fit, delta0=delta0_fit, rmse=rmse)
