"""Device-to-device process variation.

The error bars of the paper's Fig. 2b come from process variations (size,
RA, anisotropy) plus intrinsic switching stochasticity. This module samples
device-parameter ensembles around a nominal design so the experiments can
regenerate those error bars.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..device.mtj import DeviceParameters
from ..errors import ParameterError
from ..validation import require_fraction, require_int_in_range


@dataclass(frozen=True)
class ProcessVariation:
    """1-sigma relative variations of device parameters.

    Parameters
    ----------
    sigma_ecd:
        Relative eCD variation (etch CD control).
    sigma_hk:
        Relative anisotropy-field variation.
    sigma_delta0:
        Relative thermal-stability variation (beyond what follows from
        eCD, e.g. interface roughness).
    """

    sigma_ecd: float = 0.04
    sigma_hk: float = 0.03
    sigma_delta0: float = 0.05

    def __post_init__(self):
        require_fraction(self.sigma_ecd, "sigma_ecd")
        require_fraction(self.sigma_hk, "sigma_hk")
        require_fraction(self.sigma_delta0, "sigma_delta0")


def sample_device_parameters(base, n_devices, variation=None, rng=None,
                             scale_delta0_with_area=True):
    """Sample ``n_devices`` parameter sets around ``base``.

    Parameters
    ----------
    base:
        Nominal :class:`~repro.device.mtj.DeviceParameters`.
    n_devices:
        Ensemble size.
    variation:
        :class:`ProcessVariation` (defaults to typical values).
    rng:
        Seed or generator.
    scale_delta0_with_area:
        When True, ``Delta0`` of each sample additionally scales with its
        sampled area (thermal stability is extensive in the activation
        area for fixed material parameters).

    Returns
    -------
    list[DeviceParameters]
    """
    if not isinstance(base, DeviceParameters):
        raise ParameterError(
            f"base must be DeviceParameters, got {type(base)!r}")
    n_devices = require_int_in_range(n_devices, "n_devices", 1, 1_000_000)
    variation = ProcessVariation() if variation is None else variation
    rng = np.random.default_rng(rng)

    samples = []
    for _ in range(n_devices):
        ecd = base.ecd * (1.0 + variation.sigma_ecd * rng.standard_normal())
        ecd = max(ecd, 0.25 * base.ecd)
        hk = base.hk * (1.0 + variation.sigma_hk * rng.standard_normal())
        hk = max(hk, 0.25 * base.hk)
        delta0 = base.delta0 * (
            1.0 + variation.sigma_delta0 * rng.standard_normal())
        if scale_delta0_with_area:
            delta0 *= (ecd / base.ecd) ** 2
        delta0 = max(delta0, 5.0)
        samples.append(replace(base, ecd=ecd, hk=hk, delta0=delta0))
    return samples
