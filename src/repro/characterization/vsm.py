"""Vibrating-sample magnetometry (VSM) emulation.

The bound-current model needs one number per fixed layer: the areal moment
``Ms * t``, which the paper measures at blanket-film level by VSM before
patterning. This module emulates that measurement: it reports the ``Ms*t``
of each magnetic layer of a stack with a configurable relative measurement
noise, exactly the quantity the calibration consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ParameterError
from ..stack import MTJStack
from ..validation import require_fraction


@dataclass(frozen=True)
class VSMMeasurement:
    """One blanket-film VSM result for a magnetic layer.

    ``moment_per_area`` is the signed areal moment ``direction * Ms * t``
    [A]; ``nominal`` is the noise-free value.
    """

    layer_role: str
    moment_per_area: float
    nominal: float

    @property
    def relative_error(self):
        """Relative deviation of the measurement from nominal."""
        if self.nominal == 0.0:
            return 0.0
        return (self.moment_per_area - self.nominal) / self.nominal


def measure_blanket_moments(stack, rng=None, noise=0.02):
    """Emulated VSM measurement of every magnetic layer of ``stack``.

    Parameters
    ----------
    stack:
        :class:`~repro.stack.MTJStack`.
    rng:
        Seed or generator.
    noise:
        1-sigma relative measurement noise (default 2 %, typical for VSM
        on blanket films).

    Returns
    -------
    tuple[VSMMeasurement, ...] in stack order (bottom to top).
    """
    if not isinstance(stack, MTJStack):
        raise ParameterError(
            f"stack must be an MTJStack, got {type(stack)!r}")
    require_fraction(noise, "noise")
    rng = np.random.default_rng(rng)
    results = []
    for layer in stack.magnetic_layers():
        nominal = layer.moment_per_area
        measured = nominal * (1.0 + noise * rng.standard_normal())
        results.append(VSMMeasurement(
            layer_role=layer.role.value,
            moment_per_area=float(measured),
            nominal=float(nominal)))
    return tuple(results)
