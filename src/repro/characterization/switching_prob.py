"""Switching probability vs applied field.

The paper (Section V-A) measures the R-H loop of one device for 1000 cycles
to obtain the statistical switching probability at each field, then fits it
to extract ``Hk`` and ``Delta0`` with the technique of Thomas et al. [21].

The measurement here is the fresh-state protocol: for each field value the
device is prepared in the AP state, the field is applied for a fixed pulse
duration, and the final state is read out; repeating ``n_cycles`` times
estimates ``P_sw(H)``. The matching analytic model is the thermal-activation
CDF::

    P_sw(H) = 1 - exp( -f0 * t_pulse * exp( -Delta0 (1 - H_eff/Hk)^2 ) )

with ``H_eff = H + Hz_stray``.
"""

from __future__ import annotations

import numpy as np

from ..constants import ATTEMPT_FREQUENCY
from ..errors import ParameterError
from ..validation import require_int_in_range, require_positive


def switching_probability_model(fields, hk, delta0, t_pulse,
                                hz_stray=0.0,
                                attempt_frequency=ATTEMPT_FREQUENCY):
    """Analytic ``P_sw(H)`` for AP->P field-driven switching.

    Parameters
    ----------
    fields:
        Applied fields [A/m] (array-like). Only fields that destabilize AP
        (positive effective fields) produce appreciable probabilities.
    hk:
        Anisotropy field [A/m].
    delta0:
        Intrinsic thermal stability factor.
    t_pulse:
        Field pulse duration [s].
    hz_stray:
        Constant stray field at the FL [A/m].
    attempt_frequency:
        Thermal attempt frequency [Hz].

    Returns
    -------
    numpy.ndarray of probabilities in [0, 1].
    """
    require_positive(hk, "hk")
    require_positive(delta0, "delta0")
    require_positive(t_pulse, "t_pulse")
    require_positive(attempt_frequency, "attempt_frequency")
    h_eff = np.asarray(fields, dtype=float) + float(hz_stray)
    reduced = np.clip(1.0 - h_eff / hk, 0.0, 2.0)
    barrier = delta0 * reduced * reduced
    rate = attempt_frequency * np.exp(-barrier)
    return -np.expm1(-rate * t_pulse)


def switching_probability_curve(device, fields, n_cycles=200, t_pulse=1e-3,
                                rng=None, hz_stray=None):
    """Monte-Carlo ``P_sw(H)`` measurement on a device.

    For each field the device is reset to AP, pulsed, and read; the
    switched fraction over ``n_cycles`` estimates the probability.

    Parameters
    ----------
    device:
        :class:`~repro.device.mtj.MTJDevice`.
    fields:
        Applied fields [A/m].
    n_cycles:
        Repetitions per field point (the paper uses 1000).
    t_pulse:
        Pulse duration [s].
    rng:
        Seed or generator.
    hz_stray:
        Stray-field override [A/m]; defaults to the device's intra-cell
        field.

    Returns
    -------
    (fields, probabilities):
        Both numpy arrays; probabilities are switched fractions.
    """
    n_cycles = require_int_in_range(n_cycles, "n_cycles", 1, 1_000_000)
    require_positive(t_pulse, "t_pulse")
    fields = np.asarray(fields, dtype=float)
    if fields.ndim != 1 or fields.size == 0:
        raise ParameterError("fields must be a non-empty 1-D array")
    rng = np.random.default_rng(rng)
    stray = (device.intra_stray_field() if hz_stray is None
             else float(hz_stray))

    p_model = switching_probability_model(
        fields, device.params.hk, device.params.delta0, t_pulse,
        hz_stray=stray,
        attempt_frequency=device.params.attempt_frequency)
    switched = rng.binomial(n_cycles, p_model)
    return fields, switched / n_cycles
