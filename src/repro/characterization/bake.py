"""Retention bake-test emulation and Delta extraction.

The industry-standard way to measure the thermal stability factor of a
*population* is a bake test: write a known pattern, hold the parts at an
elevated temperature for a fixed time, read back, and count the flipped
bits. The fail fraction follows the Neel-Arrhenius law

``p_fail(t) = 1 - exp(-f0 t exp(-Delta(T_bake)))``

so the measured fail counts at one or more bake conditions invert to the
Delta at bake temperature. This module emulates the bake (Monte-Carlo
over bits) and provides the inversion, giving the library a second,
independent route to Delta besides the switching-field fit of
:mod:`repro.characterization.fitting`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..device.mtj import MTJDevice, MTJState
from ..device.retention import flip_rate
from ..errors import MeasurementError, ParameterError
from ..validation import require_int_in_range, require_positive


@dataclass(frozen=True)
class BakeResult:
    """Outcome of one emulated bake test.

    Attributes
    ----------
    temperature:
        Bake temperature [K].
    duration:
        Bake time [s].
    n_bits:
        Population size.
    n_failed:
        Bits that flipped during the bake.
    """

    temperature: float
    duration: float
    n_bits: int
    n_failed: int

    @property
    def fail_fraction(self):
        """Observed fail fraction."""
        return self.n_failed / self.n_bits


def run_bake_test(device, temperature, duration, n_bits=10_000,
                  state=MTJState.P, hz_stray=None, rng=None):
    """Emulate a retention bake on ``n_bits`` identical devices.

    Parameters
    ----------
    device:
        :class:`~repro.device.mtj.MTJDevice` (defines Delta(T)).
    temperature:
        Bake temperature [K].
    duration:
        Bake time [s].
    n_bits:
        Population size.
    state:
        The written state (the worst case under negative stray fields is
        P, matching the paper's Fig. 6 conclusion).
    hz_stray:
        Stray field during the bake [A/m]; defaults to the device's
        intra-cell field.
    rng:
        Seed or generator.

    Returns
    -------
    BakeResult
    """
    if not isinstance(device, MTJDevice):
        raise ParameterError(
            f"device must be an MTJDevice, got {type(device)!r}")
    require_positive(temperature, "temperature")
    require_positive(duration, "duration")
    n_bits = require_int_in_range(n_bits, "n_bits", 1, 100_000_000)
    rng = np.random.default_rng(rng)
    stray = (device.intra_stray_field() if hz_stray is None
             else float(hz_stray))

    delta = device.delta(state, stray, temperature=temperature)
    rate = flip_rate(delta, device.params.attempt_frequency)
    p_fail = -math.expm1(-rate * duration)
    n_failed = int(rng.binomial(n_bits, p_fail))
    return BakeResult(temperature=float(temperature),
                      duration=float(duration), n_bits=n_bits,
                      n_failed=n_failed)


def delta_from_bake(result, attempt_frequency=1.0e9):
    """Invert a bake result to the Delta at bake temperature.

    ``Delta = ln( f0 t / -ln(1 - p_fail) )``. Requires at least one but
    not all bits to have failed (otherwise the estimate is unbounded).
    """
    if result.n_failed == 0:
        raise MeasurementError(
            "no bit failed: bake too short/cold to bound Delta from above")
    if result.n_failed == result.n_bits:
        raise MeasurementError(
            "every bit failed: bake too long/hot to bound Delta from below")
    p_fail = result.fail_fraction
    hazard = -math.log1p(-p_fail)
    return math.log(attempt_frequency * result.duration / hazard)


def plan_bake(device, target_fail_fraction, temperature,
              state=MTJState.P, hz_stray=None):
    """Bake duration [s] expected to produce ``target_fail_fraction``.

    Used to design a bake experiment that actually resolves Delta (fail
    fractions near 0 or 1 carry no information).
    """
    if not isinstance(device, MTJDevice):
        raise ParameterError(
            f"device must be an MTJDevice, got {type(device)!r}")
    if not 0.0 < target_fail_fraction < 1.0:
        raise ParameterError(
            "target_fail_fraction must be in (0, 1), got "
            f"{target_fail_fraction!r}")
    stray = (device.intra_stray_field() if hz_stray is None
             else float(hz_stray))
    delta = device.delta(state, stray, temperature=temperature)
    rate = flip_rate(delta, device.params.attempt_frequency)
    return -math.log1p(-target_fail_fraction) / rate
