"""Monte-Carlo array yield under process variation plus coupling.

The paper's Fig. 2b error bars show real device-to-device variation; its
coupling analysis is for the nominal device. This module combines the
two: sample an ensemble of device instances (size/Hk/Delta0 variation),
expose each to the worst-case coupling corner at the chosen pitch, and
count how many violate the write- and retention-margin specifications.
The result is an array-level parametric yield versus pitch — the number
a product engineer signs off on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arrays.pattern import ALL_P
from ..arrays.victim import VictimAnalysis
from ..characterization.variation import (
    ProcessVariation,
    sample_device_parameters,
)
from ..device.mtj import DeviceParameters, MTJDevice, MTJState
from ..errors import ParameterError
from ..validation import require_int_in_range, require_positive


@dataclass(frozen=True)
class YieldResult:
    """Outcome of one Monte-Carlo yield run.

    Attributes
    ----------
    n_samples:
        Ensemble size.
    n_retention_fail:
        Devices whose worst-case Delta fell below the retention spec.
    n_write_fail:
        Devices whose worst-case tw exceeded the write spec.
    worst_delta_mean / worst_delta_std:
        Ensemble statistics of the worst-case Delta.
    """

    n_samples: int
    n_retention_fail: int
    n_write_fail: int
    worst_delta_mean: float
    worst_delta_std: float

    @property
    def yield_fraction(self):
        """Fraction of devices meeting both specs."""
        failed = self.n_retention_fail + self.n_write_fail
        # A device can fail both ways; this is a conservative lower bound.
        return max(0.0, 1.0 - failed / self.n_samples)


class ArrayYieldAnalysis:
    """Parametric yield of an array design.

    Parameters
    ----------
    base_params:
        Nominal :class:`~repro.device.mtj.DeviceParameters`.
    pitch:
        Array pitch [m].
    variation:
        :class:`~repro.characterization.variation.ProcessVariation`
        (defaults to typical values).
    """

    def __init__(self, base_params, pitch, variation=None):
        if not isinstance(base_params, DeviceParameters):
            raise ParameterError(
                f"base_params must be DeviceParameters, got "
                f"{type(base_params)!r}")
        require_positive(pitch, "pitch")
        self.base_params = base_params
        self.pitch = float(pitch)
        self.variation = (ProcessVariation() if variation is None
                          else variation)

    def run(self, n_samples=200, rng=None, min_delta=30.0,
            max_tw=20e-9, probe_voltage=0.9):
        """Sample devices and evaluate both margins at the worst corner.

        Parameters
        ----------
        n_samples:
            Monte-Carlo ensemble size.
        rng:
            Seed or generator.
        min_delta:
            Retention spec: worst-case Delta must stay above this.
        max_tw:
            Write spec [s]: worst-case mean switching time at
            ``probe_voltage`` must stay below this.
        probe_voltage:
            Write voltage [V] of the write-margin check.

        Returns
        -------
        YieldResult
        """
        n_samples = require_int_in_range(n_samples, "n_samples", 1,
                                         1_000_000)
        require_positive(min_delta, "min_delta")
        require_positive(max_tw, "max_tw")
        samples = sample_device_parameters(
            self.base_params, n_samples, variation=self.variation,
            rng=rng)

        n_retention_fail = 0
        n_write_fail = 0
        worst_deltas = np.empty(n_samples)
        for i, params in enumerate(samples):
            device = MTJDevice(params)
            victim = VictimAnalysis(device, self.pitch)
            worst_delta = victim.delta(MTJState.P, ALL_P)
            worst_deltas[i] = worst_delta
            if worst_delta < min_delta:
                n_retention_fail += 1
            tw = victim.switching_time(probe_voltage, ALL_P)
            if not np.isfinite(tw) or tw > max_tw:
                n_write_fail += 1

        return YieldResult(
            n_samples=n_samples,
            n_retention_fail=n_retention_fail,
            n_write_fail=n_write_fail,
            worst_delta_mean=float(np.mean(worst_deltas)),
            worst_delta_std=float(np.std(worst_deltas)),
        )

    def yield_vs_pitch(self, pitches, n_samples=100, rng=None, **specs):
        """Yield fraction at each pitch in ``pitches`` [m].

        The same RNG seed sequence is reused per pitch so the comparison
        isolates the coupling effect from sampling noise.
        """
        results = []
        for pitch in pitches:
            analysis = ArrayYieldAnalysis(self.base_params, float(pitch),
                                          self.variation)
            results.append(analysis.run(n_samples=n_samples, rng=rng,
                                        **specs))
        return results
