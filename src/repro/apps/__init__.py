"""Application-layer analyses built on the coupling model.

These modules answer the engineering questions the paper's conclusions
raise, using the calibrated device/array models:

* :mod:`repro.apps.write_error` — write-error-rate vs pulse width
  (the quantitative form of the paper's "larger write margin" warning),
* :mod:`repro.apps.design_space` — joint pitch/size design-space sweeps
  combining density, Psi, Ic spread, tw penalty and retention,
* :mod:`repro.apps.yield_analysis` — Monte-Carlo array yield under
  process variation plus coupling,
* :mod:`repro.apps.retention_budget` — scrub-interval and application-
  class budgeting from worst-case Delta.

These analyses price one mechanism at a time at the device/array level;
for the *system-level* composition — what UBER a coupled array delivers
under read/write traffic with ECC and scrubbing — see
:mod:`repro.memsys`, which consumes the models defined here.
"""

from .design_space import DESIGN_HEADERS, DesignPoint, DesignSpaceExplorer
from .fault_models import CouplingFaultAnalyzer, FaultAssessment
from .read_disturb import ReadDisturbAnalysis
from .retention_budget import (
    RetentionBudget,
    RetentionBudgetPlanner,
    classify_retention,
)
from .voltage_optimizer import BreakdownModel, WriteVoltageOptimizer
from .write_error import WriteErrorModel
from .yield_analysis import ArrayYieldAnalysis, YieldResult

__all__ = [
    "ArrayYieldAnalysis",
    "BreakdownModel",
    "CouplingFaultAnalyzer",
    "DESIGN_HEADERS",
    "DesignPoint",
    "DesignSpaceExplorer",
    "FaultAssessment",
    "ReadDisturbAnalysis",
    "RetentionBudget",
    "RetentionBudgetPlanner",
    "WriteErrorModel",
    "WriteVoltageOptimizer",
    "YieldResult",
    "classify_retention",
]
