"""Coupling-aware fault analysis and test-pattern recommendation.

The paper's group works on STT-MRAM testing (its refs [6], [14], [16]);
the coupling model feeds directly into test engineering: which cells can
fail *because of their neighborhood*, and which data backgrounds must a
march test write to provoke those failures?

Two coupling-induced fault mechanisms follow from Sections IV-V:

* **write-margin fault** — the AP->P write of a victim under NP8 = 0 is
  slower than the pulse budget (worst at small pitch / low voltage),
* **retention fault** — the victim's worst-case Delta (P state, NP8 = 0)
  falls below the retention spec.

Both are *pattern-sensitive* faults: detecting them requires the
aggressor background that maximizes the stray field, exactly like
classical coupling faults in DRAM testing. This module classifies a
design against specs and emits the stress backgrounds and march-style
test description that sensitizes the worst corner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..arrays.pattern import ALL_AP, ALL_P, solid
from ..arrays.victim import VictimAnalysis
from ..device.mtj import MTJDevice, MTJState
from ..errors import ParameterError
from ..validation import require_positive


@dataclass(frozen=True)
class FaultAssessment:
    """Coupling-fault assessment of one array design point.

    Attributes
    ----------
    pitch:
        Array pitch [m].
    write_margin_ns:
        Pulse budget minus worst-case switching time [ns]; negative means
        a write-margin fault is possible.
    retention_margin:
        Worst-case Delta minus the retention spec; negative means a
        retention fault is possible.
    write_fault_possible / retention_fault_possible:
        The two verdicts.
    """

    pitch: float
    write_margin_ns: float
    retention_margin: float

    @property
    def write_fault_possible(self):
        """True when the worst-case write exceeds the pulse budget."""
        return self.write_margin_ns < 0.0

    @property
    def retention_fault_possible(self):
        """True when the worst-case Delta violates the retention spec."""
        return self.retention_margin < 0.0

    @property
    def fault_free(self):
        """True when both margins are positive."""
        return not (self.write_fault_possible
                    or self.retention_fault_possible)


#: The aggressor background sensitizing each fault type. Writing the
#: victim AP->P is hardest when every neighbor stores P (solid 0s), and
#: the P-state retention corner also occurs under solid 0s — so the
#: classical solid background, not the checkerboard, is the coupling
#: stress pattern for this technology.
STRESS_BACKGROUNDS = {
    "write_margin": ("solid-0", ALL_P),
    "retention": ("solid-0", ALL_P),
    "opposite_corner": ("solid-1", ALL_AP),
}


class CouplingFaultAnalyzer:
    """Classifies coupling-induced fault risk and builds stress tests.

    Parameters
    ----------
    device:
        :class:`~repro.device.mtj.MTJDevice`.
    pitch:
        Array pitch [m].
    """

    def __init__(self, device, pitch):
        if not isinstance(device, MTJDevice):
            raise ParameterError(
                f"device must be an MTJDevice, got {type(device)!r}")
        require_positive(pitch, "pitch")
        self.device = device
        self.victim = VictimAnalysis(device, pitch)
        self.pitch = float(pitch)

    def assess(self, pulse_budget, write_voltage, min_delta):
        """Assess the design against write/retention specs.

        Parameters
        ----------
        pulse_budget:
            Write pulse width the controller guarantees [s].
        write_voltage:
            Write voltage [V].
        min_delta:
            Retention spec on the worst-case Delta.

        Returns
        -------
        FaultAssessment
        """
        require_positive(pulse_budget, "pulse_budget")
        require_positive(write_voltage, "write_voltage")
        require_positive(min_delta, "min_delta")
        tw_worst = self.victim.switching_time(write_voltage, ALL_P)
        delta_worst = self.victim.delta(MTJState.P, ALL_P)
        return FaultAssessment(
            pitch=self.pitch,
            write_margin_ns=(pulse_budget - tw_worst) * 1e9,
            retention_margin=delta_worst - min_delta,
        )

    def sensitizing_background(self, fault_type):
        """(name, NeighborhoodPattern) stressing ``fault_type``."""
        try:
            return STRESS_BACKGROUNDS[fault_type]
        except KeyError:
            known = ", ".join(sorted(STRESS_BACKGROUNDS))
            raise ParameterError(
                f"unknown fault type {fault_type!r}; known: {known}"
            ) from None

    def stress_data_pattern(self, rows, cols, fault_type="write_margin"):
        """Full-array stress background for ``fault_type``.

        For the solid-0 background every interior cell simultaneously
        sees its own worst-case neighborhood — a single array write
        stresses all victims at once.
        """
        name, _ = self.sensitizing_background(fault_type)
        bit = 0 if name == "solid-0" else 1
        return solid(rows, cols, bit)

    def march_test(self, write_voltage):
        """March-style coupling stress test description.

        Returns the element list of a coupling-targeted march test: write
        the sensitizing background, then for each cell write the victim
        value against that background and read it back; repeat for the
        opposite corner. The notation follows the usual
        ``{ direction (ops) }`` convention.
        """
        require_positive(write_voltage, "write_voltage")
        return [
            # Write-margin corner: victim AP->P with all-P aggressors.
            "{ up (w0) }",                 # solid-0 background
            "{ up (w1, r1) }",             # hardest AP->P per cell + read
            "{ up (w0) }",                 # restore background
            # Retention corner: P cells under all-P neighborhood; pause
            # then read (retention faults need hold time).
            f"{{ pause({self._retention_pause():.0f}s) }}",
            "{ up (r0) }",
            # Opposite corner for completeness (NP8 = 255 extreme).
            "{ up (w1) }",
            "{ down (w0, r0) }",
        ]

    def _retention_pause(self):
        """A hold time [s] that resolves marginal retention corners.

        One tenth of the worst-case mean retention time, capped to a
        practical test-floor range.
        """
        worst_delta = self.victim.delta(MTJState.P, ALL_P)
        from ..device.retention import retention_time
        pause = 0.1 * retention_time(
            worst_delta, self.device.params.attempt_frequency)
        return min(max(pause, 1.0), 1.0e4)

    def sweep_pitches(self, pitches, pulse_budget, write_voltage,
                      min_delta):
        """Assess several pitches; returns FaultAssessment per pitch."""
        out = []
        for pitch in pitches:
            analyzer = CouplingFaultAnalyzer(self.device, float(pitch))
            out.append(analyzer.assess(pulse_budget, write_voltage,
                                       min_delta))
        return out
