"""Write-error-rate model for STT writes under stray fields.

Sun's precessional picture (paper Eq. 3) has more in it than the mean
switching time: the switching time of one attempt is set by the initial
thermal angle ``theta_0`` of the FL,

``t_sw = (1 / 2r) * ln( (pi/2)^2 / theta_0^2 )``,

with the angle growing exponentially at rate
``r = muB P Im / (e m (1 + P^2))``. Averaging over the equilibrium
distribution ``P(theta_0^2) = Delta * exp(-Delta * theta_0^2)`` recovers
Eq. 3 *exactly* (the ``C + ln(pi^2 Delta / 4)`` prefactor is that
average). Keeping the full distribution instead of the mean yields the
write-error rate for a pulse of width ``t_p``::

    WER(t_p) = P(t_sw > t_p) = 1 - exp( -Delta (pi/2)^2 exp(-2 r t_p) )

This module exposes that model bound to a device, including the stray-
field dependence through ``Ic`` (Eq. 2), and its inverse — the pulse
width needed to hit a target WER — which is how the paper's "a longer
pulse is required to avoid write failure in the worst case (NP8 = 0)"
becomes a number.
"""

from __future__ import annotations

import math

import numpy as np

from ..arrays.pattern import ALL_P
from ..arrays.victim import VictimAnalysis
from ..device.mtj import MTJDevice, MTJState
from ..errors import ParameterError
from ..validation import require_in_range, require_positive


class WriteErrorModel:
    """Write-error statistics of one device under stray fields.

    Parameters
    ----------
    device:
        :class:`~repro.device.mtj.MTJDevice`.
    """

    def __init__(self, device):
        if not isinstance(device, MTJDevice):
            raise ParameterError(
                f"device must be an MTJDevice, got {type(device)!r}")
        self.device = device

    def _angle_rate(self, vp, hz_stray, initial_state):
        """The exponential angle-growth rate ``r`` [1/s]; <= 0 below Ic."""
        direction = ("AP->P" if initial_state is MTJState.AP
                     else "P->AP")
        ic = self.device.ic(direction, hz_stray)
        sun = self.device.sun_model()
        im = sun.overdrive_current(vp, ic,
                                   initial_state=initial_state.value)
        # SunModel.rate_coefficient folds the (C + ln(pi^2 D/4)) average
        # over initial angles into 1/tw; unfold it to get the bare
        # exponential angle-growth rate r with <t> = (C + ln..)/(2r).
        from ..constants import EULER_GAMMA
        log_term = EULER_GAMMA + math.log(
            math.pi * math.pi * self.device.params.delta0 / 4.0)
        return 0.5 * sun.rate_coefficient * log_term * im

    def wer(self, t_pulse, vp, hz_stray=0.0, initial_state=MTJState.AP):
        """Write-error rate for a pulse of ``t_pulse`` seconds at ``vp``.

        Returns 1.0 below the switching threshold (the write never
        completes by precession). Vectorized over ``t_pulse``.
        """
        require_positive(vp, "vp")
        t_pulse = np.asarray(t_pulse, dtype=float)
        if np.any(t_pulse <= 0):
            raise ParameterError("t_pulse must be > 0")
        rate = self._angle_rate(vp, hz_stray, initial_state)
        if rate <= 0.0:
            result = np.ones_like(t_pulse)
            return float(result) if result.ndim == 0 else result
        delta = self.device.params.delta0
        exponent = (delta * (math.pi / 2.0) ** 2
                    * np.exp(-2.0 * rate * t_pulse))
        result = -np.expm1(-exponent)
        return float(result) if result.ndim == 0 else result

    def pulse_for_wer(self, target_wer, vp, hz_stray=0.0,
                      initial_state=MTJState.AP):
        """Pulse width [s] achieving ``target_wer`` at voltage ``vp``.

        Analytic inverse of :meth:`wer`::

            t_p = (1 / 2r) * ln( Delta (pi/2)^2 / -ln(1 - WER) )
        """
        require_in_range(target_wer, "target_wer", 0.0, 1.0,
                         inclusive=False)
        rate = self._angle_rate(vp, hz_stray, initial_state)
        if rate <= 0.0:
            raise ParameterError(
                f"vp={vp} V is below the switching threshold; no pulse "
                "width achieves the target")
        delta = self.device.params.delta0
        needed = -math.log1p(-target_wer)
        argument = delta * (math.pi / 2.0) ** 2 / needed
        if argument <= 1.0:
            # Already below target at infinitesimal pulses (huge WER
            # target) — not meaningful, report the shortest sensible pulse.
            return 0.0
        return math.log(argument) / (2.0 * rate)

    def mean_switching_time(self, vp, hz_stray=0.0,
                            initial_state=MTJState.AP):
        """Mean switching time [s] — must equal the device's Sun tw."""
        return self.device.switching_time(vp, hz_stray,
                                          initial_state=initial_state)

    def sample_wer(self, t_pulse, vp, hz_stray=0.0,
                   initial_state=MTJState.AP, n_samples=200_000,
                   rng=None, method="binomial"):
        """Monte-Carlo WER estimate over ``n_samples`` write attempts.

        Two statistically equivalent estimators (the same class-grouped
        trade as the memsys samplers, see :mod:`repro.memsys.sampling`):

        * ``"binomial"`` (default) — every attempt at one stress corner
          is an exchangeable Bernoulli event whose probability is the
          closed form :meth:`wer`, so the failure *count* is one
          ``Binomial(n, wer)`` draw: O(1) per corner instead of
          O(n_samples), which is what lets the figure-level stress
          corners sample at production targets (WER <= 1e-6).
        * ``"angles"`` — the per-sample reference: draws ``theta_0^2``
          from the equilibrium distribution ``P(theta_0^2) = Delta *
          exp(-Delta theta_0^2)``, converts each to its switching time,
          and counts the fraction missing ``t_pulse`` — the
          distributional cross-check of the closed form (they agree to
          the MC standard error; asserted in
          ``tests/test_apps_write_error.py``).
        """
        require_positive(t_pulse, "t_pulse")
        require_positive(n_samples, "n_samples")
        if method not in ("binomial", "angles"):
            raise ParameterError(
                f"method must be 'binomial' or 'angles', got {method!r}")
        rate = self._angle_rate(vp, hz_stray, initial_state)
        if rate <= 0.0:
            return 1.0
        rng = np.random.default_rng(rng)
        if method == "binomial":
            p = self.wer(t_pulse, vp, hz_stray, initial_state)
            return float(rng.binomial(int(n_samples), p)
                         / int(n_samples))
        delta = self.device.params.delta0
        theta_sq = rng.exponential(1.0 / delta, size=int(n_samples))
        # theta_0^2 beyond (pi/2)^2 means an already-switched draw
        # (t_sw <= 0); the log handles it with a negative time.
        t_sw = np.log((math.pi / 2.0) ** 2 / theta_sq) / (2.0 * rate)
        return float(np.mean(t_sw > t_pulse))

    def worst_case_pulse(self, target_wer, vp, pitch):
        """Pulse width [s] covering the worst neighborhood at ``pitch``.

        The worst case for an AP->P write is NP8 = 0 (paper Fig. 5): the
        inter-cell field is most negative there, maximizing Ic(AP->P).
        """
        victim = VictimAnalysis(self.device, pitch)
        hz_worst = victim.hz_total(ALL_P)
        return self.pulse_for_wer(target_wer, vp, hz_worst)

    def pattern_pulse_penalty(self, target_wer, vp, pitch):
        """Extra pulse width [s] the NP8=0 corner costs vs NP8=255."""
        victim = VictimAnalysis(self.device, pitch)
        from ..arrays.pattern import ALL_AP
        t_worst = self.pulse_for_wer(target_wer, vp,
                                     victim.hz_total(ALL_P))
        t_best = self.pulse_for_wer(target_wer, vp,
                                    victim.hz_total(ALL_AP))
        return t_worst - t_best
