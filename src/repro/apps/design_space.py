"""Joint design-space exploration over device size and array pitch.

Combines everything the paper evaluates into one sweep: for each
(eCD, pitch) candidate, compute the areal density, the coupling factor
Psi, the Ic spread between neighborhood patterns, the low-voltage
switching-time penalty, and the worst-case retention Delta — the table a
memory architect actually trades off.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Tuple

import numpy as np

from ..arrays.density import areal_density_gbit_per_mm2
from ..arrays.pattern import ALL_AP, ALL_P
from ..arrays.victim import VictimAnalysis
from ..core.psi import coupling_factor
from ..device.mtj import DeviceParameters, MTJDevice, MTJState
from ..errors import ParameterError
from ..sweep import SweepRunner, SweepSpec, executor_for_jobs
from ..validation import require_positive


@dataclass(frozen=True)
class DesignPoint:
    """One (eCD, pitch) evaluation of the design space.

    Field units: lengths [m], currents [A], times [s], density
    [Gbit/mm^2]; ``psi`` is dimensionless.
    """

    ecd: float
    pitch: float
    density_gbit_mm2: float
    psi: float
    ic_spread: float
    tw_penalty: float
    worst_delta: float

    @property
    def pitch_ratio(self):
        """Pitch in units of the device diameter."""
        return self.pitch / self.ecd

    def row(self):
        """Tuple view for tables (nm / uA / ns units)."""
        return (
            self.ecd * 1e9,
            self.pitch * 1e9,
            self.pitch_ratio,
            self.density_gbit_mm2,
            self.psi * 100.0,
            self.ic_spread * 1e6,
            self.tw_penalty * 1e9,
            self.worst_delta,
        )


#: Table headers matching :meth:`DesignPoint.row`.
DESIGN_HEADERS = (
    "eCD (nm)", "pitch (nm)", "ratio", "Gb/mm^2", "Psi (%)",
    "Ic spread (uA)", "tw penalty (ns)", "worst Delta",
)


class DesignSpaceExplorer:
    """Sweeps (eCD, pitch) candidates through the full coupling model.

    Parameters
    ----------
    base_params:
        :class:`~repro.device.mtj.DeviceParameters` template; the sweep
        re-targets its eCD per candidate (Hk/Delta0 kept as quoted, the
        paper's convention for its own pitch sweeps).
    probe_voltage:
        Write voltage [V] at which the tw penalty is evaluated.
    """

    def __init__(self, base_params, probe_voltage=0.85):
        if not isinstance(base_params, DeviceParameters):
            raise ParameterError(
                f"base_params must be DeviceParameters, got "
                f"{type(base_params)!r}")
        require_positive(probe_voltage, "probe_voltage")
        self.base_params = base_params
        self.probe_voltage = float(probe_voltage)

    def evaluate(self, ecd, pitch):
        """Evaluate one (eCD, pitch) candidate; returns a DesignPoint."""
        require_positive(ecd, "ecd")
        require_positive(pitch, "pitch")
        if pitch < ecd:
            raise ParameterError(
                f"pitch ({pitch}) below the device size ({ecd}): cells "
                "would overlap")
        device = MTJDevice(self.base_params.with_ecd(ecd))
        victim = VictimAnalysis(device, pitch)
        psi = coupling_factor(device.stack, pitch, device.params.hc)

        ic_lo, ic_hi = victim.ic_spread("AP->P")
        tw_np0 = victim.switching_time(self.probe_voltage, ALL_P)
        tw_np255 = victim.switching_time(self.probe_voltage, ALL_AP)
        tw_penalty = tw_np0 - tw_np255
        worst_delta = victim.delta(MTJState.P, ALL_P)

        return DesignPoint(
            ecd=float(ecd),
            pitch=float(pitch),
            density_gbit_mm2=areal_density_gbit_per_mm2(pitch),
            psi=float(psi),
            ic_spread=float(ic_hi - ic_lo),
            tw_penalty=float(tw_penalty),
            worst_delta=float(worst_delta),
        )

    def sweep(self, ecds, pitch_ratios, jobs=None, executor=None,
              progress=None):
        """Evaluate the cartesian grid of ``ecds`` x ``pitch_ratios``.

        Runs on the :mod:`repro.sweep` engine; ``jobs`` > 1 (or an
        explicit ``executor``) fans the grid out over a process pool.
        ``progress`` (a ``progress(done, total)`` callable) reports
        completed points and may raise
        :class:`~repro.errors.RunAborted` to cancel the sweep. Returns
        the DesignPoints in row-major (eCD-major) order, the same for
        every executor.
        """
        spec = SweepSpec.product(
            ecd=[float(e) for e in ecds],
            ratio=[float(r) for r in pitch_ratios])
        executor = executor or executor_for_jobs(jobs,
                                                 n_points=len(spec))
        func = partial(_design_point, self.base_params,
                       self.probe_voltage)
        runner = SweepRunner(func, executor=executor, jobs=jobs,
                             progress=progress)
        return list(runner.run(spec).values)

    def pareto_front(self, points, min_worst_delta=0.0,
                     max_psi=1.0):
        """Density-vs-reliability Pareto subset of ``points``.

        Keeps points satisfying the hard constraints, then removes any
        point dominated in (density up, psi down, worst_delta up).
        """
        feasible = [p for p in points
                    if p.worst_delta >= min_worst_delta
                    and p.psi <= max_psi]

        def dominates(a, b):
            at_least = (a.density_gbit_mm2 >= b.density_gbit_mm2
                        and a.psi <= b.psi
                        and a.worst_delta >= b.worst_delta)
            strictly = (a.density_gbit_mm2 > b.density_gbit_mm2
                        or a.psi < b.psi
                        or a.worst_delta > b.worst_delta)
            return at_least and strictly

        return [p for p in feasible
                if not any(dominates(q, p) for q in feasible if q is not p)]


def _design_point(base_params, probe_voltage, ecd, ratio):
    """Sweep point function (module-level so process pools can pickle).

    Rebuilds a throwaway explorer per point — model construction is
    cheap now that kernels are memoized process-wide.
    """
    explorer = DesignSpaceExplorer(base_params,
                                   probe_voltage=probe_voltage)
    return explorer.evaluate(ecd, ratio * ecd)
