"""Read-disturb analysis: the read current is a small write.

Every read drives a current through the MTJ; STT then *reduces* the
effective barrier of the state it destabilizes. In the thermal-activation
picture the disturb probability of one read of duration ``t_read`` is

``P = 1 - exp( -f0 t_read exp( -Delta_eff ) )``,
``Delta_eff = Delta * (1 - I_read / Ic)^2``   for ``I_read < Ic``

(the standard current-tilted barrier law, consistent with the library's
field-tilted hysteresis model). Stray fields enter twice: they shift
``Delta`` (Eq. 5) *and* ``Ic`` (Eq. 2), so the worst-case neighborhood
matters here too — a coupling effect the paper does not evaluate but its
models directly imply.
"""

from __future__ import annotations

import math

import numpy as np

from ..arrays.pattern import ALL_AP, ALL_P
from ..arrays.victim import VictimAnalysis
from ..device.mtj import MTJDevice, MTJState
from ..errors import ParameterError
from ..validation import require_positive


class ReadDisturbAnalysis:
    """Read-disturb statistics of one device under stray fields.

    Parameters
    ----------
    device:
        :class:`~repro.device.mtj.MTJDevice`.
    """

    def __init__(self, device):
        if not isinstance(device, MTJDevice):
            raise ParameterError(
                f"device must be an MTJDevice, got {type(device)!r}")
        self.device = device

    def effective_delta(self, state, read_voltage, hz_stray=0.0):
        """Current-tilted barrier of ``state`` during a read.

        The read polarity is taken as the one that destabilizes ``state``
        (worst case). Returns 0 if the read current exceeds Ic.
        """
        require_positive(read_voltage, "read_voltage")
        params = self.device.params
        i_read = params.resistance.current(params.ecd, state.value,
                                           read_voltage)
        direction = "P->AP" if state is MTJState.P else "AP->P"
        ic = self.device.ic(direction, hz_stray)
        delta = self.device.delta(state, hz_stray)
        tilt = 1.0 - i_read / ic
        if tilt <= 0.0:
            return 0.0
        return delta * tilt * tilt

    def disturb_probability(self, state, read_voltage, t_read=10e-9,
                            hz_stray=0.0):
        """Probability that one read flips ``state``."""
        require_positive(t_read, "t_read")
        delta_eff = self.effective_delta(state, read_voltage, hz_stray)
        rate = self.device.params.attempt_frequency * math.exp(-delta_eff)
        return -math.expm1(-rate * t_read)

    def reads_to_failure(self, state, read_voltage, t_read=10e-9,
                         hz_stray=0.0, budget=1e-9):
        """Number of reads before the disturb budget is exhausted.

        ``budget`` is the acceptable cumulative flip probability; returns
        ``inf`` when a single-read probability underflows to zero.
        """
        p_one = self.disturb_probability(state, read_voltage, t_read,
                                         hz_stray)
        if p_one <= 0.0:
            return math.inf
        return budget / p_one

    def max_read_voltage(self, state, target_probability, t_read=10e-9,
                         hz_stray=0.0, v_bounds=(0.01, 1.0)):
        """Largest read voltage meeting a per-read disturb target.

        Bisection on the monotone map voltage -> disturb probability.
        """
        require_positive(target_probability, "target_probability")
        lo, hi = v_bounds
        if self.disturb_probability(state, lo, t_read,
                                    hz_stray) > target_probability:
            raise ParameterError(
                f"even {lo} V exceeds the disturb target; lower t_read "
                "or the target")
        if self.disturb_probability(state, hi, t_read,
                                    hz_stray) <= target_probability:
            return hi
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.disturb_probability(state, mid, t_read,
                                        hz_stray) > target_probability:
                hi = mid
            else:
                lo = mid
        return lo

    def pattern_sensitivity(self, state, read_voltage, pitch,
                            t_read=10e-9):
        """Disturb probability under the two extreme neighborhoods.

        Returns ``(p_np0, p_np255)`` — the coupling-induced read-disturb
        spread of the victim at ``pitch``.
        """
        victim = VictimAnalysis(self.device, pitch)
        return (
            self.disturb_probability(state, read_voltage, t_read,
                                     victim.hz_total(ALL_P)),
            self.disturb_probability(state, read_voltage, t_read,
                                     victim.hz_total(ALL_AP)),
        )
