"""Retention budgeting: from worst-case Delta to scrub intervals.

Section II-A of the paper sets the requirements (storage >10 years, cache
milliseconds); Fig. 6 computes the worst-case Delta. This module closes
the loop: given an array size, a temperature corner, and a target
failure probability, what scrub (refresh) interval — if any — makes the
design safe, and which application class does it land in?
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..arrays.victim import VictimAnalysis
from ..device.mtj import MTJDevice, MTJState
from ..device.retention import (
    SECONDS_PER_YEAR,
    flip_rate,
    retention_time,
)
from ..errors import ParameterError
from ..validation import require_in_range, require_positive


def classify_retention(mean_retention_time):
    """Application class for a mean retention time [s].

    ``"storage"`` (>10 years), ``"embedded"`` (>1 month), ``"cache"``
    (>1 ms), or ``"unusable"``.
    """
    require_positive(mean_retention_time, "mean_retention_time")
    if mean_retention_time > 10.0 * SECONDS_PER_YEAR:
        return "storage"
    if mean_retention_time > SECONDS_PER_YEAR / 12.0:
        return "embedded"
    if mean_retention_time > 1.0e-3:
        return "cache"
    return "unusable"


@dataclass(frozen=True)
class RetentionBudget:
    """Retention budget of one array design at one temperature corner.

    Attributes
    ----------
    worst_delta:
        Worst-case thermal stability (victim P, NP8=0, at temperature).
    mean_retention:
        Mean retention time of the worst-case bit [s].
    scrub_interval:
        Scrub interval [s] meeting the target array failure probability,
        or ``inf`` if no scrubbing is needed over the mission time.
    application_class:
        Result of :func:`classify_retention`.
    """

    worst_delta: float
    mean_retention: float
    scrub_interval: float
    application_class: str


class RetentionBudgetPlanner:
    """Plans scrub intervals for an array under coupling + temperature.

    Parameters
    ----------
    device:
        :class:`~repro.device.mtj.MTJDevice`.
    pitch:
        Array pitch [m].
    n_bits:
        Array capacity in bits.
    """

    def __init__(self, device, pitch, n_bits):
        if not isinstance(device, MTJDevice):
            raise ParameterError(
                f"device must be an MTJDevice, got {type(device)!r}")
        require_positive(pitch, "pitch")
        require_positive(n_bits, "n_bits")
        self.device = device
        self.victim = VictimAnalysis(device, pitch)
        self.n_bits = int(n_bits)

    def worst_delta(self, temperature):
        """Worst-case Delta at ``temperature`` [K] (victim P, NP8=0)."""
        from ..arrays.pattern import ALL_P
        return self.victim.delta(MTJState.P, ALL_P,
                                 temperature=temperature)

    def scrub_interval(self, temperature, target_failure_probability,
                       mission_time=10.0 * SECONDS_PER_YEAR):
        """Scrub interval [s] keeping the array failure budget.

        The per-scrub-period failure probability budget is the mission
        budget divided across periods; solving
        ``n_bits * rate * t_scrub * (mission/t_scrub periods) <= target``
        gives a mission-level bound independent of the interval for the
        (memoryless) flip process — so the controlling constraint is per
        *period*: each bit must flip with probability well below the
        correctable threshold between scrubs. We budget the whole target
        onto one period (scrubbing restores every bit), i.e.::

            t_scrub = target / (n_bits * rate)

        Returns ``inf`` when even the full mission time meets the budget.
        """
        require_in_range(target_failure_probability,
                         "target_failure_probability", 0.0, 1.0,
                         inclusive=False)
        require_positive(mission_time, "mission_time")
        delta = self.worst_delta(temperature)
        rate = flip_rate(delta,
                         self.device.params.attempt_frequency)
        expected_mission_failures = self.n_bits * rate * mission_time
        if expected_mission_failures <= target_failure_probability:
            return math.inf
        return target_failure_probability / (self.n_bits * rate)

    def flip_probability(self, temperature, interval):
        """Per-bit flip probability over ``interval`` [s] (worst case)."""
        require_positive(interval, "interval")
        rate = flip_rate(self.worst_delta(temperature),
                         self.device.params.attempt_frequency)
        return -math.expm1(-rate * interval)

    def sample_flips(self, temperature, interval, n_periods=1,
                     rng=None):
        """Flipped-bit counts of ``n_periods`` scrub periods (MC).

        The planner budgets every bit at the worst-case coupling class
        (victim P, NP8 = 0), so the class-grouped draw of
        :mod:`repro.memsys.sampling` collapses to a single class of
        ``n_bits`` exchangeable cells: the whole mission samples as one
        vectorized ``Binomial(n_bits, p_flip)`` draw per period —
        O(periods), never the per-bit Bernoulli loop a naive Monte
        Carlo would spend at rare-event retention rates.
        """
        from ..validation import require_int_in_range
        require_int_in_range(n_periods, "n_periods", 1, 10**9)
        p_flip = self.flip_probability(temperature, interval)
        rng = np.random.default_rng(rng)
        return rng.binomial(self.n_bits, p_flip, size=int(n_periods))

    def sampled_failure_probability(self, temperature, interval,
                                    n_periods=100_000, rng=None):
        """MC fraction of scrub periods losing at least one bit.

        The sampling-based cross-check of :meth:`scrub_interval`'s
        closed-form budget (``1 - (1 - p_flip)^n_bits`` per period),
        riding the binomial draws of :meth:`sample_flips`.
        """
        flips = self.sample_flips(temperature, interval,
                                  n_periods=n_periods, rng=rng)
        return float(np.mean(flips > 0))

    def budget(self, temperature, target_failure_probability,
               mission_time=10.0 * SECONDS_PER_YEAR):
        """Full :class:`RetentionBudget` at one temperature corner."""
        delta = self.worst_delta(temperature)
        mean_ret = retention_time(
            delta, self.device.params.attempt_frequency)
        return RetentionBudget(
            worst_delta=float(delta),
            mean_retention=float(mean_ret),
            scrub_interval=float(self.scrub_interval(
                temperature, target_failure_probability, mission_time)),
            application_class=classify_retention(mean_ret),
        )
