"""Write-voltage optimization: error rate vs breakdown.

The paper's Fig. 5 discussion: raising the write voltage shrinks the
switching time and the coupling-induced spread, *"however, an increase in
the switching voltage Vp also results in more power consumption and a
higher vulnerability to breakdown"*. This module closes that trade-off
quantitatively:

* write errors fall with voltage (more overdrive),
* dielectric breakdown of the ~1 nm MgO barrier rises with voltage; we
  use the standard exponential (E-model) time-dependent dielectric
  breakdown law ``t_BD(V) = t0 * exp(-gamma * V)``, so the per-pulse
  breakdown probability is ``t_pulse / t_BD(V)`` (linear damage
  accumulation),

giving a U-shaped total failure rate per write whose minimum is the
optimal write voltage for a given pulse budget and neighborhood corner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..arrays.pattern import ALL_P
from ..arrays.victim import VictimAnalysis
from ..device.mtj import MTJDevice
from ..errors import ParameterError
from ..validation import require_positive
from .write_error import WriteErrorModel


@dataclass(frozen=True)
class BreakdownModel:
    """Exponential-law TDDB model of the tunnel barrier.

    Parameters
    ----------
    t0:
        Extrapolated time-to-breakdown at zero bias [s]. Default 3e9 s
        (~100 years), a typical 1 nm MgO extrapolation.
    gamma:
        Voltage acceleration [1/V]. Default 14/V (E-model slope for thin
        MgO; ~1.6 decades per 0.25 V).
    """

    t0: float = 3.0e9
    gamma: float = 14.0

    def __post_init__(self):
        require_positive(self.t0, "t0")
        require_positive(self.gamma, "gamma")

    def time_to_breakdown(self, voltage):
        """Characteristic time-to-breakdown [s] at ``voltage``."""
        require_positive(voltage, "voltage")
        return self.t0 * math.exp(-self.gamma * voltage)

    def per_pulse_probability(self, voltage, t_pulse):
        """Breakdown probability of one pulse (linear damage)."""
        require_positive(t_pulse, "t_pulse")
        return min(1.0, t_pulse / self.time_to_breakdown(voltage))


class WriteVoltageOptimizer:
    """Finds the voltage minimizing total failure per write.

    Parameters
    ----------
    device:
        :class:`~repro.device.mtj.MTJDevice`.
    breakdown:
        :class:`BreakdownModel` (defaults to the thin-MgO parameters).
    """

    def __init__(self, device, breakdown=None):
        if not isinstance(device, MTJDevice):
            raise ParameterError(
                f"device must be an MTJDevice, got {type(device)!r}")
        self.device = device
        self.breakdown = BreakdownModel() if breakdown is None \
            else breakdown
        self._wer = WriteErrorModel(device)

    def total_failure(self, voltage, t_pulse, hz_stray=0.0):
        """WER + per-pulse breakdown probability at one voltage."""
        wer = self._wer.wer(t_pulse, voltage, hz_stray)
        bd = self.breakdown.per_pulse_probability(voltage, t_pulse)
        return float(wer) + bd

    def sweep(self, voltages, t_pulse, hz_stray=0.0):
        """(wer, breakdown, total) arrays over a voltage grid."""
        voltages = np.asarray(voltages, dtype=float)
        wer = np.array([
            float(self._wer.wer(t_pulse, v, hz_stray)) for v in voltages])
        bd = np.array([
            self.breakdown.per_pulse_probability(v, t_pulse)
            for v in voltages])
        return wer, bd, wer + bd

    def optimal_voltage(self, t_pulse, hz_stray=0.0,
                        v_bounds=(0.75, 1.6), tolerance=1e-4):
        """Voltage [V] minimizing the total failure rate (golden search).

        The objective is unimodal (monotone-decreasing WER plus
        monotone-increasing breakdown) on any interval above the
        switching threshold.
        """
        require_positive(t_pulse, "t_pulse")
        lo, hi = float(v_bounds[0]), float(v_bounds[1])
        if lo >= hi:
            raise ParameterError(f"invalid voltage bounds {v_bounds!r}")
        golden = (math.sqrt(5.0) - 1.0) / 2.0
        a, b = lo, hi
        c = b - golden * (b - a)
        d = a + golden * (b - a)
        fc = self.total_failure(c, t_pulse, hz_stray)
        fd = self.total_failure(d, t_pulse, hz_stray)
        while b - a > tolerance:
            if fc < fd:
                b, d, fd = d, c, fc
                c = b - golden * (b - a)
                fc = self.total_failure(c, t_pulse, hz_stray)
            else:
                a, c, fc = c, d, fd
                d = a + golden * (b - a)
                fd = self.total_failure(d, t_pulse, hz_stray)
        return 0.5 * (a + b)

    def worst_corner_optimum(self, t_pulse, pitch):
        """Optimal voltage and failure rate at the NP8 = 0 corner.

        Returns ``(voltage, total_failure)`` for the victim under its
        worst neighborhood at ``pitch`` — the array-level design point.
        """
        victim = VictimAnalysis(self.device, pitch)
        hz = victim.hz_total(ALL_P)
        v_opt = self.optimal_voltage(t_pulse, hz)
        return v_opt, self.total_failure(v_opt, t_pulse, hz)
