"""Worker-fleet supervisor: demand-driven workers over a spool.

The ROADMAP ask, verbatim: *spawn workers when queue-depth × chunk-cost
exceeds a latency target, retire them on idle*. The
:class:`FleetSupervisor` closes that loop around the spool-directory
protocol of :mod:`repro.sweep.distributed`:

* **Scaling up.** Each supervision step scans the spool
  (:class:`SpoolView`), estimates the time to drain the queue as
  ``queued_chunks * chunk_cost``, and targets enough workers to bring
  that under ``latency_target`` — clamped to ``[min_workers,
  max_workers]``. Externally attached workers (live heartbeats the
  supervisor did not spawn) count toward capacity, so a fleet
  supervisor coexists with hand-started ``repro worker`` processes
  instead of doubling them.
* **Crash restarts.** A spawned worker that exits non-zero is
  restarted under an exponential-backoff-plus-jitter schedule
  (:class:`~repro.resilience.breaker.RetryPolicy`); after
  ``max_restarts`` consecutive crashes the supervisor stops feeding
  the crash loop and warns (:class:`~repro.errors.ResilienceWarning`)
  instead of forking forever.
* **Retiring.** Once the spool has been idle (no queued or claimed
  chunks) for ``idle_grace`` seconds, spawned workers above
  ``min_workers`` are terminated; workers also self-retire via their
  own ``--max-idle``, so a supervisor crash never strands a fleet.

Everything nondeterministic is injected: process creation via a
spawner (:class:`~repro.resilience.shims.ProcessSpawner` in
production), time via a clock, spool observation via a
:class:`SpoolView` — which is how the fault harness runs a full
scale-up / crash-restart / retire lifecycle in a test with zero real
processes and zero real seconds.
"""

from __future__ import annotations

import math
import os
import time
import warnings

from ..errors import ResilienceWarning
from ..validation import require_int_in_range, require_positive
from .breaker import RetryPolicy
from .shims import REAL_CLOCK, ProcessSpawner
from ..sweep.distributed import (
    SHUTDOWN_SENTINEL,
    SWEEP_SPOOL_ENV,
    _JOB_SUFFIX,
    _RUN_PREFIX,
)


class SpoolView:
    """Read-only observability over a spool directory.

    ``scan()`` reduces the directory protocol to the four numbers the
    supervisor steers by. Kept separate from the supervisor so tests
    script spool states directly, and so a monitoring endpoint can
    reuse the same scan.
    """

    def __init__(self, spool, heartbeat_fresh=10.0):
        self.spool = str(spool)
        require_positive(heartbeat_fresh, "heartbeat_fresh")
        self.heartbeat_fresh = float(heartbeat_fresh)

    def scan(self):
        """``{"open_runs", "queued", "claimed", "live_workers"}`` now.

        ``live_workers`` is the set of worker ids with a heartbeat
        fresher than ``heartbeat_fresh`` seconds across all open runs.
        Directories racing away mid-scan (a broker tearing down its
        finished run) read as empty, not as errors.
        """
        state = {"open_runs": 0, "queued": 0, "claimed": 0,
                 "live_workers": set()}
        try:
            names = sorted(os.listdir(self.spool))
        except OSError:
            return state
        now = time.time()
        for name in names:
            if not name.startswith(_RUN_PREFIX):
                continue
            run_path = os.path.join(self.spool, name)
            if (os.path.exists(os.path.join(run_path, "DONE"))
                    or not os.path.exists(
                        os.path.join(run_path, "OPEN"))):
                continue
            state["open_runs"] += 1
            state["queued"] += self._count(
                os.path.join(run_path, "queue"), _JOB_SUFFIX)
            state["claimed"] += self._count(
                os.path.join(run_path, "claimed"), None)
            hb_dir = os.path.join(run_path, "hb")
            try:
                beats = os.listdir(hb_dir)
            except OSError:
                beats = []
            for wid in beats:
                try:
                    age = now - os.path.getmtime(
                        os.path.join(hb_dir, wid))
                except OSError:
                    continue
                if age <= self.heartbeat_fresh:
                    state["live_workers"].add(wid)
        return state

    @staticmethod
    def _count(directory, suffix):
        try:
            names = os.listdir(directory)
        except OSError:
            return 0
        return sum(1 for n in names if not n.startswith(".")
                   and (suffix is None or n.endswith(suffix)))


class FleetSupervisor:
    """Scales a worker fleet against spool demand; see module docs.

    Parameters
    ----------
    spool:
        Spool directory to supervise (default :data:`~repro.sweep
        .distributed.SWEEP_SPOOL_ENV`).
    latency_target:
        Seconds the queue should drain within; the scaling setpoint.
    chunk_cost:
        Estimated seconds per queued chunk (a planning number, not a
        measurement — order of magnitude is enough).
    min_workers / max_workers:
        Fleet size clamp. ``min_workers=0`` (default) lets the fleet
        retire completely on idle.
    idle_grace:
        Seconds of empty spool before spawned workers retire.
    max_restarts:
        Consecutive crash-restarts before the supervisor gives up on
        respawning and warns.
    spawner / clock / view:
        Injection points (real OS by default).
    seed:
        Seeds the restart-backoff jitter, making supervision schedules
        reproducible under test.
    """

    def __init__(self, spool=None, latency_target=30.0, chunk_cost=1.0,
                 min_workers=0, max_workers=8, idle_grace=10.0,
                 poll=0.5, max_restarts=5, backoff_base=0.5,
                 spawner=None, clock=None, view=None, seed=0):
        spool = spool or os.environ.get(SWEEP_SPOOL_ENV)
        if not spool:
            raise ValueError(
                f"no spool directory: pass spool= or set "
                f"{SWEEP_SPOOL_ENV}")
        require_positive(latency_target, "latency_target")
        require_positive(chunk_cost, "chunk_cost")
        require_int_in_range(min_workers, "min_workers", 0, 4096)
        require_int_in_range(max_workers, "max_workers",
                             max(min_workers, 1), 4096)
        require_positive(idle_grace, "idle_grace")
        require_positive(poll, "poll")
        require_int_in_range(max_restarts, "max_restarts", 1, 1000)
        self.spool = str(spool)
        self.latency_target = float(latency_target)
        self.chunk_cost = float(chunk_cost)
        self.min_workers = int(min_workers)
        self.max_workers = int(max_workers)
        self.idle_grace = float(idle_grace)
        self.poll = float(poll)
        self.max_restarts = int(max_restarts)
        self.spawner = (spawner if spawner is not None
                        else ProcessSpawner(max_idle=2 * idle_grace))
        self.clock = clock if clock is not None else REAL_CLOCK
        self.view = view if view is not None else SpoolView(self.spool)
        self.backoff = RetryPolicy(base=backoff_base, cap=30.0,
                                   seed=seed)
        self.handles = {}
        self._serial = 0
        self._crashes = 0
        self._next_spawn_at = 0.0
        self._idle_since = None
        self._gave_up = False
        self.stats = {"spawned": 0, "restarts": 0, "retired": 0,
                      "crashes": 0, "peak_workers": 0, "steps": 0}

    # -- one supervision step ------------------------------------------------

    def step(self):
        """Observe, reconcile, return the scan (for logging/tests)."""
        self.stats["steps"] += 1
        state = self.view.scan()
        self._reap()
        busy = state["queued"] + state["claimed"]
        now = self.clock.monotonic()
        if busy:
            self._idle_since = None
            self._scale_up(state, now)
        else:
            if self._idle_since is None:
                self._idle_since = now
            elif now - self._idle_since >= self.idle_grace:
                self._retire()
        self.stats["peak_workers"] = max(self.stats["peak_workers"],
                                         len(self.handles))
        return state

    def _reap(self):
        """Collect exited workers; schedule restarts for crashes."""
        for wid in list(self.handles):
            handle = self.handles[wid]
            if handle.alive():
                continue
            del self.handles[wid]
            code = handle.returncode()
            if code not in (0, None):
                self._crashes += 1
                self.stats["crashes"] += 1
                if self._crashes > self.max_restarts:
                    if not self._gave_up:
                        self._gave_up = True
                        warnings.warn(
                            f"fleet worker crashed {self._crashes} "
                            f"consecutive times (last exit code "
                            f"{code}); not respawning — the spool "
                            f"may hold a poison workload",
                            ResilienceWarning, stacklevel=3)
                else:
                    delay = self.backoff.delay(self._crashes)
                    self._next_spawn_at = max(
                        self._next_spawn_at,
                        self.clock.monotonic() + delay)
                    self.stats["restarts"] += 1
            else:
                # Clean exit (self-retired on idle): not a crash, and
                # a subsequent crash starts a fresh backoff ladder.
                self._crashes = 0
                self._gave_up = False

    def _desired(self, state):
        drain_time = state["queued"] * self.chunk_cost
        demand = math.ceil(drain_time / self.latency_target)
        if state["queued"] and demand < 1:
            demand = 1
        return max(self.min_workers, min(self.max_workers, demand))

    def _scale_up(self, state, now):
        if self._gave_up or now < self._next_spawn_at:
            return
        own_live = len(self.handles)
        external = len(state["live_workers"]
                       - set(self.handles.keys()))
        deficit = self._desired(state) - own_live - external
        for _ in range(max(0, deficit)):
            if len(self.handles) >= self.max_workers:
                break
            self._serial += 1
            wid = f"fleet-{self._serial}"
            self.handles[wid] = self.spawner.spawn(self.spool, wid)
            self.stats["spawned"] += 1

    def _retire(self):
        """Terminate spawned workers above the floor (LIFO)."""
        excess = len(self.handles) - self.min_workers
        for wid in sorted(self.handles, reverse=True)[:max(0, excess)]:
            handle = self.handles.pop(wid)
            handle.terminate()
            handle.wait(timeout=5.0)
            self.stats["retired"] += 1

    # -- lifecycle -----------------------------------------------------------

    def shutdown_requested(self):
        return os.path.exists(os.path.join(self.spool,
                                           SHUTDOWN_SENTINEL))

    def run(self, duration=None, until_idle=False):
        """Supervise until shutdown/duration/idle; returns the stats.

        ``until_idle=True`` exits once the spool is empty *and* every
        spawned worker has retired — the mode the fleet demo and tests
        use; a production fleet runs open-ended with ``duration=None``
        until the :data:`~repro.sweep.distributed.SHUTDOWN_SENTINEL`
        appears.
        """
        if duration is not None:
            require_positive(duration, "duration")
        started = self.clock.monotonic()
        while not self.shutdown_requested():
            if (duration is not None
                    and self.clock.monotonic() - started >= duration):
                break
            state = self.step()
            if (until_idle and not self.handles
                    and not state["queued"] and not state["claimed"]
                    and self._idle_since is not None):
                break
            self.clock.sleep(self.poll)
        self._shutdown()
        return self.stats

    def _shutdown(self):
        """Terminate whatever is still ours (idempotent)."""
        for wid in list(self.handles):
            handle = self.handles.pop(wid)
            handle.terminate()
            handle.wait(timeout=5.0)
            self.stats["retired"] += 1


def run_fleet(spool=None, latency_target=30.0, chunk_cost=1.0,
              min_workers=0, max_workers=8, idle_grace=10.0,
              poll=0.5, duration=None, until_idle=False):
    """CLI entry point behind ``repro fleet``; returns an exit code."""
    try:
        supervisor = FleetSupervisor(
            spool=spool, latency_target=latency_target,
            chunk_cost=chunk_cost, min_workers=min_workers,
            max_workers=max_workers, idle_grace=idle_grace, poll=poll)
    except ValueError as exc:
        print(str(exc))
        return 1
    stats = supervisor.run(duration=duration, until_idle=until_idle)
    print(f"fleet over {supervisor.spool}: spawned "
          f"{stats['spawned']} worker(s) (peak {stats['peak_workers']}"
          f"), {stats['restarts']} restart(s), {stats['crashes']} "
          f"crash(es), retired {stats['retired']}")
    return 0


def add_fleet_arguments(parser):
    """Attach the fleet flag set (the ``repro fleet`` CLI surface)."""
    parser.add_argument("--spool", default=None,
                        help=f"spool directory to supervise (default: "
                             f"${SWEEP_SPOOL_ENV})")
    parser.add_argument("--latency-target", type=float, default=30.0,
                        help="seconds the queue should drain within "
                             "(scaling setpoint)")
    parser.add_argument("--chunk-cost", type=float, default=1.0,
                        help="estimated seconds per queued chunk")
    parser.add_argument("--min-workers", type=int, default=0,
                        help="fleet floor kept alive even when idle")
    parser.add_argument("--max-workers", type=int, default=8,
                        help="fleet ceiling")
    parser.add_argument("--idle-grace", type=float, default=10.0,
                        help="seconds of empty spool before spawned "
                             "workers retire")
    parser.add_argument("--poll", type=float, default=0.5,
                        help="seconds between supervision steps")
    parser.add_argument("--duration", type=float, default=None,
                        help="stop supervising after this many "
                             "seconds (default: run until the "
                             "shutdown sentinel)")
    parser.add_argument("--until-idle", action="store_true",
                        help="exit once the spool drains and every "
                             "spawned worker has retired")
    return parser
