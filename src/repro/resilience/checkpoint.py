"""Atomic, checksummed run checkpoints: crash-tolerant Monte Carlo.

A chip-scale reliability campaign is hours of seeded draws; a process
crash at 97% used to mean starting over. This module makes every
:class:`~repro.memsys.engine.ReliabilityEngine` run resumable: at batch
boundaries the engine snapshots its complete dynamic state — bitplane
(or dense) array state, the RNG generator state, every result counter,
workload/scrub stream state — through a :class:`RunCheckpointer`, and a
resumed run replays *nothing*: it restores the generator mid-stream and
continues, producing results byte-identical to the uninterrupted run
(asserted by the resilience test suite for both samplers and flat +
banked topologies).

Durability rules, in the same spirit as the kernel disk cache:

* **Writes are atomic.** Payloads serialize to a temp file and
  ``replace`` into place; a reader never observes a torn checkpoint.
* **Checksums gate reads.** The header carries a SHA-256 of the
  payload; any mismatch (truncation, bitrot, a fault plan's corruption)
  is *detected*, counted, warned about — and survived: the caller falls
  back to a clean restart, never to wrong numbers.
* **Staleness is corruption's sibling.** Each checkpoint embeds a key
  derived from the engine configuration and run shape; resuming against
  a checkpoint written by a different run degrades to a clean restart
  with a counted :class:`~repro.errors.ResilienceWarning`.
* **Write failures never kill the run.** A checkpoint that cannot be
  written (disk full, EIO from the fault harness) costs future
  resumability, not the run in progress.

All file IO flows through the :class:`~repro.resilience.shims
.FileSystem` shim, which is how the fault-injection harness drives
EIO-on-rename and corrupt-checkpoint scenarios deterministically.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import struct
import uuid
import warnings

from ..errors import (
    IntegrityError,
    ParameterError,
    ResilienceWarning,
    RunIdentityError,
)
from ..integrity.manifest import (
    blob_digest,
    canonical,
    identity_diff,
    load_sealed,
    write_sealed,
)
from ..validation import require_positive
from .shims import REAL_FS

#: File-format sanity marker + version (bump to invalidate old files).
_MAGIC = b"RCHKPT01"

#: Header: magic, payload length (u64), SHA-256 digest (32 bytes).
_HEADER = struct.Struct("<8sQ32s")

_SUFFIX = ".ckpt"

#: Per-tag manifest sidecar suffix (``<tag>.manifest.json``): a sealed
#: JSON record of the checkpoint blob's digest plus the run identity,
#: so ``repro audit`` can verify checkpoints without unpickling them.
_SIDECAR_SUFFIX = ".manifest.json"

#: Per-batch digest history entries kept in a sidecar.
_SIDECAR_HISTORY = 64


def checkpoint_key(parts):
    """Stable hex key of a run's identity (config + shape).

    ``parts`` is any repr-deterministic structure (the engine hashes
    its config dict plus the transaction/batch shape). A resumed run
    whose key disagrees with the stored one is a *different* run and
    must not inherit the state.
    """
    raw = repr(parts).encode("utf-8")
    return hashlib.sha256(raw).hexdigest()[:32]


def _encode(payload):
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(body).digest()
    return _HEADER.pack(_MAGIC, len(body), digest) + body


def _decode(blob):
    """Payload of one checkpoint blob; raises ``ValueError`` when it
    cannot be trusted (bad magic, truncation, checksum mismatch)."""
    if len(blob) < _HEADER.size:
        raise ValueError("checkpoint shorter than its header")
    magic, length, digest = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise ValueError("checkpoint magic/version mismatch")
    body = blob[_HEADER.size:]
    if len(body) != length:
        raise ValueError(
            f"checkpoint truncated: {len(body)} of {length} bytes")
    if hashlib.sha256(body).digest() != digest:
        raise ValueError("checkpoint checksum mismatch")
    try:
        return pickle.loads(body)
    except Exception as exc:
        raise ValueError(f"checkpoint payload undecodable: {exc!r}")


class CheckpointManager:
    """A directory of named, atomic, checksummed checkpoint files.

    Parameters
    ----------
    directory:
        Where checkpoints live; created on first save.
    fs:
        A :class:`~repro.resilience.shims.FileSystem`; the default is
        the real one. The fault harness substitutes a failing double.
    """

    def __init__(self, directory, fs=None):
        if not directory:
            raise ParameterError("checkpoint directory must be a path")
        self.directory = str(directory)
        self.fs = fs if fs is not None else REAL_FS
        self.saves = 0
        self.save_failures = 0
        self.corrupt_fallbacks = 0
        self.stale_fallbacks = 0

    def _path(self, tag):
        if not tag or "/" in tag or "\\" in tag or tag.startswith("."):
            raise ParameterError(f"bad checkpoint tag {tag!r}")
        return f"{self.directory}/{tag}{_SUFFIX}"

    def _sidecar_path(self, tag):
        return f"{self.directory}/{tag}{_SIDECAR_SUFFIX}"

    def _write_sidecar(self, tag, payload, blob):
        """Best-effort sealed manifest next to the checkpoint file.

        Carries the blob's full digest, the run identity, and a capped
        per-batch digest history. Deliberately written through plain
        ``os`` rather than the fault-injection filesystem shim: the
        sidecar is an advisory audit artifact, and its bookkeeping
        writes must not perturb the scheduled fault ordinals the chaos
        plans count on. Failures are swallowed — a missing sidecar
        costs auditability, never the run.
        """
        path = self._sidecar_path(tag)
        snapshot = {"done": payload.get("done"),
                    "sha256": blob_digest(blob)}
        try:
            history = load_sealed(path).get("snapshots", [])
        except (IntegrityError, OSError):
            history = []
        history = (list(history) + [snapshot])[-_SIDECAR_HISTORY:]
        record = {
            "kind": "checkpoint",
            "tag": str(tag),
            "key": payload.get("key"),
            "identity": payload.get("identity"),
            "complete": bool(payload.get("complete", False)),
            "done": payload.get("done"),
            "sha256": snapshot["sha256"],
            "bytes": len(blob),
            "snapshots": history,
        }
        try:
            # canonical() makes the record JSON-safe whatever the
            # identity values are (numpy scalars collapse to native).
            write_sealed(path, canonical(record))
        except (OSError, TypeError, ValueError):  # pragma: no cover
            pass

    def save(self, tag, payload):
        """Atomically persist ``payload`` under ``tag``.

        Returns True on success. Failure (any ``OSError`` from the
        filesystem) is counted, warned about once per call, and
        swallowed — checkpointing protects the run, it must never be
        the thing that kills it.
        """
        path = self._path(tag)
        tmp = (f"{self.directory}/.tmp-{uuid.uuid4().hex[:8]}-"
               f"{tag}{_SUFFIX}")
        blob = _encode(payload)
        try:
            self.fs.makedirs(self.directory)
            self.fs.write_bytes(tmp, blob)
            self.fs.replace(tmp, path)
        except OSError as exc:
            self.save_failures += 1
            try:
                self.fs.unlink(tmp)
            except OSError:
                pass
            warnings.warn(
                f"checkpoint save failed for {path!r} ({exc}); the "
                f"run continues without this snapshot",
                ResilienceWarning, stacklevel=2)
            return False
        self.saves += 1
        self._write_sidecar(tag, payload, blob)
        return True

    def load(self, tag, expect_key=None, identity=None):
        """The payload stored under ``tag``, or None with a counted
        warning when it is absent, corrupt, or stale.

        ``expect_key`` (from :func:`checkpoint_key`) guards against
        resuming a different run's state: a mismatch is a *stale*
        fallback, distinct from corruption in the counters.

        ``identity`` (a flat dict of run-identity fields) upgrades the
        stale fallback to a hard :class:`~repro.errors
        .RunIdentityError` naming the differing fields: an explicit
        ``--resume`` against the wrong run's checkpoint is an operator
        error to surface, not a silent fresh start. It also catches
        mismatches the key is blind to (the seed is not part of
        :func:`checkpoint_key`, because resume restores the generator
        mid-stream).
        """
        path = self._path(tag)
        try:
            blob = self.fs.read_bytes(path)
        except FileNotFoundError:
            return None
        except OSError as exc:
            self.corrupt_fallbacks += 1
            warnings.warn(
                f"checkpoint {path!r} unreadable ({exc}); falling "
                f"back to a clean restart", ResilienceWarning,
                stacklevel=2)
            return None
        try:
            payload = _decode(blob)
        except ValueError as exc:
            self.corrupt_fallbacks += 1
            warnings.warn(
                f"checkpoint {path!r} corrupt ({exc}); falling back "
                f"to a clean restart", ResilienceWarning, stacklevel=2)
            return None
        if not self._sidecar_agrees(tag, blob):
            self.corrupt_fallbacks += 1
            warnings.warn(
                f"checkpoint {path!r} disagrees with its manifest "
                f"sidecar (tamper or swapped file); falling back to a "
                f"clean restart", ResilienceWarning, stacklevel=2)
            return None
        if expect_key is not None and payload.get("key") != expect_key:
            if identity is not None:
                diff = identity_diff(identity, payload.get("identity"))
                raise RunIdentityError(
                    f"checkpoint {path!r} was written by a different "
                    f"run; refusing to resume it. Differing fields: "
                    + "; ".join(diff))
            self.stale_fallbacks += 1
            warnings.warn(
                f"checkpoint {path!r} belongs to a different run "
                f"(stale configuration); falling back to a clean "
                f"restart", ResilienceWarning, stacklevel=2)
            return None
        stored_identity = payload.get("identity")
        if (identity is not None and isinstance(stored_identity, dict)
                and stored_identity
                and canonical(stored_identity) != canonical(identity)):
            diff = identity_diff(identity, stored_identity)
            raise RunIdentityError(
                f"checkpoint {path!r} matches this run's configuration "
                f"key but not its identity; refusing to resume it. "
                f"Differing fields: " + "; ".join(diff))
        return payload

    def _sidecar_agrees(self, tag, blob):
        """False only when a *valid* sidecar contradicts the blob.

        An absent or unreadable sidecar proves nothing (pre-sidecar
        checkpoints, a torn sidecar write) and must not fail loads —
        the blob's own checksum already gates corruption; the sidecar
        catches wholesale file replacement.
        """
        path = self._sidecar_path(tag)
        if not os.path.exists(path):
            return True
        try:
            record = load_sealed(path)
        except IntegrityError:
            return True
        return record.get("sha256") == blob_digest(blob)

    def delete(self, tag):
        """Remove ``tag``'s checkpoint and sidecar (no-op when absent)."""
        try:
            self.fs.unlink(self._path(tag))
        except OSError:
            pass
        try:
            os.unlink(self._sidecar_path(tag))
        except OSError:
            pass

    def tags(self):
        """Sorted tags currently stored (completed or in-flight)."""
        try:
            names = self.fs.listdir(self.directory)
        except OSError:
            return []
        return sorted(name[:-len(_SUFFIX)] for name in names
                      if name.endswith(_SUFFIX)
                      and not name.startswith("."))

    def stats(self):
        """Counters for run summaries and the resilience tests."""
        return {
            "directory": self.directory,
            "saves": self.saves,
            "save_failures": self.save_failures,
            "corrupt_fallbacks": self.corrupt_fallbacks,
            "stale_fallbacks": self.stale_fallbacks,
        }


class RunCheckpointer:
    """Cadence + identity policy over one engine run's checkpoints.

    Parameters
    ----------
    manager:
        The :class:`CheckpointManager` (or a directory path, wrapped
        on the spot).
    tag:
        File name of this run's checkpoint within the manager's
        directory (topology runs use one tag per shard).
    every:
        Minimum transactions between snapshots; None snapshots at
        every batch boundary.
    """

    def __init__(self, manager, tag="run", every=None):
        if isinstance(manager, str):
            manager = CheckpointManager(manager)
        if not isinstance(manager, CheckpointManager):
            raise ParameterError(
                f"manager must be a CheckpointManager or path, got "
                f"{type(manager)!r}")
        if every is not None:
            require_positive(every, "every")
        self.manager = manager
        self.tag = str(tag)
        self.every = None if every is None else int(every)
        self._last_saved = None

    def restore(self, key, identity=None):
        """The saved run state matching ``key``, or None.

        ``identity`` makes a mismatch a hard
        :class:`~repro.errors.RunIdentityError` (see
        :meth:`CheckpointManager.load`).
        """
        payload = self.manager.load(self.tag, expect_key=key,
                                    identity=identity)
        if payload is not None:
            self._last_saved = payload.get("done")
        return payload

    def maybe_save(self, done, payload_fn):
        """Snapshot at a batch boundary if the cadence is due.

        ``payload_fn()`` builds the state dict lazily so an off-cadence
        boundary costs one comparison, not a serialization.
        """
        if (self.every is not None and self._last_saved is not None
                and done - self._last_saved < self.every):
            return False
        payload = payload_fn()
        payload["done"] = int(done)
        if self.manager.save(self.tag, payload):
            self._last_saved = int(done)
            return True
        return False

    def finalize(self, key, result, identity=None):
        """Persist the completed run's result.

        A resume of a finished run then returns the stored result
        outright — which is what lets a multi-shard topology resume
        skip its completed shards entirely.
        """
        self.manager.save(self.tag, {
            "key": key, "complete": True, "result": result,
            "done": getattr(result, "n_transactions", None),
            "identity": identity,
        })


def as_checkpointer(checkpoint, tag="run", every=None):
    """Coerce a path / manager / checkpointer into a RunCheckpointer.

    The one spot that defines what the engine's ``checkpoint=``
    argument accepts; None passes through (checkpointing off).
    """
    if checkpoint is None:
        return None
    if isinstance(checkpoint, RunCheckpointer):
        return checkpoint
    return RunCheckpointer(checkpoint if isinstance(
        checkpoint, CheckpointManager) else CheckpointManager(
        str(checkpoint)), tag=tag, every=every)


def corrupt_checkpoint(path, offset=-8, flip=0x01):
    """Flip one payload byte of a checkpoint file (test/chaos helper).

    Deterministic by construction — ``offset`` indexes into the file
    (negative from the end, i.e. inside the pickled payload) and
    ``flip`` XORs that byte — so the corruption-fallback scenario in
    the chaos matrix is reproducible bit-for-bit.
    """
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    if not blob:
        raise ParameterError(f"cannot corrupt empty file {path!r}")
    blob[offset] ^= flip
    with io.open(path, "wb") as handle:
        handle.write(bytes(blob))
