"""Resilient run lifecycle: checkpoints, fleet supervision, faults.

Chip-scale Monte-Carlo campaigns run for hours across many processes;
this subpackage is what lets them survive the real world — crashes,
poison chunks, corrupt files, flapping workers — without ever trading
away the library's core contract that seeded runs are byte-identical:

* :mod:`repro.resilience.checkpoint` — atomic, checksummed engine
  checkpoints (:class:`CheckpointManager` / :class:`RunCheckpointer`):
  a killed run resumes mid-stream, byte-identical to the uninterrupted
  run; corrupt or stale checkpoints fall back to a clean restart with
  a counted :class:`~repro.errors.ResilienceWarning`.
* :mod:`repro.resilience.supervisor` — the worker-fleet supervisor
  (:class:`FleetSupervisor`, ``repro fleet``): spawns ``repro worker``
  processes when queue-depth x chunk-cost exceeds a latency target,
  restarts crashes with exponential backoff + jitter, retires the
  fleet on idle.
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker` and
  :class:`RetryPolicy`, the failure-aware pacing shared by the service
  layer and the supervisor.
* :mod:`repro.resilience.faults` — the deterministic fault-injection
  harness (:class:`FaultPlan`): seeded kill-worker / poison-chunk /
  corrupt-checkpoint / EIO-on-rename / stall-heartbeat scenarios
  behind the :mod:`~repro.resilience.shims` seams, reused by the unit
  tests and the CI chaos leg.

Quick start::

    from repro.resilience import CheckpointManager

    engine = build_engine(device, rows=64, cols=64)
    ckpt = CheckpointManager("/tmp/campaign")
    result = engine.run(10**6, rng=np.random.default_rng(7),
                        checkpoint=ckpt, resume=True)   # crash-safe
"""

from .breaker import CircuitBreaker, RetryPolicy, call_with_retry
from .checkpoint import (
    CheckpointManager,
    RunCheckpointer,
    as_checkpointer,
    checkpoint_key,
    corrupt_checkpoint,
)
from .faults import (
    FAULT_KINDS,
    FaultClock,
    FaultPlan,
    FaultyFileSystem,
    WorkerFaults,
    WorkerKilled,
)
from .shims import REAL_CLOCK, REAL_FS, Clock, FileSystem, ProcessSpawner
from .supervisor import (
    FleetSupervisor,
    SpoolView,
    add_fleet_arguments,
    run_fleet,
)

__all__ = [
    "FAULT_KINDS",
    "REAL_CLOCK",
    "REAL_FS",
    "CheckpointManager",
    "CircuitBreaker",
    "Clock",
    "FaultClock",
    "FaultPlan",
    "FaultyFileSystem",
    "FileSystem",
    "FleetSupervisor",
    "ProcessSpawner",
    "RetryPolicy",
    "RunCheckpointer",
    "SpoolView",
    "WorkerFaults",
    "WorkerKilled",
    "add_fleet_arguments",
    "as_checkpointer",
    "call_with_retry",
    "checkpoint_key",
    "corrupt_checkpoint",
    "run_fleet",
]
