"""Injectable OS shims: filesystem, clock, process control.

Every resilience mechanism in this package — checkpoint writes, fleet
supervision, retry backoff — ultimately talks to the operating system,
and the operating system is exactly what the fault-injection harness
(:mod:`repro.resilience.faults`) needs to control. These shims are the
seam: production code holds a shim object and calls through it; the
default singletons delegate straight to ``os``/``time``/``subprocess``
with no overhead worth measuring, while the harness substitutes
deterministic doubles that fail on schedule.

The shims are deliberately *narrow*: they expose only the operations
the resilience layer performs (atomic replace, byte-level file IO,
directory scans, monotonic time, sleeping, worker-process lifecycle),
so a fault plan enumerates a small, meaningful fault space instead of
"any syscall anywhere".
"""

from __future__ import annotations

import os
import subprocess
import sys
import time


class FileSystem:
    """The real filesystem: thin delegating wrappers around ``os``.

    :class:`~repro.resilience.faults.FaultyFileSystem` subclasses this
    and overrides individual operations to fail (or corrupt) on a
    seeded schedule; everything it does not override falls through to
    the real thing.
    """

    def makedirs(self, path):
        os.makedirs(path, exist_ok=True)

    def exists(self, path):
        return os.path.exists(path)

    def listdir(self, path):
        return os.listdir(path)

    def unlink(self, path):
        os.unlink(path)

    def replace(self, src, dst):
        """Atomic rename — the commit point of every durable write."""
        os.replace(src, dst)

    def read_bytes(self, path):
        with open(path, "rb") as handle:
            return handle.read()

    def write_bytes(self, path, data):
        with open(path, "wb") as handle:
            handle.write(data)


class Clock:
    """The real clock: ``time.monotonic``/``time.time``/``time.sleep``.

    Supervisor loops and retry backoff read time and sleep only through
    a clock object, so tests (and the fault harness) can run hours of
    supervision in microseconds with a manually advanced
    :class:`~repro.resilience.faults.FaultClock`.
    """

    def monotonic(self):
        return time.monotonic()

    def time(self):
        return time.time()

    def sleep(self, seconds):
        time.sleep(seconds)


class WorkerHandle:
    """One spawned worker process (the supervisor's view of it)."""

    def __init__(self, process, worker_id):
        self._process = process
        self.worker_id = worker_id

    @property
    def pid(self):
        return self._process.pid

    def alive(self):
        return self._process.poll() is None

    def returncode(self):
        return self._process.poll()

    def terminate(self):
        if self.alive():
            self._process.terminate()

    def wait(self, timeout=None):
        try:
            self._process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self._process.kill()
            self._process.wait(timeout=5.0)


class ProcessSpawner:
    """Spawns real ``repro worker`` subprocesses against a spool.

    The spawned interpreter inherits this process's environment (so
    ``PYTHONPATH``/``REPRO_KERNEL_CACHE`` travel) and serves the spool
    with ``--max-idle``/``--timeout`` bounds, so an orphaned worker —
    its supervisor killed — still drains instead of running forever.
    """

    def __init__(self, max_idle=30.0, timeout=None):
        self.max_idle = max_idle
        self.timeout = timeout

    def spawn(self, spool, worker_id):
        argv = [sys.executable, "-m", "repro.cli", "worker",
                "--spool", str(spool), "--id", str(worker_id)]
        if self.max_idle is not None:
            argv += ["--max-idle", str(self.max_idle)]
        if self.timeout is not None:
            argv += ["--timeout", str(self.timeout)]
        process = subprocess.Popen(
            argv, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        return WorkerHandle(process, worker_id)


#: Default shim singletons: the real operating system.
REAL_FS = FileSystem()
REAL_CLOCK = Clock()
