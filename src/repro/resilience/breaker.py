"""Circuit breaker and retry-with-backoff: failure-aware pacing.

Two small, clock-injected state machines shared by the service layer
and the fleet supervisor:

* :class:`CircuitBreaker` — classic closed → open → half-open. The
  service keeps one per operation; after ``failure_threshold``
  consecutive runner failures the breaker opens and the server answers
  degraded (cached data when it has any) instead of queueing more work
  onto a failing backend. After ``reset_timeout`` one probe request is
  let through (half-open); success closes the breaker, failure re-opens
  it for another full window.

* :class:`RetryPolicy` — exponential backoff with seeded jitter.
  ``delay(attempt)`` is a pure function of ``(base, factor, cap, seed,
  attempt)``, so supervisor restart schedules are deterministic under
  test while still decorrelating real fleets (different worker ids seed
  different streams).

Neither class sleeps on its own; callers ask and act. That keeps both
usable from asyncio (service) and plain threads (supervisor) alike.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..validation import require_positive
from .shims import REAL_CLOCK

#: Breaker states (strings on purpose: they go straight into /stats).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with timed half-open probes.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that open the breaker.
    reset_timeout:
        Seconds the breaker stays open before allowing one probe.
    clock:
        Injectable clock (tests advance a FaultClock through a full
        open → half-open → closed cycle without sleeping).
    """

    def __init__(self, failure_threshold=5, reset_timeout=30.0,
                 clock=None):
        require_positive(failure_threshold, "failure_threshold")
        require_positive(reset_timeout, "reset_timeout")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.clock = clock if clock is not None else REAL_CLOCK
        self.state = CLOSED
        self.failures = 0
        self.opened = 0
        self.rejected = 0
        self._opened_at = None

    def allow(self):
        """May a request proceed right now?

        While open, requests are rejected (and counted) until the
        reset window elapses; the first request after that transitions
        to half-open and is allowed as the probe.
        """
        if self.state == OPEN:
            if (self.clock.monotonic() - self._opened_at
                    >= self.reset_timeout):
                self.state = HALF_OPEN
                return True
            self.rejected += 1
            return False
        return True

    def record_success(self):
        """A request finished cleanly; close and reset."""
        self.state = CLOSED
        self.failures = 0
        self._opened_at = None

    def record_failure(self):
        """A request failed; open on threshold or failed probe."""
        self.failures += 1
        if (self.state == HALF_OPEN
                or self.failures >= self.failure_threshold):
            self.state = OPEN
            self.opened += 1
            self._opened_at = self.clock.monotonic()
            self.failures = 0

    def stats(self):
        return {
            "state": self.state,
            "consecutive_failures": self.failures,
            "times_opened": self.opened,
            "rejected": self.rejected,
        }


class RetryPolicy:
    """Exponential backoff with seeded jitter.

    ``delay(attempt)`` for attempt ``k`` (1-based) is
    ``min(cap, base * factor**(k-1)) * u`` with ``u`` drawn uniformly
    from ``[1 - jitter, 1 + jitter]`` by a generator seeded at
    construction — deterministic per policy instance, decorrelated
    across instances with different seeds.
    """

    def __init__(self, base=0.5, factor=2.0, cap=30.0, jitter=0.25,
                 max_attempts=None, seed=0):
        require_positive(base, "base")
        if factor < 1.0:
            raise ParameterError(
                f"factor must be >= 1, got {factor}")
        require_positive(cap, "cap")
        if not 0.0 <= jitter < 1.0:
            raise ParameterError(
                f"jitter must be in [0, 1), got {jitter}")
        self.base = float(base)
        self.factor = float(factor)
        self.cap = float(cap)
        self.jitter = float(jitter)
        self.max_attempts = (None if max_attempts is None
                             else int(max_attempts))
        self._rng = np.random.default_rng(seed)

    def delay(self, attempt):
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ParameterError(
                f"attempt must be >= 1, got {attempt}")
        raw = min(self.cap, self.base * self.factor ** (attempt - 1))
        if self.jitter:
            raw *= float(self._rng.uniform(1.0 - self.jitter,
                                           1.0 + self.jitter))
        return raw

    def exhausted(self, attempt):
        """True when ``attempt`` retries have used up the budget."""
        return (self.max_attempts is not None
                and attempt >= self.max_attempts)


def call_with_retry(func, policy, clock=None, retry_on=Exception,
                    on_retry=None):
    """Run ``func()`` with the policy's backoff between failures.

    The synchronous helper behind spool-dispatch retry: transient
    broker errors (a spool directory racing into existence, an NFS
    hiccup) retry with backoff; the final failure propagates.
    ``on_retry(attempt, exc)`` observes each retry for logging/stats.
    """
    clock = clock if clock is not None else REAL_CLOCK
    attempt = 0
    while True:
        try:
            return func()
        except retry_on as exc:
            attempt += 1
            if policy.exhausted(attempt):
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            clock.sleep(policy.delay(attempt))
