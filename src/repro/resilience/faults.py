"""Deterministic fault injection: seeded plans behind the OS shims.

Hope is not a resilience strategy. Every recovery path in this package
— checkpoint-corruption fallback, stale-claim requeue, poison-chunk
quarantine, crash-restart backoff — is exercised by *injecting* the
fault it guards against, deterministically, from a seeded
:class:`FaultPlan`. The same plans drive the unit tests and the CI
``chaos-smoke`` leg, so a recovery path that regresses fails a test
instead of failing a campaign.

The harness never monkeypatches. Faults enter through the same
injectable seams production code already uses:

* :class:`FaultyFileSystem` — a :class:`~repro.resilience.shims
  .FileSystem` that raises ``EIO`` on scheduled operations (the
  canonical plan: fail the atomic ``replace`` that commits a
  checkpoint).
* :class:`FaultClock` — a manually advanced clock, so heartbeat
  timeouts and retry backoff run in microseconds of real time.
* :class:`WorkerFaults` — hooks a :class:`~repro.sweep.distributed
  .SpoolWorker` consults mid-chunk: ``kill-worker-at-chunk-N`` raises
  :class:`WorkerKilled` (a ``BaseException``, so the worker's normal
  ``Exception`` absorption does *not* catch it — the claim goes stale
  exactly as if the process had been OOM-killed), and
  ``stall-heartbeat`` freezes the heartbeat file for a chunk so the
  broker sees a dead worker that is actually alive.
* :func:`~repro.resilience.checkpoint.corrupt_checkpoint` — flips a
  payload byte so the checksum gate must catch it.

Determinism contract: a plan is constructed from ``(seed, spec)``
only; two harness runs with the same plan observe the same faults at
the same points. No wall clock, no real randomness.
"""

from __future__ import annotations

import errno
import os

import numpy as np

from ..errors import ParameterError
from .shims import Clock, FileSystem


class WorkerKilled(BaseException):
    """A worker 'process death' injected mid-chunk.

    Deliberately derived from ``BaseException``: the spool worker's
    chunk loop absorbs ``Exception`` into an error payload, but a real
    SIGKILL ships nothing — it leaves a claimed chunk with a cooling
    heartbeat. Raising past the absorption reproduces that exactly,
    in-process.
    """

    def __init__(self, worker_id, chunk):
        super().__init__(f"worker {worker_id!r} killed at chunk {chunk}")
        self.worker_id = worker_id
        self.chunk = chunk


def _eio(op, path):
    err = OSError(errno.EIO, f"injected EIO on {op}")
    err.filename = path
    return err


class FaultyFileSystem(FileSystem):
    """A filesystem that fails on schedule.

    Parameters
    ----------
    fail_replace_at:
        Iterable of 1-based ``replace`` call ordinals to fail with
        ``EIO`` — e.g. ``{2}`` fails the second checkpoint commit.
    fail_write_at:
        Same, for ``write_bytes`` ordinals.
    fail_replace_matching / fail_write_matching:
        Substring filter: only calls whose destination path contains
        it count toward (and suffer) the scheduled ordinals.

    Counting is per-instance and survives across runs, which is what
    lets a plan say "the 3rd checkpoint this campaign writes fails".
    """

    def __init__(self, fail_replace_at=(), fail_write_at=(),
                 fail_replace_matching=None, fail_write_matching=None):
        self.fail_replace_at = frozenset(int(n) for n in fail_replace_at)
        self.fail_write_at = frozenset(int(n) for n in fail_write_at)
        self.fail_replace_matching = fail_replace_matching
        self.fail_write_matching = fail_write_matching
        self.replace_calls = 0
        self.write_calls = 0
        self.injected = 0

    def replace(self, src, dst):
        if (self.fail_replace_matching is None
                or self.fail_replace_matching in str(dst)):
            self.replace_calls += 1
            if self.replace_calls in self.fail_replace_at:
                self.injected += 1
                raise _eio("replace", dst)
        super().replace(src, dst)

    def write_bytes(self, path, data):
        if (self.fail_write_matching is None
                or self.fail_write_matching in str(path)):
            self.write_calls += 1
            if self.write_calls in self.fail_write_at:
                self.injected += 1
                raise _eio("write", path)
        super().write_bytes(path, data)


class FaultClock(Clock):
    """A virtual clock advanced by hand (or by ``sleep``).

    ``sleep`` advances virtual time instead of blocking, so supervisor
    backoff schedules spanning minutes run instantly and the recorded
    ``sleeps`` list *is* the backoff schedule under test.
    """

    def __init__(self, start=1000.0):
        self._now = float(start)
        self.sleeps = []

    def monotonic(self):
        return self._now

    def time(self):
        return self._now

    def sleep(self, seconds):
        self.sleeps.append(float(seconds))
        self._now += float(seconds)

    def advance(self, seconds):
        self._now += float(seconds)


class WorkerFaults:
    """Per-worker fault hooks for :class:`~repro.sweep.distributed
    .SpoolWorker`.

    Parameters
    ----------
    kill_at_chunk:
        Chunk index at which the worker "dies" (:class:`WorkerKilled`
        raised before the chunk's result commits). ``kill_once=True``
        (default) arms it a single time, so the chunk succeeds on
        retry — the worker-crash-and-recover scenario. ``False`` kills
        every attempt — the poison-chunk scenario when combined with
        quarantine.
    fail_at_chunk:
        Chunk index at which the chunk *function* raises an ordinary
        error (shipped as an error payload, consuming an attempt).
        ``fail_once`` mirrors ``kill_once``.
    stall_heartbeat_at_chunk:
        Chunk index during which the worker's heartbeat ticker is
        frozen, so the broker declares the claim stale while the
        worker still runs.
    corrupt_result_at_chunk:
        Chunk index whose *committed result file* is damaged after the
        commit lands — the crash-mid-write the atomic rename cannot
        cover for (a dying disk, a torn page on a network mount).
        ``corrupt_mode`` picks the damage: ``"torn"`` flips one byte
        (``corrupt_offset``/``corrupt_flip``), ``"truncate"`` cuts the
        file to half its length. ``corrupt_once`` (default) arms it a
        single time, so the broker's digest-reject → retry path must
        recover the chunk.
    """

    def __init__(self, kill_at_chunk=None, kill_once=True,
                 fail_at_chunk=None, fail_once=True,
                 stall_heartbeat_at_chunk=None,
                 corrupt_result_at_chunk=None, corrupt_mode="torn",
                 corrupt_once=True, corrupt_offset=-8, corrupt_flip=0x01):
        if corrupt_mode not in ("torn", "truncate"):
            raise ParameterError(
                f"corrupt_mode must be 'torn' or 'truncate', got "
                f"{corrupt_mode!r}")
        self.kill_at_chunk = kill_at_chunk
        self.kill_once = bool(kill_once)
        self.fail_at_chunk = fail_at_chunk
        self.fail_once = bool(fail_once)
        self.stall_heartbeat_at_chunk = stall_heartbeat_at_chunk
        self.corrupt_result_at_chunk = corrupt_result_at_chunk
        self.corrupt_mode = corrupt_mode
        self.corrupt_once = bool(corrupt_once)
        self.corrupt_offset = int(corrupt_offset)
        self.corrupt_flip = int(corrupt_flip)
        self.kills = 0
        self.failures = 0
        self.stalls = 0
        self.corruptions = 0

    def on_chunk(self, worker_id, chunk):
        """Called by the worker before evaluating ``chunk``; raises
        the scheduled fault, if any."""
        if (self.kill_at_chunk is not None
                and chunk == self.kill_at_chunk
                and not (self.kill_once and self.kills)):
            self.kills += 1
            raise WorkerKilled(worker_id, chunk)
        if (self.fail_at_chunk is not None
                and chunk == self.fail_at_chunk
                and not (self.fail_once and self.failures)):
            self.failures += 1
            raise RuntimeError(
                f"injected chunk failure at chunk {chunk}")

    def heartbeat_stalled(self, chunk):
        """True while the heartbeat ticker must skip its touch."""
        stalled = (self.stall_heartbeat_at_chunk is not None
                   and chunk == self.stall_heartbeat_at_chunk)
        if stalled:
            self.stalls += 1
        return stalled

    def corrupt_result(self, path, chunk):
        """Called by the worker after committing ``chunk``'s result;
        applies the scheduled post-commit damage to ``path``, if any."""
        if (self.corrupt_result_at_chunk is None
                or chunk != self.corrupt_result_at_chunk
                or (self.corrupt_once and self.corruptions)):
            return
        try:
            if self.corrupt_mode == "truncate":
                size = os.path.getsize(path)
                with open(path, "r+b") as fh:
                    fh.truncate(size // 2)
            else:
                from .checkpoint import corrupt_checkpoint
                corrupt_checkpoint(path, offset=self.corrupt_offset,
                                   flip=self.corrupt_flip)
        except OSError:  # pragma: no cover - result already collected
            return
        self.corruptions += 1


#: The named scenarios the chaos matrix iterates. Each value builds
#: the plan's knobs from the plan RNG; keeping them here (not in the
#: CI yaml) means `pytest -k chaos` runs the identical matrix locally.
FAULT_KINDS = (
    "worker-kill",
    "poison-chunk",
    "corrupt-checkpoint",
    "eio-on-rename",
    "stall-heartbeat",
    "torn-write",
    "truncated-result",
)


class FaultPlan:
    """A seeded, self-describing bundle of faults for one scenario.

    ``FaultPlan(seed, kind)`` derives every fault parameter (which
    chunk dies, which byte flips, which rename fails) from
    ``np.random.default_rng(seed)``, so a failing chaos run reproduces
    from its two-value identity alone.
    """

    def __init__(self, seed, kind, n_chunks=4):
        if kind not in FAULT_KINDS:
            raise ParameterError(
                f"unknown fault kind {kind!r}; expected one of "
                f"{FAULT_KINDS}")
        self.seed = int(seed)
        self.kind = kind
        self.n_chunks = int(n_chunks)
        rng = np.random.default_rng(self.seed)
        self.target_chunk = int(rng.integers(0, self.n_chunks))
        self.corrupt_offset = -int(rng.integers(1, 64))
        self.corrupt_flip = int(rng.integers(1, 256))
        self.replace_ordinal = int(rng.integers(1, 3))

    def describe(self):
        return (f"FaultPlan(seed={self.seed}, kind={self.kind!r}, "
                f"chunk={self.target_chunk})")

    def worker_faults(self):
        """Hooks for the worker under this plan (None when the plan
        does not target the worker)."""
        if self.kind == "worker-kill":
            return WorkerFaults(kill_at_chunk=self.target_chunk)
        if self.kind == "poison-chunk":
            return WorkerFaults(fail_at_chunk=self.target_chunk,
                                fail_once=False)
        if self.kind == "stall-heartbeat":
            return WorkerFaults(
                stall_heartbeat_at_chunk=self.target_chunk)
        if self.kind == "torn-write":
            return WorkerFaults(
                corrupt_result_at_chunk=self.target_chunk,
                corrupt_mode="torn",
                corrupt_offset=self.corrupt_offset,
                corrupt_flip=self.corrupt_flip)
        if self.kind == "truncated-result":
            return WorkerFaults(
                corrupt_result_at_chunk=self.target_chunk,
                corrupt_mode="truncate")
        return None

    def filesystem(self):
        """Filesystem shim for this plan (the real one unless the
        plan attacks file IO)."""
        if self.kind == "eio-on-rename":
            return FaultyFileSystem(
                fail_replace_at={self.replace_ordinal})
        return FileSystem()

    def corrupt(self, path):
        """Apply this plan's deterministic byte-flip to ``path``."""
        from .checkpoint import corrupt_checkpoint
        corrupt_checkpoint(path, offset=self.corrupt_offset,
                           flip=self.corrupt_flip)
