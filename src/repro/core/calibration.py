"""Calibration of the intra-cell model against measured offset fields.

The paper measures ``Hz_s_intra`` (loop offsets) for devices of several
sizes and calibrates the bound-current model to match (Fig. 2b). The free
parameters are the *effective* areal moments of the two fixed layers — the
VSM blanket values of the real multilayer SAF reduce to exactly these two
numbers.

Because the stray field is linear in each layer's moment,

``Hz(ecd) = ms_rl * g_rl(ecd) + ms_hl * g_hl(ecd)``

where ``g_x`` is the field of layer ``x`` computed at unit magnetization,
the fit is a linear least-squares problem with an exact solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import CalibrationError
from ..fields import LoopCollection, layer_to_loops
from ..geometry import LayerRole
from ..stack import build_reference_stack
from ..units import am_to_oe


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of the intra-cell calibration fit.

    Attributes
    ----------
    rl_ms:
        Fitted effective RL magnetization [A/m] (direction +z).
    hl_ms:
        Fitted effective HL magnetization [A/m] (direction -z).
    rmse_oe:
        Root-mean-square residual of the fit [Oe].
    stack_builder:
        Callable ``ecd -> MTJStack`` using the fitted moments.
    """

    rl_ms: float
    hl_ms: float
    rmse_oe: float
    stack_builder: Callable

    def describe(self):
        """Summary dict (moments also as Ms*t products in mA)."""
        stack = self.stack_builder(50e-9)
        return {
            "rl_ms_am": self.rl_ms,
            "hl_ms_am": self.hl_ms,
            "rl_mst_ma": self.rl_ms * stack.reference_layer.thickness * 1e3,
            "hl_mst_ma": self.hl_ms * stack.hard_layer.thickness * 1e3,
            "rmse_oe": self.rmse_oe,
        }


def _unit_layer_field(layer, radius):
    """Hz at the FL center for the layer at unit Ms (signed by direction)."""
    unit_layer_material = layer.material.with_ms(1.0)
    from dataclasses import replace
    unit_layer = replace(layer, material=unit_layer_material)
    col = LoopCollection(layer_to_loops(unit_layer, radius))
    return float(col.field((0.0, 0.0, 0.0))[2])


def fit_effective_moments(ecds, hz_measured, stack_template=None):
    """Fit effective RL/HL magnetizations to measured center fields.

    Parameters
    ----------
    ecds:
        Device sizes [m] of the measured devices.
    hz_measured:
        Measured ``Hz_s_intra`` at the FL center [A/m] (negative for the
        reference stack family).
    stack_template:
        Callable ``ecd -> MTJStack`` fixing the geometry (thicknesses,
        positions); only the RL/HL ``Ms`` values are fitted. Defaults to
        the reference stack.

    Returns
    -------
    CalibrationResult

    Raises
    ------
    CalibrationError
        If the system is degenerate or the fit produces non-physical
        (negative) magnetizations.
    """
    ecds = np.asarray(ecds, dtype=float)
    hz = np.asarray(hz_measured, dtype=float)
    if ecds.shape != hz.shape or ecds.ndim != 1:
        raise CalibrationError(
            "ecds and hz_measured must be 1-D arrays of equal length")
    if ecds.size < 2:
        raise CalibrationError("need at least 2 sizes to fit 2 moments")
    template = (build_reference_stack if stack_template is None
                else stack_template)

    # Design matrix: columns are per-layer unit-Ms fields at each size.
    design = np.zeros((ecds.size, 2))
    for i, ecd in enumerate(ecds):
        stack = template(ecd)
        design[i, 0] = _unit_layer_field(stack.reference_layer,
                                         stack.radius)
        design[i, 1] = _unit_layer_field(stack.hard_layer, stack.radius)

    solution, _, rank, _ = np.linalg.lstsq(design, hz, rcond=None)
    if rank < 2:
        raise CalibrationError(
            "degenerate design matrix: the measured sizes cannot separate "
            "the RL and HL contributions")
    rl_ms, hl_ms = float(solution[0]), float(solution[1])
    if rl_ms <= 0.0 or hl_ms <= 0.0:
        raise CalibrationError(
            f"fit produced non-physical moments: rl_ms={rl_ms:.3g}, "
            f"hl_ms={hl_ms:.3g} (check the sign convention of the data)")

    residual = design @ solution - hz
    rmse_oe = am_to_oe(float(np.sqrt(np.mean(residual ** 2))))

    def builder(ecd, _template=template, _rl=rl_ms, _hl=hl_ms):
        stack = _template(ecd)
        stack = stack.with_layer_ms(LayerRole.REFERENCE, _rl)
        return stack.with_layer_ms(LayerRole.HARD, _hl)

    return CalibrationResult(rl_ms=rl_ms, hl_ms=hl_ms, rmse_oe=rmse_oe,
                             stack_builder=builder)
