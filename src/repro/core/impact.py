"""Performance-impact analyses (paper Section V).

Three analyses, one per paper figure family:

* :class:`IcAnalysis` — critical switching current vs pitch under the four
  stray-field cases (Fig. 4c),
* :class:`SwitchingTimeAnalysis` — Sun-model switching time vs write
  voltage at several pitches (Fig. 5),
* :class:`RetentionAnalysis` — thermal stability factor vs temperature and
  the worst-case retention corner (Fig. 6).

Each analysis names its stray-field cases the way the paper's legends do:

=============  ====================================================
``"ideal"``     no stray field (isolated, hypothetical)
``"intra"``     the device's own RL+HL field only
``"np0"``       intra + inter with all neighbors in P   (NP8 = 0)
``"np255"``     intra + inter with all neighbors in AP  (NP8 = 255)
=============  ====================================================
"""

from __future__ import annotations

import numpy as np

from ..arrays.coupling import InterCellCoupling
from ..arrays.pattern import ALL_AP, ALL_P
from ..device.mtj import MTJDevice, MTJState
from ..errors import ParameterError
from ..validation import require_positive

#: The stray-field case names, in presentation order.
CASES = ("ideal", "intra", "np0", "np255")


class _ImpactBase:
    """Shared stray-field bookkeeping of the impact analyses."""

    def __init__(self, device):
        if not isinstance(device, MTJDevice):
            raise ParameterError(
                f"device must be an MTJDevice, got {type(device)!r}")
        self.device = device
        self._intra = device.intra_stray_field()

    def _coupling(self, pitch):
        return InterCellCoupling(self.device.stack, pitch)

    def stray_field(self, case, pitch=None):
        """Total ``Hz_stray`` [A/m] for a named ``case``.

        ``pitch`` is required for the pattern cases ("np0"/"np255").
        """
        if case == "ideal":
            return 0.0
        if case == "intra":
            return self._intra
        if case in ("np0", "np255"):
            if pitch is None:
                raise ParameterError(
                    f"case {case!r} needs a pitch")
            pattern = ALL_P if case == "np0" else ALL_AP
            return self._intra + self._coupling(pitch).hz_inter_fast(
                pattern)
        raise ParameterError(
            f"unknown case {case!r}; expected one of {CASES}")


class IcAnalysis(_ImpactBase):
    """Critical current vs pitch under stray fields (paper Fig. 4c)."""

    def ic_vs_pitch(self, pitches, direction, case):
        """``Ic`` [A] at each pitch for one case and direction.

        The "ideal" and "intra" cases are pitch independent; they are
        broadcast to the pitch grid for uniform plotting.
        """
        pitches = np.asarray(pitches, dtype=float)
        values = np.empty_like(pitches)
        for i, pitch in enumerate(pitches):
            h = self.stray_field(case, pitch)
            values[i] = self.device.ic(direction, h)
        return values

    def table(self, pitches):
        """``{(direction, case): Ic array [A]}`` over ``pitches``."""
        out = {}
        for direction in ("AP->P", "P->AP"):
            for case in CASES:
                out[(direction, case)] = self.ic_vs_pitch(
                    pitches, direction, case)
        return out

    def anchors(self):
        """The three quoted Section V-A values [A]: ideal/AP->P/P->AP."""
        return {
            "ic0": self.device.ic0(),
            "ic_ap_p_intra": self.device.ic("AP->P", self._intra),
            "ic_p_ap_intra": self.device.ic("P->AP", self._intra),
        }


class SwitchingTimeAnalysis(_ImpactBase):
    """Switching time vs write voltage (paper Fig. 5).

    The paper shows the AP->P direction (the slow, worst-case one for this
    stack); the initial state is AP accordingly, but P->AP is supported.
    """

    def tw_vs_voltage(self, voltages, case, pitch=None,
                      initial_state=MTJState.AP):
        """``tw`` [s] at each voltage for one stray-field case."""
        voltages = np.asarray(voltages, dtype=float)
        h = self.stray_field(case, pitch)
        return np.array([
            self.device.switching_time(v, h, initial_state=initial_state)
            for v in voltages])

    def family(self, voltages, pitch):
        """``{case: tw array [s]}`` for all four cases at one pitch."""
        return {case: self.tw_vs_voltage(voltages, case, pitch)
                for case in CASES}

    def pattern_penalty(self, voltage, pitch):
        """``tw(NP8=0) - tw(NP8=255)`` [s] at one operating point.

        The paper's headline number: ~4 ns at 0.72 V and pitch=1.5 x eCD.
        Positive because NP8=0 makes the AP->P write slowest.
        """
        require_positive(voltage, "voltage")
        tw_np0 = self.tw_vs_voltage(np.array([voltage]), "np0", pitch)[0]
        tw_np255 = self.tw_vs_voltage(np.array([voltage]), "np255",
                                      pitch)[0]
        return tw_np0 - tw_np255


class RetentionAnalysis(_ImpactBase):
    """Thermal stability vs temperature (paper Fig. 6)."""

    def delta_vs_temperature(self, temperatures, state, case, pitch=None):
        """``Delta`` at each temperature [K] for one state and case."""
        temperatures = np.asarray(temperatures, dtype=float)
        h = self.stray_field(case, pitch)
        return np.array([
            self.device.delta(state, h, temperature=t)
            for t in temperatures])

    def delta0_vs_temperature(self, temperatures):
        """The intrinsic ``Delta0(T)`` reference curve."""
        temperatures = np.asarray(temperatures, dtype=float)
        return np.array([
            self.device.thermal_model.delta0_at(self.device.params.delta0,
                                                t)
            for t in temperatures])

    def family(self, temperatures, pitch):
        """Fig. 6a: ``{(state, case): Delta array}`` plus ``delta0``."""
        out = {"delta0": self.delta0_vs_temperature(temperatures)}
        for state in (MTJState.P, MTJState.AP):
            for case in ("intra", "np0", "np255"):
                out[(state.value, case)] = self.delta_vs_temperature(
                    temperatures, state, case, pitch)
        return out

    def worst_case_vs_temperature(self, temperatures, pitch):
        """Fig. 6b: the worst corner ``Delta_P(NP8=0)`` over temperature."""
        return self.delta_vs_temperature(temperatures, MTJState.P, "np0",
                                         pitch)

    def retention_margin(self, temperature, pitch, target_delta=40.0):
        """Worst-case ``Delta`` minus a target at one temperature [K]."""
        worst = self.delta_vs_temperature(
            np.array([temperature]), MTJState.P, "np0", pitch)[0]
        return worst - target_delta
