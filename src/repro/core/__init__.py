"""The paper's primary contribution: the magnetic coupling model.

* :mod:`repro.core.intra` — intra-cell stray field vs device size and its
  spatial profile (Sections III / IV-A),
* :mod:`repro.core.calibration` — fitting the effective layer moments to
  measured offset-field data (the Fig. 2b calibration),
* :mod:`repro.core.inter` — the 3x3 inter-cell extrapolation
  (Section IV-B),
* :mod:`repro.core.psi` — the coupling factor Psi and density threshold,
* :mod:`repro.core.impact` — the performance impact analyses behind
  Figs. 4c, 5 and 6.
"""

from .calibration import CalibrationResult, fit_effective_moments
from .impact import IcAnalysis, RetentionAnalysis, SwitchingTimeAnalysis
from .inter import InterCellModel
from .intra import IntraCellModel
from .psi import coupling_factor, psi_threshold_pitch, psi_vs_pitch

__all__ = [
    "CalibrationResult",
    "IcAnalysis",
    "InterCellModel",
    "IntraCellModel",
    "RetentionAnalysis",
    "SwitchingTimeAnalysis",
    "coupling_factor",
    "fit_effective_moments",
    "psi_threshold_pitch",
    "psi_vs_pitch",
]
