"""Inter-cell coupling model facade (paper Section IV-B).

Thin, paper-oriented wrapper around
:class:`repro.arrays.coupling.InterCellCoupling`: NP8 sweeps in oersted,
the Fig. 4a class table, and pitch sweeps of the field extremes.
"""

from __future__ import annotations

import numpy as np

from ..arrays.coupling import InterCellCoupling
from ..stack import build_reference_stack
from ..units import am_to_oe
from ..validation import require_positive


class InterCellModel:
    """Inter-cell stray-field model for one device size.

    Parameters
    ----------
    ecd:
        Device size [m].
    stack_builder:
        Callable ``ecd -> MTJStack``; defaults to the calibrated reference
        stack (pass a calibration result's builder to use fitted moments).
    """

    def __init__(self, ecd, stack_builder=None):
        require_positive(ecd, "ecd")
        self.ecd = float(ecd)
        builder = (build_reference_stack if stack_builder is None
                   else stack_builder)
        self.stack = builder(self.ecd)

    def coupling(self, pitch):
        """The :class:`InterCellCoupling` at ``pitch`` [m]."""
        return InterCellCoupling(self.stack, pitch)

    def class_table_oe(self, pitch):
        """Fig. 4a: ``{(n_direct, n_diag): Hz_s_inter [Oe]}``."""
        table = self.coupling(pitch).class_table()
        return {key: am_to_oe(value) for key, value in table.items()}

    def np8_sweep_oe(self, pitch):
        """``Hz_s_inter`` [Oe] for all 256 patterns at ``pitch``."""
        return am_to_oe(self.coupling(pitch).hz_inter_all())

    def extremes_oe(self, pitch):
        """(min, max) of ``Hz_s_inter`` [Oe] at ``pitch``."""
        lo, hi = self.coupling(pitch).extremes()
        return am_to_oe(lo), am_to_oe(hi)

    def steps_oe(self, pitch):
        """Per-neighbor-flip steps [Oe]: ``(direct, diagonal)``.

        The paper reports ~15 Oe per direct and ~5 Oe per diagonal flip at
        eCD = 55 nm, pitch = 90 nm.
        """
        kernels = self.coupling(pitch).kernels()
        return (am_to_oe(2.0 * abs(kernels.fl_direct)),
                am_to_oe(2.0 * abs(kernels.fl_diagonal)))

    def variation_vs_pitch(self, pitches):
        """Max pattern variation of ``Hz_s_inter`` [A/m] per pitch."""
        pitches = np.asarray(pitches, dtype=float)
        return np.array(
            [self.coupling(p).max_variation() for p in pitches])
