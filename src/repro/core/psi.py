"""The inter-cell magnetic coupling factor Psi.

The paper defines ``Psi = max-variation(Hz_s_inter) / Hc`` as the indicator
of inter-cell coupling strength, and identifies ``Psi ~ 2 %`` as the
operating point that maximizes density with negligible performance impact.
"""

from __future__ import annotations

import numpy as np

from ..arrays.coupling import InterCellCoupling
from ..errors import ParameterError
from ..stack import build_reference_stack
from ..validation import require_positive


def coupling_factor(stack, pitch, hc):
    """``Psi`` (dimensionless) for a stack/pitch/coercivity combination.

    Parameters
    ----------
    stack:
        The cell's :class:`~repro.stack.MTJStack`.
    pitch:
        Array pitch [m].
    hc:
        FL coercivity [A/m] (the paper uses the measured 2.2 kOe).
    """
    require_positive(hc, "hc")
    coupling = InterCellCoupling(stack, pitch)
    return coupling.max_variation() / hc


def psi_vs_pitch(ecd, pitches, hc, stack_builder=None):
    """``Psi`` for each pitch in ``pitches`` [m] (paper Fig. 4b).

    Returns a numpy array of the same length as ``pitches``.
    """
    require_positive(ecd, "ecd")
    builder = (build_reference_stack if stack_builder is None
               else stack_builder)
    stack = builder(ecd)
    pitches = np.asarray(pitches, dtype=float)
    if pitches.ndim != 1 or pitches.size == 0:
        raise ParameterError("pitches must be a non-empty 1-D array")
    return np.array(
        [coupling_factor(stack, pitch, hc) for pitch in pitches])


def psi_threshold_pitch(ecd, hc, psi_target=0.02, stack_builder=None,
                        pitch_bounds=None, tolerance=1e-11):
    """Smallest pitch [m] with ``Psi <= psi_target`` (bisection).

    ``Psi(pitch)`` decreases monotonically with pitch (fields fall off with
    distance), so the threshold is unique. The default target is the
    paper's 2 % density/reliability sweet spot.

    Parameters
    ----------
    ecd:
        Device size [m].
    hc:
        Coercivity [A/m].
    psi_target:
        The Psi level to solve for.
    stack_builder:
        Optional stack family override.
    pitch_bounds:
        (lo, hi) search bracket [m]; defaults to (1.5 * ecd, 400 nm).
    tolerance:
        Absolute pitch tolerance [m] of the bisection.
    """
    require_positive(psi_target, "psi_target")
    builder = (build_reference_stack if stack_builder is None
               else stack_builder)
    stack = builder(ecd)
    lo, hi = pitch_bounds if pitch_bounds else (1.5 * ecd, 400e-9)
    if lo >= hi:
        raise ParameterError(f"invalid pitch bounds ({lo}, {hi})")

    psi_lo = coupling_factor(stack, lo, hc)
    psi_hi = coupling_factor(stack, hi, hc)
    if psi_lo <= psi_target:
        return lo
    if psi_hi > psi_target:
        raise ParameterError(
            f"Psi={psi_hi:.4f} still above target {psi_target} at the "
            f"upper bound {hi*1e9:.0f} nm; widen pitch_bounds")

    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if coupling_factor(stack, mid, hc) > psi_target:
            lo = mid
        else:
            hi = mid
    return hi
