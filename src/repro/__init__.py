"""repro — magnetic coupling and density modeling for STT-MRAM arrays.

A reproduction of Wu et al., *Impact of Magnetic Coupling and Density on
STT-MRAM Performance* (DATE 2020). The library models intra- and inter-cell
magnetic coupling in perpendicular STT-MRAM arrays with a bound-current
magnetostatics solver, and evaluates the impact on the critical switching
current, the average switching time, and the thermal stability factor.

Quick start::

    from repro import MTJDevice, PAPER_EVAL_DEVICE, VictimAnalysis

    device = MTJDevice(PAPER_EVAL_DEVICE)       # the paper's 35 nm device
    victim = VictimAnalysis(device, pitch=70e-9)
    print(victim.summary())

Module map (device physics up to system questions):

* :mod:`repro.device` — one MTJ cell: stack, resistance, switching,
  retention, thermal scaling,
* :mod:`repro.fields` — bound-current magnetostatics solver,
* :mod:`repro.core` — the paper's intra/inter coupling models and Psi,
* :mod:`repro.arrays` — layout, NP8 data patterns, inter-cell coupling
  kernels, victim-cell analysis,
* :mod:`repro.apps` — engineering analyses (write error, read disturb,
  retention budget, design space, yield),
* :mod:`repro.memsys` — system level: array controller, traffic,
  Hamming SEC-DED, scrubbing, and the Monte-Carlo UBER engine — start
  here for "what error rate does the *system* deliver" questions,
* :mod:`repro.sweep` — generic parameter-sweep engine (named axes,
  serial/thread/process/chunked executors) that the design-space,
  memsys, and figure sweeps run on,
* :mod:`repro.experiments` / :mod:`repro.reporting` — figure-by-figure
  reproduction and rendering/export.

See ``examples/`` for runnable scenarios and ``python -m repro.cli`` for
the command-line front end.
"""

from . import memsys, sweep, units
from .apps import (
    ArrayYieldAnalysis,
    DesignSpaceExplorer,
    RetentionBudgetPlanner,
    WriteErrorModel,
)
from .arrays import (
    ArrayLayout,
    DataPattern,
    InterCellCoupling,
    NeighborhoodPattern,
    VictimAnalysis,
)
from .core import (
    IcAnalysis,
    InterCellModel,
    IntraCellModel,
    RetentionAnalysis,
    SwitchingTimeAnalysis,
    coupling_factor,
    fit_effective_moments,
    psi_threshold_pitch,
    psi_vs_pitch,
)
from .device import (
    DeviceParameters,
    MTJDevice,
    MTJState,
    PAPER_EVAL_DEVICE,
    ResistanceModel,
)
from .errors import (
    CalibrationError,
    GeometryError,
    MeasurementError,
    ParameterError,
    ReproError,
    SimulationError,
)
from .stack import MTJStack, build_reference_stack

__version__ = "1.0.0"

__all__ = [
    "ArrayLayout",
    "ArrayYieldAnalysis",
    "CalibrationError",
    "DesignSpaceExplorer",
    "RetentionBudgetPlanner",
    "WriteErrorModel",
    "DataPattern",
    "DeviceParameters",
    "GeometryError",
    "IcAnalysis",
    "InterCellCoupling",
    "InterCellModel",
    "IntraCellModel",
    "MTJDevice",
    "MTJStack",
    "MTJState",
    "MeasurementError",
    "NeighborhoodPattern",
    "PAPER_EVAL_DEVICE",
    "ParameterError",
    "ReproError",
    "ResistanceModel",
    "RetentionAnalysis",
    "SimulationError",
    "SwitchingTimeAnalysis",
    "VictimAnalysis",
    "build_reference_stack",
    "coupling_factor",
    "fit_effective_moments",
    "memsys",
    "psi_threshold_pitch",
    "psi_vs_pitch",
    "sweep",
    "units",
    "__version__",
]
