"""Memoized query results: bounded in-memory LRU + optional disk tier.

The memory tier is an :class:`collections.OrderedDict` LRU bounded by
``capacity`` entries; the disk tier is one JSON file per fingerprint
under ``<REPRO_KERNEL_CACHE>/service-results/`` — the same opt-in
environment variable (and the same "new physics keys new entries,
never invalidates old ones" story) as the kernel cache it lives next
to. Both tiers are keyed by :func:`~repro.service.protocol
.query_fingerprint`, so a warm directory survives server restarts and
is shared by every server pointed at it.

Every entry is stored in a manifest envelope — fingerprint, store
time, and a :func:`~repro.integrity.manifest.record_digest` of the
payload — and verified on read: a corrupt, tampered, or
wrong-fingerprint file is a counted miss (and deleted), never a wrong
answer. The store time powers two ages:

* ``get(key, max_age=...)`` — the memo TTL: entries older than
  ``max_age`` read as misses (but are *retained* — they may still
  serve stale).
* ``get_stale(key, max_age)`` — degraded-mode reads: the freshest
  entry within the (much longer) stale TTL, digest-verified, returned
  with its age so the server can tag the answer ``stale: true``.

Thread-safe: the server touches the cache from ``asyncio.to_thread``
workers as well as the event loop.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict

from ..arrays.kernel_disk import KERNEL_CACHE_ENV
from ..errors import ParameterError
from ..integrity.manifest import record_digest
from ..validation import require_int_in_range, require_positive

#: Subdirectory of ``REPRO_KERNEL_CACHE`` holding service results.
RESULTS_SUBDIR = "service-results"

#: Disk-envelope schema version.
ENVELOPE_VERSION = 1

_FINGERPRINT_LEN = 32


class ResultsCache:
    """Two-tier (memory LRU + optional disk) memo cache.

    Parameters
    ----------
    capacity:
        Maximum in-memory entries; least-recently-used beyond that are
        evicted (they remain on disk when a disk tier is attached).
    directory:
        Disk-tier directory. ``None`` (default) derives
        ``$REPRO_KERNEL_CACHE/service-results`` when the environment
        variable is set, else runs memory-only. Pass an explicit path
        to force a tier, or ``directory=False`` to disable the disk
        tier regardless of the environment.
    clock:
        Time source for entry ages — a callable or an object with a
        ``time()`` method (the :class:`~repro.resilience.shims.Clock`
        shape, so the fault harness can age entries by hand). Default:
        ``time.time``.
    """

    def __init__(self, capacity=256, directory=None, clock=None):
        require_int_in_range(capacity, "capacity", 1, 1 << 20)
        self.capacity = capacity
        if directory is None:
            root = os.environ.get(KERNEL_CACHE_ENV)
            directory = (os.path.join(root, RESULTS_SUBDIR)
                         if root else False)
        self.directory = None if directory is False else str(directory)
        if clock is None:
            self._clock = time.time
        elif callable(getattr(clock, "time", None)):
            self._clock = clock.time
        elif callable(clock):
            self._clock = clock
        else:
            raise ParameterError(
                f"clock must be callable or expose time(), got "
                f"{clock!r}")
        self._lock = threading.Lock()
        #: key -> (payload, stored_at, digest)
        self._memory = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._disk_write_failures = 0
        self._disk_corrupt = 0
        self._expired = 0
        self._stale_hits = 0
        self._stale_rejects = 0

    # -- key plumbing --------------------------------------------------

    @staticmethod
    def _check_key(key):
        if (not isinstance(key, str) or len(key) != _FINGERPRINT_LEN
                or any(c not in "0123456789abcdef" for c in key)):
            raise ParameterError(
                f"cache key must be a {_FINGERPRINT_LEN}-hex-digit "
                f"fingerprint, got {key!r}")
        return key

    def _path(self, key):
        return os.path.join(self.directory, f"{key}.json")

    # -- tiers ---------------------------------------------------------

    def _disk_get(self, key):
        """``(payload, stored_at, digest)`` from a verified envelope,
        else None. Any verification failure — unparseable JSON, a
        pre-envelope bare payload, a digest or fingerprint mismatch —
        is counted corrupt and the file removed: a counted miss, never
        a wrong answer."""
        if self.directory is None:
            return None
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return self._drop_corrupt(path)
        if (not isinstance(envelope, dict)
                or envelope.get("v") != ENVELOPE_VERSION
                or envelope.get("fingerprint") != key
                or not isinstance(envelope.get("payload"), dict)):
            return self._drop_corrupt(path)
        payload = envelope["payload"]
        digest = envelope.get("sha256")
        if record_digest(payload) != digest:
            return self._drop_corrupt(path)
        try:
            stored_at = float(envelope.get("stored_at"))
        except (TypeError, ValueError):
            return self._drop_corrupt(path)
        return payload, stored_at, digest

    def _drop_corrupt(self, path):
        self._disk_corrupt += 1
        try:
            os.unlink(path)
        except OSError:
            pass
        return None

    def _disk_put(self, key, payload, stored_at, digest):
        if self.directory is None:
            return
        envelope = {"v": ENVELOPE_VERSION, "fingerprint": key,
                    "stored_at": stored_at, "sha256": digest,
                    "payload": payload}
        try:
            os.makedirs(self.directory, exist_ok=True)
            tmp = self._path(key) + f".tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle, separators=(",", ":"),
                          sort_keys=True)
            os.replace(tmp, self._path(key))
        except (OSError, TypeError, ValueError):
            # Persistence is best-effort; the memory tier still serves.
            self._disk_write_failures += 1

    def _entry(self, key):
        """The freshest verified entry from either tier, or None.

        Disk entries are promoted into the memory LRU (with their
        original store time — promotion must not rejuvenate an entry).
        """
        if key in self._memory:
            self._memory.move_to_end(key)
            return self._memory[key]
        entry = self._disk_get(key)
        if entry is not None:
            self._disk_hits += 1
            self._store(key, entry)
        return entry

    # -- public API ----------------------------------------------------

    def get(self, key, max_age=None):
        """The memoized payload for ``key``, or ``None`` on a miss.

        ``max_age`` (seconds) is the memo TTL: an older entry reads as
        a counted miss but is kept in both tiers, where
        :meth:`get_stale` can still reach it during degraded serving.
        """
        self._check_key(key)
        if max_age is not None:
            require_positive(max_age, "max_age")
        with self._lock:
            entry = self._entry(key)
            if entry is None:
                self._misses += 1
                return None
            payload, stored_at, _ = entry
            if max_age is not None:
                age = max(0.0, self._clock() - stored_at)
                if age > max_age:
                    self._expired += 1
                    self._misses += 1
                    return None
            self._hits += 1
            return payload

    def get_stale(self, key, max_age):
        """``(payload, age_seconds)`` for degraded-mode serving, or
        None.

        Ignores the memo TTL but bounds the answer's age by
        ``max_age`` (the stale TTL) and re-verifies the payload
        against its stored digest — an entry that fails verification
        is dropped and counted, because a degraded answer must still
        be a *correct* stale answer.
        """
        self._check_key(key)
        require_positive(max_age, "max_age")
        with self._lock:
            entry = self._entry(key)
            if entry is None:
                return None
            payload, stored_at, digest = entry
            if record_digest(payload) != digest:
                self._stale_rejects += 1
                self._memory.pop(key, None)
                if self.directory is not None:
                    try:
                        os.unlink(self._path(key))
                    except OSError:
                        pass
                return None
            age = max(0.0, self._clock() - stored_at)
            if age > max_age:
                return None
            self._stale_hits += 1
            return payload, age

    def put(self, key, payload):
        """Memoize ``payload`` (a JSON-safe dict) under ``key``."""
        self._check_key(key)
        if not isinstance(payload, dict):
            raise ParameterError(
                f"payload must be a dict, got {type(payload).__name__}")
        with self._lock:
            stored_at = float(self._clock())
            digest = record_digest(payload)
            self._store(key, (payload, stored_at, digest))
            self._disk_put(key, payload, stored_at, digest)

    def _store(self, key, entry):
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    def clear(self):
        """Drop the memory tier (the disk tier is left untouched)."""
        with self._lock:
            self._memory.clear()

    def stats(self):
        """Counters for the ``/stats`` ops surface."""
        with self._lock:
            disk_entries = None
            if self.directory is not None:
                try:
                    disk_entries = sum(
                        1 for name in os.listdir(self.directory)
                        if name.endswith(".json"))
                except OSError:
                    disk_entries = 0
            return {
                "hits": self._hits,
                "misses": self._misses,
                "disk_hits": self._disk_hits,
                "disk_write_failures": self._disk_write_failures,
                "disk_corrupt": self._disk_corrupt,
                "expired": self._expired,
                "stale_hits": self._stale_hits,
                "stale_rejects": self._stale_rejects,
                "memory_entries": len(self._memory),
                "capacity": self.capacity,
                "disk_directory": self.directory,
                "disk_entries": disk_entries,
            }
