"""Memoized query results: bounded in-memory LRU + optional disk tier.

The memory tier is an :class:`collections.OrderedDict` LRU bounded by
``capacity`` entries; the disk tier is one JSON file per fingerprint
under ``<REPRO_KERNEL_CACHE>/service-results/`` — the same opt-in
environment variable (and the same "new physics keys new entries,
never invalidates old ones" story) as the kernel cache it lives next
to. Both tiers are keyed by :func:`~repro.service.protocol
.query_fingerprint`, so a warm directory survives server restarts and
is shared by every server pointed at it.

Thread-safe: the server touches the cache from ``asyncio.to_thread``
workers as well as the event loop. Disk corruption is never fatal — a
file that fails to parse is treated as a miss and deleted.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict

from ..arrays.kernel_disk import KERNEL_CACHE_ENV
from ..errors import ParameterError
from ..validation import require_int_in_range

#: Subdirectory of ``REPRO_KERNEL_CACHE`` holding service results.
RESULTS_SUBDIR = "service-results"

_FINGERPRINT_LEN = 32


class ResultsCache:
    """Two-tier (memory LRU + optional disk) memo cache.

    Parameters
    ----------
    capacity:
        Maximum in-memory entries; least-recently-used beyond that are
        evicted (they remain on disk when a disk tier is attached).
    directory:
        Disk-tier directory. ``None`` (default) derives
        ``$REPRO_KERNEL_CACHE/service-results`` when the environment
        variable is set, else runs memory-only. Pass an explicit path
        to force a tier, or ``directory=False`` to disable the disk
        tier regardless of the environment.
    """

    def __init__(self, capacity=256, directory=None):
        require_int_in_range(capacity, "capacity", 1, 1 << 20)
        self.capacity = capacity
        if directory is None:
            root = os.environ.get(KERNEL_CACHE_ENV)
            directory = (os.path.join(root, RESULTS_SUBDIR)
                         if root else False)
        self.directory = None if directory is False else str(directory)
        self._lock = threading.Lock()
        self._memory = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._disk_write_failures = 0
        self._disk_corrupt = 0

    # -- key plumbing --------------------------------------------------

    @staticmethod
    def _check_key(key):
        if (not isinstance(key, str) or len(key) != _FINGERPRINT_LEN
                or any(c not in "0123456789abcdef" for c in key)):
            raise ParameterError(
                f"cache key must be a {_FINGERPRINT_LEN}-hex-digit "
                f"fingerprint, got {key!r}")
        return key

    def _path(self, key):
        return os.path.join(self.directory, f"{key}.json")

    # -- tiers ---------------------------------------------------------

    def _disk_get(self, key):
        if self.directory is None:
            return None
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # Corrupt or unreadable entry: drop it and treat as a miss.
            self._disk_corrupt += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        if not isinstance(payload, dict):
            self._disk_corrupt += 1
            return None
        return payload

    def _disk_put(self, key, payload):
        if self.directory is None:
            return
        try:
            os.makedirs(self.directory, exist_ok=True)
            tmp = self._path(key) + f".tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"),
                          sort_keys=True)
            os.replace(tmp, self._path(key))
        except (OSError, TypeError, ValueError):
            # Persistence is best-effort; the memory tier still serves.
            self._disk_write_failures += 1

    # -- public API ----------------------------------------------------

    def get(self, key):
        """The memoized payload for ``key``, or ``None`` on a miss.

        Disk hits are promoted into the memory LRU.
        """
        self._check_key(key)
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self._hits += 1
                return self._memory[key]
            payload = self._disk_get(key)
            if payload is not None:
                self._disk_hits += 1
                self._hits += 1
                self._store(key, payload)
                return payload
            self._misses += 1
            return None

    def put(self, key, payload):
        """Memoize ``payload`` (a JSON-safe dict) under ``key``."""
        self._check_key(key)
        if not isinstance(payload, dict):
            raise ParameterError(
                f"payload must be a dict, got {type(payload).__name__}")
        with self._lock:
            self._store(key, payload)
            self._disk_put(key, payload)

    def _store(self, key, payload):
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    def clear(self):
        """Drop the memory tier (the disk tier is left untouched)."""
        with self._lock:
            self._memory.clear()

    def stats(self):
        """Counters for the ``/stats`` ops surface."""
        with self._lock:
            disk_entries = None
            if self.directory is not None:
                try:
                    disk_entries = sum(
                        1 for name in os.listdir(self.directory)
                        if name.endswith(".json"))
                except OSError:
                    disk_entries = 0
            return {
                "hits": self._hits,
                "misses": self._misses,
                "disk_hits": self._disk_hits,
                "disk_write_failures": self._disk_write_failures,
                "disk_corrupt": self._disk_corrupt,
                "memory_entries": len(self._memory),
                "capacity": self.capacity,
                "disk_directory": self.directory,
                "disk_entries": disk_entries,
            }
