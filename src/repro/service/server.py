"""The asyncio reliability-query server behind ``repro serve``.

One task per request line, so a connection can pipeline queries and a
slow sweep never blocks a cheap UBER lookup. Every query flows
through the same path::

    parse -> fingerprint -> memo cache -> coalescer -> runner thread

and every terminal event carries ``cached``/``coalesced`` flags so
clients (and the CI smoke test) can observe which tier answered.

All writes happen on the event loop and each NDJSON frame is a single
``write()`` call, so progress events from one request cannot corrupt
another request's frames on a shared connection.

Shutdown: SIGTERM/SIGINT (or :meth:`ReliabilityServer.request_stop`)
stops accepting connections, lets every in-flight request finish and
flush its terminal event, then closes — a drain, not a kill.

Hardening (all observable in ``/stats``):

* **Deadlines** — a request may carry ``deadline_s`` in its envelope;
  a query still unanswered after that many seconds gets a ``deadline
  exceeded`` error. The shared evaluation keeps running for any other
  subscriber; the abandoning subscriber is reference-counted out
  exactly like a disconnect.
* **Circuit breaker** — one per op. After ``breaker_threshold``
  consecutive runner failures the op answers ``degraded: true``
  errors (cache hits still serve) instead of queueing more work onto
  a failing backend; after ``breaker_reset`` seconds one probe is let
  through.
* **Load shedding** — at most ``max_in_flight`` queries evaluate at
  once; beyond that the server answers an immediate ``shed: true``
  error instead of queueing unboundedly.
* **Degraded-mode serving** — with a breaker open, a digest-verified
  memo entry within ``stale_ttl`` answers tagged ``stale: true`` plus
  its age; only past that TTL does the op fast-fail.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import time
from collections import deque

from ..arrays.kernel_store import get_kernel_store
from ..errors import ParameterError, ReproError, RunAborted
from ..resilience.breaker import CircuitBreaker
from ..validation import require_int_in_range, require_positive
from .coalesce import Coalescer
from .protocol import (MAX_LINE_BYTES, decode_line, encode_line,
                       parse_request, query_fingerprint)
from .results_cache import ResultsCache
from .runners import RUNNERS

#: Ring-buffer depth of the per-endpoint latency samples.
LATENCY_WINDOW = 512


def _percentile(samples, q):
    """q-th percentile (0..1) of a non-empty sorted sample list."""
    index = max(0, min(len(samples) - 1,
                       int(round(q * (len(samples) - 1)))))
    return samples[index]


class EndpointStats:
    """Request count, error count, and recent-latency percentiles."""

    __slots__ = ("count", "errors", "latencies")

    def __init__(self):
        self.count = 0
        self.errors = 0
        self.latencies = deque(maxlen=LATENCY_WINDOW)

    def record(self, seconds, error=False):
        self.count += 1
        if error:
            self.errors += 1
        self.latencies.append(seconds)

    def snapshot(self):
        latency = None
        if self.latencies:
            ordered = sorted(self.latencies)
            latency = {
                "p50_ms": _percentile(ordered, 0.50) * 1e3,
                "p90_ms": _percentile(ordered, 0.90) * 1e3,
                "p99_ms": _percentile(ordered, 0.99) * 1e3,
            }
        return {"count": self.count, "errors": self.errors,
                "latency": latency}


class ReliabilityServer:
    """Long-running NDJSON query server over a unix or TCP socket.

    Parameters
    ----------
    path:
        Unix-socket path; mutually exclusive with ``host``/``port``.
    host, port:
        TCP listen address (``host`` defaults to ``127.0.0.1``).
    cache:
        A :class:`~repro.service.results_cache.ResultsCache`; built
        from ``capacity`` (and the ``REPRO_KERNEL_CACHE`` environment)
        when omitted.
    capacity:
        Memory-tier size of the default cache.
    max_in_flight:
        Queries evaluating at once before new ones are shed.
    breaker_threshold, breaker_reset:
        Consecutive runner failures that open an op's circuit breaker,
        and how long it stays open before a half-open probe.
    memo_ttl:
        Memo-cache TTL in seconds: entries older than this read as
        misses on the normal path (they stay reachable for stale
        serving). ``None`` (default) never expires.
    stale_ttl:
        Degraded-serving window in seconds: with an op's breaker open,
        a digest-verified memo entry younger than this answers with
        ``stale: true`` + its age instead of a fast-fail. ``0``
        disables stale serving.
    """

    def __init__(self, path=None, host=None, port=None, cache=None,
                 capacity=256, max_in_flight=64, breaker_threshold=5,
                 breaker_reset=30.0, breaker_clock=None,
                 memo_ttl=None, stale_ttl=3600.0):
        if path is not None and port is not None:
            raise ParameterError(
                "pass either a unix-socket path or a TCP port, not "
                "both")
        if path is None and port is None:
            raise ParameterError(
                "a unix-socket path or a TCP port is required")
        self.path = path
        self.host = host or "127.0.0.1"
        self.port = port
        self.cache = cache if cache is not None else ResultsCache(
            capacity=capacity)
        self.coalescer = Coalescer()
        require_int_in_range(max_in_flight, "max_in_flight", 1, 1 << 16)
        require_positive(breaker_threshold, "breaker_threshold")
        require_positive(breaker_reset, "breaker_reset")
        if memo_ttl is not None:
            require_positive(memo_ttl, "memo_ttl")
        if stale_ttl:
            require_positive(stale_ttl, "stale_ttl")
        self.max_in_flight = int(max_in_flight)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_reset = float(breaker_reset)
        self.memo_ttl = None if memo_ttl is None else float(memo_ttl)
        self.stale_ttl = float(stale_ttl or 0.0)
        self._breaker_clock = breaker_clock
        self.breakers = {}
        self.endpoints = {}
        self.in_flight = 0
        self.shed = 0
        self.deadline_exceeded = 0
        self.degraded = 0
        self.stale_served = 0
        self._progress_events = 0
        self._requests = set()
        self._writers = set()
        self._server = None
        self._stopping = None
        self._started_at = None

    # -- lifecycle -----------------------------------------------------

    async def start(self):
        """Bind and start accepting connections; returns ``self``."""
        self._stopping = asyncio.Event()
        self._started_at = time.monotonic()
        if self.path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_client, path=self.path, limit=MAX_LINE_BYTES)
        else:
            self._server = await asyncio.start_server(
                self._on_client, host=self.host, port=self.port,
                limit=MAX_LINE_BYTES)
            if self.port == 0:
                self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self):
        """Human-readable bound address."""
        if self.path is not None:
            return self.path
        return f"{self.host}:{self.port}"

    def request_stop(self):
        """Begin a graceful drain; safe to call from signal handlers
        registered on this loop."""
        if self._stopping is not None:
            self._stopping.set()

    async def serve_forever(self, install_signals=True):
        """Serve until :meth:`request_stop` (or SIGTERM/SIGINT), then
        drain."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        installed = []
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_stop)
                    installed.append(signum)
                except (NotImplementedError, RuntimeError):
                    pass  # non-unix loops / nested interpreters
        try:
            await self._stopping.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.drain()

    async def drain(self):
        """Stop accepting, finish every in-flight request, close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        while self._requests:
            await asyncio.gather(*list(self._requests),
                                 return_exceptions=True)
        # In-flight work is flushed; disconnect idle clients so their
        # handler tasks wind down instead of pinning the loop open.
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        if self.path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.path)

    # -- request handling ----------------------------------------------

    async def _on_client(self, reader, writer):
        pending = set()
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # over-long frame or torn connection
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    self._handle_request(line, writer))
                for group in (pending, self._requests):
                    group.add(task)
                    task.add_done_callback(group.discard)
        finally:
            # Client stopped sending: flush its outstanding responses
            # before closing the transport.
            if pending:
                await asyncio.gather(*list(pending),
                                     return_exceptions=True)
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _send(self, writer, event):
        """Queue one frame; single write() => frames never interleave."""
        with contextlib.suppress(Exception):
            writer.write(encode_line(event))

    def _endpoint(self, op):
        if op not in self.endpoints:
            self.endpoints[op] = EndpointStats()
        return self.endpoints[op]

    def _breaker(self, op):
        if op not in self.breakers:
            self.breakers[op] = CircuitBreaker(
                failure_threshold=self.breaker_threshold,
                reset_timeout=self.breaker_reset,
                clock=self._breaker_clock)
        return self.breakers[op]

    @staticmethod
    def _deadline_of(obj):
        """Validated ``deadline_s`` of one request envelope (or
        ``None``)."""
        deadline = obj.get("deadline_s")
        if deadline is None:
            return None
        if (isinstance(deadline, bool)
                or not isinstance(deadline, (int, float))
                or not deadline > 0):
            raise ParameterError(
                f"deadline_s must be a positive number, got "
                f"{deadline!r}")
        return float(deadline)

    async def _handle_request(self, line, writer):
        start = time.monotonic()
        req_id = None
        op = "invalid"
        error = False
        try:
            try:
                obj = decode_line(line)
                req_id = obj.get("id")
                query = parse_request(obj)
                deadline = self._deadline_of(obj)
                op = query.op
            except ReproError as exc:
                error = True
                self._send(writer, {"id": req_id, "event": "error",
                                    "ok": False, "error": str(exc)})
                return

            if op == "stats":
                self._send(writer, {"id": req_id, "event": "result",
                                    "ok": True, "cached": False,
                                    "result": self.stats_payload()})
                return

            if self.in_flight >= self.max_in_flight:
                error = True
                self.shed += 1
                self._send(writer, {
                    "id": req_id, "event": "error", "ok": False,
                    "shed": True,
                    "error": f"server overloaded: {self.in_flight} "
                             f"queries in flight (limit "
                             f"{self.max_in_flight}); retry later"})
                return

            self.in_flight += 1
            try:
                error = await self._answer(query, req_id, writer,
                                           deadline)
            finally:
                self.in_flight -= 1
        finally:
            self._endpoint(op).record(time.monotonic() - start,
                                      error=error)
            with contextlib.suppress(Exception):
                await writer.drain()

    async def _answer(self, query, req_id, writer, deadline=None):
        """Serve one parsed query; returns True when it errored."""
        key = query_fingerprint(query)
        cached = self.cache.get(key, max_age=self.memo_ttl)
        if cached is not None:
            self._send(writer, {"id": req_id, "event": "result",
                                "ok": True, "cached": True,
                                "coalesced": False,
                                "fingerprint": key, "result": cached})
            return False

        breaker = self._breaker(query.op)
        if not breaker.allow():
            # Open breaker: degrade instead of queueing more work onto
            # a failing backend. Fresh cache hits (above) still serve
            # normally; here a digest-verified *stale* memo entry —
            # expired past the memo TTL but within the stale TTL —
            # answers tagged `stale: true` + its age, so the query
            # surface degrades before it fast-fails.
            if self.stale_ttl > 0:
                stale = self.cache.get_stale(key, self.stale_ttl)
                if stale is not None:
                    payload, age = stale
                    self.stale_served += 1
                    self._send(writer, {
                        "id": req_id, "event": "result", "ok": True,
                        "cached": True, "coalesced": False,
                        "stale": True, "age_s": round(age, 3),
                        "degraded": True, "fingerprint": key,
                        "result": payload})
                    return False
            self.degraded += 1
            self._send(writer, {
                "id": req_id, "event": "error", "ok": False,
                "degraded": True, "fingerprint": key,
                "error": f"op {query.op!r} is circuit-broken after "
                         f"repeated runner failures; retrying within "
                         f"{breaker.reset_timeout:g}s"})
            return True

        def on_progress(done, total):
            self._progress_events += 1
            self._send(writer, {"id": req_id, "event": "progress",
                                "done": done, "total": total})

        runner = RUNNERS[query.op]
        coalesced = self.coalescer.is_running(key)
        try:
            future = self.coalescer.run(
                key, lambda abort, publish: runner(query, abort,
                                                   publish),
                on_progress=on_progress)
            if deadline is not None:
                payload = await asyncio.wait_for(future, deadline)
            else:
                payload = await future
        except asyncio.TimeoutError:
            # This subscriber leaves the shared run (cancellation is
            # reference-counted: co-subscribed clients keep it alive);
            # a missed deadline says nothing about backend health, so
            # the breaker does not count it.
            self.deadline_exceeded += 1
            self._send(writer, {
                "id": req_id, "event": "error", "ok": False,
                "deadline_exceeded": True,
                "error": f"deadline of {deadline:g}s exceeded"})
            return True
        except RunAborted as exc:
            self._send(writer, {"id": req_id, "event": "error",
                                "ok": False, "error": str(exc)})
            return True
        except ReproError as exc:
            breaker.record_failure()
            self._send(writer, {"id": req_id, "event": "error",
                                "ok": False, "error": str(exc)})
            return True
        except Exception as exc:
            # A runner bug (or a backend blowing up outside the
            # ReproError taxonomy) must degrade this one query, not
            # tear down the connection's handler task.
            breaker.record_failure()
            self._send(writer, {
                "id": req_id, "event": "error", "ok": False,
                "error": f"internal error: "
                         f"{type(exc).__name__}: {exc}"})
            return True
        breaker.record_success()
        self.cache.put(key, payload)
        self._send(writer, {"id": req_id, "event": "result",
                            "ok": True, "cached": False,
                            "coalesced": coalesced,
                            "fingerprint": key, "result": payload})
        return False

    # -- ops surface ---------------------------------------------------

    def stats_payload(self):
        """The ``/stats`` snapshot: endpoints, cache, coalescer,
        gauges."""
        return {
            "endpoints": {op: stats.snapshot()
                          for op, stats in self.endpoints.items()},
            "cache": self.cache.stats(),
            "coalesce": {
                "runs_started": self.coalescer.started,
                "joined": self.coalescer.joined,
                "aborted": self.coalescer.aborted,
                "in_flight_runs": self.coalescer.in_flight(),
            },
            "in_flight": self.in_flight,
            "max_in_flight": self.max_in_flight,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "degraded": self.degraded,
            "stale_served": self.stale_served,
            "memo_ttl": self.memo_ttl,
            "stale_ttl": self.stale_ttl,
            "breakers": {op: breaker.stats()
                         for op, breaker in self.breakers.items()},
            "kernel_store": get_kernel_store().stats(),
            "progress_events": self._progress_events,
            "uptime_s": (time.monotonic() - self._started_at
                         if self._started_at is not None else 0.0),
        }


async def run_server(path=None, host=None, port=None, capacity=256,
                     ready=None, memo_ttl=None, stale_ttl=3600.0):
    """Start a server, announce readiness, serve until drained."""
    server = ReliabilityServer(path=path, host=host, port=port,
                               capacity=capacity, memo_ttl=memo_ttl,
                               stale_ttl=stale_ttl)
    await server.start()
    print(f"repro service listening on {server.address}", flush=True)
    if ready is not None:
        ready(server)
    await server.serve_forever()
    print("repro service drained, exiting", flush=True)
    return 0


def serve_main(path=None, host=None, port=None, capacity=256,
               memo_ttl=None, stale_ttl=3600.0):
    """Blocking entry point behind ``repro serve``."""
    try:
        return asyncio.run(run_server(path=path, host=host, port=port,
                                      capacity=capacity,
                                      memo_ttl=memo_ttl,
                                      stale_ttl=stale_ttl))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C
        return 0
