"""Blocking NDJSON client behind ``repro query``.

Deliberately synchronous (plain sockets, no asyncio) so scripts,
tests, and the CLI can talk to a server with zero event-loop
ceremony. One client holds one connection; requests on it are
answered in submission order, each as a stream of ``progress`` events
terminated by one ``result``/``error`` event.
"""

from __future__ import annotations

import socket

from ..errors import ParameterError, ServiceError
from .protocol import MAX_LINE_BYTES, decode_line, encode_line


class ServiceClient:
    """Connects to a :class:`~repro.service.server.ReliabilityServer`.

    Parameters
    ----------
    path:
        Unix-socket path; mutually exclusive with ``host``/``port``.
    host, port:
        TCP address (``host`` defaults to ``127.0.0.1``).
    timeout:
        Per-read socket timeout [s]; long sweeps keep the connection
        alive through their progress events, so this bounds *silence*,
        not total query latency.
    """

    def __init__(self, path=None, host=None, port=None, timeout=60.0):
        if path is not None and port is not None:
            raise ParameterError(
                "pass either a unix-socket path or a TCP port, not "
                "both")
        if path is None and port is None:
            raise ParameterError(
                "a unix-socket path or a TCP port is required")
        address = path if path is not None else (
            f"{host or '127.0.0.1'}:{port}")
        try:
            if path is not None:
                self._sock = socket.socket(socket.AF_UNIX,
                                           socket.SOCK_STREAM)
                self._sock.settimeout(timeout)
                self._sock.connect(path)
            else:
                self._sock = socket.create_connection(
                    (host or "127.0.0.1", port), timeout=timeout)
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to reliability service at "
                f"{address}: {exc}") from None
        self._file = self._sock.makefile("rb")

    # -- plumbing ------------------------------------------------------

    def close(self):
        for closer in (self._file.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def _read_event(self):
        try:
            line = self._file.readline(MAX_LINE_BYTES)
        except OSError as exc:
            raise ServiceError(f"read from service failed: "
                               f"{exc}") from None
        if not line:
            raise ServiceError(
                "service closed the connection mid-request")
        return decode_line(line)

    # -- public API ----------------------------------------------------

    def request(self, obj, on_progress=None):
        """Send one raw request dict; returns the terminal event.

        ``on_progress(event)`` (optional) receives every ``progress``
        event as it streams in. The terminal event is returned as-is —
        inspect ``ok``/``cached``/``result`` yourself, or use
        :meth:`query` for the raising convenience form.
        """
        try:
            self._sock.sendall(encode_line(obj))
        except OSError as exc:
            raise ServiceError(f"send to service failed: "
                               f"{exc}") from None
        while True:
            event = self._read_event()
            if event.get("event") == "progress":
                if on_progress is not None:
                    on_progress(event)
                continue
            return event

    def query(self, op, on_progress=None, **params):
        """Convenience form: returns the terminal event of ``op``;
        raises :class:`ServiceError` when the server answered with an
        error event."""
        event = self.request({"op": op, **params},
                             on_progress=on_progress)
        if not event.get("ok"):
            raise ServiceError(event.get("error",
                                         "service reported an error"))
        return event
