"""Request coalescing: concurrent identical queries share one run.

The server keys every in-flight evaluation by its query fingerprint.
The first subscriber starts the actual engine run (a blocking library
call dispatched to a worker thread); later subscribers with the same
fingerprint *join* that run instead of starting their own — N
concurrent identical queries cost exactly one evaluation. Progress
events fan out to every joined subscriber.

Cancellation is reference-counted: a subscriber abandoning a shared
run (client disconnect, task cancellation) never cancels the run
itself — only when the *last* subscriber leaves does the coalescer set
the run's abort flag, which the library call observes at its next
progress boundary (raising :class:`~repro.errors.RunAborted`). The
``await`` side is wrapped in :func:`asyncio.shield` so a subscriber's
``CancelledError`` cannot propagate into the shared future.
"""

from __future__ import annotations

import asyncio
import threading


class SharedRun:
    """One in-flight evaluation plus its subscriber bookkeeping."""

    __slots__ = ("key", "loop", "abort", "done", "listeners",
                 "subscribers", "task", "_next_token")

    def __init__(self, key, loop):
        self.key = key
        self.loop = loop
        #: Checked by the blocking call's progress callback; set when
        #: the last subscriber walks away.
        self.abort = threading.Event()
        self.done = loop.create_future()
        # Swallow the exception when every subscriber has left — an
        # aborted run's RunAborted has nobody left to deliver to, and
        # must not surface as an "exception never retrieved" warning.
        self.done.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None)
        self.listeners = {}
        self.subscribers = 0
        self.task = None
        self._next_token = 0

    def add_listener(self, callback):
        token = self._next_token
        self._next_token += 1
        self.listeners[token] = callback
        return token

    def remove_listener(self, token):
        self.listeners.pop(token, None)

    def publish(self, done, total):
        """Report progress; safe to call from the worker thread."""
        self.loop.call_soon_threadsafe(self._emit, done, total)

    def _emit(self, done, total):
        for callback in list(self.listeners.values()):
            callback(done, total)


class Coalescer:
    """Maps query fingerprints to shared in-flight runs.

    Single-event-loop object: every public method must be called from
    the loop that owns it (the server guarantees this); only the
    ``publish`` hop crosses threads.
    """

    def __init__(self):
        self._runs = {}
        #: Evaluations actually started — the service's engine-call
        #: counter: N coalesced queries increment this exactly once.
        self.started = 0
        #: Subscribers that piggybacked on an already-running query.
        self.joined = 0
        #: Runs aborted because every subscriber abandoned them.
        self.aborted = 0

    def in_flight(self):
        """Number of distinct evaluations currently running."""
        return len(self._runs)

    def is_running(self, key):
        """Whether ``key`` has an in-flight evaluation to join."""
        return key in self._runs

    async def run(self, key, thunk, on_progress=None):
        """Await the (possibly shared) evaluation of ``key``.

        ``thunk(abort_event, publish)`` is the blocking library call;
        it runs at most once per key at a time, in a worker thread.
        ``on_progress(done, total)`` (optional) receives this
        subscriber's copy of every progress event, on the event loop.
        """
        loop = asyncio.get_running_loop()
        run = self._runs.get(key)
        if run is None:
            run = SharedRun(key, loop)
            self._runs[key] = run
            self.started += 1
            run.task = loop.create_task(self._drive(run, thunk))
        else:
            self.joined += 1
        run.subscribers += 1
        token = (run.add_listener(on_progress)
                 if on_progress is not None else None)
        try:
            return await asyncio.shield(run.done)
        finally:
            if token is not None:
                run.remove_listener(token)
            run.subscribers -= 1
            if run.subscribers == 0 and not run.done.done():
                self.aborted += 1
                run.abort.set()

    async def _drive(self, run, thunk):
        try:
            payload = await asyncio.to_thread(thunk, run.abort,
                                              run.publish)
        except BaseException as exc:  # delivered to subscribers
            if not run.done.done():
                run.done.set_exception(exc)
        else:
            if not run.done.done():
                run.done.set_result(payload)
        finally:
            self._runs.pop(run.key, None)
