"""Wire protocol of the reliability service.

One request per line, one JSON object per line (NDJSON) in both
directions. A request is ``{"op": <name>, "id": <client tag>,
...params}``; the server answers with zero or more ``progress`` events
followed by exactly one terminal ``result`` or ``error`` event, each
echoing the request ``id`` so clients may pipeline.

Requests normalize into frozen dataclasses (the "request objects in"
half of the service contract): every field is validated and coerced to
plain Python scalars at parse time, so two textually different JSON
spellings of the same physical question — ``70`` vs ``70.0``, keys in
any order — collapse onto one :func:`query_fingerprint`. The
fingerprint reuses the kernel store's ``stack_fingerprint`` for the
device geometry and the disk cache's ``key_digest`` for hashing, which
is what lets the service's memo cache share a directory tree (and an
invalidation story: new physics => new fingerprint => new key, never a
stale hit) with ``REPRO_KERNEL_CACHE``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

from ..arrays.kernel_disk import key_digest
from ..arrays.kernel_store import stack_fingerprint
from ..device import MTJDevice, PAPER_EVAL_DEVICE
from ..errors import ParameterError
from ..integrity.manifest import canonical_scalar
from ..units import nm_to_m
from ..validation import require_int_in_range, require_positive

#: Version prefix of every fingerprint; bump on any semantic change to
#: a query's evaluation so memoized results from older servers miss.
PROTOCOL_VERSION = 1

#: Upper bound on one NDJSON frame — a malformed client cannot balloon
#: the server's line buffer.
MAX_LINE_BYTES = 1 << 20


def encode_line(obj):
    """Serialize one protocol object to a newline-terminated frame."""
    return (json.dumps(obj, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def decode_line(line):
    """Parse one frame; raises :class:`ParameterError` on bad JSON."""
    if isinstance(line, (bytes, bytearray)):
        line = line.decode("utf-8", errors="replace")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ParameterError(f"request is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ParameterError(
            f"request must be a JSON object, got {type(obj).__name__}")
    return obj


def _tuple_of_floats(value, name):
    try:
        items = tuple(float(v) for v in value)
    except (TypeError, ValueError):
        raise ParameterError(
            f"{name} must be a sequence of numbers, got {value!r}") from None
    if not items:
        raise ParameterError(f"{name} must not be empty")
    return items


def _tuple_of_strs(value, name):
    if isinstance(value, str):
        value = (value,)
    try:
        items = tuple(str(v) for v in value)
    except TypeError:
        raise ParameterError(
            f"{name} must be a sequence of strings, got {value!r}") from None
    if not items:
        raise ParameterError(f"{name} must not be empty")
    return items


@dataclass(frozen=True)
class UberQuery:
    """System-level UBER of one operating point.

    ``mode="expected"`` evaluates the engine's noise-free expectation
    (deterministic, cheap); ``mode="sampled"`` runs the Monte-Carlo
    traffic loop over ``transactions`` transactions. ``backend``
    optionally pins the fast path's compute backend (``"numpy"`` /
    ``"numba"``); ``None`` lets the server resolve its own
    ``REPRO_ENGINE_BACKEND`` environment. Sampled responses report the
    backend the run actually used.

    ``topology``/``banks``/``subarrays`` select the array organization
    (see :data:`repro.memsys.topology.TOPOLOGIES`): non-flat queries
    shard the run across banks x subarrays sub-runs. The wire accepts
    both ``cross-point`` and ``cross_point``; the name normalizes at
    parse time so both spellings share one fingerprint.
    """

    op = "uber"

    pitch_nm: float = 70.0
    rows: int = 64
    cols: int = 64
    ecc: str = "secded"
    pattern: str = "random"
    vp: float = 0.95
    nominal_wer: float = 2e-3
    sampler: str = "bernoulli"
    backend: str | None = None
    mode: str = "expected"
    transactions: int = 50_000
    seed: int = 0
    ecd_nm: float | None = None
    topology: str = "flat"
    banks: int = 1
    subarrays: int = 1

    def __post_init__(self):
        require_positive(self.pitch_nm, "pitch_nm")
        require_int_in_range(self.rows, "rows", 1, 1 << 16)
        require_int_in_range(self.cols, "cols", 1, 1 << 16)
        require_positive(self.vp, "vp")
        require_positive(self.nominal_wer, "nominal_wer")
        from ..memsys.topology import normalize_topology
        object.__setattr__(self, "topology",
                           normalize_topology(self.topology))
        require_int_in_range(self.banks, "banks", 1, 4096)
        require_int_in_range(self.subarrays, "subarrays", 1, 4096)
        if self.topology == "flat" and (self.banks != 1
                                        or self.subarrays != 1):
            raise ParameterError(
                "flat topology has exactly one bank and one subarray")
        if self.rows % self.banks:
            raise ParameterError(
                f"rows={self.rows} is not divisible by "
                f"banks={self.banks}")
        if self.cols % self.subarrays:
            raise ParameterError(
                f"cols={self.cols} is not divisible by "
                f"subarrays={self.subarrays}")
        if self.mode not in ("expected", "sampled"):
            raise ParameterError(
                f"mode must be 'expected' or 'sampled', got "
                f"{self.mode!r}")
        require_int_in_range(self.transactions, "transactions", 1,
                             10**9)
        if self.backend is not None:
            from ..memsys.backends import validate_backend
            validate_backend(self.backend)
        if self.ecd_nm is not None:
            require_positive(self.ecd_nm, "ecd_nm")


@dataclass(frozen=True)
class WerQuery:
    """Worst-case write-error pulse sizing + sampled WER check."""

    op = "wer"

    target_wer: float = 1e-6
    vp: float = 0.95
    pitch_ratio: float = 2.0
    n_samples: int = 200_000
    seed: int = 0
    ecd_nm: float | None = None

    def __post_init__(self):
        require_positive(self.target_wer, "target_wer")
        require_positive(self.vp, "vp")
        require_positive(self.pitch_ratio, "pitch_ratio")
        require_int_in_range(self.n_samples, "n_samples", 1, 10**9)
        if self.ecd_nm is not None:
            require_positive(self.ecd_nm, "ecd_nm")


@dataclass(frozen=True)
class SweepQuery:
    """Expected-UBER sweep over pitch x pattern x ECC (streams
    progress)."""

    op = "sweep"

    pitch_ratios: tuple = (3.0, 2.5, 2.0, 1.75, 1.5)
    patterns: tuple = ("random", "checkerboard", "solid0")
    eccs: tuple = ("none", "secded")
    rows: int = 64
    cols: int = 64
    vp: float = 0.95
    nominal_wer: float = 2e-3
    seed: int = 0
    executor: str | None = None
    jobs: int | None = None
    ecd_nm: float | None = None

    def __post_init__(self):
        object.__setattr__(self, "pitch_ratios",
                           _tuple_of_floats(self.pitch_ratios,
                                            "pitch_ratios"))
        object.__setattr__(self, "patterns",
                           _tuple_of_strs(self.patterns, "patterns"))
        object.__setattr__(self, "eccs",
                           _tuple_of_strs(self.eccs, "eccs"))
        require_int_in_range(self.rows, "rows", 1, 1 << 16)
        require_int_in_range(self.cols, "cols", 1, 1 << 16)
        require_positive(self.vp, "vp")
        require_positive(self.nominal_wer, "nominal_wer")
        if self.jobs is not None:
            require_int_in_range(self.jobs, "jobs", 1, 4096)
        if self.ecd_nm is not None:
            require_positive(self.ecd_nm, "ecd_nm")

    @property
    def n_points(self):
        return (len(self.pitch_ratios) * len(self.patterns)
                * len(self.eccs))


@dataclass(frozen=True)
class DesignQuery:
    """Design-space table over eCD x pitch ratio (streams progress)."""

    op = "design"

    ecds_nm: tuple = (25.0, 35.0, 45.0)
    pitch_ratios: tuple = (1.5, 2.0, 3.0)
    probe_voltage: float = 0.85
    executor: str | None = None
    jobs: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "ecds_nm",
                           _tuple_of_floats(self.ecds_nm, "ecds_nm"))
        object.__setattr__(self, "pitch_ratios",
                           _tuple_of_floats(self.pitch_ratios,
                                            "pitch_ratios"))
        require_positive(self.probe_voltage, "probe_voltage")
        if self.jobs is not None:
            require_int_in_range(self.jobs, "jobs", 1, 4096)

    @property
    def n_points(self):
        return len(self.ecds_nm) * len(self.pitch_ratios)


@dataclass(frozen=True)
class StatsQuery:
    """Ops-surface snapshot: request counts, latencies, cache, gauge."""

    op = "stats"


#: Registry mapping wire ``op`` names to request dataclasses.
QUERY_TYPES = {
    "uber": UberQuery,
    "wer": WerQuery,
    "sweep": SweepQuery,
    "design": DesignQuery,
    "stats": StatsQuery,
}

#: Request keys that frame the protocol rather than parameterize the
#: query; stripped before dataclass construction. ``deadline_s`` is a
#: delivery constraint, not part of the physical question, so it never
#: reaches the fingerprint — the same query with and without a
#: deadline shares one memo entry.
_ENVELOPE_KEYS = ("op", "id", "deadline_s")


def parse_request(obj):
    """Normalize one decoded request dict into its query dataclass.

    Raises :class:`ParameterError` for an unknown ``op``, unknown
    parameter names, or out-of-domain values — the server maps these to
    ``error`` events without touching any engine.
    """
    op = obj.get("op")
    if op not in QUERY_TYPES:
        known = ", ".join(sorted(QUERY_TYPES))
        raise ParameterError(f"unknown op {op!r} (known: {known})")
    cls = QUERY_TYPES[op]
    fields = {f.name for f in dataclasses.fields(cls)}
    params = {k: v for k, v in obj.items() if k not in _ENVELOPE_KEYS}
    unknown = sorted(set(params) - fields)
    if unknown:
        raise ParameterError(
            f"unknown parameter(s) for op {op!r}: {', '.join(unknown)}")
    try:
        return cls(**params)
    except TypeError as exc:
        raise ParameterError(f"bad parameters for op {op!r}: "
                             f"{exc}") from None


def device_for(query):
    """The :class:`MTJDevice` a query evaluates against.

    The paper-quoted evaluation device, optionally re-targeted to the
    query's ``ecd_nm`` — the same convention the CLI and the
    design-space explorer use.
    """
    params = PAPER_EVAL_DEVICE
    ecd_nm = getattr(query, "ecd_nm", None)
    if ecd_nm is not None:
        params = params.with_ecd(nm_to_m(ecd_nm))
    return MTJDevice(params)


def query_fingerprint(query):
    """Stable 32-hex-digit memo key of one normalized query.

    Keyed by ``(PROTOCOL_VERSION, op, stack_fingerprint(device.stack),
    sorted params)`` and digested with the kernel-disk hash — the same
    scheme (and therefore the same cross-process determinism argument)
    as the on-disk kernel cache. Queries that reach the physics through
    a device (uber/wer/sweep) fold the *stack* fingerprint in, so a
    service upgrade that changes the reference stack re-keys every
    memoized result instead of serving stale physics.
    """
    parts = []
    for field in sorted(dataclasses.fields(query),
                        key=lambda f: f.name):
        value = getattr(query, field.name)
        # JSON spells 70 and 70.0 interchangeably; canonicalize every
        # scalar number to float so both spellings key identically —
        # the one collapse rule, shared with the manifest digests so
        # fingerprints and integrity digests can never drift apart.
        parts.append((field.name, canonical_scalar(value)))
    if query.op in ("uber", "wer", "sweep"):
        stack_key = stack_fingerprint(device_for(query).stack)
    else:
        stack_key = None
    hi, lo = key_digest((PROTOCOL_VERSION, query.op, stack_key,
                         tuple(parts)))
    return f"{hi:016x}{lo:016x}"
