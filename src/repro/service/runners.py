"""Query evaluation: blocking, cancellable library calls.

Each runner turns one normalized query dataclass into a JSON-safe
result payload by calling straight into the library — no CLI-lifetime
state, no printing. Runners execute in worker threads (via
``asyncio.to_thread``); they observe cancellation through the shared
run's ``abort`` event, converted into
:class:`~repro.errors.RunAborted` at every progress boundary, and
report progress through ``publish(done, total)``.

The executor of sweep-shaped queries is resolved server-side: an
explicit ``executor`` wins, then grids of
:data:`DISTRIBUTED_MIN_POINTS` or more points are dispatched to the
spool-directory broker whenever ``REPRO_SWEEP_SPOOL`` names one (the
``repro worker`` fleet becomes the service's compute backend), else
the library's :func:`~repro.sweep.runner.executor_for_jobs` heuristic
decides.
"""

from __future__ import annotations

import os

import numpy as np

from ..apps import DESIGN_HEADERS, DesignSpaceExplorer, WriteErrorModel
from ..arrays.pattern import ALL_AP, ALL_P
from ..arrays.victim import VictimAnalysis
from ..device import PAPER_EVAL_DEVICE
from ..errors import ParameterError, RunAborted
from ..memsys import build_engine, uber_sweep
from ..memsys.sweeps import SWEEP_HEADERS
from ..resilience.breaker import RetryPolicy, call_with_retry
from ..sweep import EXECUTORS, executor_for_jobs
from ..sweep.distributed import SWEEP_SPOOL_ENV
from ..units import nm_to_m
from .protocol import device_for

#: Sweep grids at least this large go to the distributed spool broker
#: when ``REPRO_SWEEP_SPOOL`` is configured.
DISTRIBUTED_MIN_POINTS = 64

#: Attempts at dispatching a sweep to the spool broker before the
#: failure propagates to the client.
SPOOL_DISPATCH_ATTEMPTS = 3


def json_safe(value):
    """Recursively coerce numpy scalars/arrays to JSON-native types."""
    if value is None or isinstance(value, (str, bool)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        return json_safe(value.tolist())
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    return str(value)


def _progress(abort, publish):
    """The ``progress(done, total)`` callback handed to the library.

    Doubles as the cancellation point: once the shared run is
    abandoned, the next boundary raises :class:`RunAborted` and the
    evaluation stops without finishing the grid.
    """
    def callback(done, total):
        if abort.is_set():
            raise RunAborted("query abandoned by every subscriber")
        publish(done, total)
    return callback


def _dispatch(func, executor, seed=0):
    """Run one sweep dispatch; distributed runs retry transient spool
    I/O (an NFS hiccup, the spool racing into existence) with seeded
    exponential backoff before the failure reaches the client."""
    if executor != "distributed":
        return func()
    policy = RetryPolicy(base=0.2, factor=2.0, cap=2.0,
                         max_attempts=SPOOL_DISPATCH_ATTEMPTS,
                         seed=seed)
    return call_with_retry(func, policy, retry_on=OSError)


def pick_executor(query):
    """Resolve the sweep executor of one sweep-shaped query."""
    if query.executor is not None:
        if query.executor not in EXECUTORS:
            known = ", ".join(sorted(EXECUTORS))
            raise ParameterError(
                f"executor must be one of {known}, got "
                f"{query.executor!r}")
        return query.executor
    if (query.n_points >= DISTRIBUTED_MIN_POINTS
            and os.environ.get(SWEEP_SPOOL_ENV)):
        return "distributed"
    return executor_for_jobs(query.jobs, n_points=query.n_points)


def run_uber(query, abort, publish):
    """UBER of one operating point (expected or Monte-Carlo)."""
    device = device_for(query)
    engine = build_engine(
        device, pitch=nm_to_m(query.pitch_nm), rows=query.rows,
        cols=query.cols, ecc=query.ecc, workload=query.pattern,
        vp=query.vp, nominal_wer=query.nominal_wer,
        sampler=query.sampler, backend=query.backend,
        topology=query.topology, banks=query.banks,
        subarrays=query.subarrays)
    if query.mode == "expected":
        rates = engine.expected_rates(rng=query.seed)
        publish(1, 1)
        return {"mode": "expected", **json_safe(rates)}
    rng = np.random.default_rng(query.seed)
    result = engine.run(query.transactions, rng=rng,
                        progress=_progress(abort, publish))
    return json_safe({
        "mode": "sampled",
        # The *resolved* backend, so a client that asked for numba can
        # see when the server fell back to the numpy reference.
        "backend": engine.backend.name,
        "uber": result.uber,
        "raw_ber": result.raw_ber,
        "word_fail_rate": result.word_fail_rate,
        "n_transactions": result.n_transactions,
        "n_reads": result.n_reads,
        "n_writes": result.n_writes,
        "sneak_flips": result.sneak_flips,
        "raw_bit_errors": result.raw_bit_errors,
        "uncorrectable_bit_errors": result.uncorrectable_bit_errors,
        "words_corrected": result.words_corrected,
        "words_detected": result.words_detected,
        "words_silent": result.words_silent,
    })


def run_wer(query, abort, publish):
    """Worst-corner write pulse sizing plus a sampled-WER check."""
    device = device_for(query)
    model = WriteErrorModel(device)
    pitch = query.pitch_ratio * device.params.ecd
    victim = VictimAnalysis(device, pitch)
    hz_worst = victim.hz_total(ALL_P)
    pulse = model.pulse_for_wer(query.target_wer, query.vp, hz_worst)
    penalty = pulse - model.pulse_for_wer(query.target_wer, query.vp,
                                          victim.hz_total(ALL_AP))
    rng = np.random.default_rng(query.seed)
    sampled = model.sample_wer(pulse, query.vp, hz_worst,
                               n_samples=query.n_samples, rng=rng,
                               method="binomial")
    publish(1, 1)
    return json_safe({
        "pulse_ns": pulse * 1e9,
        "pattern_penalty_ns": penalty * 1e9,
        "sampled_wer": sampled,
        "target_wer": query.target_wer,
        "pitch_nm": pitch * 1e9,
    })


def run_sweep(query, abort, publish):
    """Expected-UBER sweep over pitch x pattern x ECC."""
    device = device_for(query)
    executor = pick_executor(query)
    result = _dispatch(lambda: uber_sweep(
        device, pitch_ratios=list(query.pitch_ratios),
        patterns=list(query.patterns), eccs=list(query.eccs),
        rows=query.rows, cols=query.cols, seed=query.seed,
        jobs=query.jobs, executor=executor,
        progress=_progress(abort, publish), vp=query.vp,
        nominal_wer=query.nominal_wer), executor, seed=query.seed)
    comparisons = [{"metric": c.metric, "measured": c.measured,
                    "passed": c.passed} for c in result.comparisons]
    return json_safe({
        "headers": list(SWEEP_HEADERS),
        "rows": [list(row) for row in result.rows],
        "comparisons": comparisons,
        "executor": executor,
        "n_points": query.n_points,
    })


def run_design(query, abort, publish):
    """Design-space table over eCD x pitch ratio."""
    explorer = DesignSpaceExplorer(PAPER_EVAL_DEVICE,
                                   probe_voltage=query.probe_voltage)
    executor = pick_executor(query)
    points = _dispatch(lambda: explorer.sweep(
        [nm_to_m(e) for e in query.ecds_nm],
        list(query.pitch_ratios), jobs=query.jobs, executor=executor,
        progress=_progress(abort, publish)), executor)
    return json_safe({
        "headers": list(DESIGN_HEADERS),
        "rows": [list(p.row()) for p in points],
        "executor": executor,
        "n_points": query.n_points,
    })


#: Wire ``op`` -> blocking runner. ``stats`` is served by the server
#: itself (it owns the counters), so it does not appear here.
RUNNERS = {
    "uber": run_uber,
    "wer": run_wer,
    "sweep": run_sweep,
    "design": run_design,
}
