"""Long-running reliability-query service.

The compute spine (kernel store + binomial fast path + sweep
executors) answers chip-scale UBER questions in interactive time, but
a CLI invocation still pays full process lifetime per question. This
package turns the library into a daemon: :class:`ReliabilityServer`
(``repro serve``) accepts newline-delimited-JSON queries over a
unix/TCP socket, coalesces concurrent identical queries into one
engine run, memoizes completed results keyed by the same
``stack_fingerprint`` scheme the kernel store uses, streams progress
events for long sweeps, and drains gracefully on SIGTERM.
:class:`ServiceClient` (``repro query``) is the matching blocking
client.

Layering::

    protocol      query dataclasses, NDJSON framing, fingerprints
    results_cache bounded LRU + optional REPRO_KERNEL_CACHE disk tier
    runners       query -> blocking library call (cancellable)
    coalesce      shared in-flight runs, subscriber fan-out
    server        asyncio socket server, stats, SIGTERM drain
    client        synchronous NDJSON client
"""

from .client import ServiceClient
from .coalesce import Coalescer
from .protocol import (PROTOCOL_VERSION, QUERY_TYPES, parse_request,
                       query_fingerprint)
from .results_cache import ResultsCache
from .server import ReliabilityServer

__all__ = [
    "PROTOCOL_VERSION",
    "QUERY_TYPES",
    "Coalescer",
    "ReliabilityServer",
    "ResultsCache",
    "ServiceClient",
    "parse_request",
    "query_fingerprint",
]
