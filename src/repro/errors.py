"""Exception hierarchy for the repro library.

A small, explicit hierarchy so callers can catch library errors without
catching unrelated ``ValueError``/``RuntimeError`` from numpy or scipy.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ParameterError(ReproError, ValueError):
    """A physical or geometric parameter is out of its valid domain."""


class GeometryError(ParameterError):
    """Stack or array geometry is inconsistent (overlaps, negative sizes)."""


class CalibrationError(ReproError, RuntimeError):
    """A calibration / curve fit failed to converge or is ill-posed."""


class SimulationError(ReproError, RuntimeError):
    """A simulation failed (non-finite state, no switching event found)."""


class RunAborted(ReproError, RuntimeError):
    """A long-running evaluation was cancelled by its caller.

    Raised *by progress callbacks* to stop an engine run or sweep at the
    next batch/point boundary — the cancellation mechanism behind the
    :mod:`repro.service` server's abandoned-query handling.
    """


class MeasurementError(ReproError, RuntimeError):
    """An emulated measurement could not extract the requested quantity."""


class ServiceError(ReproError, RuntimeError):
    """The reliability service answered a query with an error event,
    or the connection to it failed."""


class IntegrityError(ReproError, RuntimeError):
    """A persisted artifact (spool result, manifest, cache entry)
    failed digest or framing verification.

    The integrity layer's contract is "counted miss, never a wrong
    answer": most callers catch this, count it, and recompute. It only
    propagates where a human asked for verification outright
    (``repro audit``, ``repro spool fsck``)."""


class RunIdentityError(ReproError, ValueError):
    """A ``--resume`` targeted a checkpoint written by a *different*
    run (seed, backend, topology, or shape differ).

    Raised instead of silently restarting clean: resuming is an
    explicit claim about which campaign is being continued, so a
    mismatch is an operator error to surface, not a fallback to
    absorb. The message names the differing identity fields."""


class ResilienceWarning(UserWarning):
    """A resilience mechanism degraded but recovered: a corrupt or
    stale checkpoint fell back to a clean restart, a poison chunk was
    quarantined, a checkpoint write failed and the run continued
    unprotected. Warnings, not errors, on purpose — every one of these
    events is survivable by design, but none should pass silently."""
