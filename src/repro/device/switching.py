"""STT switching models: critical current and average switching time.

Critical current (paper Eq. 2, Khvalkovskiy et al. [15])
--------------------------------------------------------
``Ic(Hz_stray) = (1/eta) * (2 alpha e / hbar) * mu0 Ms V Hk * (1 +/- h) / 2``

Using the identity ``mu0 Ms V_act Hk = 2 Delta0 kB T`` this becomes the
implementation form::

    Ic0 = 4 alpha e Delta0 kB T / (hbar eta)
    Ic(P->AP) = Ic0 * (1 + h),   Ic(AP->P) = Ic0 * (1 - h)

with ``h = Hz_stray / Hk`` under the sign conventions of DESIGN.md
section 4. The measured intra-cell stray field is negative, which makes
``Ic(AP->P)`` ~7 % *larger* than intrinsic, exactly as the paper reports.

Average switching time (paper Eq. 3-4, Sun's precessional model [22])
---------------------------------------------------------------------
``tw = [ (2 / (C + ln(pi^2 Delta / 4))) * (muB P / (e m (1 + P^2))) * Im ]^-1``
``Im = Vp / R(Vp) - Ic(Hz_stray)``

where ``m = Ms * V_geom`` is the total FL moment and ``R(Vp)`` the
state-dependent, bias-dependent resistance. Below threshold (``Im <= 0``)
precessional switching does not occur and ``tw`` is infinite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import (
    BOHR_MAGNETON,
    BOLTZMANN,
    ELEMENTARY_CHARGE,
    EULER_GAMMA,
    HBAR,
)
from ..errors import ParameterError
from ..validation import require_in_range, require_positive
from .energy import state_sign
from .resistance import ResistanceModel


def intrinsic_critical_current(alpha, eta, delta0, temperature):
    """Intrinsic critical switching current ``Ic0`` [A].

    ``Ic0 = 4 alpha e Delta0 kB T / (hbar eta)`` — Eq. 2 with the barrier
    identity folded in.
    """
    require_positive(alpha, "alpha")
    require_positive(eta, "eta")
    require_positive(delta0, "delta0")
    require_positive(temperature, "temperature")
    return (4.0 * alpha * ELEMENTARY_CHARGE * delta0 * BOLTZMANN
            * temperature) / (HBAR * eta)


def calibrate_eta(target_ic0, alpha, delta0, temperature):
    """STT efficiency ``eta`` that reproduces a measured ``Ic0`` [A]."""
    require_positive(target_ic0, "target_ic0")
    eta = (4.0 * alpha * ELEMENTARY_CHARGE * delta0 * BOLTZMANN
           * temperature) / (HBAR * target_ic0)
    return require_in_range(eta, "calibrated eta", 0.0, 1.0,
                            inclusive=False)


def critical_current(ic0, h_stray_over_hk, direction):
    """Critical current [A] for a switching ``direction`` under stray field.

    ``direction`` is ``"P->AP"`` or ``"AP->P"``. The sign rule follows the
    paper's Eq. 2: '+' for P->AP, '-' for AP->P.
    """
    require_positive(ic0, "ic0")
    require_in_range(h_stray_over_hk, "h_stray_over_hk", -1.0, 1.0,
                     inclusive=False)
    if direction == "P->AP":
        sign = +1.0
    elif direction == "AP->P":
        sign = -1.0
    else:
        raise ParameterError(
            f"direction must be 'P->AP' or 'AP->P', got {direction!r}")
    return ic0 * (1.0 + sign * h_stray_over_hk)


def switching_direction(initial_state):
    """Map an initial state to its switching direction string."""
    return {"P": "P->AP", "AP": "AP->P"}[initial_state] \
        if initial_state in ("P", "AP") else _bad_state(initial_state)


def _bad_state(state):
    raise ParameterError(f"state must be 'P' or 'AP', got {state!r}")


@dataclass(frozen=True)
class SunModel:
    """Sun's precessional average-switching-time model (paper Eq. 3-4).

    Parameters
    ----------
    ms:
        FL saturation magnetization [A/m].
    fl_volume:
        Geometric FL volume [m^3] (moment ``m = Ms * V``).
    polarization:
        Effective spin polarization ``P`` (calibrated; see
        :func:`calibrate_polarization`).
    delta0:
        Intrinsic thermal stability factor entering the logarithmic
        prefactor.
    resistance_model:
        :class:`~repro.device.resistance.ResistanceModel` providing
        ``R(Vp)``.
    ecd:
        Device eCD [m] for the resistance evaluation.
    """

    ms: float
    fl_volume: float
    polarization: float
    delta0: float
    resistance_model: ResistanceModel
    ecd: float

    def __post_init__(self):
        require_positive(self.ms, "ms")
        require_positive(self.fl_volume, "fl_volume")
        require_in_range(self.polarization, "polarization", 0.0, 1.0,
                         inclusive=False)
        require_positive(self.delta0, "delta0")
        require_positive(self.ecd, "ecd")

    @property
    def moment(self):
        """Total FL moment ``m = Ms * V`` [A*m^2]."""
        return self.ms * self.fl_volume

    @property
    def rate_coefficient(self):
        """``k`` [1/(A*s)] such that ``1/tw = k * Im``.

        ``k = (2 / (C + ln(pi^2 Delta/4))) * muB P / (e m (1 + P^2))``.
        """
        log_term = EULER_GAMMA + math.log(
            math.pi * math.pi * self.delta0 / 4.0)
        pref = 2.0 / log_term
        p = self.polarization
        return (pref * BOHR_MAGNETON * p
                / (ELEMENTARY_CHARGE * self.moment * (1.0 + p * p)))

    def overdrive_current(self, vp, ic, initial_state="AP"):
        """``Im = Vp / R(Vp) - Ic`` [A] for a write pulse of ``vp`` volts.

        ``initial_state`` selects the resistance branch: an AP->P write
        sees ``R_AP(Vp)``, a P->AP write sees ``R_P``.
        """
        require_positive(vp, "vp")
        require_positive(ic, "ic")
        if initial_state not in ("P", "AP"):
            _bad_state(initial_state)
        resistance = self.resistance_model.resistance(
            self.ecd, initial_state, vp)
        return vp / resistance - ic

    def switching_time(self, vp, ic, initial_state="AP"):
        """Average switching time [s]; ``inf`` below threshold."""
        im = self.overdrive_current(vp, ic, initial_state)
        if im <= 0.0:
            return math.inf
        return 1.0 / (self.rate_coefficient * im)


def calibrate_polarization(target_tw, vp, ic, ms, fl_volume, delta0,
                           resistance_model, ecd, initial_state="AP"):
    """Effective polarization ``P`` such that ``tw(vp) == target_tw``.

    Solves ``k(P) * Im = 1/target_tw`` for ``P`` in (0, 1); the mapping
    ``P -> P/(1+P^2)`` is monotonically increasing on (0, 1), so a unique
    solution exists whenever the target rate is reachable.
    """
    require_positive(target_tw, "target_tw")
    probe = SunModel(ms=ms, fl_volume=fl_volume, polarization=0.5,
                     delta0=delta0, resistance_model=resistance_model,
                     ecd=ecd)
    im = probe.overdrive_current(vp, ic, initial_state)
    if im <= 0.0:
        raise ParameterError(
            f"vp={vp} V is below the switching threshold; cannot calibrate")
    log_term = EULER_GAMMA + math.log(math.pi * math.pi * delta0 / 4.0)
    moment = ms * fl_volume
    # Required P/(1+P^2) for the target rate:
    needed = (1.0 / (target_tw * im)) * (log_term / 2.0) \
        * ELEMENTARY_CHARGE * moment / BOHR_MAGNETON
    # Solve p/(1+p^2) = needed for p in (0, 1): p = (1-sqrt(1-4n^2))/(2n).
    if needed <= 0.0 or needed >= 0.5:
        raise ParameterError(
            f"target switching time {target_tw} s unreachable at vp={vp} V "
            f"(needed P/(1+P^2) = {needed:.4f}, must be in (0, 0.5))")
    disc = math.sqrt(1.0 - 4.0 * needed * needed)
    return (1.0 - disc) / (2.0 * needed)
