"""Temperature dependence of the magnetic device parameters.

The retention analysis (paper Fig. 6) sweeps the operating temperature from
0 to 150 degC. Three effects matter:

* ``Ms(T)`` follows the Bloch law of the FL material,
* the interfacial anisotropy field ``Hk(T)`` decreases with ``Ms``; we use
  ``Hk(T) = Hk_ref * (Ms(T)/Ms_ref)^p`` with a calibratable exponent ``p``
  (default 1, which reproduces the paper's Delta0 slope: 45.5 at 25 degC
  dropping to ~27 at 150 degC with Tc = 1300 K),
* the explicit ``1/T`` in ``Delta = Eb / (kB T)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import ROOM_TEMPERATURE
from ..materials import Material
from ..validation import require_in_range, require_positive


@dataclass(frozen=True)
class ThermalModel:
    """Scales ``Ms``, ``Hk`` and ``Delta0`` with temperature.

    Parameters
    ----------
    material:
        FL material providing the Bloch-law ``Ms(T)``.
    hk_exponent:
        Exponent ``p`` in ``Hk(T) = Hk_ref (Ms(T)/Ms_ref)^p``.
    reference_temperature:
        Temperature [K] at which reference values are quoted.
    """

    material: Material
    hk_exponent: float = 1.0
    reference_temperature: float = ROOM_TEMPERATURE

    def __post_init__(self):
        require_positive(self.reference_temperature,
                         "reference_temperature")
        require_in_range(self.hk_exponent, "hk_exponent", 0.0, 5.0)

    def ms_ratio(self, temperature):
        """``Ms(T) / Ms(T_ref)`` (dimensionless)."""
        require_positive(temperature, "temperature")
        ref = self.material.bloch_factor(self.reference_temperature)
        if ref <= 0.0:
            return 0.0
        return self.material.bloch_factor(temperature) / ref

    def hk_ratio(self, temperature):
        """``Hk(T) / Hk(T_ref)`` (dimensionless)."""
        return self.ms_ratio(temperature) ** self.hk_exponent

    def delta_ratio(self, temperature):
        """``Delta0(T) / Delta0(T_ref)``.

        Combines the Ms and Hk scalings with the explicit ``1/T``:
        ``Delta0 ~ Ms(T) * Hk(T) / T``.
        """
        require_positive(temperature, "temperature")
        return (self.ms_ratio(temperature) * self.hk_ratio(temperature)
                * self.reference_temperature / temperature)

    def ms_at(self, ms_ref, temperature):
        """Scale a reference ``Ms`` [A/m] to ``temperature``."""
        require_positive(ms_ref, "ms_ref")
        return ms_ref * self.ms_ratio(temperature)

    def hk_at(self, hk_ref, temperature):
        """Scale a reference ``Hk`` [A/m] to ``temperature``."""
        require_positive(hk_ref, "hk_ref")
        return hk_ref * self.hk_ratio(temperature)

    def delta0_at(self, delta0_ref, temperature):
        """Scale a reference ``Delta0`` to ``temperature``."""
        require_positive(delta0_ref, "delta0_ref")
        return delta0_ref * self.delta_ratio(temperature)
