"""Energy barrier and thermal stability factor of a perpendicular MTJ.

Implements the paper's Eq. 5 and the underlying definitions:

* intrinsic barrier ``Eb0 = mu0 * Ms * Hk * V_act / 2`` and
  ``Delta0 = Eb0 / (kB T)``,
* stray-field modulation ``Delta(h) = Delta0 * (1 +/- h)^2`` with
  ``h = Hz_stray / Hk``; the '+' sign applies to the P state and '-' to the
  AP state under the conventions of DESIGN.md section 4.

``V_act`` is the *activation volume*: for devices larger than the thermal
nucleation diameter the reversal is nucleation-limited and the effective
volume is a fraction of the geometric one. The paper's measured
``Delta0 = 45.5`` at eCD = 35 nm corresponds to roughly 0.38x the geometric
FL volume with the reference-stack parameters; we expose the scale as an
explicit parameter.
"""

from __future__ import annotations

from ..constants import BOLTZMANN, MU0
from ..errors import ParameterError
from ..validation import require_in_range, require_positive

#: Valid magnetization states.
STATES = ("P", "AP")


def energy_barrier(ms, hk, volume):
    """Intrinsic energy barrier [J]: ``mu0 * Ms * Hk * V / 2``.

    ``ms`` [A/m], ``hk`` [A/m], ``volume`` [m^3].
    """
    require_positive(ms, "ms")
    require_positive(hk, "hk")
    require_positive(volume, "volume")
    return 0.5 * MU0 * ms * hk * volume


def delta_factor(ms, hk, volume, temperature):
    """Intrinsic thermal stability factor ``Delta0 = Eb0 / (kB T)``."""
    require_positive(temperature, "temperature")
    return energy_barrier(ms, hk, volume) / (BOLTZMANN * temperature)


def state_sign(state):
    """Sign of the ``(1 +/- h)`` factor for ``state``: +1 for P, -1 for AP."""
    if state == "P":
        return +1.0
    if state == "AP":
        return -1.0
    raise ParameterError(f"state must be 'P' or 'AP', got {state!r}")


def delta_with_stray(delta0, h_stray_over_hk, state):
    """Thermal stability factor under a stray field (paper Eq. 5).

    ``Delta(h) = Delta0 * (1 + s*h)^2`` with ``s = +1`` for the P state and
    ``s = -1`` for AP, ``h = Hz_stray / Hk``.

    ``h`` must lie in (-1, 1): beyond that the state's barrier has collapsed
    (the paper's "locked device" regime) and Eq. 5 no longer applies.
    """
    require_positive(delta0, "delta0")
    require_in_range(h_stray_over_hk, "h_stray_over_hk", -1.0, 1.0,
                     inclusive=False)
    factor = 1.0 + state_sign(state) * h_stray_over_hk
    return delta0 * factor * factor


def activation_volume(geometric_volume, scale):
    """Activation volume [m^3] = ``scale`` x geometric FL volume."""
    require_positive(geometric_volume, "geometric_volume")
    require_in_range(scale, "scale", 0.0, 1.0, inclusive=False)
    return geometric_volume * scale
