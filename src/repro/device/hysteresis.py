"""Stochastic R-H hysteresis loop simulation.

Emulates the paper's Section III measurement: an out-of-plane external
field is ramped 0 -> +Hmax -> -Hmax -> 0 over ``n_points`` field points,
with a low-voltage resistance readout after every point. The FL switches by
thermal activation over the field-dependent barrier

``Delta_leave(H_eff) = Delta0 * (1 - s * H_eff / Hk)^2``

where ``s`` is +1 when leaving the AP state (a +z field destabilizes AP)
and -1 when leaving P, and ``H_eff = H_ext + Hz_stray`` is the field the FL
actually sees. Each field point is held for ``dwell_time`` seconds and the
flip probability is ``1 - exp(-f0 * dwell * exp(-Delta_leave))`` — the
Kurkijarvi swept-field switching picture, which makes the switching fields
``Hsw_p``/``Hsw_n`` intrinsically stochastic exactly as in the measured
loops.

Because switching happens at (nearly) fixed *effective* field thresholds,
the simulated loop is offset by ``-Hz_stray``: extracting
``Hoffset = (Hsw_p + Hsw_n)/2`` recovers the stray field with flipped sign,
which is precisely the measurement principle the paper uses to
characterize intra-cell coupling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..constants import ATTEMPT_FREQUENCY
from ..errors import MeasurementError, ParameterError
from ..validation import (
    require_in_range,
    require_int_in_range,
    require_positive,
)


@dataclass(frozen=True)
class SweepProtocol:
    """The field-sweep protocol of the R-H measurement.

    Parameters
    ----------
    h_max:
        Sweep amplitude [A/m] (paper: 3 kOe).
    n_points:
        Total number of field points over the full loop (paper: 1000).
    dwell_time:
        Hold time per field point [s]; sets the thermal switching-field
        scale via the attempt statistics.
    read_voltage:
        Readout voltage [V] (paper: 20 mV).
    """

    h_max: float
    n_points: int = 1000
    dwell_time: float = 1.0e-3
    read_voltage: float = 0.02

    def __post_init__(self):
        require_positive(self.h_max, "h_max")
        require_int_in_range(self.n_points, "n_points", 8, 1_000_000)
        require_positive(self.dwell_time, "dwell_time")
        require_positive(self.read_voltage, "read_voltage")

    def field_points(self):
        """Field values [A/m]: 0 -> +h_max -> -h_max -> 0.

        The three ramps share the total point budget 1:2:1.
        """
        n_up = self.n_points // 4
        n_down = self.n_points // 2
        n_back = self.n_points - n_up - n_down
        up = np.linspace(0.0, self.h_max, n_up, endpoint=False)
        down = np.linspace(self.h_max, -self.h_max, n_down, endpoint=False)
        back = np.linspace(-self.h_max, 0.0, n_back)
        return np.concatenate([up, down, back])


@dataclass
class HysteresisLoop:
    """Result of one simulated R-H loop.

    Attributes
    ----------
    fields:
        External field values [A/m] in sweep order.
    resistances:
        Readout resistance [Ohm] after each field point.
    states:
        FL state after each field point ("P"/"AP" as +1/-1 mz).
    hsw_p:
        AP->P switching field [A/m] (on the rising branch), or None if the
        device never switched.
    hsw_n:
        P->AP switching field [A/m] (on the falling branch), or None.
    """

    fields: np.ndarray
    resistances: np.ndarray
    states: np.ndarray
    hsw_p: Optional[float] = None
    hsw_n: Optional[float] = None

    @property
    def coercivity(self):
        """``Hc = (Hsw_p - Hsw_n) / 2`` [A/m]."""
        self._require_switches()
        return 0.5 * (self.hsw_p - self.hsw_n)

    @property
    def offset_field(self):
        """``Hoffset = (Hsw_p + Hsw_n) / 2`` [A/m]."""
        self._require_switches()
        return 0.5 * (self.hsw_p + self.hsw_n)

    @property
    def stray_field(self):
        """Inferred stray field at the FL: ``-Hoffset`` [A/m]."""
        return -self.offset_field

    @property
    def rp(self):
        """Low (parallel) resistance level [Ohm] of the loop."""
        return float(np.min(self.resistances))

    @property
    def rap(self):
        """High (anti-parallel) resistance level [Ohm] of the loop."""
        return float(np.max(self.resistances))

    def _require_switches(self):
        if self.hsw_p is None or self.hsw_n is None:
            raise MeasurementError(
                "loop shows no complete switching cycle; cannot extract "
                "Hc/Hoffset")


class RHLoopSimulator:
    """Simulates stochastic R-H loops for one device.

    Parameters
    ----------
    delta0:
        Intrinsic thermal stability factor (field-driven barrier height).
    hk:
        Anisotropy field [A/m] (field axis scale of the barrier).
    rp, rap:
        Read resistances [Ohm] of the two states at the read voltage.
    hz_stray:
        Constant stray field at the FL [A/m] (intra-cell and/or inter-cell).
    protocol:
        :class:`SweepProtocol`; required.
    attempt_frequency:
        Thermal attempt frequency [Hz].
    """

    def __init__(self, delta0, hk, rp, rap, hz_stray=0.0, protocol=None,
                 attempt_frequency=ATTEMPT_FREQUENCY):
        require_positive(delta0, "delta0")
        require_positive(hk, "hk")
        require_positive(rp, "rp")
        require_positive(rap, "rap")
        if rap <= rp:
            raise ParameterError(
                f"rap ({rap}) must exceed rp ({rp}) for a readable loop")
        if protocol is None:
            raise ParameterError("protocol is required")
        self.delta0 = float(delta0)
        self.hk = float(hk)
        self.rp = float(rp)
        self.rap = float(rap)
        self.hz_stray = float(hz_stray)
        self.protocol = protocol
        self.attempt_frequency = float(
            require_positive(attempt_frequency, "attempt_frequency"))

    def barrier_to_leave(self, state, h_eff):
        """Barrier ``Delta`` to leave ``state`` under effective field.

        Clamped at zero once the field reaches the anisotropy field.
        """
        sign = +1.0 if state == "AP" else -1.0
        reduced = 1.0 - sign * h_eff / self.hk
        if reduced <= 0.0:
            return 0.0
        # Fields that *stabilize* the state deepen the well; the (1-x)^2
        # law is only meaningful for destabilizing fields up to Hk.
        if reduced >= 2.0:
            reduced = 2.0
        return self.delta0 * reduced * reduced

    def flip_probability(self, state, h_ext):
        """Probability of flipping during one dwell at ``h_ext`` [A/m]."""
        h_eff = h_ext + self.hz_stray
        delta = self.barrier_to_leave(state, h_eff)
        rate = self.attempt_frequency * math.exp(-delta)
        return -math.expm1(-rate * self.protocol.dwell_time)

    def simulate(self, rng=None, initial_state="AP"):
        """Run one stochastic loop; returns a :class:`HysteresisLoop`."""
        if initial_state not in ("P", "AP"):
            raise ParameterError(
                f"initial_state must be 'P' or 'AP', got {initial_state!r}")
        rng = np.random.default_rng(rng)
        fields = self.protocol.field_points()
        n = fields.shape[0]
        resistances = np.empty(n)
        states = np.empty(n, dtype=np.int8)
        uniforms = rng.random(n)

        state = initial_state
        hsw_p = None
        hsw_n = None
        for i, h_ext in enumerate(fields):
            p_flip = self.flip_probability(state, h_ext)
            if uniforms[i] < p_flip:
                if state == "AP":
                    state = "P"
                    if hsw_p is None:
                        hsw_p = float(h_ext)
                else:
                    state = "AP"
                    # Record the first P->AP event on the falling branch
                    # (negative-going fields), the paper's Hsw_n.
                    if hsw_n is None and h_ext < 0:
                        hsw_n = float(h_ext)
            resistances[i] = self.rp if state == "P" else self.rap
            states[i] = +1 if state == "P" else -1

        return HysteresisLoop(fields=fields, resistances=resistances,
                              states=states, hsw_p=hsw_p, hsw_n=hsw_n)

    def switching_field_quantile(self, state, quantile=0.5):
        """Deterministic q-quantile of the switching field [A/m].

        Integrates the hazard along the relevant sweep branch and inverts
        the survival function; useful for fast, noise-free predictions of
        ``Hsw_p``/``Hsw_n`` (and hence ``Hc``/``Hoffset``).
        """
        require_in_range(quantile, "quantile", 0.0, 1.0, inclusive=False)
        fields = self.protocol.field_points()
        if state == "AP":
            branch = fields[: np.argmax(fields) + 1]
        else:
            # Falling branch from +h_max to -h_max.
            top = int(np.argmax(fields))
            bottom = int(np.argmin(fields))
            branch = fields[top:bottom + 1]
        hazard = np.array(
            [-math.log1p(-min(self.flip_probability(state, h), 1 - 1e-15))
             for h in branch])
        cumulative = np.cumsum(hazard)
        target = -math.log1p(-quantile)
        idx = int(np.searchsorted(cumulative, target))
        if idx >= branch.shape[0]:
            raise MeasurementError(
                f"device does not reach the {quantile} switching quantile "
                f"within the sweep range")
        return float(branch[idx])
