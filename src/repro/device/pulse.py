"""Write-pulse waveforms and their switching effectiveness.

Real write drivers do not produce ideal rectangular pulses: rise and fall
times eat into the effective drive. In the precessional picture the FL
angle grows as ``exp( integral r(t) dt )`` with the instantaneous rate
``r(t)`` proportional to the overdrive current ``I(t) - Ic`` (Sun's
model), so a shaped pulse is exactly equivalent to a rectangular pulse of
the same *rate integral*. This module provides waveform primitives, the
equivalent rectangular duration, and the WER of a shaped pulse via
:class:`repro.apps.write_error.WriteErrorModel`'s closed form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..validation import require_non_negative, require_positive


@dataclass(frozen=True)
class TrapezoidalPulse:
    """A trapezoidal voltage pulse.

    Parameters
    ----------
    amplitude:
        Plateau voltage [V].
    width:
        Total pulse duration [s] (start of rise to end of fall).
    rise_time, fall_time:
        Edge durations [s]; their sum must not exceed ``width``.
    """

    amplitude: float
    width: float
    rise_time: float = 0.0
    fall_time: float = 0.0

    def __post_init__(self):
        require_positive(self.amplitude, "amplitude")
        require_positive(self.width, "width")
        require_non_negative(self.rise_time, "rise_time")
        require_non_negative(self.fall_time, "fall_time")
        if self.rise_time + self.fall_time > self.width:
            raise ParameterError(
                "rise_time + fall_time exceeds the pulse width")

    @property
    def plateau(self):
        """Flat-top duration [s]."""
        return self.width - self.rise_time - self.fall_time

    def voltage(self, t):
        """Instantaneous voltage [V] at time ``t`` (vectorized)."""
        t = np.asarray(t, dtype=float)
        v = np.zeros_like(t)
        rising = (t >= 0) & (t < self.rise_time)
        if self.rise_time > 0:
            v[rising] = self.amplitude * t[rising] / self.rise_time
        flat = (t >= self.rise_time) & (t <= self.width - self.fall_time)
        v[flat] = self.amplitude
        falling = ((t > self.width - self.fall_time) & (t <= self.width))
        if self.fall_time > 0:
            v[falling] = (self.amplitude
                          * (self.width - t[falling]) / self.fall_time)
        return v if v.ndim else float(v)

    def sample(self, n=200):
        """(times, voltages) sampled across the pulse."""
        times = np.linspace(0.0, self.width, int(n))
        return times, self.voltage(times)


def rectangular(amplitude, width):
    """A rectangular pulse (zero-length edges)."""
    return TrapezoidalPulse(amplitude=amplitude, width=width)


def rate_integral(pulse, device, hz_stray=0.0, initial_state=None,
                  n_samples=400):
    """``integral r(t) dt`` of a pulse on a device (dimensionless).

    ``r(t)`` is the angle-growth rate at the instantaneous voltage;
    negative rates (below threshold) contribute zero — thermal decay of
    the angle during sub-threshold intervals is neglected, which is
    accurate for edges much shorter than the thermal relaxation time.
    """
    from ..apps.write_error import WriteErrorModel
    from .mtj import MTJState

    state = MTJState.AP if initial_state is None else initial_state
    model = WriteErrorModel(device)
    times, voltages = pulse.sample(n_samples)
    rates = np.zeros_like(times)
    for i, v in enumerate(voltages):
        if v <= 0.0:
            continue
        rate = model._angle_rate(float(v), hz_stray, state)
        rates[i] = max(rate, 0.0)
    return float(np.trapezoid(rates, times))


def equivalent_rectangular_width(pulse, device, hz_stray=0.0,
                                 initial_state=None):
    """Width [s] of the rectangular pulse with the same rate integral.

    The figure of merit for driver design: how much of the shaped pulse
    actually drives the switching.
    """
    from ..apps.write_error import WriteErrorModel
    from .mtj import MTJState

    state = MTJState.AP if initial_state is None else initial_state
    model = WriteErrorModel(device)
    plateau_rate = model._angle_rate(pulse.amplitude, hz_stray, state)
    if plateau_rate <= 0.0:
        raise ParameterError(
            f"plateau voltage {pulse.amplitude} V is below threshold")
    return rate_integral(pulse, device, hz_stray, state) / plateau_rate


def shaped_pulse_wer(pulse, device, hz_stray=0.0, initial_state=None):
    """Write-error rate of a shaped pulse.

    Uses the rate-integral equivalence: a shaped pulse with integral
    ``G`` has ``WER = 1 - exp(-Delta (pi/2)^2 exp(-2G))``.
    """
    grown = rate_integral(pulse, device, hz_stray, initial_state)
    delta = device.params.delta0
    exponent = delta * (math.pi / 2.0) ** 2 * math.exp(-2.0 * grown)
    return -math.expm1(-exponent)
