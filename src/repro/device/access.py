"""1T-1R access-path model: the access device in series with the MTJ.

The paper's test structures are 0T1R (direct probing), but its
conclusions target product arrays, which are 1T-1R: a select transistor
in series with the MTJ divides the write voltage and — because the MTJ
resistance is state- and bias-dependent — does so asymmetrically between
the two write directions. This module models that divider with a simple
linear on-resistance access device and solves the nonlinear operating
point by fixed-point iteration, so switching-time analyses can be run
against the *cell terminal* voltage instead of the MTJ voltage.

The same series divider governs the read path:
:class:`repro.memsys.sense.SenseMarginModel` puts the identical
:class:`AccessTransistor` in the sense branch, where the bias-dependent
AP resistance sets the read operating point and the margin to the
reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError, SimulationError
from ..validation import require_positive


@dataclass(frozen=True)
class AccessTransistor:
    """A select transistor reduced to a linear on-resistance.

    Parameters
    ----------
    r_on:
        On-resistance [Ohm] in the selected state (write or read).
    """

    r_on: float

    def __post_init__(self):
        require_positive(self.r_on, "r_on")


class WritePath:
    """Series connection of an access device and one MTJ.

    Parameters
    ----------
    device:
        :class:`~repro.device.mtj.MTJDevice`.
    access:
        :class:`AccessTransistor`.
    """

    def __init__(self, device, access):
        from .mtj import MTJDevice
        if not isinstance(device, MTJDevice):
            raise ParameterError(
                f"device must be an MTJDevice, got {type(device)!r}")
        if not isinstance(access, AccessTransistor):
            raise ParameterError(
                f"access must be an AccessTransistor, got {type(access)!r}")
        self.device = device
        self.access = access

    def mtj_voltage(self, v_cell, initial_state, tolerance=1e-9,
                    max_iterations=200):
        """MTJ terminal voltage [V] for a cell write voltage ``v_cell``.

        Solves ``v_mtj = v_cell * R_mtj(v_mtj) / (R_mtj(v_mtj) + r_on)``
        by damped fixed-point iteration. The AP branch's bias-dependent
        resistance makes this nonlinear; convergence is monotone for the
        physical parameter range.
        """
        require_positive(v_cell, "v_cell")
        resistance = self.device.params.resistance
        ecd = self.device.params.ecd
        state = initial_state.value if hasattr(initial_state, "value") \
            else str(initial_state)

        v_mtj = v_cell * 0.7  # reasonable starting split
        for _ in range(max_iterations):
            r_mtj = resistance.resistance(ecd, state, v_mtj)
            v_next = v_cell * r_mtj / (r_mtj + self.access.r_on)
            if abs(v_next - v_mtj) < tolerance:
                return v_next
            v_mtj = 0.5 * (v_mtj + v_next)
        raise SimulationError(
            f"write-path operating point did not converge at "
            f"v_cell={v_cell} V")

    def write_current(self, v_cell, initial_state):
        """Write current [A] through the cell at ``v_cell``."""
        v_mtj = self.mtj_voltage(v_cell, initial_state)
        resistance = self.device.params.resistance
        state = initial_state.value if hasattr(initial_state, "value") \
            else str(initial_state)
        return v_mtj / resistance.resistance(
            self.device.params.ecd, state, v_mtj)

    def switching_time(self, v_cell, hz_stray=0.0, initial_state=None):
        """Switching time [s] driven from the cell terminal.

        Same as :meth:`MTJDevice.switching_time` but with the access
        device eating part of the drive — the realistic array situation.
        """
        from .mtj import MTJState
        state = MTJState.AP if initial_state is None else initial_state
        v_mtj = self.mtj_voltage(v_cell, state)
        return self.device.switching_time(v_mtj, hz_stray,
                                          initial_state=state)

    def required_cell_voltage(self, v_mtj_target, initial_state,
                              v_max=5.0):
        """Cell voltage [V] that puts ``v_mtj_target`` across the MTJ.

        Bisection on the monotone map v_cell -> v_mtj.
        """
        require_positive(v_mtj_target, "v_mtj_target")
        lo, hi = v_mtj_target, v_max
        if self.mtj_voltage(hi, initial_state) < v_mtj_target:
            raise SimulationError(
                f"even v_cell={v_max} V cannot reach "
                f"v_mtj={v_mtj_target} V through the access device")
        for _ in range(100):
            mid = 0.5 * (lo + hi)
            if self.mtj_voltage(mid, initial_state) < v_mtj_target:
                lo = mid
            else:
                hi = mid
            if hi - lo < 1e-9:
                break
        return hi
