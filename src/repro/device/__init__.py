"""MTJ device models.

Implements the electrical and magnetic behaviour of one MTJ device:

* :mod:`repro.device.resistance` — TMR/RA resistance with voltage roll-off
  and the eCD extraction used in the paper's Section III,
* :mod:`repro.device.energy` — energy barrier and thermal stability factor
  (paper Eq. 5),
* :mod:`repro.device.thermal` — temperature scaling of Ms/Hk/Delta,
* :mod:`repro.device.switching` — critical current (Eq. 2) and Sun's
  average switching time (Eq. 3-4),
* :mod:`repro.device.retention` — Neel-Arrhenius retention statistics,
* :mod:`repro.device.hysteresis` — stochastic swept-field R-H loops,
* :mod:`repro.device.mtj` — the :class:`MTJDevice` facade tying it together.
"""

from .access import AccessTransistor, WritePath
from .compact import export_model_card, lookup_tables, spice_subcircuit
from .energy import delta_factor, delta_with_stray, energy_barrier
from .hysteresis import HysteresisLoop, RHLoopSimulator, SweepProtocol
from .mtj import DeviceParameters, MTJDevice, MTJState, PAPER_EVAL_DEVICE
from .pulse import (
    TrapezoidalPulse,
    equivalent_rectangular_width,
    rectangular,
    shaped_pulse_wer,
)
from .resistance import ResistanceModel, ecd_from_rp, rp_from_ecd
from .retention import (
    fit_rate,
    retention_failure_probability,
    retention_time,
)
from .switching import (
    SunModel,
    calibrate_eta,
    calibrate_polarization,
    critical_current,
    intrinsic_critical_current,
)
from .thermal import ThermalModel

__all__ = [
    "AccessTransistor",
    "DeviceParameters",
    "WritePath",
    "HysteresisLoop",
    "MTJDevice",
    "MTJState",
    "PAPER_EVAL_DEVICE",
    "ResistanceModel",
    "RHLoopSimulator",
    "SunModel",
    "SweepProtocol",
    "ThermalModel",
    "TrapezoidalPulse",
    "equivalent_rectangular_width",
    "rectangular",
    "shaped_pulse_wer",
    "calibrate_eta",
    "calibrate_polarization",
    "critical_current",
    "delta_factor",
    "delta_with_stray",
    "ecd_from_rp",
    "energy_barrier",
    "export_model_card",
    "lookup_tables",
    "spice_subcircuit",
    "fit_rate",
    "intrinsic_critical_current",
    "retention_failure_probability",
    "retention_time",
    "rp_from_ecd",
]
