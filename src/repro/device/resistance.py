"""MTJ resistance model: RA product, TMR, bias dependence, eCD extraction.

The paper uses two resistance facts heavily:

* The RA product is size-independent, so the *electrical critical diameter*
  of a device follows from its parallel resistance:
  ``eCD = sqrt(4/pi * RA / RP)`` (Section III, citing [18]).
* The anti-parallel resistance rolls off with bias: we use the standard
  empirical form ``TMR(V) = TMR0 / (1 + V^2 / Vh^2)``, where ``Vh`` is the
  voltage at which the TMR has halved. The parallel resistance is treated
  as bias-independent, which is the usual experimental observation. This
  provides the non-linear ``R(Vp)`` required by Sun's switching-time model
  (paper Eq. 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from ..validation import require_non_negative, require_positive


def rp_from_ecd(ra, ecd):
    """Parallel resistance [Ohm] from RA [Ohm*m^2] and eCD [m]."""
    require_positive(ra, "ra")
    require_positive(ecd, "ecd")
    area = math.pi * (0.5 * ecd) ** 2
    return ra / area


def ecd_from_rp(ra, rp):
    """Electrical critical diameter [m] from RA [Ohm*m^2] and RP [Ohm].

    ``eCD = sqrt(4/pi * RA / RP)`` — the paper's Section III formula.
    """
    require_positive(ra, "ra")
    require_positive(rp, "rp")
    return math.sqrt(4.0 / math.pi * ra / rp)


@dataclass(frozen=True)
class ResistanceModel:
    """Bias-dependent two-state resistance of an MTJ.

    Parameters
    ----------
    ra:
        Resistance-area product [Ohm*m^2] (size independent).
    tmr0:
        Zero-bias tunneling magneto-resistance ratio
        ``(RAP - RP) / RP`` (dimensionless, e.g. 1.2 for 120 %).
    v_half:
        Bias voltage [V] at which the TMR has dropped to half its zero-bias
        value.
    """

    ra: float
    tmr0: float
    v_half: float

    def __post_init__(self):
        require_positive(self.ra, "ra")
        require_positive(self.tmr0, "tmr0")
        require_positive(self.v_half, "v_half")

    def rp(self, ecd):
        """Parallel-state resistance [Ohm] for a device of ``ecd`` [m]."""
        return rp_from_ecd(self.ra, ecd)

    def tmr(self, voltage=0.0):
        """TMR ratio at bias ``voltage`` [V] (symmetric in sign)."""
        require_non_negative(abs(float(voltage)), "abs(voltage)")
        ratio = float(voltage) / self.v_half
        return self.tmr0 / (1.0 + ratio * ratio)

    def rap(self, ecd, voltage=0.0):
        """Anti-parallel resistance [Ohm] at bias ``voltage`` [V]."""
        return self.rp(ecd) * (1.0 + self.tmr(voltage))

    def resistance(self, ecd, state, voltage=0.0):
        """Resistance [Ohm] in ``state`` ('P' or 'AP') at ``voltage`` [V]."""
        if state == "P":
            return self.rp(ecd)
        if state == "AP":
            return self.rap(ecd, voltage)
        raise ParameterError(f"state must be 'P' or 'AP', got {state!r}")

    def current(self, ecd, state, voltage):
        """Current [A] driven through the device at ``voltage`` [V]."""
        return float(voltage) / self.resistance(ecd, state, voltage)

    def ecd_of_device(self, rp_measured):
        """Invert a measured RP [Ohm] to the device eCD [m]."""
        return ecd_from_rp(self.ra, rp_measured)
