"""Neel-Arrhenius retention statistics.

A retention fault occurs when the FL magnetization flips spontaneously by
thermal activation. The flip rate over a barrier ``Delta`` (in units of
``kB T``) is ``r = f0 * exp(-Delta)``; the mean retention time is ``1/r``
and the failure probability over an interval ``t`` is ``1 - exp(-r t)``.

The paper quantifies retention through ``Delta`` (its Fig. 6); these
helpers translate ``Delta`` into the time-domain quantities an engineer
actually budgets (years of retention, FIT rates, array-level failure
probability).
"""

from __future__ import annotations

import math

import numpy as np

from ..constants import ATTEMPT_FREQUENCY
from ..validation import require_non_negative, require_positive

#: Seconds per year, used for the "10 years" storage-class requirement.
SECONDS_PER_YEAR = 365.25 * 24.0 * 3600.0

#: One FIT = one failure per 1e9 device-hours.
FIT_HOURS = 1.0e9


def flip_rate(delta, attempt_frequency=ATTEMPT_FREQUENCY):
    """Spontaneous flip rate [1/s] for a barrier ``delta`` [kB*T units]."""
    require_non_negative(delta, "delta")
    require_positive(attempt_frequency, "attempt_frequency")
    return attempt_frequency * math.exp(-delta)


def retention_time(delta, attempt_frequency=ATTEMPT_FREQUENCY):
    """Mean retention time [s]: ``exp(Delta) / f0``."""
    return 1.0 / flip_rate(delta, attempt_frequency)


def retention_failure_probability(delta, interval,
                                  attempt_frequency=ATTEMPT_FREQUENCY):
    """Probability that one bit flips within ``interval`` seconds.

    Vectorized over ``delta`` (numpy arrays allowed).
    """
    require_positive(interval, "interval")
    require_positive(attempt_frequency, "attempt_frequency")
    delta_arr = np.asarray(delta, dtype=float)
    if np.any(delta_arr < 0):
        raise ValueError("delta must be >= 0")
    rate = attempt_frequency * np.exp(-delta_arr)
    prob = -np.expm1(-rate * interval)
    if np.isscalar(delta) or np.asarray(delta).ndim == 0:
        return float(prob)
    return prob


def fit_rate(delta, attempt_frequency=ATTEMPT_FREQUENCY):
    """Failure-in-time rate (failures per 1e9 device-hours)."""
    return flip_rate(delta, attempt_frequency) * 3600.0 * FIT_HOURS


def required_delta(target_time, attempt_frequency=ATTEMPT_FREQUENCY):
    """Minimum ``Delta`` for a mean retention time of ``target_time`` [s].

    The classic sizing rule: storage needs >10 years (Delta ~ 60), caches
    tolerate milliseconds (Delta ~ 20) — paper Section II-A.
    """
    require_positive(target_time, "target_time")
    return math.log(target_time * attempt_frequency)


def array_retention_failure_probability(
        delta, interval, n_bits, attempt_frequency=ATTEMPT_FREQUENCY):
    """Probability that at least one of ``n_bits`` identical bits flips."""
    require_positive(n_bits, "n_bits")
    p_bit = retention_failure_probability(delta, interval,
                                          attempt_frequency)
    return 1.0 - (1.0 - p_bit) ** n_bits
