"""The MTJ device facade.

:class:`MTJDevice` ties the stack geometry, the resistance model, and the
switching/retention physics together behind one object, parameterized by a
:class:`DeviceParameters` record. The module also ships
:data:`PAPER_EVAL_DEVICE`, the calibrated parameter set of the paper's
Section V evaluation device (eCD = 35 nm, Delta0 = 45.5, Hk = 4646.8 Oe,
Ic0 = 57.2 uA).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from ..constants import (
    ATTEMPT_FREQUENCY,
    BOLTZMANN,
    MU0,
    ROOM_TEMPERATURE,
)
from ..errors import ParameterError
from ..fields import LoopCollection, layer_to_loops
from ..stack import build_reference_stack
from ..units import am_to_oe, oe_to_am
from ..validation import require_in_range, require_positive
from .energy import delta_with_stray
from .hysteresis import RHLoopSimulator, SweepProtocol
from .resistance import ResistanceModel
from .retention import retention_time
from .switching import SunModel, critical_current, intrinsic_critical_current
from .thermal import ThermalModel


class MTJState(enum.Enum):
    """Binary magnetization state of the free layer."""

    P = "P"
    AP = "AP"

    @property
    def mz(self):
        """FL magnetization direction along z: +1 for P, -1 for AP."""
        return +1 if self is MTJState.P else -1

    @property
    def opposite(self):
        """The other state."""
        return MTJState.AP if self is MTJState.P else MTJState.P

    @property
    def bit(self):
        """Data convention of the paper: 0 stores P, 1 stores AP."""
        return 0 if self is MTJState.P else 1

    @classmethod
    def from_bit(cls, bit):
        """Map a data bit (0/1) to a state (P/AP)."""
        if bit == 0:
            return cls.P
        if bit == 1:
            return cls.AP
        raise ParameterError(f"bit must be 0 or 1, got {bit!r}")


@dataclass(frozen=True)
class DeviceParameters:
    """Calibrated electrical/magnetic parameters of one MTJ design.

    Parameters
    ----------
    ecd:
        Electrical critical diameter [m].
    hk:
        Anisotropy field [A/m].
    delta0:
        Intrinsic thermal stability factor at ``temperature``.
    hc:
        FL coercivity [A/m] (measured; used for the Psi factor).
    alpha:
        Gilbert damping constant.
    eta:
        STT efficiency (calibrated against the measured Ic0).
    polarization:
        Effective spin polarization of Sun's model (calibrated).
    resistance:
        :class:`~repro.device.resistance.ResistanceModel`.
    temperature:
        Reference temperature [K] of the quoted parameters.
    attempt_frequency:
        Thermal attempt frequency [Hz].
    """

    ecd: float
    hk: float
    delta0: float
    hc: float
    alpha: float
    eta: float
    polarization: float
    resistance: ResistanceModel
    temperature: float = ROOM_TEMPERATURE
    attempt_frequency: float = ATTEMPT_FREQUENCY

    def __post_init__(self):
        require_positive(self.ecd, "ecd")
        require_positive(self.hk, "hk")
        require_positive(self.delta0, "delta0")
        require_positive(self.hc, "hc")
        require_positive(self.alpha, "alpha")
        require_in_range(self.eta, "eta", 0.0, 1.0, inclusive=False)
        require_in_range(self.polarization, "polarization", 0.0, 1.0,
                         inclusive=False)
        require_positive(self.temperature, "temperature")
        require_positive(self.attempt_frequency, "attempt_frequency")

    def with_ecd(self, ecd):
        """Copy with a different eCD (Delta0/Hk kept as quoted)."""
        return replace(self, ecd=ecd)


class MTJDevice:
    """One MTJ device: stack + parameters + physics models.

    Parameters
    ----------
    params:
        :class:`DeviceParameters`.
    stack:
        Optional :class:`~repro.stack.MTJStack`; the calibrated reference
        stack at ``params.ecd`` is built when omitted.
    state:
        Initial :class:`MTJState` (default AP, matching the paper's loop).
    """

    def __init__(self, params, stack=None, state=MTJState.AP):
        if not isinstance(params, DeviceParameters):
            raise ParameterError(
                f"params must be DeviceParameters, got {type(params)!r}")
        self.params = params
        self.stack = (build_reference_stack(params.ecd)
                      if stack is None else stack)
        if not math.isclose(self.stack.ecd, params.ecd,
                            rel_tol=1e-9, abs_tol=0.0):
            raise ParameterError(
                f"stack eCD {self.stack.ecd} != params eCD {params.ecd}")
        if not isinstance(state, MTJState):
            raise ParameterError(
                f"state must be MTJState, got {state!r}")
        self.state = state
        self._thermal = ThermalModel(
            material=self.stack.free_layer.material,
            reference_temperature=params.temperature)
        self._intra_field_cache = None

    # -- geometry ----------------------------------------------------------

    @property
    def area(self):
        """Pillar cross-section [m^2]."""
        return self.stack.area

    @property
    def fl_volume(self):
        """Geometric FL volume [m^3]."""
        return self.area * self.stack.free_layer.thickness

    @property
    def fl_moment(self):
        """Total FL moment [A*m^2] at the reference temperature."""
        return self.stack.free_layer.material.ms * self.fl_volume

    @property
    def activation_volume(self):
        """Activation volume [m^3] implied by the measured ``Delta0``.

        ``V_act = 2 Delta0 kB T / (mu0 Ms Hk)`` — below the geometric FL
        volume for nucleation-limited devices.
        """
        p = self.params
        ms = self.stack.free_layer.material.ms
        return (2.0 * p.delta0 * BOLTZMANN * p.temperature
                / (MU0 * ms * p.hk))

    @property
    def thermal_model(self):
        """The :class:`~repro.device.thermal.ThermalModel` of the FL."""
        return self._thermal

    # -- stray field of the device's own fixed layers ----------------------

    def fixed_layer_loops(self):
        """Bound-current loops of the RL and HL (state independent)."""
        loops = []
        for layer in self.stack.fixed_layers():
            loops.extend(layer_to_loops(layer, self.stack.radius))
        return LoopCollection(loops)

    def free_layer_loops(self, state=None):
        """Bound-current loops of the FL for ``state`` (default: current)."""
        state = self.state if state is None else state
        loops = layer_to_loops(self.stack.free_layer, self.stack.radius,
                               direction=state.mz)
        return LoopCollection(loops)

    def all_loops(self, state=None):
        """All three magnetic layers as loop sources."""
        return self.fixed_layer_loops() + self.free_layer_loops(state)

    def intra_stray_field(self):
        """Intra-cell stray field z-component at the FL center [A/m].

        The paper's calibration point: the out-of-plane field generated by
        the device's own RL and HL, evaluated at the FL midplane center.
        Cached (the fixed layers never change).
        """
        if self._intra_field_cache is None:
            col = self.fixed_layer_loops()
            self._intra_field_cache = float(
                col.field((0.0, 0.0, 0.0))[2])
        return self._intra_field_cache

    def intra_stray_field_oe(self):
        """:meth:`intra_stray_field` in oersted."""
        return am_to_oe(self.intra_stray_field())

    def h_ratio(self, hz_stray):
        """Dimensionless ``h = Hz_stray / Hk`` for a stray field [A/m]."""
        return float(hz_stray) / self.params.hk

    # -- switching ---------------------------------------------------------

    def ic0(self, temperature=None):
        """Intrinsic critical current [A] at ``temperature``."""
        p = self.params
        temp = p.temperature if temperature is None else temperature
        delta0 = self._thermal.delta0_at(p.delta0, temp)
        return intrinsic_critical_current(p.alpha, p.eta, delta0, temp)

    def ic(self, direction, hz_stray=0.0, temperature=None):
        """Critical current [A] for ``direction`` under ``hz_stray`` [A/m].

        ``direction`` is ``"P->AP"`` or ``"AP->P"`` (paper Eq. 2).
        """
        p = self.params
        temp = p.temperature if temperature is None else temperature
        hk = self._thermal.hk_at(p.hk, temp)
        return critical_current(self.ic0(temp), float(hz_stray) / hk,
                                direction)

    def sun_model(self):
        """Sun's switching-time model bound to this device."""
        p = self.params
        return SunModel(
            ms=self.stack.free_layer.material.ms,
            fl_volume=self.fl_volume,
            polarization=p.polarization,
            delta0=p.delta0,
            resistance_model=p.resistance,
            ecd=p.ecd,
        )

    def switching_time(self, vp, hz_stray=0.0, initial_state=MTJState.AP):
        """Average switching time [s] for a write at ``vp`` volts.

        The write direction follows from ``initial_state``; the stray field
        shifts the critical current per Eq. 2 before entering Sun's model.
        """
        direction = ("AP->P" if initial_state is MTJState.AP else "P->AP")
        ic = self.ic(direction, hz_stray)
        return self.sun_model().switching_time(
            vp, ic, initial_state=initial_state.value)

    # -- retention ---------------------------------------------------------

    def delta(self, state, hz_stray=0.0, temperature=None):
        """Thermal stability factor of ``state`` under ``hz_stray`` [A/m].

        Applies the paper's Eq. 5 on top of the thermal scaling of
        ``Delta0`` and ``Hk``.
        """
        if not isinstance(state, MTJState):
            raise ParameterError(f"state must be MTJState, got {state!r}")
        p = self.params
        temp = p.temperature if temperature is None else temperature
        delta0 = self._thermal.delta0_at(p.delta0, temp)
        hk = self._thermal.hk_at(p.hk, temp)
        return delta_with_stray(delta0, float(hz_stray) / hk, state.value)

    def retention_time(self, state, hz_stray=0.0, temperature=None):
        """Mean retention time [s] of ``state`` under ``hz_stray``."""
        return retention_time(
            self.delta(state, hz_stray, temperature),
            self.params.attempt_frequency)

    # -- measurement emulation ---------------------------------------------

    def rh_simulator(self, protocol=None, hz_stray=None):
        """An :class:`RHLoopSimulator` for this device.

        ``hz_stray`` defaults to the device's own intra-cell stray field —
        the situation of the paper's Fig. 2a measurement on an isolated
        device.
        """
        p = self.params
        if protocol is None:
            protocol = SweepProtocol(h_max=oe_to_am(3000.0))
        if hz_stray is None:
            hz_stray = self.intra_stray_field()
        return RHLoopSimulator(
            delta0=p.delta0,
            hk=p.hk,
            rp=p.resistance.rp(p.ecd),
            rap=p.resistance.rap(p.ecd, protocol.read_voltage),
            hz_stray=hz_stray,
            protocol=protocol,
            attempt_frequency=p.attempt_frequency,
        )

    def describe(self):
        """Summary dict of the device (for reports and tables)."""
        p = self.params
        return {
            "ecd_nm": p.ecd * 1e9,
            "hk_oe": am_to_oe(p.hk),
            "delta0": p.delta0,
            "hc_oe": am_to_oe(p.hc),
            "ic0_ua": self.ic0() * 1e6,
            "rp_ohm": p.resistance.rp(p.ecd),
            "intra_stray_oe": self.intra_stray_field_oe(),
            "state": self.state.value,
        }


def _paper_eval_parameters():
    """The calibrated Section V evaluation device (eCD = 35 nm)."""
    alpha = 0.015
    delta0 = 45.5
    hk = oe_to_am(4646.8)
    temperature = ROOM_TEMPERATURE
    # eta calibrated so Ic0 = 57.2 uA (paper Section V-A).
    from .switching import calibrate_eta
    eta = calibrate_eta(57.2e-6, alpha, delta0, temperature)
    return DeviceParameters(
        ecd=35.0e-9,
        hk=hk,
        delta0=delta0,
        hc=oe_to_am(2200.0),
        alpha=alpha,
        eta=eta,
        polarization=0.30,
        resistance=ResistanceModel(ra=6.4e-12, tmr0=1.5, v_half=0.55),
        temperature=temperature,
    )


#: Calibrated parameters of the paper's evaluation device (Section V).
PAPER_EVAL_DEVICE = _paper_eval_parameters()
