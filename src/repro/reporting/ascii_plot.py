"""Terminal line plots.

Renders one or more (x, y) series on a character grid. Not a replacement
for matplotlib — just enough to see the trends of every paper figure
directly in the terminal and in CI logs.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ParameterError

#: Series markers, cycled in order.
MARKERS = "*o+x#@%&"


def _finite_minmax(values):
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        raise ParameterError("series contains no finite values")
    return float(np.min(finite)), float(np.max(finite))


def ascii_plot(series, width=72, height=20, title="", x_label="",
               y_label="", logy=False):
    """Render ``series`` as an ASCII plot.

    Parameters
    ----------
    series:
        Mapping ``name -> (x, y)`` of 1-D arrays. Non-finite y values
        (e.g. ``inf`` switching times below threshold) are skipped.
    width, height:
        Plot-area size in characters.
    title, x_label, y_label:
        Annotations.
    logy:
        Plot ``log10(y)``; requires positive y values.

    Returns
    -------
    str
    """
    if not series:
        raise ParameterError("series must not be empty")
    if width < 16 or height < 6:
        raise ParameterError("plot too small; need width>=16, height>=6")

    processed = {}
    for name, (x, y) in series.items():
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.shape != y.shape or x.ndim != 1:
            raise ParameterError(
                f"series {name!r}: x and y must be equal-length 1-D")
        if logy:
            with np.errstate(divide="ignore", invalid="ignore"):
                y = np.where(y > 0, np.log10(y), np.nan)
        processed[name] = (x, y)

    x_min = min(_finite_minmax(x)[0] for x, _ in processed.values())
    x_max = max(_finite_minmax(x)[1] for x, _ in processed.values())
    y_min = min(_finite_minmax(y)[0] for _, y in processed.values())
    y_max = max(_finite_minmax(y)[1] for _, y in processed.values())
    if math.isclose(x_min, x_max):
        x_max = x_min + 1.0
    if math.isclose(y_min, y_max):
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(xv):
        return int(round((xv - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(yv):
        frac = (yv - y_min) / (y_max - y_min)
        return (height - 1) - int(round(frac * (height - 1)))

    for idx, (name, (x, y)) in enumerate(processed.items()):
        marker = MARKERS[idx % len(MARKERS)]
        for xv, yv in zip(x, y):
            if not (np.isfinite(xv) and np.isfinite(yv)):
                continue
            grid[to_row(yv)][to_col(xv)] = marker

    y_top = f"{y_max:.4g}"
    y_bot = f"{y_min:.4g}"
    label_w = max(len(y_top), len(y_bot)) + 1

    lines = []
    if title:
        lines.append(title)
    if y_label or logy:
        lines.append(f"[y: {y_label}{' (log10)' if logy else ''}]")
    for i, row in enumerate(grid):
        if i == 0:
            label = y_top.rjust(label_w)
        elif i == height - 1:
            label = y_bot.rjust(label_w)
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(row)}")
    axis = " " * label_w + " +" + "-" * width
    lines.append(axis)
    x_line = (" " * label_w + "  " + f"{x_min:.4g}"
              + " " * max(1, width - len(f"{x_min:.4g}")
                          - len(f"{x_max:.4g}")) + f"{x_max:.4g}")
    lines.append(x_line)
    if x_label:
        lines.append(" " * label_w + f"  [x: {x_label}]")
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}"
        for i, name in enumerate(processed))
    lines.append("  legend: " + legend)
    return "\n".join(lines)
