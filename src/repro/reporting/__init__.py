"""Result rendering: text tables, ASCII plots, CSV/JSON export.

The execution environment has no plotting stack, so figures are rendered
as ASCII line plots — good enough to eyeball every trend the paper plots —
and every series is exportable to CSV/JSON for external plotting.
"""

from .ascii_plot import ascii_plot
from .export import write_csv, write_json
from .tables import format_table

__all__ = ["ascii_plot", "format_table", "write_csv", "write_json"]
