"""Plain-text table formatting."""

from __future__ import annotations

from ..errors import ParameterError


def _format_cell(value, float_format):
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(headers, rows, float_format=".4g", indent=""):
    """Format ``rows`` under ``headers`` as an aligned text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row tuples; floats are formatted with
        ``float_format``, everything else with ``str``.
    float_format:
        Format spec applied to float cells.
    indent:
        Prefix for every output line.

    Returns
    -------
    str
        The table, newline separated, with a rule under the header.
    """
    headers = [str(h) for h in headers]
    formatted = []
    for row in rows:
        cells = [_format_cell(cell, float_format) for cell in row]
        if len(cells) != len(headers):
            raise ParameterError(
                f"row has {len(cells)} cells, expected {len(headers)}")
        formatted.append(cells)

    widths = [len(h) for h in headers]
    for cells in formatted:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells):
        return indent + "  ".join(
            cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = [render_row(headers),
             indent + "  ".join("-" * w for w in widths)]
    lines.extend(render_row(cells) for cells in formatted)
    return "\n".join(lines)
