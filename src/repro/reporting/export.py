"""CSV / JSON result export."""

from __future__ import annotations

import csv
import json
import os

import numpy as np

from ..errors import ParameterError


def _jsonable(value):
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def write_csv(path, headers, rows):
    """Write ``rows`` under ``headers`` to ``path`` as CSV.

    Creates parent directories as needed; returns the path.
    """
    headers = list(headers)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            row = list(row)
            if len(row) != len(headers):
                raise ParameterError(
                    f"row has {len(row)} cells, expected {len(headers)}")
            writer.writerow(row)
    return path


def write_json(path, payload):
    """Write ``payload`` (dict; numpy values allowed) to ``path`` as JSON."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(_jsonable(payload), handle, indent=2, sort_keys=True)
    return path
