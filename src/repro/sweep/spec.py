"""Declarative parameter-grid specifications.

A :class:`SweepSpec` names the axes of a parameter study and how they
compose: ``SweepSpec.product`` forms the cartesian grid (the pitch x
pattern x size sweeps of the paper), ``SweepSpec.zipped`` pairs axes
element-wise (e.g. a list of named experiments), and two specs multiply
into their product grid. The spec is pure data — evaluation lives in
:class:`repro.sweep.runner.SweepRunner` — so the same grid can run
serially, chunked, or on a process pool and always enumerate points in
the same deterministic order.
"""

from __future__ import annotations

import itertools

from ..errors import ParameterError


class SweepSpec:
    """An ordered, named parameter grid.

    Construct with :meth:`product` or :meth:`zipped`; compose larger
    grids with ``spec_a * spec_b`` (cartesian product, left-major).
    Iterating yields ``{axis_name: value}`` dicts in deterministic
    order; ``shape`` gives the logical grid shape for reshaping result
    arrays.
    """

    def __init__(self, axes, points, shape):
        self._axes = dict(axes)
        self._points = tuple(points)
        self._shape = tuple(shape)

    @classmethod
    def product(cls, **axes):
        """Cartesian product of the named axes, first axis slowest."""
        names, values = cls._validate_axes(axes)
        points = [dict(zip(names, combo))
                  for combo in itertools.product(*values)]
        return cls(axes=zip(names, values), points=points,
                   shape=[len(v) for v in values])

    @classmethod
    def zipped(cls, **axes):
        """Element-wise pairing of equal-length axes (one grid axis)."""
        names, values = cls._validate_axes(axes)
        lengths = {len(v) for v in values}
        if len(lengths) > 1:
            raise ParameterError(
                f"zipped axes must have equal lengths, got "
                f"{ {n: len(v) for n, v in zip(names, values)} }")
        points = [dict(zip(names, combo)) for combo in zip(*values)]
        return cls(axes=zip(names, values), points=points,
                   shape=[lengths.pop()])

    @staticmethod
    def _validate_axes(axes):
        if not axes:
            raise ParameterError("a sweep needs at least one axis")
        names = list(axes)
        values = []
        for name in names:
            vals = tuple(axes[name])
            if not vals:
                raise ParameterError(f"axis {name!r} has no values")
            values.append(vals)
        return names, values

    def __mul__(self, other):
        if not isinstance(other, SweepSpec):
            return NotImplemented
        overlap = set(self._axes) & set(other._axes)
        if overlap:
            raise ParameterError(
                f"cannot compose sweeps sharing axes {sorted(overlap)}")
        points = [{**a, **b} for a in self._points for b in other._points]
        return SweepSpec(axes={**self._axes, **other._axes},
                         points=points,
                         shape=self._shape + other._shape)

    @property
    def axes(self):
        """``{name: values}`` of every axis (insertion-ordered)."""
        return dict(self._axes)

    @property
    def names(self):
        """Axis names in order."""
        return tuple(self._axes)

    @property
    def shape(self):
        """Logical grid shape (one entry per product factor)."""
        return self._shape

    def __len__(self):
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def point(self, index):
        """The ``index``-th parameter dict (deterministic order)."""
        return dict(self._points[index])

    def points(self):
        """All parameter dicts, in order."""
        return [dict(p) for p in self._points]

    def __repr__(self):
        axes = ", ".join(f"{n}[{len(v)}]" for n, v in self._axes.items())
        return f"SweepSpec({axes}; {len(self)} points)"
