"""Sweep execution: one point function, pluggable executors.

The :class:`SweepRunner` evaluates a point function over every point of
a :class:`~repro.sweep.spec.SweepSpec` and returns a
:class:`~repro.sweep.result.SweepResult` whose values are always in
spec order — so serial and parallel runs of a deterministic function
produce identical results.

Executors:

* ``"serial"`` — a plain loop in the calling process (the default, and
  the baseline parallel runs are checked against),
* ``"thread"`` — a ``concurrent.futures.ThreadPoolExecutor`` in the
  calling process. The hot paths of this library release the GIL
  inside numpy/scipy (the broadcasted elliptic-integral kernels), so
  threads parallelize small-point sweeps without process-spawn or
  pickling overhead — and all workers share the one process-wide
  kernel store,
* ``"process"`` — a ``concurrent.futures.ProcessPoolExecutor``, one
  task per point; the point function and its bound arguments must be
  picklable (module-level functions / ``functools.partial`` of them),
* ``"chunked"`` — the process pool again, but points are submitted in
  contiguous chunks to amortize pickling and per-task overhead; right
  for many cheap points,
* ``"distributed"`` — a broker + worker transport over a spool-
  directory job queue (:mod:`repro.sweep.distributed`): chunks are
  scheduled with guided work stealing, workers may be spawned locally
  or attached from other hosts (``repro worker --spool DIR``), stale
  claims are retried, and results reassemble in spec order — right for
  the dense pitch grids and chip-scale presets whose wall-clock
  exceeds one machine.

Worker processes each warm their own
:class:`~repro.arrays.kernel_store.KernelStore`, so chunking also
maximizes kernel reuse within a worker; with the
:data:`~repro.arrays.kernel_disk.KERNEL_CACHE_ENV` variable set, every
worker additionally reads (and flushes back to) the shared on-disk
kernel cache.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)

from ..errors import ParameterError
from ..validation import jobs_argument, require_int_in_range
from .result import SweepResult
from .spec import SweepSpec

#: The executor registry (name -> SweepRunner method suffix).
EXECUTORS = ("serial", "thread", "process", "chunked", "distributed")

#: Environment override of the parallel executor picked by ``--jobs``.
SWEEP_EXECUTOR_ENV = "REPRO_SWEEP_EXECUTOR"

#: Grids at or below this many points count as "small" for
#: :func:`executor_for_jobs`: process-pool spawn cost dominates them,
#: so the implicit parallel pick prefers the thread executor (the
#: field-bound hot paths release the GIL inside numpy/scipy).
SMALL_SWEEP_POINTS = 32


def _flush_kernel_store():
    """Persist this process's kernel store (no-op without disk backing)."""
    from ..arrays.kernel_store import get_kernel_store
    get_kernel_store().flush_disk()


def _worker_initializer():
    """Pool-worker setup: flush the kernel store once at worker exit.

    Workers are long-lived (they serve many points), so flushing per
    point would rewrite the on-disk cache constantly; an exit hook
    persists each worker's freshly computed kernels exactly once, when
    the pool shuts down. Plain ``atexit`` never fires in
    ``multiprocessing`` children (``_bootstrap`` ends in ``os._exit``),
    so this registers through ``multiprocessing.util.Finalize``, which
    ``_bootstrap`` does run. No-op unless disk backing is enabled.
    """
    from multiprocessing.util import Finalize
    Finalize(None, _flush_kernel_store, exitpriority=100)


def _apply_point(func, params):
    """Evaluate one point (module-level for picklability)."""
    return func(**params)


def _apply_chunk(func, chunk):
    """Evaluate a contiguous chunk of points in one task."""
    return [func(**params) for params in chunk]


class SweepRunner:
    """Evaluates ``func(**point)`` over a spec with a chosen executor.

    Parameters
    ----------
    func:
        The point function; called with one keyword argument per spec
        axis. For the process executors it must be picklable — a
        module-level function or a :func:`functools.partial` of one.
    executor:
        One of :data:`EXECUTORS`. ``"serial"`` ignores ``jobs``.
    jobs:
        Worker-process count for the pool executors; None lets
        ``ProcessPoolExecutor`` pick (``os.cpu_count()``).
    chunk_size:
        Points per task for ``"chunked"`` (default: ~4 chunks per
        worker) and ``"distributed"`` (default: the guided
        work-stealing schedule of
        :func:`repro.sweep.distributed.schedule_chunks`).
    spool:
        Spool directory for ``"distributed"``; default is the
        ``REPRO_SWEEP_SPOOL`` environment variable, else a private
        temp directory. Ignored by every other executor.
    progress:
        Optional callback invoked as ``progress(done, total)`` (in
        points) whenever completed work lands: after every point
        (serial/thread/process), after every chunk (chunked), or after
        every collected chunk (distributed). It is also the
        cancellation point on the serial executor — raising
        :class:`~repro.errors.RunAborted` from the callback stops the
        sweep at the next point boundary. The callback never reorders
        or changes values, so a seeded sweep with ``progress`` is
        byte-identical to one without.
    """

    def __init__(self, func, executor="serial", jobs=None,
                 chunk_size=None, spool=None, progress=None):
        if not callable(func):
            raise ParameterError(f"func must be callable, got {func!r}")
        if executor not in EXECUTORS:
            raise ParameterError(
                f"executor must be one of {EXECUTORS}, got {executor!r}")
        if jobs is not None:
            require_int_in_range(jobs, "jobs", 1, 4096)
        if chunk_size is not None:
            require_int_in_range(chunk_size, "chunk_size", 1, 1_000_000)
        if progress is not None and not callable(progress):
            raise ParameterError(
                f"progress must be callable, got {progress!r}")
        self.func = func
        self.executor = executor
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.spool = spool
        self.progress = progress

    def run(self, spec):
        """Evaluate every point of ``spec``; returns a SweepResult."""
        if not isinstance(spec, SweepSpec):
            raise ParameterError(
                f"spec must be a SweepSpec, got {type(spec)!r}")
        start = time.perf_counter()
        extras = {}
        if self.executor == "serial":
            values = self._run_serial(spec)
        elif self.executor == "thread":
            values = self._run_threads(spec.points())
        elif self.executor == "process":
            values = self._run_pool(spec.points())
        elif self.executor == "chunked":
            values = self._run_chunked(spec.points())
        else:
            values, extras["distributed"] = self._run_distributed(
                spec.points())
        elapsed = time.perf_counter() - start
        # Persist kernels this process computed during the sweep (pool
        # workers flush themselves at pool shutdown); no-op unless the
        # on-disk kernel cache is enabled. Living here means every
        # sweep consumer warms the cache without its own incantation.
        _flush_kernel_store()
        return SweepResult(spec=spec, values=values,
                           executor=self.executor,
                           jobs=self._effective_jobs(), elapsed=elapsed,
                           extras=extras)

    def _effective_jobs(self):
        if self.executor == "serial":
            return 1
        if self.jobs is not None:
            return self.jobs
        if self.executor == "thread":
            # ThreadPoolExecutor's own default.
            return min(32, (os.cpu_count() or 1) + 4)
        return os.cpu_count() or 1

    def _report(self, done, total):
        if self.progress is not None:
            self.progress(done, total)

    def _run_serial(self, spec):
        values = []
        total = len(spec)
        for params in spec:
            values.append(self.func(**params))
            self._report(len(values), total)
        return values

    def _gather_ordered(self, pool, task, items, weights):
        """Submit ``task(func, item)`` per item; values in item order.

        The submit/as_completed shape (instead of ``pool.map``) exists
        for the progress callback: completions report as they land, in
        any order, while the returned values stay in submission order —
        so parallel runs remain byte-identical to serial ones.
        ``weights[i]`` is how many points item ``i`` carries (1 for
        point tasks, the chunk length for chunk tasks).
        """
        futures = {pool.submit(task, self.func, item): i
                   for i, item in enumerate(items)}
        values = [None] * len(items)
        total = sum(weights)
        done = 0
        for future in as_completed(futures):
            i = futures[future]
            values[i] = future.result()
            done += weights[i]
            self._report(done, total)
        return values

    def _run_threads(self, points):
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            if self.progress is None:
                return list(pool.map(
                    _apply_point, [self.func] * len(points), points))
            return self._gather_ordered(pool, _apply_point, points,
                                        [1] * len(points))

    def _run_pool(self, points):
        with ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_worker_initializer) as pool:
            if self.progress is None:
                return list(pool.map(
                    _apply_point, [self.func] * len(points), points))
            return self._gather_ordered(pool, _apply_point, points,
                                        [1] * len(points))

    def _run_chunked(self, points):
        n_workers = self._effective_jobs()
        chunk = self.chunk_size or max(
            1, -(-len(points) // (4 * n_workers)))
        chunks = [points[i:i + chunk]
                  for i in range(0, len(points), chunk)]
        with ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_worker_initializer) as pool:
            if self.progress is None:
                nested = list(pool.map(_apply_chunk,
                                       [self.func] * len(chunks),
                                       chunks))
            else:
                nested = self._gather_ordered(
                    pool, _apply_chunk, chunks,
                    [len(c) for c in chunks])
        return [value for part in nested for value in part]

    def _run_distributed(self, points):
        from .distributed import run_distributed
        return run_distributed(self.func, points, spool=self.spool,
                               jobs=self._effective_jobs(),
                               chunk_size=self.chunk_size,
                               progress=self.progress)


def run_sweep(func, spec, executor="serial", jobs=None, chunk_size=None,
              spool=None, progress=None):
    """One-call convenience: build a runner and run ``spec``."""
    return SweepRunner(func, executor=executor, jobs=jobs,
                       chunk_size=chunk_size, spool=spool,
                       progress=progress).run(spec)


def add_sweep_arguments(parser):
    """Attach the standard ``--jobs`` / ``--executor`` flag pair.

    Every sweep-shaped CLI (``repro reproduce|design|memsys`` and the
    figure runner) shares this one definition, so the flags validate
    and document identically everywhere.
    """
    parser.add_argument("--jobs", type=jobs_argument, default=None,
                        help="worker count for parallel sweep "
                             "execution")
    parser.add_argument("--executor", choices=EXECUTORS, default=None,
                        help="sweep executor (thread shares one "
                             "process and its kernel store; "
                             "process/chunked fork workers; "
                             "distributed ships chunks over a spool-"
                             "directory job queue — see `repro "
                             "worker`)")
    return parser


def executor_for_jobs(jobs, default="serial", parallel=None,
                      n_points=None):
    """Map a CLI-style ``--jobs`` value onto an executor name.

    Precedence (documented in the README): an explicit ``--executor``
    flag never reaches this function (call sites short-circuit on it);
    the ``parallel`` argument, when a caller pins one; then the
    :data:`SWEEP_EXECUTOR_ENV` environment variable — which wins at
    *every* ``jobs`` value, including an explicit ``--jobs 1`` or no
    ``--jobs`` at all (it used to be consulted only for ``jobs > 1``,
    so a configured fleet executor silently lost to the serial
    default); then the ``--jobs`` size heuristic: ``None``/1 mean the
    serial baseline, and anything larger picks the thread executor for
    grids of at most :data:`SMALL_SWEEP_POINTS` points (process-pool
    spawn cost dominates tiny field-bound sweeps, and threads share
    the warm process-wide kernel store) or ``"process"`` for larger /
    unknown-size grids.

    One asymmetry, on purpose: for serial-sized runs (``jobs`` of
    ``None``/1, which never needed the variable before) a *misspelled*
    environment value is ignored rather than raised, so a stale
    override cannot break a plain serial invocation; with ``jobs > 1``
    an invalid value still raises, as it always has.
    """
    if jobs is not None:
        require_int_in_range(jobs, "jobs", 1, 4096)
    if n_points is not None:
        require_int_in_range(n_points, "n_points", 0, 10**9)
    env = os.environ.get(SWEEP_EXECUTOR_ENV) or None
    if jobs is None or jobs == 1:
        if parallel is None and env in EXECUTORS:
            return env
        return default
    if parallel is None:
        parallel = env
    if parallel is None:
        parallel = ("thread" if n_points is not None
                    and n_points <= SMALL_SWEEP_POINTS else "process")
    if parallel not in EXECUTORS:
        raise ParameterError(
            f"parallel executor must be one of {EXECUTORS}, got "
            f"{parallel!r}")
    return parallel
