"""Sweep execution: one point function, pluggable executors.

The :class:`SweepRunner` evaluates a point function over every point of
a :class:`~repro.sweep.spec.SweepSpec` and returns a
:class:`~repro.sweep.result.SweepResult` whose values are always in
spec order — so serial and parallel runs of a deterministic function
produce identical results.

Executors:

* ``"serial"`` — a plain loop in the calling process (the default, and
  the baseline parallel runs are checked against),
* ``"process"`` — a ``concurrent.futures.ProcessPoolExecutor``, one
  task per point; the point function and its bound arguments must be
  picklable (module-level functions / ``functools.partial`` of them),
* ``"chunked"`` — the process pool again, but points are submitted in
  contiguous chunks to amortize pickling and per-task overhead; right
  for many cheap points.

Worker processes each warm their own
:class:`~repro.arrays.kernel_store.KernelStore`, so chunking also
maximizes kernel reuse within a worker.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor

from ..errors import ParameterError
from ..validation import require_int_in_range
from .result import SweepResult
from .spec import SweepSpec

#: The executor registry (name -> SweepRunner method suffix).
EXECUTORS = ("serial", "process", "chunked")


def _apply_point(func, params):
    """Evaluate one point (module-level for picklability)."""
    return func(**params)


def _apply_chunk(func, chunk):
    """Evaluate a contiguous chunk of points in one task."""
    return [func(**params) for params in chunk]


class SweepRunner:
    """Evaluates ``func(**point)`` over a spec with a chosen executor.

    Parameters
    ----------
    func:
        The point function; called with one keyword argument per spec
        axis. For the process executors it must be picklable — a
        module-level function or a :func:`functools.partial` of one.
    executor:
        One of :data:`EXECUTORS`. ``"serial"`` ignores ``jobs``.
    jobs:
        Worker-process count for the pool executors; None lets
        ``ProcessPoolExecutor`` pick (``os.cpu_count()``).
    chunk_size:
        Points per task for ``"chunked"``; default splits the sweep
        into ~4 chunks per worker.
    """

    def __init__(self, func, executor="serial", jobs=None,
                 chunk_size=None):
        if not callable(func):
            raise ParameterError(f"func must be callable, got {func!r}")
        if executor not in EXECUTORS:
            raise ParameterError(
                f"executor must be one of {EXECUTORS}, got {executor!r}")
        if jobs is not None:
            require_int_in_range(jobs, "jobs", 1, 4096)
        if chunk_size is not None:
            require_int_in_range(chunk_size, "chunk_size", 1, 1_000_000)
        self.func = func
        self.executor = executor
        self.jobs = jobs
        self.chunk_size = chunk_size

    def run(self, spec):
        """Evaluate every point of ``spec``; returns a SweepResult."""
        if not isinstance(spec, SweepSpec):
            raise ParameterError(
                f"spec must be a SweepSpec, got {type(spec)!r}")
        start = time.perf_counter()
        if self.executor == "serial":
            values = [self.func(**params) for params in spec]
        elif self.executor == "process":
            values = self._run_pool(spec.points())
        else:
            values = self._run_chunked(spec.points())
        elapsed = time.perf_counter() - start
        return SweepResult(spec=spec, values=values,
                           executor=self.executor,
                           jobs=self._effective_jobs(), elapsed=elapsed)

    def _effective_jobs(self):
        if self.executor == "serial":
            return 1
        if self.jobs is not None:
            return self.jobs
        import os
        return os.cpu_count() or 1

    def _run_pool(self, points):
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            return list(pool.map(
                _apply_point, [self.func] * len(points), points))

    def _run_chunked(self, points):
        n_workers = self._effective_jobs()
        chunk = self.chunk_size or max(
            1, -(-len(points) // (4 * n_workers)))
        chunks = [points[i:i + chunk]
                  for i in range(0, len(points), chunk)]
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            nested = pool.map(_apply_chunk, [self.func] * len(chunks),
                              chunks)
        return [value for part in nested for value in part]


def run_sweep(func, spec, executor="serial", jobs=None, chunk_size=None):
    """One-call convenience: build a runner and run ``spec``."""
    return SweepRunner(func, executor=executor, jobs=jobs,
                       chunk_size=chunk_size).run(spec)


def executor_for_jobs(jobs, default="serial", parallel="process"):
    """Map a CLI-style ``--jobs`` value onto an executor name.

    ``None`` or 1 mean the serial baseline; anything larger selects the
    parallel executor. Used by the CLI subcommands and sweep consumers
    so ``--jobs`` alone toggles parallelism.
    """
    if jobs is None or jobs == 1:
        return default
    require_int_in_range(jobs, "jobs", 1, 4096)
    return parallel
