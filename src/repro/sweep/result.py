"""Structured result of one sweep run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..errors import ParameterError
from .spec import SweepSpec


@dataclass
class SweepResult:
    """Values of a function over a :class:`~repro.sweep.spec.SweepSpec`.

    ``values[i]`` is the function value at ``spec.point(i)`` — order is
    always the spec's enumeration order regardless of executor, which is
    what makes parallel and serial runs byte-identical for deterministic
    point functions.

    Attributes
    ----------
    spec:
        The grid that was evaluated.
    values:
        One entry per point, in spec order.
    executor, jobs:
        How the run was executed (for reports).
    elapsed:
        Wall-clock seconds of the run.
    """

    spec: SweepSpec
    values: List
    executor: str = "serial"
    jobs: int = 1
    elapsed: float = 0.0
    extras: Dict = field(default_factory=dict)

    def __post_init__(self):
        if len(self.values) != len(self.spec):
            raise ParameterError(
                f"got {len(self.values)} values for a "
                f"{len(self.spec)}-point sweep")

    def __len__(self):
        return len(self.values)

    def __iter__(self):
        """Yield ``(params, value)`` pairs in spec order."""
        return iter(zip(self.spec.points(), self.values))

    def value_at(self, **params):
        """The value whose point matches every given axis value."""
        for point, value in self:
            if all(point.get(k) == v for k, v in params.items()):
                return value
        raise ParameterError(f"no sweep point matches {params!r}")

    def values_array(self, dtype=None):
        """Values as a numpy array reshaped to the spec's grid shape.

        Scalar values give an array of ``spec.shape``; non-scalar values
        fall back to an object array of the same shape.
        """
        try:
            arr = np.asarray(self.values, dtype=dtype)
            if dtype is None and arr.dtype == object:
                raise ValueError
        except (ValueError, TypeError):
            arr = np.empty(len(self.values), dtype=object)
            arr[:] = self.values
        lead = arr.shape[1:]
        return arr.reshape(self.spec.shape + lead)

    def to_rows(self, value_columns=None):
        """``(headers, rows)``: one row per point, axes then value(s).

        ``value_columns`` names the value part: a single column for
        scalar values, or one column per entry when each value is a
        tuple/list.
        """
        headers = list(self.spec.names)
        rows = []
        first = self.values[0] if self.values else None
        multi = isinstance(first, (tuple, list))
        if value_columns is None:
            value_columns = ([f"value{i}" for i in range(len(first))]
                             if multi else ["value"])
        headers += list(value_columns)
        for point, value in self:
            tail = tuple(value) if multi else (value,)
            rows.append(tuple(point[n] for n in self.spec.names) + tail)
        return headers, rows

    def describe(self) -> Dict:
        """Run metadata (for logs and experiment extras)."""
        return {
            "n_points": len(self),
            "axes": {n: list(v) for n, v in self.spec.axes.items()},
            "executor": self.executor,
            "jobs": self.jobs,
            "elapsed_s": self.elapsed,
        }
