"""Generic parameter-sweep engine: specs, runners, structured results.

Every quantitative claim of the paper — and every system-level scenario
built on it — reduces to evaluating a function over a named parameter
grid (pitch x pattern x size x temperature ...). This subpackage makes
that shape first-class:

* :mod:`repro.sweep.spec` — :class:`SweepSpec`: named axes with
  product/zip composition,
* :mod:`repro.sweep.runner` — :class:`SweepRunner`: serial, thread,
  process-pool, chunked, and distributed executors with deterministic
  result order,
* :mod:`repro.sweep.result` — :class:`SweepResult`: values in spec
  order, grid reshaping, table rendering,
* :mod:`repro.sweep.distributed` — the spool-directory broker/worker
  transport behind the ``distributed`` executor: work-stealing chunk
  scheduling, heartbeats, crash retry, at-most-once result commit.

Quick start::

    from repro.sweep import SweepSpec, run_sweep

    spec = SweepSpec.product(pitch_nm=(60, 70, 80), pattern=("solid0",
                                                             "random"))
    result = run_sweep(my_point_function, spec, executor="process",
                       jobs=4)
    grid = result.values_array()        # shape (3, 2)

Consumers: :meth:`repro.apps.design_space.DesignSpaceExplorer.sweep`,
:func:`repro.memsys.sweeps.uber_sweep`,
:func:`repro.experiments.runner.run_all`, and the ``--jobs`` flags of
``python -m repro.cli``.
"""

from .distributed import (
    SHUTDOWN_SENTINEL,
    SWEEP_SPAWN_ENV,
    SWEEP_SPOOL_ENV,
    DistributedBroker,
    SpoolWorker,
    schedule_chunks,
)
from .result import SweepResult
from .runner import (
    EXECUTORS,
    SMALL_SWEEP_POINTS,
    SWEEP_EXECUTOR_ENV,
    SweepRunner,
    add_sweep_arguments,
    executor_for_jobs,
    run_sweep,
)
from .spec import SweepSpec

__all__ = [
    "EXECUTORS",
    "SHUTDOWN_SENTINEL",
    "SMALL_SWEEP_POINTS",
    "SWEEP_EXECUTOR_ENV",
    "SWEEP_SPAWN_ENV",
    "SWEEP_SPOOL_ENV",
    "DistributedBroker",
    "SpoolWorker",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "add_sweep_arguments",
    "executor_for_jobs",
    "run_sweep",
    "schedule_chunks",
]
