"""Distributed sweep execution over a spool-directory job queue.

The fifth :data:`~repro.sweep.runner.EXECUTORS` entry ships
:class:`~repro.sweep.spec.SweepSpec` chunks to *worker processes* —
spawned locally by the broker, or attached from anywhere that can see
the spool directory (``python -m repro.cli worker --spool DIR``). The
transport is a plain directory of pickle files with atomic-rename
claims, so it needs no sockets, no daemons, and works across any
shared filesystem; with :data:`~repro.arrays.kernel_disk.KERNEL_CACHE_ENV`
pointing at common storage every worker starts from the shared
persistent kernel cache.

Protocol (one *run* per sweep, one directory per run)::

    <spool>/
      shutdown                    # sentinel: long-lived workers exit
      run-<token>/
        task.pkl                  # the (picklable) point function
        OPEN                      # broker accepts claims while present
        DONE                      # all results collected; workers move on
        queue/chunk-000007.job    # pending chunk: index + point dicts
        claimed/chunk-000007.job@<wid>   # atomic-rename claim
        results/chunk-000007.pkl  # committed values (or shipped error)
        hb/<wid>                  # heartbeats, refreshed by a ticker
                                  # thread while a chunk evaluates

Scheduling is *dynamic work stealing*: chunk sizes follow the guided
self-scheduling rule (:func:`schedule_chunks` — large chunks first,
small tail chunks last), workers pull the next pending chunk the moment
they finish one, and the broker (a) re-queues chunks whose claimer's
heartbeat went stale — a crashed or stalled worker loses its chunk to a
live one — and (b) optionally steals queued chunks itself while it
waits, which also guarantees liveness with zero attached workers.

Delivery semantics: claims are at-least-once (a stale claim is retried
up to ``max_attempts`` times), result *commits* are at-most-once — a
worker only commits a chunk it has not already seen committed, commits
are atomic renames, and the broker takes the first commit per chunk and
counts any late duplicate from a presumed-dead worker. Chunk results
reassemble in chunk order, so a seeded distributed sweep is
byte-identical to the serial baseline.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
import threading
import time
import uuid

import warnings

from ..errors import IntegrityError, ParameterError, ResilienceWarning
from ..integrity.manifest import (
    MANIFEST_NAME,
    RunManifest,
    blob_digest,
    pack_record,
    pickle_digest,
    unpack_record,
)
from ..validation import require_int_in_range, require_positive
from .runner import _flush_kernel_store

#: Spool directory the ``distributed`` executor and external workers
#: rendezvous in; without it the broker uses a private temp spool.
SWEEP_SPOOL_ENV = "REPRO_SWEEP_SPOOL"

#: Local-worker count the broker spawns (default: its job count).
#: ``REPRO_SWEEP_SPAWN=0`` defers entirely to externally attached
#: workers (the broker still steals, so the sweep cannot deadlock).
SWEEP_SPAWN_ENV = "REPRO_SWEEP_SPAWN"

#: Claim/retry attempts per chunk before the broker gives up on it
#: (integer; overridden by an explicit ``max_attempts=``).
SWEEP_MAX_ATTEMPTS_ENV = "REPRO_SWEEP_MAX_ATTEMPTS"

#: Seconds without a heartbeat before a claimed chunk is declared
#: stale and stolen back (float; overridden by an explicit
#: ``heartbeat_timeout=``).
SWEEP_HEARTBEAT_ENV = "REPRO_SWEEP_HEARTBEAT_TIMEOUT"

#: Sentinel file name (in the spool root) that tells long-lived
#: workers to exit: ``touch $REPRO_SWEEP_SPOOL/shutdown``.
SHUTDOWN_SENTINEL = "shutdown"

#: Spool-root directory poison-chunk records move to under
#: ``on_poison="quarantine"``.
QUARANTINE_DIR = "quarantine"

#: When truthy ("1"/"true"), brokers on an external spool preserve the
#: finished run directory — replay inputs plus a sealed manifest —
#: instead of removing it, so ``repro audit`` can verify it later.
SWEEP_KEEP_ENV = "REPRO_SWEEP_KEEP_RUNS"

#: Per-run directory holding each chunk's input points for replay audit.
REPLAY_DIR = "replay"


def _env_number(name, cast):
    """``cast(os.environ[name])``, None when unset/empty; the same
    strictness as :data:`SWEEP_SPAWN_ENV` parsing — a present but
    malformed knob is an error, never a silent default."""
    raw = os.environ.get(name)
    if raw in (None, ""):
        return None
    try:
        return cast(raw)
    except ValueError:
        raise ParameterError(
            f"{name} must be {'an integer' if cast is int else 'a number'}, "
            f"got {raw!r}") from None

_RUN_PREFIX = "run-"
_JOB_SUFFIX = ".job"
_CLAIM_SEP = "@"


def _atomic_write(path, payload):
    """Pickle ``payload`` to ``path`` via a same-directory atomic rename."""
    directory, name = os.path.split(path)
    tmp = os.path.join(directory, f".tmp-{uuid.uuid4().hex[:8]}-{name}")
    with open(tmp, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


def _atomic_write_json(path, record):
    """JSON twin of :func:`_atomic_write` (quarantine records)."""
    directory, name = os.path.split(path)
    tmp = os.path.join(directory, f".tmp-{uuid.uuid4().hex[:8]}-{name}")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
    os.replace(tmp, path)


def _json_safe_point(point):
    """``point`` if it survives JSON, else its ``repr`` — quarantine
    records must always write, whatever the sweep axes hold."""
    try:
        json.dumps(point)
        return point
    except (TypeError, ValueError):
        return repr(point)


def _load_pickle(path):
    with open(path, "rb") as fh:
        return pickle.load(fh)


def _picklable_error(exc):
    """``exc`` if it survives a pickle round-trip, else a wrapper.

    Worker exceptions cross a process boundary by value; an exception
    holding an unpicklable payload must degrade to a description, not
    take the result file down with it.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"distributed sweep point failed: {exc!r}")


def schedule_chunks(n_points, n_workers, chunk_size=None, min_chunk=1):
    """``(start, stop)`` chunk bounds for dynamic work stealing.

    With an explicit ``chunk_size`` the split is uniform (the
    ``chunked`` executor's contract, kept so ``chunk_size`` means the
    same thing on every executor). Otherwise sizes follow the guided
    self-scheduling rule: each next chunk takes ``remaining / (2 *
    workers)`` points, never below ``min_chunk`` — the sweep opens with
    large, cheap-to-ship chunks and ends with small tail chunks that
    let fast workers steal the remainder out from under slow ones
    instead of waiting on one oversized final chunk.
    """
    require_int_in_range(n_points, "n_points", 0, 10**9)
    require_int_in_range(n_workers, "n_workers", 1, 4096)
    if chunk_size is not None:
        require_int_in_range(chunk_size, "chunk_size", 1, 1_000_000)
    require_int_in_range(min_chunk, "min_chunk", 1, 1_000_000)
    bounds = []
    start = 0
    while start < n_points:
        remaining = n_points - start
        if chunk_size is not None:
            size = chunk_size
        else:
            size = max(min_chunk, remaining // (2 * n_workers))
        size = min(size, remaining)
        bounds.append((start, start + size))
        start += size
    return bounds


def _job_name(chunk):
    return f"chunk-{chunk:06d}{_JOB_SUFFIX}"


def _chunk_of(name):
    stem = name.split(_CLAIM_SEP, 1)[0]
    return int(stem[len("chunk-"):-len(_JOB_SUFFIX)])


class SpoolRun:
    """One sweep run inside a spool directory — both protocol ends.

    The broker constructs it with :meth:`create` (which lays out the
    run directory and persists the point function); workers construct
    it from the path alone. Every mutation is an atomic rename, so
    concurrent claims, commits, and steals never observe torn state.
    """

    def __init__(self, path):
        self.path = str(path)
        self.queue_dir = os.path.join(self.path, "queue")
        self.claimed_dir = os.path.join(self.path, "claimed")
        self.results_dir = os.path.join(self.path, "results")
        self.hb_dir = os.path.join(self.path, "hb")
        self._task_path = os.path.join(self.path, "task.pkl")
        self._open_path = os.path.join(self.path, "OPEN")
        self._done_path = os.path.join(self.path, "DONE")

    # -- broker side ---------------------------------------------------------

    @classmethod
    def create(cls, spool, func):
        """Lay out a fresh run directory under ``spool``."""
        os.makedirs(spool, exist_ok=True)
        path = os.path.join(spool,
                            f"{_RUN_PREFIX}{uuid.uuid4().hex[:12]}")
        os.mkdir(path)
        run = cls(path)
        for directory in (run.queue_dir, run.claimed_dir,
                          run.results_dir, run.hb_dir):
            os.mkdir(directory)
        _atomic_write(run._task_path, func)
        return run

    def enqueue(self, chunk, points):
        """Queue one chunk job (atomically; claimable immediately)."""
        _atomic_write(os.path.join(self.queue_dir, _job_name(chunk)),
                      {"chunk": int(chunk), "points": list(points)})

    def open(self):
        """Start accepting claims (written after every job is queued)."""
        with open(self._open_path, "w"):
            pass

    def is_open(self):
        return os.path.exists(self._open_path)

    def mark_done(self):
        """All results collected: flip OPEN -> DONE so workers move on."""
        with open(self._done_path, "w"):
            pass
        try:
            os.unlink(self._open_path)
        except OSError:
            pass

    def is_done(self):
        return os.path.exists(self._done_path)

    def collect(self, skip=frozenset()):
        """Yield ``(chunk, payload)`` of committed results not in ``skip``.

        Files mid-commit never appear: commits are atomic renames, and
        the in-flight temp names start with a dot. Every result file is
        digest-verified on read (commits are framed with
        :func:`~repro.integrity.manifest.pack_record`); a torn,
        truncated, or tampered file yields ``payload=None`` so the
        broker can count and retry it — corrupt bytes never reassemble
        into sweep values.
        """
        try:
            names = sorted(os.listdir(self.results_dir))
        except FileNotFoundError:
            return
        for name in names:
            if name.startswith("."):
                continue
            chunk = int(name[len("chunk-"):-len(".pkl")])
            if chunk in skip:
                continue
            path = os.path.join(self.results_dir, name)
            try:
                with open(path, "rb") as fh:
                    blob = fh.read()
            except OSError:
                continue
            try:
                payload = unpack_record(blob)
            except IntegrityError:
                payload = None
            yield chunk, payload

    def claimed_jobs(self):
        """``(chunk, worker_id, path)`` of every outstanding claim."""
        out = []
        for name in sorted(os.listdir(self.claimed_dir)):
            if name.startswith(".") or _CLAIM_SEP not in name:
                continue
            job, wid = name.split(_CLAIM_SEP, 1)
            out.append((_chunk_of(job), wid,
                        os.path.join(self.claimed_dir, name)))
        return out

    def heartbeat_age(self, worker_id, claim_path):
        """Seconds since this claim was last known live.

        The *minimum* of the heartbeat file's age and the claim file's
        age (the claim is mtime-stamped at claim time): a worker that
        died before its first heartbeat never writes the hb file — the
        claim's age covers it — while a worker re-claiming after an
        idle stretch must not be condemned by the stale hb file of its
        *previous* chunk before its first fresh touch lands.
        """
        ages = []
        for path in (os.path.join(self.hb_dir, worker_id), claim_path):
            try:
                ages.append(time.time() - os.path.getmtime(path))
            except OSError:
                continue
        return min(ages) if ages else float("inf")

    def discard_result(self, chunk):
        """Drop a committed (error) result so the chunk can retry.

        The at-most-once commit guard keys on the result file's
        existence; unlinking it is what re-arms the chunk for a fresh
        commit after the broker re-enqueues it.
        """
        try:
            os.unlink(os.path.join(self.results_dir,
                                   f"chunk-{chunk:06d}.pkl"))
        except OSError:
            pass

    def requeue(self, claim_path):
        """Steal a (stale) claim back onto the queue; returns the chunk.

        Returns None when the claim vanished underneath us — its worker
        committed and cleared it between the staleness check and now,
        which is not an error (the result is already in ``results/``).
        """
        name = os.path.basename(claim_path).split(_CLAIM_SEP, 1)[0]
        try:
            os.rename(claim_path, os.path.join(self.queue_dir, name))
        except OSError:
            return None
        return _chunk_of(name)

    # -- worker side ---------------------------------------------------------

    def load_func(self):
        """The run's point function (pickled once by the broker)."""
        return _load_pickle(self._task_path)

    def claim(self, worker_id):
        """Claim the lowest pending chunk via atomic rename.

        Returns ``(chunk, points, claim_path)`` or None when the queue
        is empty. Losing a rename race to another worker just moves on
        to the next pending job.
        """
        try:
            names = sorted(os.listdir(self.queue_dir))
        except FileNotFoundError:
            return None
        for name in names:
            if name.startswith(".") or not name.endswith(_JOB_SUFFIX):
                continue
            claim_path = os.path.join(self.claimed_dir,
                                      f"{name}{_CLAIM_SEP}{worker_id}")
            try:
                os.rename(os.path.join(self.queue_dir, name),
                          claim_path)
            except OSError:
                continue
            # The rename preserves the job file's *enqueue* mtime; a
            # chunk that sat queued past the heartbeat timeout would
            # look instantly stale to the watchdog (whose fallback is
            # this file's age) — stamp the claim with claim time.
            try:
                os.utime(claim_path)
                job = _load_pickle(claim_path)
            except OSError:
                # Lost the claim after all (stolen back before the
                # load); treat it as a lost race, not a crash.
                continue
            return job["chunk"], job["points"], claim_path
        return None

    def commit(self, chunk, payload, worker_id):
        """At-most-once result commit; True when this commit landed.

        The first commit per chunk wins, atomically: the payload is
        written to a temp file and *linked* into place, which fails —
        instead of overwriting — when a result already exists. A
        presumed-dead-but-merely-slow worker racing the chunk's
        re-claimer therefore cannot clobber a committed result, even
        when its own late attempt ended in an error payload.
        Filesystems without hard links fall back to check-then-rename
        (the pre-check plus deterministic payloads keep that safe in
        practice), and a run directory the broker already tore down
        reads as a plain late duplicate, not a worker crash.
        """
        path = os.path.join(self.results_dir, f"chunk-{chunk:06d}.pkl")
        if os.path.exists(path):
            return False
        tmp = os.path.join(self.results_dir,
                           f".tmp-{uuid.uuid4().hex[:8]}-{worker_id}")
        try:
            with open(tmp, "wb") as fh:
                fh.write(pack_record(payload))
        except OSError:
            # results/ vanished: the broker finished (or failed) and
            # removed the run while we were evaluating.
            return False
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        except OSError:
            # No hard-link support on this mount (CIFS/FAT): degrade
            # to check-then-rename at-most-once.
            if os.path.exists(path):
                return False
            try:
                os.replace(tmp, path)
            except OSError:
                return False
            tmp = None
            return True
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        return True

    def clear_claim(self, claim_path):
        try:
            os.unlink(claim_path)
        except OSError:
            pass

    def heartbeat(self, worker_id):
        path = os.path.join(self.hb_dir, worker_id)
        try:
            os.utime(path)
        except OSError:
            try:
                with open(path, "w"):
                    pass
            except OSError:
                # hb/ vanished with the run: nothing left to prove
                # liveness to; the ticker thread must not crash.
                pass


class SpoolWorker:
    """A worker process serving sweep chunks from a spool directory.

    Backs the ``repro worker`` CLI: attaches to ``spool``, claims
    chunks from every open run it finds, and exits on the
    :data:`SHUTDOWN_SENTINEL` or after ``max_idle`` seconds without
    work. The broker's locally spawned workers reuse :meth:`serve_run`
    bound to their single run.
    """

    #: Default seconds between heartbeat touches while a chunk
    #: evaluates. A background ticker keeps the heartbeat fresh through
    #: points of any duration, so a broker's ``heartbeat_timeout`` only
    #: needs to exceed this interval — never the cost of a single
    #: point. (Broker-spawned workers get an interval derived from the
    #: broker's own watchdog timeout.)
    heartbeat_interval = 1.0

    #: Upper bound of the idle-poll backoff in :meth:`serve_forever`.
    #: Idle polls start at ``poll`` and double per empty scan up to
    #: this cap (any served chunk resets them), so a worker parked
    #: against a wedged or idle broker costs a couple of directory
    #: scans per second at most instead of ``1/poll``.
    max_poll = 2.0

    def __init__(self, spool, worker_id=None, poll=0.05, max_idle=None,
                 heartbeat_interval=None, timeout=None, max_poll=None,
                 faults=None):
        self.spool = str(spool)
        require_positive(poll, "poll")
        if max_idle is not None:
            require_positive(max_idle, "max_idle")
        if heartbeat_interval is not None:
            require_positive(heartbeat_interval, "heartbeat_interval")
            self.heartbeat_interval = float(heartbeat_interval)
        if timeout is not None:
            require_positive(timeout, "timeout")
        if max_poll is not None:
            require_positive(max_poll, "max_poll")
            self.max_poll = float(max_poll)
        worker_id = worker_id or f"w{os.getpid()}-{uuid.uuid4().hex[:6]}"
        if _CLAIM_SEP in worker_id or os.sep in worker_id:
            raise ParameterError(
                f"worker id must not contain {_CLAIM_SEP!r} or a path "
                f"separator, got {worker_id!r}")
        self.worker_id = worker_id
        self.poll = float(poll)
        self.max_idle = max_idle
        self.timeout = timeout
        #: Optional :class:`~repro.resilience.faults.WorkerFaults` —
        #: the deterministic fault-injection seam the chaos tests use;
        #: None (production) costs one attribute check per chunk.
        self.faults = faults
        self.stats = {"chunks": 0, "points": 0, "errors": 0,
                      "duplicate_commits": 0}
        self._funcs = {}

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self):
        """Serve every open run under the spool; returns the stats.

        Exits on the :data:`SHUTDOWN_SENTINEL`, after ``max_idle``
        seconds without work, or after ``timeout`` seconds of total
        wall clock (mid-chunk evaluation is never interrupted — the
        bound is checked between chunks). Idle polling retries with
        exponential backoff, ``poll`` doubling up to :attr:`max_poll`
        per empty scan and resetting on work, so a wedged broker —
        a run left OPEN by a crashed submitter, say — cannot pin a
        fleet of workers at full poll rate forever; pair the backoff
        with ``timeout`` (the ``repro worker --timeout`` flag) to
        guarantee the fleet eventually drains instead of hanging.
        """
        started = time.monotonic()
        idle_since = started
        delay = self.poll
        while not self._shutdown_requested():
            if (self.timeout is not None
                    and time.monotonic() - started > self.timeout):
                break
            if self._serve_once():
                idle_since = time.monotonic()
                delay = self.poll
                continue
            self._prune_func_cache()
            if (self.max_idle is not None
                    and time.monotonic() - idle_since > self.max_idle):
                break
            sleep = delay
            if self.timeout is not None:
                # Never let one backoff sleep overshoot the deadline.
                remaining = started + self.timeout - time.monotonic()
                if remaining <= 0:
                    break
                sleep = min(sleep, remaining)
            time.sleep(sleep)
            delay = self._next_idle_delay(delay)
        _flush_kernel_store()
        return self.stats

    def _next_idle_delay(self, delay):
        """One backoff step: double the idle poll, capped at
        :attr:`max_poll` (never below the configured base ``poll``)."""
        return min(max(delay * 2.0, self.poll), self.max_poll)

    def serve_run(self, run):
        """Serve one run until it is done (the spawned-worker loop)."""
        while not run.is_done() and run.is_open():
            if not self.process_one(run):
                time.sleep(self.poll)
        _flush_kernel_store()
        return self.stats

    def _shutdown_requested(self):
        return os.path.exists(os.path.join(self.spool,
                                           SHUTDOWN_SENTINEL))

    def _serve_once(self):
        for run in self._open_runs():
            if self.process_one(run):
                return True
        return False

    def _open_runs(self):
        try:
            names = sorted(os.listdir(self.spool))
        except FileNotFoundError:
            return
        for name in names:
            if not name.startswith(_RUN_PREFIX):
                continue
            run = SpoolRun(os.path.join(self.spool, name))
            if run.is_open() and not run.is_done():
                yield run

    # -- one chunk -----------------------------------------------------------

    def process_one(self, run):
        """Claim, evaluate, and commit one chunk; False when none pending.

        A failing point does not kill the worker: the exception ships
        to the broker as the chunk's result and the worker keeps
        serving (the broker re-raises and tears the run down).
        ``KeyboardInterrupt``/``SystemExit`` are *not* absorbed — the
        worker dies, its claim goes stale, and the chunk retries on a
        live worker instead of failing the whole run.
        """
        claim = run.claim(self.worker_id)
        if claim is None:
            return False
        chunk, points, claim_path = claim
        stalled = (self.faults is not None
                   and self.faults.heartbeat_stalled(chunk))
        if not stalled:
            run.heartbeat(self.worker_id)
        ticker = self._start_heartbeat_ticker(run, stalled=stalled)
        try:
            try:
                # The fault hook sits inside the Exception absorber on
                # purpose: an injected chunk *failure* ships as an
                # error payload like any real one, while an injected
                # *kill* (BaseException) propagates — the claim goes
                # stale exactly as if the process had died.
                if self.faults is not None:
                    self.faults.on_chunk(self.worker_id, chunk)
                func = self._func_for(run)
                values = [func(**params) for params in points]
                payload = {"chunk": chunk, "values": values,
                           "worker": self.worker_id}
                self.stats["points"] += len(values)
            except Exception as exc:
                payload = {"chunk": chunk,
                           "error": _picklable_error(exc),
                           "worker": self.worker_id}
                self.stats["errors"] += 1
        finally:
            ticker()
        if not run.commit(chunk, payload, self.worker_id):
            self.stats["duplicate_commits"] += 1
        elif self.faults is not None:
            # Post-commit damage (torn-write / truncated-result fault
            # kinds): the commit landed atomically, then the bytes
            # rotted — the case only read-side digests can catch.
            self.faults.corrupt_result(
                os.path.join(run.results_dir,
                             f"chunk-{chunk:06d}.pkl"), chunk)
        run.clear_claim(claim_path)
        self.stats["chunks"] += 1
        _flush_kernel_store()
        return True

    def _start_heartbeat_ticker(self, run, stalled=False):
        """Touch the heartbeat in the background while a chunk runs.

        Liveness must not depend on point duration: a single point
        slower than the broker's ``heartbeat_timeout`` would otherwise
        look like a crash and be stolen (and, past ``max_attempts``,
        fail the run) despite a perfectly healthy worker. Returns a
        stopper callable. ``stalled`` (fault injection) freezes the
        touches so the broker sees a dead worker that is still running.
        """
        stop = threading.Event()

        def tick():
            while not stop.wait(self.heartbeat_interval):
                if not stalled:
                    run.heartbeat(self.worker_id)

        thread = threading.Thread(target=tick, daemon=True)
        thread.start()

        def stopper():
            stop.set()
            thread.join(timeout=5.0)

        return stopper

    def _func_for(self, run):
        func = self._funcs.get(run.path)
        if func is None:
            func = self._funcs[run.path] = run.load_func()
        return func

    def _prune_func_cache(self):
        """Drop cached funcs of runs that closed (long-lived workers).

        A fleet worker serves many runs over its lifetime; each task
        function (often a partial pinning a device payload) must not
        stay referenced after its run directory is done or deleted.
        Runs cheaply on idle iterations only.
        """
        stale = [path for path in self._funcs
                 if not SpoolRun(path).is_open()]
        for path in stale:
            del self._funcs[path]


def _spawned_worker(run_path, worker_id, poll, heartbeat_interval):
    """Entry point of a broker-spawned local worker process."""
    SpoolWorker(os.path.dirname(run_path), worker_id=worker_id,
                poll=poll,
                heartbeat_interval=heartbeat_interval).serve_run(
        SpoolRun(run_path))


class DistributedBroker:
    """Schedules one sweep over spool workers and reassembles results.

    Parameters
    ----------
    func:
        Picklable point function (as for the ``process`` executors).
    spool:
        Spool directory; default is :data:`SWEEP_SPOOL_ENV`, else a
        private temp directory (removed afterwards).
    jobs:
        Target worker count; sizes the chunk schedule and the default
        local spawn count.
    chunk_size:
        Fixed chunk size; default is the guided schedule of
        :func:`schedule_chunks`.
    heartbeat_timeout:
        Seconds without a heartbeat before a claimed chunk is stolen
        back onto the queue. Default: :data:`SWEEP_HEARTBEAT_ENV`,
        else 10.
    max_attempts:
        Attempts per chunk — stale-claim steals and shipped error
        payloads both consume one — before the chunk is declared
        poison. Default: :data:`SWEEP_MAX_ATTEMPTS_ENV`, else 3.
    on_poison:
        What to do with a chunk that exhausted ``max_attempts``:
        ``"raise"`` (default) fails the run with the last error;
        ``"quarantine"`` moves a poison record into the spool root's
        ``quarantine/`` directory, completes the sweep with ``None``
        values for that chunk's points, and warns
        (:class:`~repro.errors.ResilienceWarning`) — partial results
        with an explicit trace instead of a hung or failed campaign.
    spawn:
        Local workers to spawn; default ``jobs``
        (:data:`SWEEP_SPAWN_ENV` overrides — 0 with externally
        attached workers).
    steal:
        Let the broker evaluate queued chunks inline while it waits;
        keeps zero-worker runs live and soaks up the tail.
    timeout:
        Overall wall-clock bound on the run [s].
    progress:
        Optional ``progress(points_done, points_total)`` callback,
        invoked from the gather loop whenever a chunk's results are
        collected (the :class:`~repro.sweep.runner.SweepRunner`
        progress contract, which is how the :mod:`repro.service`
        server streams sweep progress off the spool backend).
    keep_run:
        Preserve the finished run directory on an *external* spool —
        each chunk's input points archived under ``replay/`` plus a
        sealed :class:`~repro.integrity.manifest.RunManifest` of
        per-chunk result digests — instead of removing it, so ``repro
        audit`` can replay-verify the run later. Default:
        :data:`SWEEP_KEEP_ENV`, else False. No effect on a private
        temp spool (nothing would outlive the call).
    """

    def __init__(self, func, spool=None, jobs=None, chunk_size=None,
                 heartbeat_timeout=None, poll=0.02, max_attempts=None,
                 spawn=None, steal=True, timeout=None, progress=None,
                 on_poison="raise", keep_run=None):
        if not callable(func):
            raise ParameterError(f"func must be callable, got {func!r}")
        if progress is not None and not callable(progress):
            raise ParameterError(
                f"progress must be callable, got {progress!r}")
        if jobs is not None:
            require_int_in_range(jobs, "jobs", 1, 4096)
        if chunk_size is not None:
            require_int_in_range(chunk_size, "chunk_size", 1, 1_000_000)
        if heartbeat_timeout is None:
            heartbeat_timeout = _env_number(SWEEP_HEARTBEAT_ENV, float)
            if heartbeat_timeout is None:
                heartbeat_timeout = 10.0
        if max_attempts is None:
            max_attempts = _env_number(SWEEP_MAX_ATTEMPTS_ENV, int)
            if max_attempts is None:
                max_attempts = 3
        require_positive(heartbeat_timeout, "heartbeat_timeout")
        require_positive(poll, "poll")
        require_int_in_range(max_attempts, "max_attempts", 1, 100)
        if on_poison not in ("raise", "quarantine"):
            raise ParameterError(
                f"on_poison must be 'raise' or 'quarantine', got "
                f"{on_poison!r}")
        if spawn is None:
            raw = os.environ.get(SWEEP_SPAWN_ENV)
            if raw not in (None, ""):
                try:
                    spawn = int(raw)
                except ValueError:
                    raise ParameterError(
                        f"{SWEEP_SPAWN_ENV} must be an integer, got "
                        f"{raw!r}") from None
        if spawn is not None:
            require_int_in_range(spawn, "spawn", 0, 4096)
        if timeout is not None:
            require_positive(timeout, "timeout")
        if keep_run is None:
            keep_run = os.environ.get(SWEEP_KEEP_ENV, "").lower() in (
                "1", "true", "yes")
        self.keep_run = bool(keep_run)
        self.func = func
        self.spool = spool if spool is not None else os.environ.get(
            SWEEP_SPOOL_ENV)
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.poll = float(poll)
        self.max_attempts = max_attempts
        self.spawn = spawn
        self.steal = bool(steal)
        self.timeout = timeout
        self.progress = progress
        self.on_poison = on_poison
        self.stats = {}

    def _n_workers(self):
        return self.jobs or os.cpu_count() or 1

    def run(self, points):
        """Evaluate every point; returns values in point order.

        Raises the first shipped worker exception as-is, and
        :class:`RuntimeError` on chunk-retry exhaustion or timeout.
        """
        points = list(points)
        if not points:
            return []
        owns_spool = self.spool is None
        spool = self.spool or tempfile.mkdtemp(prefix="repro-sweep-")
        run = None
        workers = []
        failed = True
        # Setup (pickling the func, enqueueing chunks) sits inside the
        # same try as the gather so a PicklingError or disk failure
        # cannot leak the temp spool or leave a claimable half-run.
        try:
            run = SpoolRun.create(spool, self.func)
            bounds = schedule_chunks(len(points), self._n_workers(),
                                     chunk_size=self.chunk_size)
            chunk_points = {chunk: points[start:stop]
                            for chunk, (start, stop)
                            in enumerate(bounds)}
            for chunk, pts in chunk_points.items():
                run.enqueue(chunk, pts)
            run.open()
            workers = self._spawn_workers(run)
            self.stats = {"chunks": len(bounds), "workers_spawned":
                          len(workers), "requeued": 0, "stolen": 0,
                          "duplicates": 0, "attempts_max": 1,
                          "error_retries": 0, "steal_errors": 0,
                          "integrity_rejects": 0,
                          "attempts": {}, "quarantined": []}
            results = self._gather(run, chunk_points, len(points),
                                   spool)
            if self.keep_run and not owns_spool:
                self._preserve(run, chunk_points, results)
            failed = False
        finally:
            if run is not None:
                run.mark_done()
            self._reap_workers(workers)
            # A failed run keeps its directory for post-mortem (unless
            # the broker owns the whole temp spool); a preserved run
            # keeps it for replay audit.
            if owns_spool:
                shutil.rmtree(spool, ignore_errors=True)
            elif not failed and run is not None and not self.keep_run:
                shutil.rmtree(run.path, ignore_errors=True)
        return [value for chunk in range(len(bounds))
                for value in results[chunk]["values"]]

    # -- internals -----------------------------------------------------------

    def _spawn_workers(self, run):
        if self.spawn == 0:
            return []
        import multiprocessing
        count = self.spawn if self.spawn is not None else \
            self._n_workers()
        # Spawned workers heartbeat several times per watchdog period
        # so a slow point can never masquerade as a crash. (External
        # `repro worker` processes use their own default interval; the
        # broker's default timeout of 10s comfortably exceeds it.)
        hb_interval = min(1.0, self.heartbeat_timeout / 4.0)
        workers = []
        for i in range(count):
            proc = multiprocessing.Process(
                target=_spawned_worker,
                args=(run.path, f"local-{i}", self.poll, hb_interval),
                daemon=True)
            proc.start()
            workers.append(proc)
        return workers

    def _reap_workers(self, workers):
        for proc in workers:
            proc.join(timeout=5.0)
        for proc in workers:
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5.0)

    def _gather(self, run, chunk_points, n_points, spool):
        n_chunks = len(chunk_points)
        results = {}
        attempts = dict.fromkeys(range(n_chunks), 1)
        failed_workers = {}
        deadline = (time.monotonic() + self.timeout
                    if self.timeout is not None else None)
        while len(results) < n_chunks:
            progressed = self._collect(run, results, attempts,
                                       failed_workers, chunk_points,
                                       n_points, spool)
            if len(results) >= n_chunks:
                break
            progressed |= self._requeue_stale(run, results, attempts,
                                              failed_workers,
                                              chunk_points, spool)
            if self.steal:
                progressed |= self._steal_one(run)
            if not progressed:
                if deadline is not None and time.monotonic() > deadline:
                    raise RuntimeError(
                        f"distributed sweep timed out after "
                        f"{self.timeout:g}s with {len(results)}/"
                        f"{n_chunks} chunks collected")
                time.sleep(self.poll)
        self.stats["attempts"] = {chunk: n for chunk, n
                                  in attempts.items() if n > 1}
        return results

    def _collect(self, run, results, attempts, failed_workers,
                 chunk_points, n_points, spool):
        progressed = False
        for chunk, payload in run.collect(skip=results.keys()):
            if chunk in results:  # pragma: no cover - skip covers this
                continue
            if payload is None:
                # Digest-failed result file (torn write, truncation,
                # tamper): counted and retried like a shipped error —
                # the corrupt bytes themselves never become values.
                self.stats["integrity_rejects"] += 1
                failed_workers.setdefault(chunk, set())
                error = IntegrityError(
                    f"chunk {chunk} result file failed digest "
                    f"verification")
                if attempts[chunk] >= self.max_attempts:
                    if self.on_poison == "raise":
                        raise error
                    run.discard_result(chunk)
                    results[chunk] = self._quarantine(
                        chunk, chunk_points[chunk], error,
                        attempts[chunk], failed_workers[chunk], spool)
                    progressed = True
                    continue
                attempts[chunk] += 1
                self.stats["error_retries"] += 1
                self.stats["attempts_max"] = max(
                    self.stats["attempts_max"], attempts[chunk])
                run.discard_result(chunk)
                run.enqueue(chunk, chunk_points[chunk])
                progressed = True
                continue
            error = payload.get("error")
            if error is not None:
                # A shipped failure consumes one attempt, like a stale
                # claim: transient errors (a worker's flaky mount, an
                # injected fault) retry on re-enqueue; persistent ones
                # exhaust the budget and hit the poison policy.
                failed_workers.setdefault(chunk, set()).add(
                    payload.get("worker"))
                if attempts[chunk] >= self.max_attempts:
                    if self.on_poison == "raise":
                        raise error
                    run.discard_result(chunk)
                    results[chunk] = self._quarantine(
                        chunk, chunk_points[chunk], error,
                        attempts[chunk], failed_workers[chunk], spool)
                    progressed = True
                    continue
                attempts[chunk] += 1
                self.stats["error_retries"] += 1
                self.stats["attempts_max"] = max(
                    self.stats["attempts_max"], attempts[chunk])
                run.discard_result(chunk)
                run.enqueue(chunk, chunk_points[chunk])
                progressed = True
                continue
            results[chunk] = payload
            progressed = True
            if self.progress is not None:
                done = sum(len(p["values"]) for p in results.values())
                self.progress(done, n_points)
        return progressed

    def _requeue_stale(self, run, results, attempts, failed_workers,
                       chunk_points, spool):
        """Steal chunks back from workers whose heartbeat went stale."""
        progressed = False
        for chunk, wid, claim_path in run.claimed_jobs():
            if chunk in results:
                # Late claim of an already-collected chunk (a duplicate
                # in flight): drop it rather than re-running it.
                run.clear_claim(claim_path)
                self.stats["duplicates"] += 1
                continue
            age = run.heartbeat_age(wid, claim_path)
            if age <= self.heartbeat_timeout:
                continue
            failed_workers.setdefault(chunk, set()).add(wid)
            if attempts[chunk] >= self.max_attempts:
                if self.on_poison == "raise":
                    raise RuntimeError(
                        f"chunk {chunk} failed {attempts[chunk]} claim "
                        f"attempt(s) (last worker {wid} went silent "
                        f"for {age:.1f}s); giving up")
                run.clear_claim(claim_path)
                results[chunk] = self._quarantine(
                    chunk, chunk_points[chunk],
                    RuntimeError(f"worker {wid} went silent for "
                                 f"{age:.1f}s"),
                    attempts[chunk], failed_workers[chunk], spool)
                progressed = True
                continue
            if run.requeue(claim_path) is None:
                continue
            attempts[chunk] += 1
            self.stats["requeued"] += 1
            self.stats["attempts_max"] = max(
                self.stats["attempts_max"], attempts[chunk])
            progressed = True
        return progressed

    def _quarantine(self, chunk, points, error, n_attempts, workers,
                    spool):
        """Move a poison chunk's record aside; return a None-filled
        stand-in payload so the sweep completes with partial results.

        The record (points, last error, attempt count, the distinct
        workers that failed it) lands in ``<spool>/quarantine/`` for
        post-mortem; the chunk's points read as ``None`` in the sweep
        values. Counted in ``stats["quarantined"]`` and warned about —
        partial results must never look like a clean success.

        The record is *JSON*, deliberately: a poison chunk is by
        definition attacker-shaped data, and inspecting it (``repro
        spool ls-quarantine``) must never deserialize a pickle. The
        error ships as its ``repr`` plus type name; points that do not
        survive JSON degrade to their ``repr`` too.
        """
        workers = sorted(str(w) for w in workers if w is not None)
        record_dir = os.path.join(spool, QUARANTINE_DIR)
        record_path = os.path.join(record_dir,
                                   f"chunk-{chunk:06d}.json")
        try:
            os.makedirs(record_dir, exist_ok=True)
            _atomic_write_json(record_path, {
                "chunk": int(chunk),
                "points": [_json_safe_point(p) for p in points],
                "error": repr(error),
                "error_type": type(error).__name__,
                "attempts": int(n_attempts), "workers": workers})
        except OSError:  # pragma: no cover - quarantine must not kill
            record_path = None
        self.stats["quarantined"].append(int(chunk))
        warnings.warn(
            f"chunk {chunk} quarantined after {n_attempts} attempt(s) "
            f"across worker(s) {workers or ['<none>']} ({error!r}); "
            f"its {len(points)} point(s) return None"
            + (f"; record at {record_path}" if record_path else ""),
            ResilienceWarning, stacklevel=4)
        return {"chunk": int(chunk), "values": [None] * len(points),
                "worker": None, "quarantined": True}

    def _preserve(self, run, chunk_points, results):
        """Archive the finished run for replay audit (``keep_run``).

        Writes each chunk's input points under ``replay/`` and a
        sealed :class:`~repro.integrity.manifest.RunManifest` whose
        entries carry the byte-exact pickle digest of every chunk's
        committed values — what ``repro audit`` later replays against.
        Quarantined chunks are recorded as such (their stand-in None
        values are not a reproducible artifact).
        """
        replay_dir = os.path.join(run.path, REPLAY_DIR)
        os.makedirs(replay_dir, exist_ok=True)
        entries = {}
        for chunk in sorted(results):
            points = chunk_points[chunk]
            _atomic_write(
                os.path.join(replay_dir, f"chunk-{chunk:06d}.pkl"),
                list(points))
            payload = results[chunk]
            entry = {"n_points": len(points)}
            if payload.get("quarantined"):
                entry["quarantined"] = True
            else:
                entry["values_sha256"] = pickle_digest(
                    payload["values"])
            entries[f"chunk-{chunk:06d}"] = entry
        try:
            with open(run._task_path, "rb") as fh:
                task_digest = blob_digest(fh.read())
        except OSError:  # pragma: no cover - defensive
            task_digest = None
        manifest = RunManifest("spool-run", identity={
            "run": os.path.basename(run.path),
            "task_sha256": task_digest,
            "n_chunks": len(chunk_points),
            "n_points": sum(len(p) for p in chunk_points.values()),
            "max_attempts": int(self.max_attempts),
        }, entries=entries)
        self.stats["manifest"] = manifest.write(
            os.path.join(run.path, MANIFEST_NAME))

    def _steal_one(self, run):
        """Evaluate one queued chunk inline while waiting on workers.

        A failing point must ship as an error payload — exactly as a
        worker would ship it — not propagate: the broker's gather loop
        owns retry/poison accounting, and an exception here would
        bypass it (and count nothing) entirely.
        """
        claim = run.claim("broker")
        if claim is None:
            return False
        chunk, points, claim_path = claim
        try:
            payload = {"chunk": chunk,
                       "values": [self.func(**params)
                                  for params in points],
                       "worker": "broker"}
        except Exception as exc:
            payload = {"chunk": chunk, "error": _picklable_error(exc),
                       "worker": "broker"}
            self.stats["steal_errors"] += 1
        if not run.commit(chunk, payload, "broker"):
            self.stats["duplicates"] += 1
        run.clear_claim(claim_path)
        self.stats["stolen"] += 1
        return True


def run_distributed(func, points, **kwargs):
    """One-call convenience: broker + run; returns ``(values, stats)``."""
    broker = DistributedBroker(func, **kwargs)
    values = broker.run(points)
    return values, broker.stats


def run_worker(spool=None, worker_id=None, poll=0.05, max_idle=None,
               timeout=None):
    """Serve a spool until shutdown/idle/timeout; returns a CLI exit code.

    The one implementation behind both ``repro worker`` and ``python
    -m repro.sweep.distributed``, so the flag semantics cannot drift
    between the two entry points.
    """
    spool = spool or os.environ.get(SWEEP_SPOOL_ENV)
    if not spool:
        print(f"no spool directory: pass --spool or set "
              f"{SWEEP_SPOOL_ENV}")
        return 1
    worker = SpoolWorker(spool, worker_id=worker_id, poll=poll,
                         max_idle=max_idle, timeout=timeout)
    stats = worker.serve_forever()
    print(f"worker {worker.worker_id}: served {stats['chunks']} "
          f"chunk(s) / {stats['points']} point(s), "
          f"{stats['errors']} error(s)")
    return 0


def add_worker_arguments(parser):
    """Attach the worker flag set (shared by every worker CLI)."""
    parser.add_argument("--spool", default=None,
                        help=f"spool directory (default: "
                             f"${SWEEP_SPOOL_ENV})")
    parser.add_argument("--id", default=None,
                        help="worker id (default: pid-derived)")
    parser.add_argument("--poll", type=float, default=0.05,
                        help="queue poll interval in seconds (idle "
                             "polls back off exponentially from here "
                             "to ~2s)")
    parser.add_argument("--max-idle", type=float, default=None,
                        help="exit after this many seconds without "
                             "work")
    parser.add_argument("--timeout", type=float, default=None,
                        help="exit after this many seconds of total "
                             "wall clock, busy or not — a wedged "
                             "broker cannot hang the worker forever")
    return parser


def worker_main(argv=None):
    """CLI entry point of ``python -m repro.sweep.distributed``."""
    import argparse
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="serve distributed sweep chunks from a spool "
                    "directory")
    add_worker_arguments(parser)
    args = parser.parse_args(argv)
    return run_worker(spool=args.spool, worker_id=args.id,
                      poll=args.poll, max_idle=args.max_idle,
                      timeout=args.timeout)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(worker_main())
