"""Beyond-3x3 neighborhoods: how good is the paper's truncation?

The paper models inter-cell coupling with the eight nearest aggressors
(the 3x3 neighborhood). Cells two pitches away also couple — weaker by
roughly (1/2)^3 per the dipole law, but there are more of them. This
module generalizes the coupling model to a (2k+1)x(2k+1) neighborhood and
quantifies the field the 3x3 truncation ignores, plus a fast vectorized
field map for full arrays built from the same ring kernels.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..stack import MTJStack
from ..units import am_to_oe
from ..validation import require_int_in_range, require_positive
from .kernel_store import get_kernel_store


class ExtendedNeighborhood:
    """Coupling from a (2k+1)x(2k+1) neighborhood around the victim.

    Parameters
    ----------
    stack:
        The shared :class:`~repro.stack.MTJStack` of every cell.
    pitch:
        Array pitch [m].
    order:
        Neighborhood half-width ``k`` (1 reproduces the paper's 3x3).
    """

    def __init__(self, stack, pitch, order=2):
        if not isinstance(stack, MTJStack):
            raise ParameterError(
                f"stack must be an MTJStack, got {type(stack)!r}")
        require_positive(pitch, "pitch")
        self.stack = stack
        self.pitch = float(pitch)
        self.order = require_int_in_range(order, "order", 1, 8)
        self._kernels = None

    def offsets(self):
        """All lattice offsets (i, j) != (0, 0) within the neighborhood."""
        k = self.order
        return [(i, j)
                for i in range(-k, k + 1)
                for j in range(-k, k + 1)
                if (i, j) != (0, 0)]

    def kernels(self):
        """``{offset: (fixed, fl_p)}`` for every neighbor (cached).

        All (2k+1)^2 - 1 neighbor kernels of each kind are fetched in
        one :meth:`~repro.arrays.kernel_store.KernelStore.kernel_batch`
        call — every store miss of the window is a single broadcasted
        field evaluation rather than a per-offset Python loop. The
        store keys are those of scalar ``kernel`` lookups at the same
        lateral offsets, so the ring-1 entries are shared with
        :class:`~repro.arrays.coupling.InterCellCoupling` at the same
        stack and pitch.
        """
        if self._kernels is None:
            offsets = self.offsets()
            lateral = [(i * self.pitch, j * self.pitch)
                       for i, j in offsets]
            store = get_kernel_store()
            fixed = store.kernel_batch(self.stack, lateral, "fixed")
            fl = store.kernel_batch(self.stack, lateral, "fl")
            self._kernels = {
                off: (float(fx), float(fp))
                for off, fx, fp in zip(offsets, fixed, fl)}
        return self._kernels

    def hz_inter(self, data_signs):
        """Hz [A/m] at the victim for neighbor FL signs ``data_signs``.

        ``data_signs`` maps offsets to +1 (P) / -1 (AP); missing offsets
        default to +1.
        """
        total = 0.0
        for off, (fixed, fl) in self.kernels().items():
            sign = data_signs.get(off, +1)
            if sign not in (-1, +1):
                raise ParameterError(
                    f"data sign for {off} must be +/-1, got {sign!r}")
            total += fixed + sign * fl
        return total

    def max_variation(self):
        """Max pattern-to-pattern Hz variation [A/m] over the window."""
        return 2.0 * sum(abs(fl) for _, fl in self.kernels().values())

    def ring_contributions(self):
        """Per-ring breakdown: ``{ring: (fixed_sum, fl_abs_sum)}`` [A/m].

        Ring r holds the cells with Chebyshev distance r from the victim;
        ring 1 is the paper's 3x3 shell.
        """
        rings = {}
        for (i, j), (fixed, fl) in self.kernels().items():
            ring = max(abs(i), abs(j))
            fixed_sum, fl_sum = rings.get(ring, (0.0, 0.0))
            rings[ring] = (fixed_sum + fixed, fl_sum + abs(fl))
        return rings

    def truncation_error(self):
        """Fraction of the max variation the 3x3 truncation misses.

        ``(variation(full) - variation(ring 1)) / variation(full)``.
        """
        rings = self.ring_contributions()
        full = 2.0 * sum(fl for _, fl in rings.values())
        ring1 = 2.0 * rings.get(1, (0.0, 0.0))[1]
        if full == 0.0:
            return 0.0
        return (full - ring1) / full

    def summary_oe(self):
        """Report dict (fields in Oe) of the ring breakdown."""
        rings = self.ring_contributions()
        return {
            "pitch_nm": self.pitch * 1e9,
            "order": self.order,
            "variation_oe": am_to_oe(self.max_variation()),
            "truncation_error": self.truncation_error(),
            "rings": {
                ring: {"fixed_oe": am_to_oe(fixed),
                       "fl_abs_oe": am_to_oe(fl)}
                for ring, (fixed, fl) in sorted(rings.items())
            },
        }


def fast_array_field_map(device, pitch, data_bits, order=1):
    """Vectorized total stray field over a full array [A/m].

    Same result as :func:`repro.arrays.victim.array_field_map` (for
    ``order=1``) but computed as a correlation of the ±1 data array with
    the FL kernel stencil — O(cells x window) numpy work instead of
    per-cell Python loops, practical for megabit-scale planning sweeps.

    Cells whose full window extends beyond the array get NaN.

    Parameters
    ----------
    device:
        :class:`~repro.device.mtj.MTJDevice` (all cells identical).
    pitch:
        Array pitch [m].
    data_bits:
        (rows, cols) array of 0/1 data (0 = P, 1 = AP).
    order:
        Neighborhood half-width (1 = the paper's 3x3).

    Returns
    -------
    numpy.ndarray of shape (rows, cols).
    """
    bits = np.asarray(data_bits)
    if bits.ndim != 2:
        raise ParameterError(f"data_bits must be 2-D, got {bits.shape}")
    if not np.all(np.isin(bits, (0, 1))):
        raise ParameterError("data_bits must contain only 0/1")

    hood = ExtendedNeighborhood(device.stack, pitch, order=order)
    kernels = hood.kernels()
    intra = device.intra_stray_field()
    fixed_total = sum(fixed for fixed, _ in kernels.values())

    signs = 1.0 - 2.0 * bits.astype(float)  # 0 -> +1 (P), 1 -> -1 (AP)
    rows, cols = bits.shape
    k = hood.order
    if rows <= 2 * k or cols <= 2 * k:
        raise ParameterError(
            f"array {rows}x{cols} too small for order-{k} neighborhood")

    out = np.full((rows, cols), np.nan)
    interior = np.zeros((rows - 2 * k, cols - 2 * k))
    for (dx, dy), (_, fl) in kernels.items():
        # Offset (dx, dy) is in +x (columns) / +y (up = -rows) units.
        dc, dr = dx, -dy
        interior += fl * signs[k + dr:rows - k + dr,
                               k + dc:cols - k + dc]
    out[k:rows - k, k:cols - k] = intra + fixed_total + interior
    return out
