"""Victim-cell analysis: combined intra- and inter-cell stray fields.

Ties the device model and the inter-cell coupling together for the cell at
the center of the 3x3 neighborhood: total stray field per pattern,
worst-case patterns for each figure of merit, and full-array sweeps.
"""

from __future__ import annotations

import numpy as np

from ..device.mtj import MTJDevice, MTJState
from ..errors import ParameterError
from ..units import am_to_oe
from .coupling import InterCellCoupling
from .pattern import ALL_AP, ALL_P, NeighborhoodPattern


class VictimAnalysis:
    """Stray-field and performance analysis of a victim cell.

    Parameters
    ----------
    device:
        The :class:`~repro.device.mtj.MTJDevice` (all cells identical).
    pitch:
        Array pitch [m].
    """

    def __init__(self, device, pitch):
        if not isinstance(device, MTJDevice):
            raise ParameterError(
                f"device must be an MTJDevice, got {type(device)!r}")
        self.device = device
        self.coupling = InterCellCoupling(device.stack, pitch)

    @property
    def pitch(self):
        """Array pitch [m]."""
        return self.coupling.pitch

    def hz_intra(self):
        """Intra-cell stray field at the victim FL [A/m]."""
        return self.device.intra_stray_field()

    def hz_inter(self, pattern):
        """Inter-cell stray field for ``pattern`` [A/m]."""
        return self.coupling.hz_inter_fast(pattern)

    def hz_total(self, pattern=None):
        """Total stray field [A/m]; ``pattern=None`` means intra only."""
        total = self.hz_intra()
        if pattern is not None:
            total += self.hz_inter(pattern)
        return total

    # -- figure-of-merit sweeps ---------------------------------------------

    def ic(self, direction, pattern=None):
        """Critical current [A] for ``direction`` under the total field."""
        return self.device.ic(direction, self.hz_total(pattern))

    def switching_time(self, vp, pattern=None, initial_state=MTJState.AP):
        """Average switching time [s] under the total stray field."""
        return self.device.switching_time(
            vp, self.hz_total(pattern), initial_state=initial_state)

    def delta(self, state, pattern=None, temperature=None):
        """Thermal stability of ``state`` under the total stray field."""
        return self.device.delta(state, self.hz_total(pattern),
                                 temperature)

    def worst_case_delta(self, temperature=None):
        """Minimum Delta over states and patterns.

        Returns ``(delta, state, pattern)``. With the reference stack the
        minimum is Delta_P at NP8 = 0, the paper's worst case.
        """
        candidates = []
        for pattern in (ALL_P, ALL_AP):
            for state in (MTJState.P, MTJState.AP):
                candidates.append((
                    self.delta(state, pattern, temperature), state,
                    pattern))
        # Extremes of a monotone function of Hz occur at field extremes,
        # which occur at the all-P / all-AP patterns; checking those four
        # candidates is exhaustive.
        return min(candidates, key=lambda item: item[0])

    def ic_spread(self, direction):
        """(min, max) critical current [A] over all patterns."""
        values = [self.ic(direction, NeighborhoodPattern.from_int(v))
                  for v in (0, 255)]
        return min(values), max(values)

    def tw_spread(self, vp, initial_state=MTJState.AP):
        """(min, max) switching time [s] over all patterns at ``vp``."""
        values = [
            self.switching_time(vp, NeighborhoodPattern.from_int(v),
                                initial_state=initial_state)
            for v in (0, 255)
        ]
        return min(values), max(values)

    def summary(self):
        """Dict summary (fields in Oe) for reports."""
        lo, hi = self.coupling.extremes()
        return {
            "pitch_nm": self.pitch * 1e9,
            "hz_intra_oe": am_to_oe(self.hz_intra()),
            "hz_inter_min_oe": am_to_oe(lo),
            "hz_inter_max_oe": am_to_oe(hi),
            "ic_ap_p_np0_ua": self.ic("AP->P", ALL_P) * 1e6,
            "ic_ap_p_np255_ua": self.ic("AP->P", ALL_AP) * 1e6,
            "delta_p_np0": self.delta(MTJState.P, ALL_P),
        }


def array_field_map(device, layout, data_pattern):
    """Total stray field [A/m] at every interior cell of a full array.

    Evaluates, for each interior cell of ``layout``, the intra-cell field
    plus the inter-cell field of its 8-neighborhood extracted from
    ``data_pattern``. Returns a (rows, cols) array with NaN on the border
    (border cells lack a full neighborhood).

    The whole map is one numpy expression: the direct/diagonal AP
    counts of every interior cell come from shifted slices of the bit
    array, and the four symmetry-reduced kernels come from the store's
    batch path — value-identical to evaluating
    ``hz_inter_fast(neighborhood_of(row, col))`` per cell (the
    pre-batch implementation, reconstructed as the baseline of
    ``benchmarks/test_bench_field_map.py``).
    """
    rows, cols = layout.rows, layout.cols
    if data_pattern.shape != (rows, cols):
        raise ParameterError(
            f"data pattern shape {data_pattern.shape} does not match "
            f"layout {rows}x{cols}")
    coupling = InterCellCoupling(device.stack, layout.pitch)
    intra = device.intra_stray_field()
    out = np.full((rows, cols), np.nan)
    bits = data_pattern.bits
    n_dir = (bits[:-2, 1:-1] + bits[2:, 1:-1]
             + bits[1:-1, :-2] + bits[1:-1, 2:])
    n_diag = (bits[:-2, :-2] + bits[:-2, 2:]
              + bits[2:, :-2] + bits[2:, 2:])
    k = coupling.kernels()
    # Parenthesized to add intra LAST, exactly like the per-cell
    # ``intra + hz_inter_fast(np8)`` it replaces (bit-identical maps).
    out[1:-1, 1:-1] = intra + (k.pattern_independent
                               + (4 - 2 * n_dir) * k.fl_direct
                               + (4 - 2 * n_diag) * k.fl_diagonal)
    return out
