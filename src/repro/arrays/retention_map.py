"""Whole-array retention-risk maps.

Combines the vectorized field map with the Delta/retention models: for a
given stored data pattern, compute every interior cell's thermal
stability and flag the cells below a retention spec. Identifies *where*
in an array the coupling-induced weak bits sit for a given workload
pattern — the spatial view behind the scalar worst-case analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device.energy import delta_with_stray
from ..device.mtj import MTJDevice
from ..errors import ParameterError
from ..validation import require_positive
from .extended import fast_array_field_map


@dataclass(frozen=True)
class RetentionMap:
    """Per-cell retention stability of one array + data pattern.

    Attributes
    ----------
    delta:
        (rows, cols) array of per-cell Delta for the *stored* state;
        NaN on the border (incomplete neighborhood).
    bits:
        The data pattern that produced it.
    """

    delta: np.ndarray
    bits: np.ndarray

    @property
    def weakest_delta(self):
        """Minimum interior Delta."""
        return float(np.nanmin(self.delta))

    @property
    def weakest_cell(self):
        """(row, col) of the weakest interior cell."""
        idx = np.nanargmin(self.delta)
        return tuple(int(v) for v in
                     np.unravel_index(idx, self.delta.shape))

    def cells_below(self, spec):
        """Number of interior cells with Delta below ``spec``."""
        require_positive(spec, "spec")
        return int(np.nansum(self.delta < spec))

    def interior_statistics(self):
        """(mean, std, min, max) of the interior Delta values."""
        interior = self.delta[np.isfinite(self.delta)]
        return (float(np.mean(interior)), float(np.std(interior)),
                float(np.min(interior)), float(np.max(interior)))


def retention_map(device, pitch, data_pattern, temperature=None):
    """Per-cell Delta map of an array storing ``data_pattern``.

    For each interior cell the stored state's Delta is evaluated under
    the total stray field (intra + 3x3 inter) of the actual neighborhood
    data. Bit 0 stores P (the '+h' branch of Eq. 5), bit 1 stores AP.

    Parameters
    ----------
    device:
        :class:`~repro.device.mtj.MTJDevice` (all cells identical).
    pitch:
        Array pitch [m].
    data_pattern:
        A :class:`~repro.arrays.pattern.DataPattern` or a 0/1 array.
    temperature:
        Optional operating temperature [K].

    Returns
    -------
    RetentionMap
    """
    if not isinstance(device, MTJDevice):
        raise ParameterError(
            f"device must be an MTJDevice, got {type(device)!r}")
    bits = np.asarray(getattr(data_pattern, "bits", data_pattern))
    hz_total = fast_array_field_map(device, pitch, bits, order=1)

    params = device.params
    temp = params.temperature if temperature is None else temperature
    delta0 = device.thermal_model.delta0_at(params.delta0, temp)
    hk = device.thermal_model.hk_at(params.hk, temp)

    delta = np.full(bits.shape, np.nan)
    rows, cols = bits.shape
    for row in range(1, rows - 1):
        for col in range(1, cols - 1):
            state = "P" if bits[row, col] == 0 else "AP"
            delta[row, col] = delta_with_stray(
                delta0, hz_total[row, col] / hk, state)
    return RetentionMap(delta=delta, bits=bits.astype(np.int8))
