"""Areal density bookkeeping for STT-MRAM arrays.

The motivation for small pitches is density: with one MTJ per cell on a
square pitch, the cell area is ``pitch^2``. These helpers convert between
pitch and density and build the density-vs-pitch tables used by the
examples.
"""

from __future__ import annotations

from ..validation import require_positive

#: Square millimetres per square metre.
_MM2_PER_M2 = 1.0e6


def cell_area(pitch):
    """Cell area [m^2] on a square pitch grid."""
    require_positive(pitch, "pitch")
    return pitch * pitch


def areal_density_gbit_per_mm2(pitch):
    """Bit density [Gbit/mm^2] for a square-pitch 1-bit-per-cell array."""
    bits_per_m2 = 1.0 / cell_area(pitch)
    return bits_per_m2 / _MM2_PER_M2 / 1.0e9


def density_table(pitches):
    """Rows of (pitch [m], cell area [m^2], density [Gbit/mm^2])."""
    rows = []
    for pitch in pitches:
        rows.append((float(pitch), cell_area(pitch),
                     areal_density_gbit_per_mm2(pitch)))
    return rows


def density_gain(pitch_from, pitch_to):
    """Relative density gain moving from ``pitch_from`` to ``pitch_to``.

    E.g. shrinking the pitch from 3x to 1.5x the device diameter gives a
    4x density gain.
    """
    require_positive(pitch_from, "pitch_from")
    require_positive(pitch_to, "pitch_to")
    return (pitch_from / pitch_to) ** 2
