"""Neighborhood and array data patterns.

The inter-cell stray field at the victim depends on the data stored in its
eight neighbors — the *neighborhood pattern* NP8 of the paper. NP8 is the
8-bit word ``[d0 .. d7]`` where ``di`` is the data in aggressor Ci
(0 = P state, 1 = AP state); its decimal form indexes the 256 patterns.

Because C0-C3 sit at symmetric positions (and likewise C4-C7), the victim
field depends only on the *counts* of 1s among direct and diagonal
neighbors: 5 x 5 = 25 distinct classes (paper Fig. 4a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..device.mtj import MTJState
from ..errors import ParameterError
from ..validation import require_int_in_range


@dataclass(frozen=True)
class NeighborhoodPattern:
    """One NP8 pattern: the data bits of aggressors C0..C7.

    ``bits[i]`` is the bit stored in Ci: 0 keeps the FL parallel to the RL
    (P), 1 anti-parallel (AP). Bits 0-3 are the direct neighbors, 4-7 the
    diagonal ones.
    """

    bits: Tuple[int, ...]

    def __post_init__(self):
        if len(self.bits) != 8:
            raise ParameterError(
                f"NP8 needs exactly 8 bits, got {len(self.bits)}")
        if any(b not in (0, 1) for b in self.bits):
            raise ParameterError(f"bits must be 0/1, got {self.bits!r}")
        object.__setattr__(self, "bits", tuple(int(b) for b in self.bits))

    @classmethod
    def from_int(cls, value):
        """Decode the decimal form ``[n]_10`` (bit i of n is di)."""
        require_int_in_range(value, "value", 0, 255)
        return cls(tuple((value >> i) & 1 for i in range(8)))

    def to_int(self):
        """Decimal form of the pattern."""
        return sum(b << i for i, b in enumerate(self.bits))

    @property
    def direct_ones(self):
        """Number of 1s (AP cells) among the direct neighbors C0-C3."""
        return sum(self.bits[:4])

    @property
    def diagonal_ones(self):
        """Number of 1s (AP cells) among the diagonal neighbors C4-C7."""
        return sum(self.bits[4:])

    @property
    def class_key(self):
        """The symmetry class ``(direct_ones, diagonal_ones)``."""
        return (self.direct_ones, self.diagonal_ones)

    def state(self, index):
        """:class:`MTJState` of aggressor ``index``."""
        require_int_in_range(index, "index", 0, 7)
        return MTJState.from_bit(self.bits[index])

    def states(self):
        """States of all aggressors C0..C7."""
        return tuple(MTJState.from_bit(b) for b in self.bits)

    def signs(self):
        """FL mz signs (+1 P / -1 AP) of C0..C7 as a numpy array."""
        return np.array([MTJState.from_bit(b).mz for b in self.bits],
                        dtype=float)

    def inverted(self):
        """The complementary pattern (every bit flipped)."""
        return NeighborhoodPattern(tuple(1 - b for b in self.bits))


#: The all-P pattern (paper's NP8 = 0, the Fig. 4a minimum).
ALL_P = NeighborhoodPattern.from_int(0)

#: The all-AP pattern (NP8 = 255, the Fig. 4a maximum).
ALL_AP = NeighborhoodPattern.from_int(255)


def all_patterns():
    """All 256 NP8 patterns, in decimal order."""
    return [NeighborhoodPattern.from_int(v) for v in range(256)]


def pattern_classes():
    """The 25 symmetry classes as ``{(n_direct, n_diag): representative}``.

    The representative of class (a, b) sets the first ``a`` direct bits and
    the first ``b`` diagonal bits.
    """
    classes = {}
    for n_direct in range(5):
        for n_diag in range(5):
            bits = ([1] * n_direct + [0] * (4 - n_direct)
                    + [1] * n_diag + [0] * (4 - n_diag))
            classes[(n_direct, n_diag)] = NeighborhoodPattern(tuple(bits))
    return classes


@dataclass(frozen=True)
class DataPattern:
    """A data pattern over an entire rows x cols array.

    ``bits`` is a (rows, cols) 0/1 array; 0 stores P, 1 stores AP.
    """

    bits: np.ndarray

    def __post_init__(self):
        arr = np.asarray(self.bits)
        if arr.ndim != 2:
            raise ParameterError(
                f"bits must be 2-D, got shape {arr.shape}")
        if not np.all(np.isin(arr, (0, 1))):
            raise ParameterError("bits must contain only 0/1")
        object.__setattr__(self, "bits", arr.astype(np.int8))

    @property
    def shape(self):
        """(rows, cols)."""
        return self.bits.shape

    def bit(self, row, col):
        """Data bit at (row, col)."""
        return int(self.bits[row, col])

    def state(self, row, col):
        """:class:`MTJState` at (row, col)."""
        return MTJState.from_bit(self.bit(row, col))

    def neighborhood_of(self, row, col):
        """The NP8 pattern around an interior cell (row, col).

        Raises :class:`~repro.errors.ParameterError` for border cells,
        which do not have all eight neighbors.
        """
        rows, cols = self.shape
        if not (1 <= row < rows - 1 and 1 <= col < cols - 1):
            raise ParameterError(
                f"cell ({row}, {col}) is not interior to {rows}x{cols}")
        from .layout import DIAGONAL_OFFSETS, DIRECT_OFFSETS
        bits = []
        for dc, dr in DIRECT_OFFSETS + DIAGONAL_OFFSETS:
            # Offsets are (dx, dy); +y is -row in the layout convention.
            bits.append(self.bit(row - dr, col + dc))
        return NeighborhoodPattern(tuple(bits))


def solid(rows, cols, bit=0):
    """A solid all-0 (all-P) or all-1 (all-AP) pattern."""
    require_int_in_range(bit, "bit", 0, 1)
    return DataPattern(np.full((rows, cols), bit, dtype=np.int8))


def checkerboard(rows, cols, phase=0):
    """A checkerboard pattern; ``phase`` flips which corner holds a 1."""
    require_int_in_range(phase, "phase", 0, 1)
    rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    return DataPattern(((rr + cc + phase) % 2).astype(np.int8))


def random_pattern(rows, cols, rng=None, p_one=0.5):
    """A uniformly random data pattern (Bernoulli ``p_one``)."""
    rng = np.random.default_rng(rng)
    return DataPattern(
        (rng.random((rows, cols)) < p_one).astype(np.int8))
