"""Array layout: square-pitch cell placement and the 3x3 neighborhood.

The paper analyzes a representative 3x3 sub-array (Fig. 1b): the victim C8
sits at the center, the four *direct* neighbors C0-C3 share an edge with it
(lateral distance = pitch) and the four *diagonal* neighbors C4-C7 share a
corner (distance = sqrt(2) * pitch).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..errors import ParameterError
from ..validation import require_int_in_range, require_positive

#: Offsets (in pitch units) of the four direct neighbors C0..C3.
DIRECT_OFFSETS = ((1, 0), (-1, 0), (0, 1), (0, -1))

#: Offsets (in pitch units) of the four diagonal neighbors C4..C7.
DIAGONAL_OFFSETS = ((1, 1), (1, -1), (-1, 1), (-1, -1))


@dataclass(frozen=True)
class ArrayLayout:
    """A rows x cols memory array on a square pitch.

    Cell (r, c) sits at ``(c * pitch, -r * pitch)`` — columns along +x,
    rows downward along -y, matching the usual array drawing.
    """

    pitch: float
    rows: int
    cols: int

    def __post_init__(self):
        require_positive(self.pitch, "pitch")
        require_int_in_range(self.rows, "rows", 1, 1_000_000)
        require_int_in_range(self.cols, "cols", 1, 1_000_000)

    @property
    def n_cells(self):
        """Total number of cells."""
        return self.rows * self.cols

    def position(self, row, col):
        """(x, y) position [m] of cell (row, col)."""
        self._check_cell(row, col)
        return (col * self.pitch, -row * self.pitch)

    def cells(self):
        """Iterate over (row, col) pairs in row-major order."""
        for row in range(self.rows):
            for col in range(self.cols):
                yield row, col

    def neighbors(self, row, col, include_diagonal=True):
        """In-array neighbor coordinates of (row, col)."""
        self._check_cell(row, col)
        offsets = DIRECT_OFFSETS + (DIAGONAL_OFFSETS if include_diagonal
                                    else ())
        result = []
        for dc, dr in offsets:
            r, c = row + dr, col + dc
            if 0 <= r < self.rows and 0 <= c < self.cols:
                result.append((r, c))
        return result

    def _check_cell(self, row, col):
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ParameterError(
                f"cell ({row}, {col}) outside {self.rows}x{self.cols} array")


@dataclass(frozen=True)
class Neighborhood3x3:
    """The paper's 3x3 victim/aggressor geometry.

    The victim (C8) is at the origin. Aggressor cells C0..C7 are placed at
    the direct offsets (C0..C3) followed by the diagonal offsets (C4..C7).
    """

    pitch: float

    def __post_init__(self):
        require_positive(self.pitch, "pitch")

    @property
    def victim_position(self) -> Tuple[float, float]:
        """(x, y) of the victim cell C8 [m]."""
        return (0.0, 0.0)

    def aggressor_positions(self):
        """Positions [(x, y)] of C0..C7 in index order."""
        positions = []
        for ox, oy in DIRECT_OFFSETS + DIAGONAL_OFFSETS:
            positions.append((ox * self.pitch, oy * self.pitch))
        return positions

    def aggressor_distance(self, index):
        """Lateral distance [m] from aggressor ``index`` to the victim."""
        require_int_in_range(index, "index", 0, 7)
        x, y = self.aggressor_positions()[index]
        return math.hypot(x, y)

    def is_direct(self, index):
        """True for C0..C3 (edge-sharing neighbors)."""
        require_int_in_range(index, "index", 0, 7)
        return index < 4

    @classmethod
    def from_pitch_ratio(cls, ecd, ratio):
        """Construct with ``pitch = ratio * ecd`` (paper uses 1.5x-3x)."""
        require_positive(ecd, "ecd")
        require_positive(ratio, "ratio")
        return cls(pitch=ratio * ecd)
