"""Persistent on-disk backend for the kernel store.

The :class:`~repro.arrays.kernel_store.KernelStore` keys are *stable
content fingerprints* (geometry + effective moments + temperature +
offset + evaluation point), so entries survive the process that computed
them: a CI cold start or a fresh figure-runner invocation on a repeated
geometry can load yesterday's elliptic-integral work instead of redoing
it. This module is that persistence layer.

Format
------
One cache *directory* holds, per schema version, a single
self-describing file::

    kernels.v<SCHEMA>.bin

    bytes  0-7   magic  b"RKRNCACH"
    bytes  8-11  schema version   (uint32, little-endian)
    bytes 12-19  entry count      (uint64, little-endian)
    bytes 20-23  payload CRC-32   (uint32, little-endian)
    bytes 24-    entry records    (count x 24 bytes)

Each record is a 128-bit SHA-256 prefix of the key stored as two
little-endian ``uint64`` words plus the float64 Hz kernel (``S``-typed
numpy columns are avoided on purpose — they silently strip trailing NUL
bytes). The record region is memory-mapped on load; the header carries
the schema version and a CRC-32 of the payload so truncation and
partial writes are *detected* rather than trusted.

Robustness rules, in order:

* **Schema bumps invalidate.** The version is part of the file name, so
  bumping :data:`SCHEMA_VERSION` simply stops old files from being
  read; a tampered header whose ``schema`` disagrees is corruption.
* **Writes are atomic.** Header and payload live in ONE file, written
  to a temporary name and ``os.replace``-d into place — a reader
  interleaving with any number of writers sees some complete previous
  state, never a torn one.
* **Corruption is a fallback, not an error.** Every load failure raises
  :class:`KernelCacheError`; the store catches it, counts it in
  ``stats()``, and recomputes. A lost cache costs time, never
  correctness.
* **Concurrent writers serialize.** Writers take an advisory
  ``flock`` on a lock file in the cache directory around their
  read-merge-replace, so N pool workers flushing at pool shutdown all
  land their entries (no lost updates). On platforms without
  ``fcntl`` the lock degrades to lock-free last-writer-wins merging —
  losing at most the race window's entries, with the file valid
  throughout either way. Readers never lock.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import struct
import tempfile
import zlib

import numpy as np

#: Version of the on-disk layout; bump to invalidate every existing file.
SCHEMA_VERSION = 1

#: Environment variable holding the cache directory (opt-in switch).
KERNEL_CACHE_ENV = "REPRO_KERNEL_CACHE"

#: File-format sanity marker.
_MAGIC = b"RKRNCACH"

#: Header layout: magic, schema (u32), count (u64), payload crc (u32).
_HEADER = struct.Struct("<8sIQI")

#: On-disk record: 128-bit key digest (two u64 words) + float64 kernel.
_DTYPE = np.dtype([("d0", "<u8"), ("d1", "<u8"), ("value", "<f8")])

_CRC_CHUNK = 1 << 20


class KernelCacheError(Exception):
    """A cache file could not be trusted (bad magic/schema, size or
    checksum mismatch, undecodable payload). Always recoverable: the
    store falls back to recomputing."""


def key_digest(key):
    """128-bit digest of one kernel-store key as a ``(u64, u64)`` pair.

    The key is a nested tuple of floats, ints, and strings whose
    ``repr`` is deterministic across processes (Python reprs floats in
    shortest round-trip form), so equal keys hash equally everywhere.
    """
    raw = hashlib.sha256(repr(key).encode("utf-8")).digest()
    return (int.from_bytes(raw[:8], "little"),
            int.from_bytes(raw[8:16], "little"))


@contextlib.contextmanager
def _write_lock(directory):
    """Advisory inter-process lock serializing cache writers.

    Best-effort: platforms without ``fcntl`` (or unlockable
    filesystems) fall back to the lock-free merge, which stays valid
    but can lose a racing writer's entries.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX fallback
        yield
        return
    path = os.path.join(directory, "kernels.lock")
    try:
        fh = open(path, "w")
    except OSError:  # pragma: no cover - unwritable dir: write() raises
        yield
        return
    with fh:
        try:
            fcntl.flock(fh, fcntl.LOCK_EX)
        except OSError:  # pragma: no cover - e.g. NFS without locking
            yield
            return
        try:
            yield
        finally:
            fcntl.flock(fh, fcntl.LOCK_UN)


def _crc32_stream(fh, size):
    crc = 0
    remaining = size
    while remaining > 0:
        chunk = fh.read(min(_CRC_CHUNK, remaining))
        if not chunk:
            break
        remaining -= len(chunk)
        crc = zlib.crc32(chunk, crc)
    if remaining != 0:
        raise KernelCacheError("payload shorter than header claims")
    return crc & 0xFFFFFFFF


class LoadedKernelCache:
    """One consistent snapshot of the on-disk cache.

    Holds the digest -> row index and the memory-mapped value column;
    entries are only materialized when :meth:`get` touches them.
    """

    def __init__(self, index, values):
        self._index = index
        self._values = values

    def __len__(self):
        return len(self._index)

    def get(self, digest):
        """Kernel value for a :func:`key_digest` pair, or None."""
        row = self._index.get(digest)
        if row is None:
            return None
        return float(self._values[row])

    def items(self):
        """``{digest: value}`` of every entry (materializes values)."""
        return {digest: float(self._values[row])
                for digest, row in self._index.items()}


_EMPTY = LoadedKernelCache({}, np.empty(0))


class DiskKernelCache:
    """A kernel cache directory: load, merge-write, clear, describe.

    Stateless between calls — every :meth:`load` re-reads and
    re-validates the file, so a store can retry after an external
    writer repaired or replaced the cache.
    """

    def __init__(self, directory):
        self.directory = str(directory)

    @property
    def data_path(self):
        """Path of the versioned cache file."""
        return os.path.join(self.directory,
                            f"kernels.v{SCHEMA_VERSION}.bin")

    # -- read ---------------------------------------------------------------

    def load(self):
        """Validate and memory-map the cache; returns a snapshot.

        A missing cache file loads as empty — that is a cold start, not
        corruption. Anything inconsistent raises
        :class:`KernelCacheError`.

        Every read (header, size, checksum, memory map) goes through
        ONE open file descriptor: a concurrent writer's ``os.replace``
        only unlinks the *name*, so the descriptor keeps reading the
        same complete previous state — a healthy cache can never look
        torn to a reader that raced a replace.
        """
        path = self.data_path
        try:
            fh = open(path, "rb")
        except FileNotFoundError:
            return _EMPTY
        except OSError as exc:
            raise KernelCacheError(f"unreadable cache: {exc}") from exc
        with fh:
            header = fh.read(_HEADER.size)
            if len(header) != _HEADER.size:
                raise KernelCacheError(
                    "cache file shorter than its header")
            magic, schema, count, crc = _HEADER.unpack(header)
            if magic != _MAGIC:
                raise KernelCacheError(
                    "file is not a kernel-cache record")
            if schema != SCHEMA_VERSION:
                raise KernelCacheError(
                    f"schema {schema} != {SCHEMA_VERSION}")
            payload_size = count * _DTYPE.itemsize
            try:
                actual = os.fstat(fh.fileno()).st_size
            except OSError as exc:
                raise KernelCacheError(
                    f"unreadable cache: {exc}") from exc
            if actual != _HEADER.size + payload_size:
                raise KernelCacheError(
                    f"file holds {actual} bytes, header implies "
                    f"{_HEADER.size + payload_size}")
            try:
                actual_crc = _crc32_stream(fh, payload_size)
            except OSError as exc:
                raise KernelCacheError(
                    f"unreadable cache: {exc}") from exc
            if actual_crc != crc:
                raise KernelCacheError(
                    f"payload checksum {actual_crc} != recorded {crc}")
            if count == 0:
                return _EMPTY
            try:
                arr = np.memmap(fh, dtype=_DTYPE, mode="r",
                                offset=_HEADER.size,
                                shape=(int(count),))
            except (OSError, ValueError) as exc:
                raise KernelCacheError(
                    f"undecodable payload: {exc}") from exc
        index = {pair: row for row, pair in enumerate(
            zip(arr["d0"].tolist(), arr["d1"].tolist()))}
        values = arr["value"]
        if os.name == "nt":  # pragma: no cover - Windows only
            # A live mapping blocks os.replace on Windows, which would
            # permanently stop the cache from growing; copy instead.
            values = np.array(values)
        return LoadedKernelCache(index, values)

    # -- write --------------------------------------------------------------

    def write(self, entries):
        """Merge ``{digest: value}`` into the cache atomically.

        Existing on-disk entries are folded in first (a corrupt file is
        discarded rather than merged); header and payload are written
        to one temporary file and ``os.replace``-d, so readers always
        see a complete state. Writers serialize on an advisory lock so
        simultaneous flushes (e.g. pool workers at pool shutdown) all
        land their entries. Returns the total entry count on disk.
        """
        os.makedirs(self.directory, exist_ok=True)
        with _write_lock(self.directory):
            try:
                merged = self.load().items()
            except KernelCacheError:
                merged = {}
            merged.update(entries)

            arr = np.empty(len(merged), dtype=_DTYPE)
            for row, (digest, value) in enumerate(
                    sorted(merged.items())):
                arr[row] = (digest[0], digest[1], value)
            payload = arr.tobytes()
            header = _HEADER.pack(_MAGIC, SCHEMA_VERSION, len(merged),
                                  zlib.crc32(payload) & 0xFFFFFFFF)

            fd, tmp = tempfile.mkstemp(dir=self.directory,
                                       suffix=".bin.tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(header)
                    fh.write(payload)
                os.replace(tmp, self.data_path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        return len(merged)

    # -- maintenance --------------------------------------------------------

    def clear(self):
        """Remove every cache file of *any* schema version.

        Returns the number of files removed. Stray temporary files from
        interrupted writers (``mkstemp`` names ending ``.bin.tmp``) are
        swept too. ``kernels.lock`` is deliberately left alone:
        unlinking it while a writer holds (or waits on) its inode would
        let two writers lock *different* inodes and merge concurrently,
        breaking the no-lost-updates guarantee.
        """
        removed = 0
        if not os.path.isdir(self.directory):
            return removed
        for name in os.listdir(self.directory):
            if ((name.startswith("kernels.v") and name.endswith(".bin"))
                    or name.endswith(".bin.tmp")):
                try:
                    os.unlink(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def describe(self):
        """Inspection dict for ``repro cache info`` and tests."""
        info = {
            "directory": self.directory,
            "schema": SCHEMA_VERSION,
            "data_path": self.data_path,
            "exists": os.path.exists(self.data_path),
            "size_bytes": (os.path.getsize(self.data_path)
                           if os.path.exists(self.data_path) else 0),
        }
        try:
            info["entries"] = len(self.load())
            info["valid"] = True
        except KernelCacheError as exc:
            info["entries"] = 0
            info["valid"] = False
            info["error"] = str(exc)
        return info
