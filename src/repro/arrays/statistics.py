"""Exact statistics of the inter-cell field over random data.

Worst-case analysis (NP8 = 0/255) bounds the coupling impact; real arrays
hold *data*, and for random data the neighborhood counts are binomial.
Because the victim field is linear in the neighbor signs,

``Hz = fixed + (4 - 2 n_d) k_d + (4 - 2 n_g) k_g``,
``n_d ~ Binomial(4, p)``, ``n_g ~ Binomial(4, p)``

the full probability mass function of ``Hz_inter`` is exact and cheap —
25 atoms. These statistics feed data-aware retention and write budgets:
the expected failure rate of an array storing random data, versus the
worst-case bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..device.mtj import MTJDevice, MTJState
from ..device.retention import flip_rate
from ..errors import ParameterError
from ..validation import require_fraction, require_positive
from .coupling import InterCellCoupling
from .victim import VictimAnalysis


def _binomial_pmf(n, p):
    """PMF of Binomial(n, p) as an array of length n+1."""
    return np.array([
        math.comb(n, k) * p ** k * (1.0 - p) ** (n - k)
        for k in range(n + 1)
    ])


@dataclass(frozen=True)
class FieldDistribution:
    """Discrete distribution of ``Hz_inter`` at the victim.

    Attributes
    ----------
    values:
        Field atoms [A/m], ascending.
    probabilities:
        Matching probabilities (sum to 1).
    """

    values: Tuple[float, ...]
    probabilities: Tuple[float, ...]

    @property
    def mean(self):
        """Expected field [A/m]."""
        return float(np.dot(self.values, self.probabilities))

    @property
    def std(self):
        """Standard deviation [A/m]."""
        mean = self.mean
        var = float(np.dot(
            (np.asarray(self.values) - mean) ** 2, self.probabilities))
        return math.sqrt(max(var, 0.0))

    @property
    def support(self):
        """(min, max) field [A/m]."""
        return (self.values[0], self.values[-1])

    def expectation(self, fn):
        """Expected value of ``fn(Hz)`` over the distribution."""
        return float(sum(p * fn(v)
                         for v, p in zip(self.values,
                                         self.probabilities)))

    def cdf(self, threshold):
        """P(Hz <= threshold)."""
        return float(sum(p for v, p in zip(self.values,
                                           self.probabilities)
                         if v <= threshold))


def pattern_field_distribution(coupling, p_one=0.5):
    """Exact ``Hz_inter`` distribution for i.i.d. Bernoulli data.

    Parameters
    ----------
    coupling:
        :class:`~repro.arrays.coupling.InterCellCoupling`.
    p_one:
        Probability that a neighbor stores 1 (AP). 0.5 is random data;
        0/1 recover the worst/best corners.

    Returns
    -------
    FieldDistribution
    """
    if not isinstance(coupling, InterCellCoupling):
        raise ParameterError(
            f"coupling must be InterCellCoupling, got {type(coupling)!r}")
    require_fraction(p_one, "p_one")
    kernels = coupling.kernels()
    pmf_direct = _binomial_pmf(4, p_one)
    pmf_diag = _binomial_pmf(4, p_one)

    atoms = {}
    for n_d in range(5):
        for n_g in range(5):
            value = (kernels.pattern_independent
                     + (4 - 2 * n_d) * kernels.fl_direct
                     + (4 - 2 * n_g) * kernels.fl_diagonal)
            prob = pmf_direct[n_d] * pmf_diag[n_g]
            key = round(value, 6)
            atoms[key] = atoms.get(key, 0.0) + prob

    # Drop zero-probability atoms (degenerate p_one = 0 or 1 cases).
    ordered = sorted((v, p) for v, p in atoms.items() if p > 1e-300)
    values = tuple(v for v, _ in ordered)
    probs = tuple(p for _, p in ordered)
    total = sum(probs)
    probs = tuple(p / total for p in probs)
    return FieldDistribution(values=values, probabilities=probs)


def expected_retention_failure_rate(device, pitch, interval, p_one=0.5,
                                    state=MTJState.P):
    """Expected per-bit retention failure probability under random data.

    Averages the Neel-Arrhenius failure probability over the exact
    neighborhood-field distribution — the data-aware counterpart of the
    worst-case NP8 = 0 analysis.

    Parameters
    ----------
    device:
        :class:`~repro.device.mtj.MTJDevice`.
    pitch:
        Array pitch [m].
    interval:
        Retention interval [s].
    p_one:
        Data distribution (0.5 = random).
    state:
        Stored state of the victim bit.
    """
    if not isinstance(device, MTJDevice):
        raise ParameterError(
            f"device must be an MTJDevice, got {type(device)!r}")
    require_positive(interval, "interval")
    coupling = InterCellCoupling(device.stack, pitch)
    distribution = pattern_field_distribution(coupling, p_one)
    intra = device.intra_stray_field()
    f0 = device.params.attempt_frequency

    def bit_failure(hz_inter):
        delta = device.delta(state, intra + hz_inter)
        return -math.expm1(-flip_rate(delta, f0) * interval)

    return distribution.expectation(bit_failure)


def worst_case_overestimate(device, pitch, interval, p_one=0.5,
                            state=MTJState.P):
    """Ratio of worst-case to data-averaged retention failure rate.

    How pessimistic the NP8 = 0 bound is for an array holding random
    data: a factor of a few when the coupling spread is small, large when
    Psi is big.
    """
    victim = VictimAnalysis(device, pitch)
    from .pattern import ALL_P
    worst_delta = victim.delta(state, ALL_P)
    worst = -math.expm1(
        -flip_rate(worst_delta, device.params.attempt_frequency)
        * interval)
    average = expected_retention_failure_rate(device, pitch, interval,
                                              p_one, state)
    if average <= 0.0:
        return math.inf
    return worst / average
