"""Inter-cell magnetic coupling (paper Section IV-B).

The inter-cell stray field at the victim's FL is the superposition of the
fields of every neighbor's three magnetic layers::

    Hs_inter = sum_i ( Hs_HL(Ci) + Hs_RL(Ci) + Hs_FL(Ci) )

The RL/HL contributions are fixed once geometry is fixed; only the FL term
flips sign with the stored data. Exploiting linearity, the model is fully
described by two kernels per neighbor position:

* ``fixed``  — Hz at the victim FL center from the neighbor's RL + HL,
* ``fl``     — Hz from the neighbor's FL in the P state (+z); the AP state
  contributes the negative of this.

so the field for pattern NP8 is
``sum_i fixed(pos_i) + sum_i sign_i * fl(pos_i)`` with ``sign_i = +1`` for
P and -1 for AP. By symmetry the four direct neighbors share one kernel
value and the four diagonals another, which is why Fig. 4a collapses onto
25 classes; every pattern evaluation here goes through those two
symmetry-reduced kernel pairs. Kernel values are memoized process-wide in
the :mod:`repro.arrays.kernel_store`, so rebuilding coupling objects
across a sweep re-uses the elliptic-integral work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..stack import MTJStack
from ..units import am_to_oe
from ..validation import require_positive
from .kernel_store import get_kernel_store
from .layout import Neighborhood3x3
from .pattern import NeighborhoodPattern

#: Popcount of the 16 nibble values; indexes AP counts from NP8 bits.
_NIBBLE_POPCOUNT = np.array([bin(v).count("1") for v in range(16)],
                            dtype=np.int64)


@dataclass(frozen=True)
class CouplingKernels:
    """Per-position field kernels of one stack geometry.

    ``fixed_direct``/``fixed_diagonal`` are the RL+HL contributions [A/m]
    of one direct/diagonal neighbor; ``fl_direct``/``fl_diagonal`` the
    P-state FL contributions.
    """

    fixed_direct: float
    fixed_diagonal: float
    fl_direct: float
    fl_diagonal: float

    @property
    def pattern_independent(self):
        """Total fixed (RL+HL) field of all 8 neighbors [A/m]."""
        return 4.0 * (self.fixed_direct + self.fixed_diagonal)

    @property
    def max_variation(self):
        """Max Hz_inter variation across the 256 patterns [A/m].

        Flipping one neighbor P<->AP changes the field by twice its FL
        kernel, so the full range is ``2 * (4 |fl_d| + 4 |fl_g|)``.
        """
        return 2.0 * 4.0 * (abs(self.fl_direct) + abs(self.fl_diagonal))


class InterCellCoupling:
    """Inter-cell coupling model for a 3x3 neighborhood.

    Parameters
    ----------
    stack:
        The (shared) :class:`~repro.stack.MTJStack` of every cell.
    pitch:
        Array pitch [m].
    evaluation_point:
        Where on the victim axis the field is evaluated; default is the
        FL center (0, 0, 0), the paper's calibration point. Must lie ON
        the axis (x = y = 0): the whole model rests on the 4-fold
        symmetry that collapses the 8 neighbors onto one direct and one
        diagonal kernel, which only holds there. Off-axis sampling
        needs the per-position kernels of
        :class:`~repro.arrays.extended.ExtendedNeighborhood`.
    """

    def __init__(self, stack, pitch, evaluation_point=(0.0, 0.0, 0.0),
                 temperature=None):
        if not isinstance(stack, MTJStack):
            raise ParameterError(
                f"stack must be an MTJStack, got {type(stack)!r}")
        require_positive(pitch, "pitch")
        self.stack = stack
        self.pitch = float(pitch)
        self.neighborhood = Neighborhood3x3(pitch=self.pitch)
        self.evaluation_point = np.asarray(evaluation_point, dtype=float)
        if self.evaluation_point.shape != (3,):
            raise ParameterError(
                f"evaluation_point must have 3 components, got "
                f"{self.evaluation_point.shape}")
        if self.evaluation_point[0] != 0.0 or \
                self.evaluation_point[1] != 0.0:
            raise ParameterError(
                "evaluation_point must lie on the victim axis "
                "(x = y = 0) — the symmetry-reduced kernels are wrong "
                "off-axis; use ExtendedNeighborhood for per-position "
                f"sampling. Got {tuple(self.evaluation_point)}")
        self.temperature = temperature
        self._kernels = None

    # -- kernels -----------------------------------------------------------

    def _kernel(self, offset_xy, kind):
        """Hz [A/m] at the victim point from one neighbor at ``offset_xy``.

        ``kind`` is ``"fixed"`` (RL+HL with their pinned directions) or
        ``"fl"`` (FL in the P state). Memoized process-wide in the
        :class:`~repro.arrays.kernel_store.KernelStore`.
        """
        return get_kernel_store().kernel(
            self.stack, offset_xy, kind,
            evaluation_point=tuple(self.evaluation_point),
            temperature=self.temperature)

    def kernels(self):
        """The four symmetry-reduced kernels of this geometry.

        Fetched once per instance through the store's batch path (two
        two-offset batches, sharing cache keys with the scalar
        :meth:`_kernel` exactly) and memoized — pattern sweeps call
        this per pattern, and the instance is immutable after
        construction.
        """
        if self._kernels is None:
            positions = self.neighborhood.aggressor_positions()
            offsets = (positions[0], positions[4])  # direct, diagonal
            store = get_kernel_store()
            point = tuple(self.evaluation_point)
            fixed = store.kernel_batch(self.stack, offsets, "fixed",
                                       evaluation_point=point,
                                       temperature=self.temperature)
            fl = store.kernel_batch(self.stack, offsets, "fl",
                                    evaluation_point=point,
                                    temperature=self.temperature)
            self._kernels = CouplingKernels(
                fixed_direct=float(fixed[0]),
                fixed_diagonal=float(fixed[1]),
                fl_direct=float(fl[0]),
                fl_diagonal=float(fl[1]),
            )
        return self._kernels

    # -- pattern fields ------------------------------------------------------

    def hz_inter(self, pattern):
        """``Hz_s_inter`` [A/m] at the victim FL for one NP8 pattern.

        Evaluated through the two symmetry-reduced kernel pairs of
        :meth:`kernels` — the four direct (and four diagonal) positions
        share one kernel value, so only the AP counts matter.
        """
        if not isinstance(pattern, NeighborhoodPattern):
            pattern = NeighborhoodPattern.from_int(int(pattern))
        k = self.kernels()
        n_dir, n_diag = pattern.direct_ones, pattern.diagonal_ones
        # sign sum over 4 neighbors with n ones: (4 - n) - n = 4 - 2n.
        return (k.pattern_independent
                + (4 - 2 * n_dir) * k.fl_direct
                + (4 - 2 * n_diag) * k.fl_diagonal)

    # Kept as an alias: the "fast" path IS the only pattern path now.
    hz_inter_fast = hz_inter

    def hz_inter_batch(self, patterns):
        """``Hz_s_inter`` [A/m] for an array of NP8 decimal patterns.

        Vectorized over any integer array shape: decodes the direct
        (bits 0-3) and diagonal (bits 4-7) AP counts with a nibble
        popcount table and applies the symmetry-reduced kernels in one
        numpy expression.
        """
        patterns = np.asarray(patterns)
        if not np.issubdtype(patterns.dtype, np.integer):
            raise ParameterError(
                f"patterns must be integers, got dtype {patterns.dtype}")
        if patterns.size and (patterns.min() < 0 or patterns.max() > 255):
            raise ParameterError("patterns must lie in [0, 255]")
        n_dir = _NIBBLE_POPCOUNT[patterns & 0x0F]
        n_diag = _NIBBLE_POPCOUNT[(patterns >> 4) & 0x0F]
        k = self.kernels()
        return (k.pattern_independent
                + (4 - 2 * n_dir) * k.fl_direct
                + (4 - 2 * n_diag) * k.fl_diagonal)

    def hz_inter_all(self):
        """``Hz_s_inter`` [A/m] for all 256 patterns (decimal order)."""
        return self.hz_inter_batch(np.arange(256))

    def class_table(self):
        """Fig. 4a data: ``{(n_direct, n_diag): Hz_inter [A/m]}``."""
        k = self.kernels()
        table = {}
        for n_dir in range(5):
            for n_diag in range(5):
                table[(n_dir, n_diag)] = (
                    k.pattern_independent
                    + (4 - 2 * n_dir) * k.fl_direct
                    + (4 - 2 * n_diag) * k.fl_diagonal)
        return table

    def extremes(self):
        """(min, max) of ``Hz_inter`` [A/m] over the 256 patterns.

        With the reference stack the minimum occurs at NP8 = 0 (all P) and
        the maximum at NP8 = 255 (all AP), as in the paper.
        """
        values = self.hz_inter_all()
        return float(np.min(values)), float(np.max(values))

    def max_variation(self):
        """Maximum pattern-to-pattern variation of ``Hz_inter`` [A/m]."""
        return self.kernels().max_variation

    def summary_oe(self):
        """Kernel/extreme summary in oersted (for reports)."""
        k = self.kernels()
        lo, hi = self.extremes()
        return {
            "pitch_nm": self.pitch * 1e9,
            "fixed_direct_oe": am_to_oe(k.fixed_direct),
            "fixed_diagonal_oe": am_to_oe(k.fixed_diagonal),
            "fl_direct_oe": am_to_oe(k.fl_direct),
            "fl_diagonal_oe": am_to_oe(k.fl_diagonal),
            "hz_min_oe": am_to_oe(lo),
            "hz_max_oe": am_to_oe(hi),
            "variation_oe": am_to_oe(k.max_variation),
        }
