"""Process-wide memoized store of stray-field coupling kernels.

Every consumer of the coupling model — :class:`repro.core.inter.
InterCellModel`, :class:`repro.arrays.coupling.InterCellCoupling`,
:class:`repro.arrays.extended.ExtendedNeighborhood`, the memsys
:class:`~repro.memsys.controller.ArrayController` — ultimately needs the
same scalar: the Hz field [A/m] at an evaluation point on the victim FL
sourced by one neighbor stack at a lateral offset. That scalar depends
only on

* the *stack fingerprint* — pillar geometry, the magnetic layers'
  effective moments (after any temperature scaling), and which layer set
  is sourcing (``"fixed"`` = RL + HL with pinned directions, ``"fl"`` =
  the free layer in the P state),
* the lateral offset (which encodes the pitch), and
* the evaluation point.

Before this store, every ``InterCellCoupling`` instance kept a private
``_kernel_cache``, so a pitch sweep that rebuilt model objects per point
recomputed identical elliptic-integral sums from scratch. The store
memoizes them process-wide: model objects stay cheap, throwaway facades,
and repeated grid scenarios (the paper's pitch x pattern x size sweeps)
pay for each kernel once per process.

The store is thread-safe; under the :mod:`repro.sweep` process-pool
executor each worker simply grows its own copy (and the ``"thread"``
executor shares this one), which is exactly the right sharing
granularity (kernels are pure functions of the key).

Because the keys are content fingerprints, entries also survive the
process: setting the :data:`~repro.arrays.kernel_disk.KERNEL_CACHE_ENV`
environment variable to a directory gives the singleton a persistent
:class:`~repro.arrays.kernel_disk.DiskKernelCache` backend — memory
misses consult the disk before recomputing, fresh computes are queued
and flushed back, and any corrupt or stale file degrades to a counted
recompute, never an error.
"""

from __future__ import annotations

import atexit
import os
import threading
import time

import numpy as np

from ..errors import ParameterError
from ..fields import layer_to_loops
from ..fields.superposition import LoopCollection
from ..stack import MTJStack
from .kernel_disk import (
    KERNEL_CACHE_ENV,
    DiskKernelCache,
    KernelCacheError,
    key_digest,
)

#: Decimal places for rounding lengths [m] in cache keys (sub-fm).
_KEY_DECIMALS = 15

#: The kernel kinds the store computes.
KERNEL_KINDS = ("fixed", "fl")

#: Version of the kernel *semantics*, folded into every cache key.
#: Bump whenever the computed value for an unchanged key could change —
#: the field backend (`loop_field_analytic_many`), the loop
#: discretization (`layer_to_loops` sub-loop defaults), or the
#: fingerprint's meaning. The on-disk cache digests keys verbatim, so
#: without this a physics change would silently serve stale persisted
#: kernels (`kernel_disk.SCHEMA_VERSION` only covers the *file
#: layout*).
KERNEL_MODEL_VERSION = 1


def stack_fingerprint(stack, temperature=None):
    """Hashable fingerprint of everything a coupling kernel depends on.

    Captures the pillar radius and, per magnetic layer, its role,
    vertical extent, magnetization direction, and the *effective* Ms
    after Bloch scaling to ``temperature``. Two stacks with equal
    fingerprints produce identical kernels; changing any moment,
    thickness, eCD, or the temperature changes the fingerprint and
    therefore invalidates nothing — it simply keys new entries.
    """
    if not isinstance(stack, MTJStack):
        raise ParameterError(
            f"stack must be an MTJStack, got {type(stack)!r}")
    layers = []
    for layer in stack.magnetic_layers():
        ms = (layer.material.ms if temperature is None
              else layer.material.ms_at(temperature))
        # Coerce to plain Python types: the disk cache digests
        # repr(key), and a np.float64 reprs differently from the
        # ==-equal float, which would silently split the keys.
        layers.append((str(layer.role.value),
                       round(float(layer.z_bottom), _KEY_DECIMALS),
                       round(float(layer.z_top), _KEY_DECIMALS),
                       float(ms),
                       int(layer.direction)))
    return (round(float(stack.radius), _KEY_DECIMALS), tuple(layers))


class KernelStore:
    """Memoized ``(stack, offset, kind, point) -> Hz`` kernel evaluator.

    Normally used through the module-level singleton (see
    :func:`get_kernel_store`); instantiable separately for isolation in
    tests. ``hits``/``misses`` count lookups for observability.

    With a :class:`~repro.arrays.kernel_disk.DiskKernelCache` attached
    (``disk=`` or :meth:`attach_disk`), memory misses consult the disk
    snapshot before recomputing, and recomputed entries are queued for
    an atomic merge-write back (auto-flushed every
    :data:`FLUSH_THRESHOLD` new entries, or explicitly via
    :meth:`flush_disk`). Disk trouble of any kind — truncation, schema
    mismatch, torn concurrent writes — degrades to a recompute counted
    in ``stats()["disk_fallbacks"]``.
    """

    #: Queued disk write-backs that trigger an automatic flush.
    FLUSH_THRESHOLD = 256

    #: Seconds before a failed disk-snapshot load is retried, so an
    #: externally repaired cache comes back without restarting the
    #: process while a persistently corrupt one is not re-scanned on
    #: every lookup.
    DISK_RETRY_SECONDS = 60.0

    def __init__(self, disk=None):
        self._cache = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._disk = None
        self._disk_from_env = False
        with self._lock:
            self._reset_disk_state_locked()
        if disk is not None:
            self.attach_disk(disk)

    def __len__(self):
        return len(self._cache)

    def _reset_disk_state_locked(self):
        """Reset snapshot, queue, cooldown, and counters (lock held)."""
        self._disk_loaded = None
        self._disk_failed_at = 0.0
        self._pending = {}
        self.disk_hits = 0
        self.disk_fallbacks = 0
        self.disk_write_failures = 0

    def clear(self):
        """Drop every in-memory entry and reset every counter.

        The on-disk files (if a disk cache is attached) are untouched;
        the disk snapshot is re-read on the next lookup.
        """
        with self._lock:
            self._cache.clear()
            self.hits = 0
            self.misses = 0
            self._reset_disk_state_locked()

    # -- disk backing -------------------------------------------------------

    @property
    def disk(self):
        """The attached :class:`DiskKernelCache`, or None."""
        return self._disk

    @property
    def disk_from_env(self):
        """True when the current backend was attached by the env sync.

        Callers that temporarily swap the backend (e.g. ``repro cache
        warm``) must restore this flag, or the environment opt-out
        would stop working afterwards.
        """
        return self._disk_from_env

    def attach_disk(self, disk, _from_env=False):
        """Back this store with ``disk`` (a DiskKernelCache or a path)."""
        if not isinstance(disk, DiskKernelCache):
            disk = DiskKernelCache(disk)
        with self._lock:
            self._attach_disk_locked(disk, _from_env)

    def _attach_disk_locked(self, disk, from_env):
        self._disk = disk
        self._disk_from_env = from_env
        self._reset_disk_state_locked()

    def detach_disk(self):
        """Drop the disk backend (pending write-backs are discarded).

        While :data:`KERNEL_CACHE_ENV` remains set, the next
        :func:`get_kernel_store` call re-attaches the environment's
        backend — to opt out of disk I/O persistently, unset the
        variable (as the benchmark conftest does) or attach an
        explicit backend, which the env sync never overrides.
        """
        with self._lock:
            self._detach_disk_locked()

    def _detach_disk_locked(self):
        self._disk = None
        self._disk_from_env = False
        self._reset_disk_state_locked()

    def sync_disk_from_env(self, environ=None):
        """Attach/detach the disk backend per :data:`KERNEL_CACHE_ENV`.

        Called by :func:`get_kernel_store` on every access so tests and
        subprocesses that flip the environment variable see the change
        without restarting the process. A backend attached explicitly
        via :meth:`attach_disk` is never overridden here — the
        environment only manages backends it attached itself. The
        check and the switch happen under one lock acquisition, so a
        concurrent explicit attach cannot be clobbered in between.
        """
        environ = os.environ if environ is None else environ
        directory = environ.get(KERNEL_CACHE_ENV) or None
        with self._lock:
            explicit = self._disk is not None and not self._disk_from_env
            current = (self._disk.directory if self._disk is not None
                       else None)
            if explicit or directory == current:
                return
            if directory is None:
                self._detach_disk_locked()
            else:
                self._attach_disk_locked(DiskKernelCache(directory),
                                         True)

    def _disk_snapshot(self):
        """The loaded disk snapshot, or None (no disk / failed load).

        The first load — open, checksum scan, index build — runs
        OUTSIDE the store lock so concurrent lookups (thread-executor
        sweeps in particular) are not stalled behind cache-file I/O;
        racing loaders duplicate that work harmlessly and the first
        install wins.
        """
        with self._lock:
            disk = self._disk
            if disk is None:
                return None
            loaded = self._disk_loaded
            if (loaded is False
                    and time.monotonic() - self._disk_failed_at
                    >= self.DISK_RETRY_SECONDS):
                self._disk_loaded = loaded = None   # retry the load
            if loaded is not None:
                return loaded or None   # empty snapshot serves nothing
        try:
            snapshot = disk.load()
        except KernelCacheError:
            snapshot = False
        with self._lock:
            if self._disk is disk and self._disk_loaded is None:
                self._disk_loaded = snapshot
                if snapshot is False:
                    self.disk_fallbacks += 1
                    self._disk_failed_at = time.monotonic()
            loaded = (self._disk_loaded if self._disk is disk
                      else None)
        return loaded or None

    def _queue_write_locked(self, key, value):
        if self._disk is not None:
            self._pending[key_digest(key)] = value

    def flush_disk(self):
        """Merge-write queued entries to disk; returns how many.

        Write failures are swallowed into ``disk_write_failures`` — the
        entries stay available in memory and will be recomputed by the
        next process.
        """
        with self._lock:
            disk, pending = self._disk, self._pending
            if disk is None or not pending:
                return 0
            self._pending = {}
        try:
            disk.write(pending)
        except (KernelCacheError, OSError):
            with self._lock:
                self.disk_write_failures += 1
            return 0
        return len(pending)

    def _maybe_autoflush(self):
        with self._lock:
            due = (self._disk is not None
                   and len(self._pending) >= self.FLUSH_THRESHOLD)
        if due:
            self.flush_disk()

    # -- observability ------------------------------------------------------

    def stats(self):
        """``{"entries": n, "hits": h, "misses": m}`` snapshot.

        With a disk backend attached, also reports ``disk_hits``
        (lookups served from the persistent cache), ``disk_fallbacks``
        (corrupt/stale cache reads that degraded to recompute),
        ``disk_write_failures`` (flushes that could not be written),
        ``disk_pending`` (queued write-backs), and ``disk_entries``
        (entries in the loaded snapshot; 0 until the first lookup
        loads it).
        """
        with self._lock:
            out = {"entries": len(self._cache), "hits": self.hits,
                   "misses": self.misses}
            if self._disk is not None:
                out["disk_hits"] = self.disk_hits
                out["disk_fallbacks"] = self.disk_fallbacks
                out["disk_write_failures"] = self.disk_write_failures
                out["disk_pending"] = len(self._pending)
                out["disk_entries"] = (
                    len(self._disk_loaded) if self._disk_loaded else 0)
            return out

    def kernel(self, stack, offset_xy, kind,
               evaluation_point=(0.0, 0.0, 0.0), temperature=None):
        """Hz [A/m] at ``evaluation_point`` from one neighbor stack.

        Parameters
        ----------
        stack:
            The neighbor's :class:`~repro.stack.MTJStack`.
        offset_xy:
            Lateral (x, y) position [m] of the neighbor's axis relative
            to the evaluation frame.
        kind:
            ``"fixed"`` (RL + HL with their pinned directions) or
            ``"fl"`` (free layer in the P state, +z).
        evaluation_point:
            (x, y, z) [m] where Hz is evaluated; default the FL center.
        temperature:
            Optional temperature [K] scaling the layer moments.
        """
        point = _validated_point(kind, evaluation_point)
        key = _entry_key(stack_fingerprint(stack, temperature),
                         offset_xy[0], offset_xy[1], kind, point)
        with self._lock:
            if key in self._cache:
                self.hits += 1
                return self._cache[key]
        snapshot = self._disk_snapshot()
        if snapshot is not None:
            value = snapshot.get(key_digest(key))
            if value is not None:
                with self._lock:
                    self.disk_hits += 1
                    self._cache[key] = value
                return value
        value = self._compute(stack, offset_xy, kind, point, temperature)
        with self._lock:
            self.misses += 1
            self._cache[key] = value
            self._queue_write_locked(key, value)
        self._maybe_autoflush()
        return value

    def kernel_batch(self, stack, offsets_xy, kind,
                     evaluation_point=(0.0, 0.0, 0.0), temperature=None):
        """Hz [A/m] at ``evaluation_point`` from neighbors at N offsets.

        The batched counterpart of :meth:`kernel`: ``offsets_xy`` is an
        (N, 2) array of lateral neighbor positions [m] and the return
        value is the (N,) array of their kernels, in order. Cached and
        uncached offsets share the scalar path's keys exactly, so the
        two paths hit each other's entries; every *uncached* offset of
        the batch is evaluated in one broadcasted
        :meth:`~repro.fields.superposition.LoopCollection.field_grid`
        call (translation invariance: the field of a source at offset
        ``o`` evaluated at ``p`` equals the field of the same source at
        the origin evaluated at ``p - o``), which is what makes
        full-array field maps a single numpy expression instead of a
        per-cell Python loop.
        """
        point = _validated_point(kind, evaluation_point)
        offsets = np.asarray(offsets_xy, dtype=float)
        if offsets.ndim != 2 or offsets.shape[1] != 2:
            raise ParameterError(
                f"offsets_xy must have shape (N, 2), got {offsets.shape}")
        fingerprint = stack_fingerprint(stack, temperature)
        keys = [_entry_key(fingerprint, ox, oy, kind, point)
                for ox, oy in offsets]
        out = np.empty(len(keys))
        missing = []
        with self._lock:
            for i, key in enumerate(keys):
                if key in self._cache:
                    self.hits += 1
                    out[i] = self._cache[key]
                else:
                    missing.append(i)
        if missing:
            snapshot = self._disk_snapshot()
            if snapshot is not None:
                # Touch the memory-mapped snapshot outside the lock (a
                # cold page is a disk read); install hits under it.
                found = [(i, snapshot.get(key_digest(keys[i])))
                         for i in missing]
                still_missing = []
                with self._lock:
                    for i, value in found:
                        if value is None:
                            still_missing.append(i)
                        else:
                            self.disk_hits += 1
                            self._cache[keys[i]] = value
                            out[i] = value
                missing = still_missing
        if missing:
            values = self._compute_batch(stack, offsets[missing], kind,
                                         point, temperature)
            with self._lock:
                for i, value in zip(missing, values):
                    value = float(value)
                    self.misses += 1
                    self._cache[keys[i]] = value
                    self._queue_write_locked(keys[i], value)
                    out[i] = value
            self._maybe_autoflush()
        return out

    @staticmethod
    def _source_loops(stack, kind, center_xy, temperature):
        if kind == "fixed":
            layers, direction = stack.fixed_layers(), None
        else:
            layers, direction = (stack.free_layer,), +1
        loops = []
        for layer in layers:
            loops.extend(layer_to_loops(
                layer, stack.radius, center_xy=center_xy,
                direction=direction, temperature=temperature))
        return loops

    @staticmethod
    def _compute(stack, offset_xy, kind, point, temperature):
        loops = KernelStore._source_loops(stack, kind, offset_xy,
                                          temperature)
        return float(LoopCollection(loops).field(point)[2])

    @staticmethod
    def _compute_batch(stack, offsets, kind, point, temperature):
        # One origin-centered source, evaluated at point - offset for
        # every offset: the lab-frame displacement point - (offset + c)
        # is computed with the same float ops as the scalar path, so the
        # results are bit-identical to per-offset scalar computes.
        loops = KernelStore._source_loops(stack, kind, (0.0, 0.0),
                                          temperature)
        shifts = np.concatenate(
            [offsets, np.zeros((len(offsets), 1))], axis=1)
        pts = np.asarray(point, dtype=float) - shifts
        return LoopCollection(loops).field_grid(pts)[:, 2]


def _entry_key(fingerprint, ox, oy, kind, point):
    """The store/disk cache key of one kernel entry.

    The single definition both :meth:`KernelStore.kernel` and
    :meth:`KernelStore.kernel_batch` build keys through — entry
    sharing between the two paths (and the disk digests derived from
    the keys) depends on them never drifting apart. Leads with
    :data:`KERNEL_MODEL_VERSION` so persisted entries of older kernel
    semantics can never be served.
    """
    return (KERNEL_MODEL_VERSION, fingerprint,
            round(float(ox), _KEY_DECIMALS),
            round(float(oy), _KEY_DECIMALS),
            kind, point)


def _validated_point(kind, evaluation_point):
    if kind not in KERNEL_KINDS:
        raise ParameterError(f"unknown kernel kind {kind!r}")
    point = tuple(round(float(c), _KEY_DECIMALS)
                  for c in evaluation_point)
    if len(point) != 3:
        raise ParameterError(
            f"evaluation_point must have 3 components, got "
            f"{len(point)}")
    return point


#: The process-wide store shared by every coupling-model consumer.
_GLOBAL_STORE = KernelStore()

# Safety-net flush at interpreter exit: covers kernels computed in the
# main process outside any sweep (e.g. `repro wer`, direct library
# use), which would otherwise sit below FLUSH_THRESHOLD and be lost.
# Sweeps still flush promptly (SweepRunner.run), and pool workers use
# a multiprocessing Finalize hook because os._exit skips atexit there.
# No-op unless a disk backend is attached with entries pending.
atexit.register(_GLOBAL_STORE.flush_disk)


def get_kernel_store():
    """The process-wide :class:`KernelStore` singleton.

    Re-synchronizes the disk backend against the
    :data:`~repro.arrays.kernel_disk.KERNEL_CACHE_ENV` environment
    variable on every call, so opting in (or out) of persistence takes
    effect immediately — including in sweep worker processes, which
    inherit the parent's environment.
    """
    _GLOBAL_STORE.sync_disk_from_env()
    return _GLOBAL_STORE
