"""Process-wide memoized store of stray-field coupling kernels.

Every consumer of the coupling model — :class:`repro.core.inter.
InterCellModel`, :class:`repro.arrays.coupling.InterCellCoupling`,
:class:`repro.arrays.extended.ExtendedNeighborhood`, the memsys
:class:`~repro.memsys.controller.ArrayController` — ultimately needs the
same scalar: the Hz field [A/m] at an evaluation point on the victim FL
sourced by one neighbor stack at a lateral offset. That scalar depends
only on

* the *stack fingerprint* — pillar geometry, the magnetic layers'
  effective moments (after any temperature scaling), and which layer set
  is sourcing (``"fixed"`` = RL + HL with pinned directions, ``"fl"`` =
  the free layer in the P state),
* the lateral offset (which encodes the pitch), and
* the evaluation point.

Before this store, every ``InterCellCoupling`` instance kept a private
``_kernel_cache``, so a pitch sweep that rebuilt model objects per point
recomputed identical elliptic-integral sums from scratch. The store
memoizes them process-wide: model objects stay cheap, throwaway facades,
and repeated grid scenarios (the paper's pitch x pattern x size sweeps)
pay for each kernel once per process.

The store is thread-safe; under the :mod:`repro.sweep` process-pool
executor each worker simply grows its own copy, which is exactly the
right sharing granularity (kernels are pure functions of the key).
"""

from __future__ import annotations

import threading

from ..errors import ParameterError
from ..fields import layer_to_loops
from ..fields.superposition import LoopCollection
from ..stack import MTJStack

#: Decimal places for rounding lengths [m] in cache keys (sub-fm).
_KEY_DECIMALS = 15

#: The kernel kinds the store computes.
KERNEL_KINDS = ("fixed", "fl")


def stack_fingerprint(stack, temperature=None):
    """Hashable fingerprint of everything a coupling kernel depends on.

    Captures the pillar radius and, per magnetic layer, its role,
    vertical extent, magnetization direction, and the *effective* Ms
    after Bloch scaling to ``temperature``. Two stacks with equal
    fingerprints produce identical kernels; changing any moment,
    thickness, eCD, or the temperature changes the fingerprint and
    therefore invalidates nothing — it simply keys new entries.
    """
    if not isinstance(stack, MTJStack):
        raise ParameterError(
            f"stack must be an MTJStack, got {type(stack)!r}")
    layers = []
    for layer in stack.magnetic_layers():
        ms = (layer.material.ms if temperature is None
              else layer.material.ms_at(temperature))
        layers.append((layer.role.value,
                       round(layer.z_bottom, _KEY_DECIMALS),
                       round(layer.z_top, _KEY_DECIMALS),
                       float(ms),
                       layer.direction))
    return (round(stack.radius, _KEY_DECIMALS), tuple(layers))


class KernelStore:
    """Memoized ``(stack, offset, kind, point) -> Hz`` kernel evaluator.

    Normally used through the module-level singleton (see
    :func:`get_kernel_store`); instantiable separately for isolation in
    tests. ``hits``/``misses`` count lookups for observability.
    """

    def __init__(self):
        self._cache = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._cache)

    def clear(self):
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._cache.clear()
            self.hits = 0
            self.misses = 0

    def stats(self):
        """``{"entries": n, "hits": h, "misses": m}`` snapshot."""
        with self._lock:
            return {"entries": len(self._cache), "hits": self.hits,
                    "misses": self.misses}

    def kernel(self, stack, offset_xy, kind,
               evaluation_point=(0.0, 0.0, 0.0), temperature=None):
        """Hz [A/m] at ``evaluation_point`` from one neighbor stack.

        Parameters
        ----------
        stack:
            The neighbor's :class:`~repro.stack.MTJStack`.
        offset_xy:
            Lateral (x, y) position [m] of the neighbor's axis relative
            to the evaluation frame.
        kind:
            ``"fixed"`` (RL + HL with their pinned directions) or
            ``"fl"`` (free layer in the P state, +z).
        evaluation_point:
            (x, y, z) [m] where Hz is evaluated; default the FL center.
        temperature:
            Optional temperature [K] scaling the layer moments.
        """
        if kind not in KERNEL_KINDS:
            raise ParameterError(f"unknown kernel kind {kind!r}")
        point = tuple(round(float(c), _KEY_DECIMALS)
                      for c in evaluation_point)
        if len(point) != 3:
            raise ParameterError(
                f"evaluation_point must have 3 components, got "
                f"{len(point)}")
        key = (stack_fingerprint(stack, temperature),
               round(float(offset_xy[0]), _KEY_DECIMALS),
               round(float(offset_xy[1]), _KEY_DECIMALS),
               kind, point)
        with self._lock:
            if key in self._cache:
                self.hits += 1
                return self._cache[key]
        value = self._compute(stack, offset_xy, kind, point, temperature)
        with self._lock:
            self.misses += 1
            self._cache[key] = value
        return value

    @staticmethod
    def _compute(stack, offset_xy, kind, point, temperature):
        if kind == "fixed":
            layers, direction = stack.fixed_layers(), None
        else:
            layers, direction = (stack.free_layer,), +1
        loops = []
        for layer in layers:
            loops.extend(layer_to_loops(
                layer, stack.radius, center_xy=offset_xy,
                direction=direction, temperature=temperature))
        return float(LoopCollection(loops).field(point)[2])


#: The process-wide store shared by every coupling-model consumer.
_GLOBAL_STORE = KernelStore()


def get_kernel_store():
    """The process-wide :class:`KernelStore` singleton."""
    return _GLOBAL_STORE
