"""Memory-array modeling: layout, data patterns, inter-cell coupling.

Named ``arrays`` (plural) to avoid shadowing the stdlib ``array`` module.

* :mod:`repro.arrays.layout` — cell placement on a square-pitch grid and
  the paper's 3x3 victim/aggressor neighborhood (Fig. 1b),
* :mod:`repro.arrays.pattern` — NP8 neighborhood patterns and whole-array
  data patterns,
* :mod:`repro.arrays.coupling` — the inter-cell stray-field model
  (Section IV-B) built on symmetry-reduced kernels,
* :mod:`repro.arrays.kernel_store` — process-wide memoized store of the
  stray-field kernels shared by every coupling-model consumer (scalar
  and batched lookups),
* :mod:`repro.arrays.kernel_disk` — the store's persistent on-disk
  backend (versioned, checksummed, memory-mapped),
* :mod:`repro.arrays.victim` — combined intra+inter analysis of a victim
  cell,
* :mod:`repro.arrays.density` — areal-density bookkeeping.
"""

from .coupling import CouplingKernels, InterCellCoupling
from .density import areal_density_gbit_per_mm2, cell_area, density_table
from .extended import ExtendedNeighborhood, fast_array_field_map
from .kernel_disk import (
    KERNEL_CACHE_ENV,
    DiskKernelCache,
    KernelCacheError,
)
from .kernel_store import KernelStore, get_kernel_store, stack_fingerprint
from .retention_map import RetentionMap, retention_map
from .statistics import (
    FieldDistribution,
    expected_retention_failure_rate,
    pattern_field_distribution,
)
from .layout import ArrayLayout, Neighborhood3x3
from .pattern import (
    DataPattern,
    NeighborhoodPattern,
    all_patterns,
    checkerboard,
    pattern_classes,
    solid,
)
from .victim import VictimAnalysis

__all__ = [
    "ArrayLayout",
    "CouplingKernels",
    "DataPattern",
    "DiskKernelCache",
    "ExtendedNeighborhood",
    "KERNEL_CACHE_ENV",
    "KernelCacheError",
    "FieldDistribution",
    "InterCellCoupling",
    "KernelStore",
    "Neighborhood3x3",
    "NeighborhoodPattern",
    "RetentionMap",
    "VictimAnalysis",
    "all_patterns",
    "areal_density_gbit_per_mm2",
    "cell_area",
    "checkerboard",
    "density_table",
    "expected_retention_failure_rate",
    "fast_array_field_map",
    "get_kernel_store",
    "pattern_classes",
    "pattern_field_distribution",
    "retention_map",
    "solid",
    "stack_fingerprint",
]
