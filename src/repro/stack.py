"""MTJ stack definition and the calibrated reference stack.

An :class:`MTJStack` is an ordered set of :class:`~repro.geometry.Layer`
objects sharing one pillar diameter. It knows how to expose its magnetic
layers (FL, RL, HL) and how to convert them into bound-current loop sources
for the stray-field model (see :mod:`repro.fields.bound_current`).

The reference stack built by :func:`build_reference_stack` reproduces the
paper's device family: a bottom-pinned perpendicular MTJ with dual MgO and a
SAF pinned system, reduced to effective uniformly-magnetized layers. The
layer thicknesses and effective magnetizations are calibrated so that the
intra-cell stray field matches the paper's measured anchors (DESIGN.md
section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from . import materials as mats
from .errors import GeometryError, ParameterError
from .geometry import Layer, LayerRole, PillarGeometry, check_no_overlap
from .validation import require_positive


@dataclass(frozen=True)
class MTJStack:
    """An MTJ pillar: a validated, non-overlapping stack of layers.

    Parameters
    ----------
    layers:
        Tuple of :class:`Layer`, any vertical order (stored sorted from
        bottom to top).
    pillar:
        Lateral :class:`PillarGeometry` (eCD).
    """

    layers: Tuple[Layer, ...]
    pillar: PillarGeometry

    def __post_init__(self):
        ordered = tuple(check_no_overlap(self.layers))
        object.__setattr__(self, "layers", ordered)
        for role in (LayerRole.FREE, LayerRole.REFERENCE, LayerRole.HARD):
            found = [la for la in ordered if la.role is role]
            if len(found) != 1:
                raise GeometryError(
                    f"stack must contain exactly one {role.value} layer, "
                    f"found {len(found)}")

    def _layer(self, role):
        for layer in self.layers:
            if layer.role is role:
                return layer
        raise GeometryError(f"no layer with role {role.value}")

    @property
    def free_layer(self):
        """The free (data-storing) layer."""
        return self._layer(LayerRole.FREE)

    @property
    def reference_layer(self):
        """The reference layer (fixed, adjacent to the barrier)."""
        return self._layer(LayerRole.REFERENCE)

    @property
    def hard_layer(self):
        """The hard layer (fixed, bottom of the SAF)."""
        return self._layer(LayerRole.HARD)

    @property
    def barrier(self):
        """The MgO tunnel barrier layer."""
        return self._layer(LayerRole.BARRIER)

    @property
    def ecd(self):
        """Electrical critical diameter [m]."""
        return self.pillar.ecd

    @property
    def radius(self):
        """Pillar radius [m]."""
        return self.pillar.radius

    @property
    def area(self):
        """Pillar cross-sectional area [m^2]."""
        return self.pillar.area

    def fixed_layers(self):
        """The layers whose magnetization never changes (RL and HL)."""
        return (self.reference_layer, self.hard_layer)

    def magnetic_layers(self):
        """All moment-carrying layers (FL, RL, HL), bottom to top."""
        return tuple(la for la in self.layers if la.is_magnetic_role)

    def with_ecd(self, ecd):
        """Return a copy of this stack with a different pillar eCD."""
        require_positive(ecd, "ecd")
        return replace(self, pillar=PillarGeometry(ecd=ecd))

    def with_layer_ms(self, role, ms):
        """Return a copy with the ``role`` layer's ``Ms`` replaced.

        Used by the calibration fit, which adjusts the effective RL/HL
        magnetizations to match measured offset fields.
        """
        if ms < 0:
            raise ParameterError(f"ms must be >= 0, got {ms!r}")
        new_layers = []
        found = False
        for layer in self.layers:
            if layer.role is role:
                new_layers.append(
                    replace(layer, material=layer.material.with_ms(ms)))
                found = True
            else:
                new_layers.append(layer)
        if not found:
            raise GeometryError(f"no layer with role {role.value}")
        return replace(self, layers=tuple(new_layers))


#: Default reference-stack layer thicknesses [m] (see DESIGN.md section 6).
DEFAULT_THICKNESSES = {
    "free": 2.0e-9,
    "barrier": 1.0e-9,
    "reference": 1.2e-9,
    "spacer": 2.3e-9,
    "hard": 4.0e-9,
}

#: Calibrated effective RL magnetization [A/m] (Ms*t_RL ~ 0.21 mA).
DEFAULT_RL_MS = 1.78e5

#: Calibrated effective HL magnetization [A/m] (Ms*t_HL ~ 1.45 mA).
DEFAULT_HL_MS = 3.62e5


def build_reference_stack(ecd, *, fl_ms=None, rl_ms=None, hl_ms=None,
                          thicknesses=None):
    """Build the calibrated bottom-pinned reference stack.

    Layer order (top to bottom): FL / MgO barrier / RL / SAF spacer / HL.
    z=0 is the FL midplane; the pinned system extends to negative z.

    Parameters
    ----------
    ecd:
        Electrical critical diameter [m].
    fl_ms, rl_ms, hl_ms:
        Optional overrides of the layer saturation magnetizations [A/m].
        Defaults are the calibrated effective values.
    thicknesses:
        Optional mapping overriding entries of :data:`DEFAULT_THICKNESSES`.

    Returns
    -------
    MTJStack
    """
    require_positive(ecd, "ecd")
    th = dict(DEFAULT_THICKNESSES)
    if thicknesses:
        unknown = set(thicknesses) - set(th)
        if unknown:
            raise ParameterError(
                f"unknown thickness keys: {sorted(unknown)}")
        th.update(thicknesses)
    for key, value in th.items():
        require_positive(value, f"thickness[{key}]")

    fl_mat = mats.COFEB_FREE if fl_ms is None else mats.COFEB_FREE.with_ms(
        fl_ms)
    rl_mat = (mats.COFEB_REFERENCE_EFF.with_ms(DEFAULT_RL_MS)
              if rl_ms is None
              else mats.COFEB_REFERENCE_EFF.with_ms(rl_ms))
    hl_mat = (mats.COPT_HARD_EFF.with_ms(DEFAULT_HL_MS)
              if hl_ms is None else mats.COPT_HARD_EFF.with_ms(hl_ms))

    fl_half = 0.5 * th["free"]
    z_fl_bottom = -fl_half
    z_tb_bottom = z_fl_bottom - th["barrier"]
    z_rl_bottom = z_tb_bottom - th["reference"]
    z_sp_bottom = z_rl_bottom - th["spacer"]
    z_hl_bottom = z_sp_bottom - th["hard"]

    layers = (
        Layer(LayerRole.FREE, fl_mat, z_fl_bottom, fl_half, direction=+1),
        Layer(LayerRole.BARRIER, mats.MGO, z_tb_bottom, z_fl_bottom),
        Layer(LayerRole.REFERENCE, rl_mat, z_rl_bottom, z_tb_bottom,
              direction=+1),
        Layer(LayerRole.SPACER, mats.SPACER, z_sp_bottom, z_rl_bottom),
        Layer(LayerRole.HARD, hl_mat, z_hl_bottom, z_sp_bottom,
              direction=-1),
    )
    return MTJStack(layers=layers, pillar=PillarGeometry(ecd=ecd))
