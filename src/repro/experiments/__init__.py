"""Experiment generators: one module per paper figure.

Each ``figXX`` module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.base.ExperimentResult` with the figure's series,
a table view, and a paper-vs-measured comparison. ``runner.run_all`` drives
everything and ``runner.render`` pretty-prints a result.
"""

from .base import Comparison, ExperimentResult
from .data import (
    EVAL_ECD,
    MEASURED_ECDS,
    WAFER_RESISTANCE,
    eval_device,
    synthetic_intra_dataset,
    wafer_device_parameters,
)
from .runner import run_all, render

__all__ = [
    "Comparison",
    "EVAL_ECD",
    "ExperimentResult",
    "MEASURED_ECDS",
    "WAFER_RESISTANCE",
    "eval_device",
    "render",
    "run_all",
    "synthetic_intra_dataset",
    "wafer_device_parameters",
]
