"""Fig. 4c — critical switching current vs pitch under stray fields.

For the eCD = 35 nm evaluation device: Ic for both switching directions
under (i) no stray field, (ii) the intra-cell field only, and (iii) the
combined field at NP8 = 0 / NP8 = 255, swept over array pitch.
"""

from __future__ import annotations

import numpy as np

from ..core.impact import CASES, IcAnalysis
from ..units import m_to_nm, nm_to_m
from .base import Comparison, ExperimentResult
from .data import PAPER_ANCHORS, eval_device


def run(pitch_min_nm=52.5, pitch_max_nm=200.0, n_pitches=25):
    """Ic vs pitch for all cases and directions."""
    device = eval_device()
    analysis = IcAnalysis(device)
    pitches = np.linspace(nm_to_m(pitch_min_nm), nm_to_m(pitch_max_nm),
                          n_pitches)
    table = analysis.table(pitches)
    anchors = analysis.anchors()

    ic0_ua = anchors["ic0"] * 1e6
    ic_ap_p_ua = anchors["ic_ap_p_intra"] * 1e6
    ic_p_ap_ua = anchors["ic_p_ap_intra"] * 1e6

    # Pattern dependence at the smallest pitch (paper: Ic(AP->P) larger
    # for NP8=0 than NP8=255, spread grows as pitch shrinks).
    ap_p_np0 = table[("AP->P", "np0")]
    ap_p_np255 = table[("AP->P", "np255")]
    spread_small = float(ap_p_np0[0] - ap_p_np255[0]) * 1e6
    spread_large = float(ap_p_np0[-1] - ap_p_np255[-1]) * 1e6

    comparisons = [
        Comparison("intrinsic Ic0 (uA)", PAPER_ANCHORS["ic0_ua"], ic0_ua,
                   abs(ic0_ua - PAPER_ANCHORS["ic0_ua"]) < 0.3,
                   "calibrated"),
        Comparison("Ic(AP->P) with intra field (uA)",
                   PAPER_ANCHORS["ic_ap_p_intra_ua"], ic_ap_p_ua,
                   abs(ic_ap_p_ua - PAPER_ANCHORS["ic_ap_p_intra_ua"])
                   < 1.5,
                   "~7% above intrinsic"),
        Comparison("Ic(P->AP) with intra field (uA)",
                   PAPER_ANCHORS["ic_p_ap_intra_ua"], ic_p_ap_ua,
                   abs(ic_p_ap_ua - PAPER_ANCHORS["ic_p_ap_intra_ua"])
                   < 1.5,
                   "~7% below intrinsic"),
        Comparison("Ic(AP->P) NP0-NP255 spread at min pitch (uA)",
                   None, spread_small,
                   spread_small > 0 and spread_small > 4 * spread_large,
                   "spread grows as pitch shrinks; NP8=0 is the slow "
                   "corner"),
    ]

    headers = ["pitch (nm)"] + [
        f"{direction} {case} (uA)"
        for direction in ("AP->P", "P->AP") for case in CASES
    ]
    rows = []
    for i, pitch in enumerate(pitches):
        row = [m_to_nm(pitch)]
        for direction in ("AP->P", "P->AP"):
            for case in CASES:
                row.append(table[(direction, case)][i] * 1e6)
        rows.append(tuple(row))

    series = {}
    for case in CASES:
        series[f"AP->P {case}"] = (
            m_to_nm(pitches), table[("AP->P", case)] * 1e6)
        series[f"P->AP {case}"] = (
            m_to_nm(pitches), table[("P->AP", case)] * 1e6)

    return ExperimentResult(
        experiment_id="fig4c",
        title="Critical switching current vs pitch (eCD=35 nm)",
        headers=headers,
        rows=rows,
        series=series,
        comparisons=comparisons,
        extras={"anchors_ua": {k: v * 1e6 for k, v in anchors.items()}},
    )
