"""Extension experiment: how much coupling does the 3x3 window miss?

The paper computes ``Hz_s_inter`` from the eight nearest aggressors. This
extension evaluates (2k+1)x(2k+1) windows up to k = 3 and reports the
per-ring contributions and the truncation error of the 3x3 choice, as a
function of pitch. The finding: at the paper's eCD = 55 nm / 90 nm pitch
the 3x3 window carries only ~75 % of the total pattern-variation range —
the 25-class structure of Fig. 4a is exact, but worst-case margins
derived from it are optimistic by ~25 % at dense pitches.
"""

from __future__ import annotations

import numpy as np

from ..arrays.extended import ExtendedNeighborhood
from ..stack import build_reference_stack
from ..units import am_to_oe, nm_to_m
from .base import Comparison, ExperimentResult


def run(ecd_nm=55.0, pitch_nms=(90.0, 110.0, 140.0, 200.0), max_order=3):
    """Ring-resolved coupling budget vs pitch."""
    stack = build_reference_stack(nm_to_m(ecd_nm))

    rows = []
    series = {}
    truncation_by_pitch = {}
    for pitch_nm in pitch_nms:
        hood = ExtendedNeighborhood(stack, nm_to_m(pitch_nm),
                                    order=max_order)
        rings = hood.ring_contributions()
        total_var = hood.max_variation()
        truncation_by_pitch[pitch_nm] = hood.truncation_error()
        rows.append((
            pitch_nm,
            am_to_oe(2.0 * rings[1][1]),
            am_to_oe(2.0 * rings[2][1]),
            am_to_oe(2.0 * rings[3][1]),
            am_to_oe(total_var),
            100.0 * hood.truncation_error(),
        ))

    pitches = np.array(pitch_nms, dtype=float)
    series["3x3 truncation error (%)"] = (
        pitches,
        np.array([100.0 * truncation_by_pitch[p] for p in pitch_nms]))

    err_paper_point = truncation_by_pitch[pitch_nms[0]]
    errors = [truncation_by_pitch[p] for p in pitch_nms]
    ring_decay = all(row[1] > row[2] > row[3] for row in rows)

    comparisons = [
        Comparison(
            metric="3x3 truncation error at pitch=90 nm",
            paper=None,
            measured=err_paper_point,
            passed=0.05 < err_paper_point < 0.5,
            note="fraction of total pattern variation beyond ring 1"),
        Comparison(
            metric="ring contributions decay with distance",
            paper=1.0,
            measured=float(ring_decay),
            passed=ring_decay,
            note="dipole-like 1/d^3 falloff per ring"),
        Comparison(
            metric="truncation error roughly pitch independent",
            paper=None,
            measured=max(errors) - min(errors),
            passed=(max(errors) - min(errors)) < 0.15,
            note="the ratio is geometric, set by the lattice"),
    ]

    headers = ["pitch (nm)", "ring1 var (Oe)", "ring2 var (Oe)",
               "ring3 var (Oe)", "total var (Oe)",
               "3x3 truncation (%)"]
    return ExperimentResult(
        experiment_id="ext_neighborhood",
        title=("Extension: coupling beyond the 3x3 neighborhood "
               f"(eCD={ecd_nm:.0f} nm)"),
        headers=headers,
        rows=rows,
        series=series,
        comparisons=comparisons,
        extras={"truncation_by_pitch": truncation_by_pitch},
    )
