"""Extension experiment: worst-case vs random-data retention.

The paper's retention analysis uses the worst corner (victim P, all
neighbors P). An array holding random data sits mostly far from that
corner; the exact neighborhood-field distribution (binomial counts,
25 atoms) gives the data-averaged failure rate in closed form. This
experiment quantifies how pessimistic the worst-case bound is as the
pitch shrinks.
"""

from __future__ import annotations

import numpy as np

from ..arrays.coupling import InterCellCoupling
from ..arrays.statistics import (
    expected_retention_failure_rate,
    pattern_field_distribution,
    worst_case_overestimate,
)
from ..units import am_to_oe
from .base import Comparison, ExperimentResult
from .data import eval_device

#: Pitch multiples swept.
PITCH_RATIOS = (3.0, 2.0, 1.5)


def run(interval=1.0e6, p_one=0.5):
    """Data-averaged vs worst-case retention failure across pitches."""
    device = eval_device()
    ecd = device.params.ecd

    rows = []
    overestimates = {}
    for ratio in PITCH_RATIOS:
        pitch = ratio * ecd
        coupling = InterCellCoupling(device.stack, pitch)
        dist = pattern_field_distribution(coupling, p_one)
        avg = expected_retention_failure_rate(device, pitch, interval,
                                              p_one)
        ratio_wc = worst_case_overestimate(device, pitch, interval,
                                           p_one)
        overestimates[ratio] = ratio_wc
        rows.append((
            f"{ratio:g}x",
            am_to_oe(dist.mean),
            am_to_oe(dist.std),
            avg,
            ratio_wc,
        ))

    increasing = (overestimates[1.5] > overestimates[2.0]
                  > overestimates[3.0] >= 1.0)
    # Distribution sanity at the densest point.
    coupling = InterCellCoupling(device.stack, 1.5 * ecd)
    dist = pattern_field_distribution(coupling, p_one)
    lo, hi = coupling.extremes()
    support_ok = (abs(dist.support[0] - lo) < 1.0
                  and abs(dist.support[1] - hi) < 1.0)

    comparisons = [
        Comparison(
            metric="worst-case bound exceeds random-data average",
            paper=None,
            measured=float(min(overestimates.values())),
            passed=min(overestimates.values()) > 1.0,
            note="overestimate factor per pitch"),
        Comparison(
            metric="pessimism grows as pitch shrinks",
            paper=None,
            measured=float(increasing),
            passed=increasing,
            note="larger coupling spread, larger exp(Delta) leverage"),
        Comparison(
            metric="distribution support equals NP8 extremes",
            paper=None,
            measured=float(support_ok),
            passed=support_ok,
            note="exact 25-atom PMF"),
    ]

    headers = ["pitch", "mean Hz_inter (Oe)", "std (Oe)",
               "avg fail prob", "worst/avg factor"]
    ratios = np.array(PITCH_RATIOS)
    series = {
        "worst/avg overestimate": (
            ratios,
            np.array([overestimates[r] for r in PITCH_RATIOS])),
    }
    return ExperimentResult(
        experiment_id="ext_random_data",
        title=("Extension: worst-case vs random-data retention "
               f"(interval {interval:g} s)"),
        headers=headers,
        rows=rows,
        series=series,
        comparisons=comparisons,
        extras={"overestimates": overestimates},
    )
