"""Extension experiment: write-error-rate cost of inter-cell coupling.

Converts the paper's Fig. 5 message into the unit a controller designer
budgets: the write pulse width needed to reach a target WER, for the
worst-case (NP8 = 0) and best-case (NP8 = 255) neighborhoods across
pitches. The pattern-induced pulse penalty is the engineering cost of
density.
"""

from __future__ import annotations

import numpy as np

from ..apps.write_error import WriteErrorModel
from ..arrays.pattern import ALL_AP, ALL_P
from ..arrays.victim import VictimAnalysis
from .base import Comparison, ExperimentResult
from .data import eval_device

#: Pitch multiples matching the paper's Fig. 5 panels.
PITCH_RATIOS = (3.0, 2.0, 1.5)


def run(target_wer=1e-6, vp=0.95):
    """Pulse sizing vs pitch for the two extreme neighborhoods."""
    device = eval_device()
    model = WriteErrorModel(device)

    rows = []
    penalties = {}
    for ratio in PITCH_RATIOS:
        pitch = ratio * device.params.ecd
        victim = VictimAnalysis(device, pitch)
        t_worst = model.pulse_for_wer(target_wer, vp,
                                      victim.hz_total(ALL_P))
        t_best = model.pulse_for_wer(target_wer, vp,
                                     victim.hz_total(ALL_AP))
        penalties[ratio] = t_worst - t_best
        rows.append((f"{ratio:g}x", t_worst * 1e9, t_best * 1e9,
                     (t_worst - t_best) * 1e9))

    ordered = (penalties[1.5] > penalties[2.0] > penalties[3.0] > 0)
    mean_check = abs(
        model.mean_switching_time(vp, device.intra_stray_field())
        - device.switching_time(vp, device.intra_stray_field()))

    comparisons = [
        Comparison(
            metric="pulse penalty grows as pitch shrinks",
            paper=1.0,
            measured=float(ordered),
            passed=ordered,
            note="WER-space version of the Fig. 5 spread"),
        Comparison(
            metric="penalty at 1.5x eCD (ns)",
            paper=None,
            measured=penalties[1.5] * 1e9,
            passed=0.2 < penalties[1.5] * 1e9 < 20.0,
            note=f"target WER {target_wer:g} at {vp} V"),
        Comparison(
            metric="WER model mean == Sun tw (s)",
            paper=0.0,
            measured=mean_check,
            passed=mean_check < 1e-15,
            note="the angle-distribution model reduces to Eq. 3"),
    ]

    headers = ["pitch", "pulse NP8=0 (ns)", "pulse NP8=255 (ns)",
               "penalty (ns)"]
    ratios = np.array(PITCH_RATIOS)
    series = {
        "pulse penalty (ns)": (
            ratios, np.array([penalties[r] * 1e9 for r in PITCH_RATIOS]))
    }
    return ExperimentResult(
        experiment_id="ext_wer",
        title=(f"Extension: WER-sized write pulse vs pitch "
               f"(target {target_wer:g}, {vp} V)"),
        headers=headers,
        rows=rows,
        series=series,
        comparisons=comparisons,
        extras={"penalties_ns": {r: p * 1e9
                                 for r, p in penalties.items()}},
    )
