"""Reference datasets and device families of the reproduction.

Two device families appear in the paper:

* the **measured wafer** (Sections III / Fig. 2): devices with eCD between
  35 and 175 nm, RA = 4.5 Ohm*um^2, whose R-H loops calibrate the
  intra-cell model. We do not have IMEC's silicon, so
  :func:`synthetic_intra_dataset` generates a frozen synthetic dataset from
  the calibrated model plus process variation and measurement noise — the
  substitution documented in DESIGN.md section 3;
* the **evaluation device** (Section V / Figs. 4-6): the eCD = 35 nm design
  with Delta0 = 45.5, Hk = 4646.8 Oe, Ic0 = 57.2 uA, provided as
  :data:`repro.device.mtj.PAPER_EVAL_DEVICE` and re-exported here via
  :func:`eval_device`.

The module also records the paper's quoted anchor numbers used by the
per-figure comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.intra import IntraCellModel
from ..device.mtj import DeviceParameters, MTJDevice, PAPER_EVAL_DEVICE
from ..device.resistance import ResistanceModel
from ..units import nm_to_m, oe_to_am
from ..validation import require_int_in_range

#: Device sizes of the measured wafer [m] (paper Fig. 2b x-range).
MEASURED_ECDS = tuple(nm_to_m(e) for e in (35.0, 55.0, 90.0, 120.0, 175.0))

#: Evaluation-device size [m] (paper Section V).
EVAL_ECD = nm_to_m(35.0)

#: Resistance model of the measured wafer (RA = 4.5 Ohm*um^2, Section III).
WAFER_RESISTANCE = ResistanceModel(ra=4.5e-12, tmr0=1.2, v_half=0.55)

#: Anisotropy field of the wafer's field-switching behaviour [A/m]
#: (chosen so the simulated 55 nm loop reproduces the measured
#: Hc ~ 2.2 kOe of Fig. 2a).
WAFER_HK = oe_to_am(3800.0)

#: Delta0 of the 35 nm wafer device; scales with area up to a cap
#: (nucleation-limited reversal in large devices).
WAFER_DELTA0_35NM = 45.5
WAFER_DELTA0_CAP = 120.0


def wafer_delta0(ecd):
    """Field-driven ``Delta0`` of a wafer device of size ``ecd`` [m]."""
    scaled = WAFER_DELTA0_35NM * (ecd / EVAL_ECD) ** 2
    return min(scaled, WAFER_DELTA0_CAP)


def wafer_device_parameters(ecd):
    """:class:`DeviceParameters` of a measured-wafer device of ``ecd``."""
    base = PAPER_EVAL_DEVICE
    return DeviceParameters(
        ecd=ecd,
        hk=WAFER_HK,
        delta0=wafer_delta0(ecd),
        hc=oe_to_am(2200.0),
        alpha=base.alpha,
        eta=base.eta,
        polarization=base.polarization,
        resistance=WAFER_RESISTANCE,
        temperature=base.temperature,
        attempt_frequency=base.attempt_frequency,
    )


def eval_device():
    """A fresh :class:`MTJDevice` of the Section V evaluation design."""
    return MTJDevice(PAPER_EVAL_DEVICE)


@dataclass(frozen=True)
class IntraDataset:
    """Synthetic "silicon" dataset for the Fig. 2b calibration.

    Per measured size: the mean and standard deviation of the extracted
    ``Hz_s_intra`` over the device ensemble, plus the raw per-device
    values.
    """

    ecds: Tuple[float, ...]
    hz_mean: Tuple[float, ...]
    hz_std: Tuple[float, ...]
    hz_devices: Tuple[Tuple[float, ...], ...]

    def as_arrays(self):
        """(ecds, hz_mean, hz_std) as numpy arrays."""
        return (np.asarray(self.ecds), np.asarray(self.hz_mean),
                np.asarray(self.hz_std))


def synthetic_intra_dataset(seed=2020, n_devices_per_size=10,
                            ecd_sigma=0.04, noise_oe=8.0):
    """Generate the synthetic measured ``Hz_s_intra`` vs eCD dataset.

    For each nominal size, ``n_devices_per_size`` devices are drawn with
    relative eCD variation ``ecd_sigma``; each device's stray field is the
    calibrated model value at its actual size plus Gaussian measurement
    noise of ``noise_oe`` oersted (loop-offset extraction noise). The
    default seed freezes the dataset used across tests/benches.

    Returns
    -------
    IntraDataset — all fields in A/m.
    """
    require_int_in_range(n_devices_per_size, "n_devices_per_size", 2,
                         10_000)
    rng = np.random.default_rng(seed)
    model = IntraCellModel()
    noise_am = oe_to_am(noise_oe)

    hz_mean, hz_std, hz_devices = [], [], []
    for ecd in MEASURED_ECDS:
        actual = ecd * (1.0 + ecd_sigma * rng.standard_normal(
            n_devices_per_size))
        values = np.array([model.hz_at_center(a) for a in actual])
        values = values + noise_am * rng.standard_normal(
            n_devices_per_size)
        hz_mean.append(float(np.mean(values)))
        hz_std.append(float(np.std(values)))
        hz_devices.append(tuple(float(v) for v in values))
    return IntraDataset(
        ecds=MEASURED_ECDS,
        hz_mean=tuple(hz_mean),
        hz_std=tuple(hz_std),
        hz_devices=tuple(hz_devices),
    )


#: Paper-quoted anchors used by the per-figure comparisons.
PAPER_ANCHORS = {
    # Section V-A (eCD = 35 nm).
    "ic0_ua": 57.2,
    "ic_ap_p_intra_ua": 61.7,
    "ic_p_ap_intra_ua": 52.8,
    "delta0": 45.5,
    "hk_oe": 4646.8,
    # Section IV-B (eCD = 55 nm, pitch = 90 nm).
    "hz_inter_min_oe": -16.0,
    "hz_inter_max_oe": 64.0,
    "hz_inter_step_direct_oe": 15.0,
    "hz_inter_step_diagonal_oe": 5.0,
    "hz_inter_variation_oe": 80.0,
    # Fig. 4b.
    "psi_threshold": 0.02,
    "psi_threshold_pitch_nm_ecd35": 80.0,
    # Fig. 5 (eCD = 35 nm).
    "psi_pitch_3x": 0.01,
    "psi_pitch_2x": 0.02,
    "psi_pitch_1p5x": 0.07,
    "tw_penalty_ns_at_0p72v_1p5x": 4.0,
    # Measured wafer.
    "hc_oe": 2200.0,
    "ra_ohm_um2": 4.5,
}
