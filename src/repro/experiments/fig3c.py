"""Fig. 3c — 3-D map of the intra-cell stray field (eCD = 55 nm).

Evaluates the RL+HL stray field of one device on a 3-D grid around the
pillar — the data behind the paper's quiver visualization. The tabulated
output reports the field magnitude at characteristic locations; the full
grid is exposed through ``extras`` for external rendering.
"""

from __future__ import annotations

import numpy as np

from ..core.intra import IntraCellModel
from ..fields import grid3d
from ..units import am_to_oe, nm_to_m
from .base import Comparison, ExperimentResult


def run(ecd_nm=55.0, extent_factor=1.6, n_per_axis=13):
    """Compute the 3-D stray-field map of one device."""
    ecd = nm_to_m(ecd_nm)
    model = IntraCellModel()
    extent = extent_factor * 0.5 * ecd
    points, shape = grid3d(extent, n_per_axis=n_per_axis,
                           z_range=(-0.6 * ecd, 0.6 * ecd))
    field = model.field_map(ecd, points)
    magnitude = np.linalg.norm(field, axis=1)

    hz_center = float(model.hz_at_center(ecd))
    # Far point: 3 diameters away laterally — field must have decayed hard.
    far_point = np.array([[3.0 * ecd, 0.0, 0.0]])
    hz_far = float(model.field_map(ecd, far_point)[0, 2])

    decay_ratio = abs(hz_far / hz_center)
    comparisons = [
        Comparison(
            metric="Hz at FL center (Oe)",
            paper=None,
            measured=am_to_oe(hz_center),
            passed=hz_center < 0,
            note="negative (anti-parallel to RL), drives the loop offset"),
        Comparison(
            metric="lateral decay |Hz(3*eCD)/Hz(0)|",
            paper=None,
            measured=decay_ratio,
            passed=decay_ratio < 0.05,
            note="stray field is short ranged (dipole-like tail)"),
    ]

    headers = ["location", "Hx (Oe)", "Hy (Oe)", "Hz (Oe)", "|H| (Oe)"]
    probe_points = {
        "FL center (0,0,0)": (0.0, 0.0, 0.0),
        "FL half-radius": (0.25 * ecd, 0.0, 0.0),
        "above stack (0,0,+eCD/2)": (0.0, 0.0, 0.5 * ecd),
        "beside stack (eCD,0,0)": (ecd, 0.0, 0.0),
        "far (3*eCD,0,0)": (3.0 * ecd, 0.0, 0.0),
    }
    rows = []
    for name, pt in probe_points.items():
        h = model.field_map(ecd, np.array([pt]))[0]
        rows.append((name, am_to_oe(h[0]), am_to_oe(h[1]),
                     am_to_oe(h[2]), am_to_oe(np.linalg.norm(h))))

    # Series: |H| along the x axis at the FL plane.
    xs = np.linspace(-extent, extent, 41)
    line = np.stack([xs, np.zeros_like(xs), np.zeros_like(xs)], axis=1)
    hz_line = model.field_map(ecd, line)[:, 2]
    series = {"Hz along x (FL plane)": (xs * 1e9, am_to_oe(hz_line))}

    return ExperimentResult(
        experiment_id="fig3c",
        title=f"3-D intra-cell stray field map (eCD={ecd_nm:.0f} nm)",
        headers=headers,
        rows=rows,
        series=series,
        comparisons=comparisons,
        extras={"grid_points": points, "grid_shape": shape,
                "field": field, "magnitude": magnitude},
    )
