"""Fig. 6a — thermal stability factor vs temperature at pitch = 2x eCD.

``Delta`` for both states under the intra-only and combined stray-field
cases, over 0-150 degC. Checks the ordering the paper's figure shows:
``Delta_AP`` curves above ``Delta0``, ``Delta_P`` curves below, with the
retention worst case at ``Delta_P(NP8=0)``.
"""

from __future__ import annotations

import numpy as np

from ..core.impact import RetentionAnalysis
from ..units import celsius_to_kelvin
from .base import Comparison, ExperimentResult
from .data import PAPER_ANCHORS, eval_device


def run(t_min_c=0.0, t_max_c=150.0, n_temps=16, pitch_ratio=2.0):
    """Delta(T) family at pitch = ``pitch_ratio`` x eCD."""
    device = eval_device()
    analysis = RetentionAnalysis(device)
    pitch = pitch_ratio * device.params.ecd
    temps_c = np.linspace(t_min_c, t_max_c, n_temps)
    temps_k = celsius_to_kelvin(temps_c)

    family = analysis.family(temps_k, pitch)
    delta0 = family["delta0"]

    delta0_room = float(analysis.delta0_vs_temperature(
        np.array([celsius_to_kelvin(25.0)]))[0])

    dp_np0 = family[("P", "np0")]
    dap_np0 = family[("AP", "np0")]
    dp_intra = family[("P", "intra")]
    dap_intra = family[("AP", "intra")]

    ordering = bool(np.all(dp_np0 <= dp_intra)
                    and np.all(dp_intra <= delta0)
                    and np.all(delta0 <= dap_intra)
                    and np.all(dap_intra <= dap_np0))
    worst_is_p_np0 = bool(np.all(
        dp_np0 <= np.minimum(
            family[("P", "np255")],
            np.minimum(family[("AP", "np0")], family[("AP", "np255")]))))
    static_shift = float((dap_intra[0] - dp_intra[0]) / dap_intra[0])
    decreasing = bool(np.all(np.diff(delta0) < 0))

    comparisons = [
        Comparison("Delta0 at 25 C", PAPER_ANCHORS["delta0"], delta0_room,
                   abs(delta0_room - PAPER_ANCHORS["delta0"]) < 0.5,
                   "measured intrinsic value"),
        Comparison("Delta_P < Delta0 < Delta_AP under stray field", 1.0,
                   float(ordering), ordering,
                   "static bifurcation from the intra-cell field"),
        Comparison("relative Delta_AP-Delta_P split (intra, 0 C)", 0.30,
                   static_shift, 0.15 < static_shift < 0.45,
                   "paper text: ~30% split (see EXPERIMENTS.md on its "
                   "AP/P wording)"),
        Comparison("worst case is Delta_P at NP8=0", 1.0,
                   float(worst_is_p_np0), worst_is_p_np0,
                   "victim in P, all neighbors in P"),
        Comparison("Delta decreases with temperature", 1.0,
                   float(decreasing), decreasing, ""),
    ]

    headers = ["T (C)", "Delta0", "Delta_P intra", "Delta_AP intra",
               "Delta_P NP0", "Delta_P NP255", "Delta_AP NP0",
               "Delta_AP NP255"]
    rows = []
    for i, tc in enumerate(temps_c):
        rows.append((float(tc), float(delta0[i]), float(dp_intra[i]),
                     float(dap_intra[i]), float(dp_np0[i]),
                     float(family[("P", "np255")][i]),
                     float(dap_np0[i]),
                     float(family[("AP", "np255")][i])))

    series = {
        "Delta0": (temps_c, delta0),
        "P intra": (temps_c, dp_intra),
        "AP intra": (temps_c, dap_intra),
        "P NP8=0": (temps_c, dp_np0),
        "AP NP8=0": (temps_c, dap_np0),
    }
    return ExperimentResult(
        experiment_id="fig6a",
        title=("Thermal stability factor vs temperature "
               f"(pitch={pitch_ratio:g}x eCD)"),
        headers=headers,
        rows=rows,
        series=series,
        comparisons=comparisons,
        extras={"pitch_ratio": pitch_ratio},
    )
