"""Fig. 4b — coupling factor Psi vs pitch for three device sizes.

Sweeps the pitch from 1.5x the device size to 200 nm for
eCD in {20, 35, 55} nm, computes Psi with the measured coercivity
(2.2 kOe), and locates the Psi = 2 % density threshold.
"""

from __future__ import annotations

import numpy as np

from ..core.psi import psi_threshold_pitch, psi_vs_pitch
from ..units import m_to_nm, nm_to_m, oe_to_am
from .base import Comparison, ExperimentResult
from .data import PAPER_ANCHORS

#: Device sizes of the paper's panel [nm].
ECDS_NM = (20.0, 35.0, 55.0)


def run(n_pitches=40, hc_oe=2200.0):
    """Psi(pitch) sweeps plus the 2 % threshold pitches."""
    hc = oe_to_am(hc_oe)
    series = {}
    thresholds_nm = {}
    rows = []
    for ecd_nm in ECDS_NM:
        ecd = nm_to_m(ecd_nm)
        pitches = np.linspace(1.5 * ecd, nm_to_m(200.0), n_pitches)
        psi = psi_vs_pitch(ecd, pitches, hc)
        series[f"eCD={ecd_nm:.0f}nm"] = (m_to_nm(pitches), psi * 100.0)
        threshold = psi_threshold_pitch(ecd, hc, psi_target=0.02)
        thresholds_nm[ecd_nm] = m_to_nm(threshold)
        rows.append((ecd_nm, m_to_nm(threshold), psi[0] * 100.0,
                     psi[-1] * 100.0))

    psi35 = series["eCD=35nm"][1]
    monotone = all(
        bool(np.all(np.diff(vals[1]) <= 1e-12))
        for vals in series.values())
    threshold_35 = thresholds_nm[35.0]

    comparisons = [
        Comparison(
            metric="Psi=2% pitch for eCD=35 nm (nm)",
            paper=PAPER_ANCHORS["psi_threshold_pitch_nm_ecd35"],
            measured=threshold_35,
            passed=abs(threshold_35
                       - PAPER_ANCHORS["psi_threshold_pitch_nm_ecd35"])
            < 10.0,
            note="paper: ~80 nm"),
        Comparison(
            metric="Psi at pitch=200 nm, eCD=35 nm (%)",
            paper=0.0,
            measured=float(psi35[-1]),
            passed=psi35[-1] < 0.5,
            note="coupling negligible at 200 nm for all sizes"),
        Comparison(
            metric="Psi decreases monotonically with pitch",
            paper=1.0,
            measured=float(monotone),
            passed=monotone,
            note="gradual increase then sharp rise as pitch shrinks"),
    ]

    headers = ["eCD (nm)", "Psi=2% pitch (nm)", "Psi at 1.5x eCD (%)",
               "Psi at 200 nm (%)"]
    return ExperimentResult(
        experiment_id="fig4b",
        title="Inter-cell coupling factor Psi vs array pitch",
        headers=headers,
        rows=rows,
        series=series,
        comparisons=comparisons,
        extras={"thresholds_nm": thresholds_nm, "hc_oe": hc_oe},
    )
