"""Fig. 5 — switching time vs write voltage at three array pitches.

The voltage dependence of ``tw(AP->P)`` for the eCD = 35 nm device at
pitch = 3x, 2x and 1.5x eCD, under the four stray-field cases. Checks the
paper's qualitative structure: stray fields slow the AP->P write, the
effect shrinks with voltage, and the NP8 spread only becomes significant
at pitch = 1.5x eCD (Psi ~ 7 %).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.impact import CASES, SwitchingTimeAnalysis
from ..core.psi import coupling_factor
from ..units import s_to_ns
from .base import Comparison, ExperimentResult
from .data import eval_device

#: Pitch multiples of the paper's three panels.
PITCH_RATIOS = (3.0, 2.0, 1.5)


def run(v_min=0.70, v_max=1.20, n_voltages=26):
    """tw(AP->P) vs Vp for the three pitch panels."""
    device = eval_device()
    analysis = SwitchingTimeAnalysis(device)
    voltages = np.linspace(v_min, v_max, n_voltages)

    panels = {}
    psi_values = {}
    series = {}
    for ratio in PITCH_RATIOS:
        pitch = ratio * device.params.ecd
        family = analysis.family(voltages, pitch)
        panels[ratio] = family
        psi_values[ratio] = coupling_factor(
            device.stack, pitch, device.params.hc)
        for case in CASES:
            series[f"{ratio}x {case}"] = (
                voltages, s_to_ns(family[case]))

    # Penalties (tw(NP0) - tw(NP255)) at a low-voltage operating point.
    v_probe = 0.80
    penalties_ns = {
        ratio: s_to_ns(analysis.pattern_penalty(
            v_probe, ratio * device.params.ecd))
        for ratio in PITCH_RATIOS
    }

    family_2x = panels[2.0]
    finite = np.isfinite(family_2x["intra"])
    slower_with_stray = bool(np.all(
        family_2x["intra"][finite] >= family_2x["ideal"][finite]))
    tw_monotone = bool(np.all(np.diff(
        family_2x["intra"][finite]) < 0))

    # Impact shrinks with voltage: relative stray penalty at low V beats
    # the one at high V.
    idx_lo = int(np.argmax(finite))
    rel_lo = (family_2x["intra"][idx_lo] / family_2x["ideal"][idx_lo]
              - 1.0)
    rel_hi = (family_2x["intra"][-1] / family_2x["ideal"][-1] - 1.0)

    comparisons = [
        Comparison("Psi at pitch=3x eCD (%)", 1.0,
                   psi_values[3.0] * 100.0,
                   abs(psi_values[3.0] * 100.0 - 1.0) < 0.7, ""),
        Comparison("Psi at pitch=2x eCD (%)", 2.0,
                   psi_values[2.0] * 100.0,
                   abs(psi_values[2.0] * 100.0 - 2.0) < 1.5, ""),
        Comparison("Psi at pitch=1.5x eCD (%)", 7.0,
                   psi_values[1.5] * 100.0,
                   abs(psi_values[1.5] * 100.0 - 7.0) < 2.0, ""),
        Comparison("tw slower with stray field (2x panel)", 1.0,
                   float(slower_with_stray), slower_with_stray,
                   "solid lines above dashed in the paper"),
        Comparison("tw decreases with voltage", 1.0,
                   float(tw_monotone), tw_monotone, ""),
        Comparison("stray impact shrinks with voltage", 1.0,
                   float(rel_lo > rel_hi), rel_lo > rel_hi,
                   f"relative penalty {rel_lo:.2f} -> {rel_hi:.2f}"),
        Comparison(f"NP spread at {v_probe} V grows toward small pitch",
                   1.0,
                   float(penalties_ns[1.5] > penalties_ns[2.0]
                         >= penalties_ns[3.0] >= 0.0),
                   penalties_ns[1.5] > penalties_ns[2.0]
                   >= penalties_ns[3.0] >= 0.0,
                   f"penalties {penalties_ns[3.0]:.2f} / "
                   f"{penalties_ns[2.0]:.2f} / {penalties_ns[1.5]:.2f} ns"),
        Comparison("NP spread at 1.5x eCD, low voltage (ns)", 4.0,
                   penalties_ns[1.5],
                   0.5 < penalties_ns[1.5] < 25.0,
                   "paper: ~4 ns at 0.72 V (same order; see "
                   "EXPERIMENTS.md)"),
    ]

    headers = ["Vp (V)"] + [
        f"{ratio}x {case} (ns)" for ratio in PITCH_RATIOS for case in CASES
    ]
    rows = []
    for i, v in enumerate(voltages):
        row = [float(v)]
        for ratio in PITCH_RATIOS:
            for case in CASES:
                value = s_to_ns(panels[ratio][case][i])
                row.append(value if math.isfinite(value) else float("inf"))
        rows.append(tuple(row))

    return ExperimentResult(
        experiment_id="fig5",
        title="tw(AP->P) vs write voltage at pitch 3x/2x/1.5x eCD",
        headers=headers,
        rows=rows,
        series=series,
        comparisons=comparisons,
        extras={"psi": psi_values, "penalties_ns": penalties_ns,
                "probe_voltage": v_probe},
    )
