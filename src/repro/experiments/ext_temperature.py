"""Extension experiment: temperature dependence of the stray fields.

The paper's Fig. 6 sweeps the *device* (Delta0, Hk) with temperature but
holds the stray fields at their room-temperature values. The field
sources are ferromagnets too: their Ms follows the Bloch law, so
``Hz_s_intra`` and the coupling variation both weaken as the array heats
up. This extension quantifies the second-order correction: the
worst-case Delta computed with temperature-scaled sources vs the paper's
fixed-source assumption.
"""

from __future__ import annotations

import numpy as np

from ..arrays.coupling import InterCellCoupling
from ..arrays.pattern import ALL_P
from ..core.intra import IntraCellModel
from ..device.energy import delta_with_stray
from ..units import am_to_oe, celsius_to_kelvin
from .base import Comparison, ExperimentResult
from .data import eval_device


def run(t_min_c=0.0, t_max_c=150.0, n_temps=7, pitch_ratio=1.5):
    """Worst-case Delta with fixed vs temperature-scaled field sources."""
    device = eval_device()
    intra_model = IntraCellModel()
    params = device.params
    ecd = params.ecd
    pitch = pitch_ratio * ecd
    temps_c = np.linspace(t_min_c, t_max_c, n_temps)

    rows = []
    fixed_series, scaled_series = [], []
    for tc in temps_c:
        temp = celsius_to_kelvin(float(tc))
        # Device-side scaling (as in the paper's Fig. 6).
        delta0_t = device.thermal_model.delta0_at(params.delta0, temp)
        hk_t = device.thermal_model.hk_at(params.hk, temp)

        # Fixed sources: room-temperature fields (paper's assumption).
        hz_fixed = (device.intra_stray_field()
                    + InterCellCoupling(device.stack,
                                        pitch).hz_inter_fast(ALL_P))
        # Scaled sources: Bloch-scaled RL/HL/neighbor moments.
        hz_scaled = (intra_model.hz_at_center(ecd, temperature=temp)
                     + InterCellCoupling(
                         device.stack, pitch,
                         temperature=temp).hz_inter_fast(ALL_P))

        delta_fixed = delta_with_stray(delta0_t, hz_fixed / hk_t, "P")
        delta_scaled = delta_with_stray(delta0_t, hz_scaled / hk_t, "P")
        fixed_series.append(delta_fixed)
        scaled_series.append(delta_scaled)
        rows.append((float(tc), am_to_oe(hz_fixed), am_to_oe(hz_scaled),
                     delta_fixed, delta_scaled,
                     delta_scaled - delta_fixed))

    fixed_arr = np.array(fixed_series)
    scaled_arr = np.array(scaled_series)
    correction_hot = float(scaled_arr[-1] - fixed_arr[-1])
    relative_hot = correction_hot / float(fixed_arr[-1])

    # Sources weaken with T -> |Hz| shrinks -> Delta_P worst case rises
    # slightly: the paper's fixed-source analysis is conservative *above*
    # the 25 C reference where its parameters were measured (below the
    # reference the sources are actually stronger than quoted).
    sources_weaken = bool(abs(rows[-1][2]) < abs(rows[-1][1]))
    above_ref = temps_c >= 25.0
    conservative_above_ref = bool(np.all(
        scaled_arr[above_ref] >= fixed_arr[above_ref] - 1e-12))

    comparisons = [
        Comparison(
            metric="stray sources weaken with temperature",
            paper=None,
            measured=float(sources_weaken),
            passed=sources_weaken,
            note="Bloch-law Ms(T) of RL/HL/neighbor FLs"),
        Comparison(
            metric="fixed-source analysis conservative above 25 C",
            paper=None,
            measured=float(conservative_above_ref),
            passed=conservative_above_ref,
            note="paper's Fig. 6 underestimates worst-case Delta at "
                 "hot corners (and slightly overestimates below 25 C)"),
        Comparison(
            metric="correction to worst-case Delta at 150 C",
            paper=None,
            measured=correction_hot,
            passed=0.0 <= relative_hot < 0.1,
            note=f"relative {relative_hot:.2%} — second order, as the "
                 "paper implicitly assumes"),
    ]

    headers = ["T (C)", "Hz fixed (Oe)", "Hz scaled (Oe)",
               "Delta_P fixed", "Delta_P scaled", "correction"]
    series = {
        "fixed sources": (temps_c, fixed_arr),
        "scaled sources": (temps_c, scaled_arr),
    }
    return ExperimentResult(
        experiment_id="ext_temperature",
        title=("Extension: temperature scaling of the stray-field "
               f"sources (pitch={pitch_ratio:g}x eCD)"),
        headers=headers,
        rows=rows,
        series=series,
        comparisons=comparisons,
        extras={"correction_at_hot": correction_hot,
                "relative_correction_at_hot": relative_hot},
    )
