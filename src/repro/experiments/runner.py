"""Run and render all figure reproductions.

``run_all()`` executes every experiment and returns the results keyed by
figure id — serially by default, or fanned out over a process pool with
``jobs`` (each figure is one sweep point of the :mod:`repro.sweep`
engine). ``render(result)`` pretty-prints one result (data table,
paper-vs-measured table, ASCII plot); the module is runnable::

    python -m repro.experiments.runner [output_dir] [--jobs N]

which prints everything and, if an output directory is given, exports every
series and table to CSV/JSON.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..reporting import ascii_plot, format_table, write_csv, write_json
from . import (
    ext_neighborhood,
    ext_random_data,
    ext_temperature,
    ext_wer,
    fig2a,
    fig2b,
    fig3c,
    fig3d,
    fig4a,
    fig4b,
    fig4c,
    fig5,
    fig6a,
    fig6b,
)

#: The experiment modules in paper order.
EXPERIMENTS = {
    "fig2a": fig2a,
    "fig2b": fig2b,
    "fig3c": fig3c,
    "fig3d": fig3d,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig4c": fig4c,
    "fig5": fig5,
    "fig6a": fig6a,
    "fig6b": fig6b,
}

#: Extension experiments beyond the paper's figures.
EXTENSIONS = {
    "ext_neighborhood": ext_neighborhood,
    "ext_random_data": ext_random_data,
    "ext_temperature": ext_temperature,
    "ext_wer": ext_wer,
}


def _run_experiment(name):
    """Run one experiment by registry name (picklable sweep point).

    Kernel persistence needs no handling here: pool workers flush
    their stores at pool shutdown and ``SweepRunner.run`` flushes for
    in-process executors.
    """
    modules = {**EXPERIMENTS, **EXTENSIONS}
    return modules[name].run()


def run_all(include_extensions=False, jobs=None, executor=None):
    """Run every experiment; returns ``{figure_id: ExperimentResult}``.

    With ``include_extensions=True`` the extension experiments (beyond
    the paper's figures) are appended. ``jobs`` > 1 (or an explicit
    ``executor``) runs the figures in parallel worker processes (or
    threads, with ``executor="thread"``); the returned dict is keyed
    and ordered identically either way. With the on-disk kernel cache
    enabled (see :mod:`repro.arrays.kernel_disk`), every figure's
    kernels are persisted, so repeat reproductions — CI in particular —
    start warm.
    """
    from ..sweep import SweepRunner, SweepSpec, executor_for_jobs
    modules = dict(EXPERIMENTS)
    if include_extensions:
        modules.update(EXTENSIONS)
    names = list(modules)
    spec = SweepSpec.zipped(name=names)
    # No n_points hint here: the small-grid thread preference is for
    # cheap field-bound points, and a figure is a whole GIL-bound
    # experiment pipeline — worker processes stay the right default.
    executor = executor or executor_for_jobs(jobs)
    result = SweepRunner(_run_experiment, executor=executor,
                         jobs=jobs).run(spec)
    return dict(zip(names, result.values))


def render(result, max_rows=12, plot=True):
    """Render one :class:`ExperimentResult` to a string."""
    lines = []
    lines.append("=" * 72)
    lines.append(f"{result.experiment_id}: {result.title}")
    lines.append("=" * 72)
    rows = result.rows[:max_rows]
    lines.append(format_table(result.headers, rows))
    if len(result.rows) > max_rows:
        lines.append(f"... ({len(result.rows) - max_rows} more rows)")
    if result.comparisons:
        lines.append("")
        lines.append("paper vs measured:")
        headers, comp_rows = result.comparison_table()
        lines.append(format_table(headers, comp_rows))
    if plot and result.series:
        lines.append("")
        try:
            lines.append(ascii_plot(result.series, title=result.title))
        except Exception as exc:  # pragma: no cover - rendering fallback
            lines.append(f"(plot unavailable: {exc})")
    lines.append("")
    return "\n".join(lines)


def export(result, output_dir):
    """Export a result's table and comparisons to ``output_dir``."""
    base = os.path.join(output_dir, result.experiment_id)
    write_csv(base + ".csv", result.headers, result.rows)
    headers, rows = result.comparison_table()
    write_csv(base + "_comparison.csv", headers, rows)
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "series": {name: {"x": x, "y": y}
                   for name, (x, y) in result.series.items()},
        "all_passed": result.all_passed,
    }
    write_json(base + "_series.json", payload)


def main(argv=None):
    """CLI entry point: run, print, optionally export everything."""
    argv = sys.argv[1:] if argv is None else argv
    parser = argparse.ArgumentParser(prog="repro.experiments.runner")
    parser.add_argument("output_dir", nargs="?", default=None,
                        help="directory for CSV/JSON exports")
    from ..sweep import add_sweep_arguments
    add_sweep_arguments(parser)
    args = parser.parse_args(argv)
    output_dir = args.output_dir
    results = run_all(include_extensions=True, jobs=args.jobs,
                      executor=args.executor)
    n_passed = 0
    for result in results.values():
        print(render(result))
        if result.all_passed:
            n_passed += 1
        if output_dir:
            export(result, output_dir)
    print(f"{n_passed}/{len(results)} experiments satisfied all "
          "reproduction criteria")
    return 0 if n_passed == len(results) else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
