"""Fig. 3d — Hz_s_intra profile across the FL for several device sizes.

The paper's observation: the out-of-plane stray field is *not* uniform
over the FL cross-section — its magnitude is largest at the center and
smaller (eventually positive) toward the edge; smaller devices see larger
center fields.
"""

from __future__ import annotations

import numpy as np

from ..core.intra import IntraCellModel
from ..units import am_to_oe, nm_to_m
from .base import Comparison, ExperimentResult

#: Device sizes of the paper's panel [nm].
ECDS_NM = (20.0, 35.0, 55.0, 90.0)


def run(n_points=61, margin=0.95):
    """Radial stray-field profiles for the four paper sizes."""
    model = IntraCellModel()
    series = {}
    center_values = {}
    edge_values = {}
    for ecd_nm in ECDS_NM:
        positions, hz = model.radial_profile(
            nm_to_m(ecd_nm), n_points=n_points, margin=margin)
        series[f"eCD={ecd_nm:.0f}nm"] = (positions * 1e9, am_to_oe(hz))
        center_values[ecd_nm] = am_to_oe(hz[n_points // 2])
        edge_values[ecd_nm] = am_to_oe(hz[-1])

    # The paper's claims: (i) |Hz| smaller at the edge than at the center,
    # (ii) the smaller the eCD, the larger the center magnitude
    # (20 vs 35 nm is nearly saturated in our calibration; see DESIGN.md).
    edge_smaller = all(abs(edge_values[e]) < abs(center_values[e])
                       for e in ECDS_NM)
    ordering = (abs(center_values[35.0]) > abs(center_values[55.0])
                > abs(center_values[90.0]))
    ordering_20 = abs(center_values[20.0]) >= 0.95 * abs(
        center_values[35.0])

    comparisons = [
        Comparison(
            metric="|Hz| at edge < |Hz| at center (all sizes)",
            paper=1.0,
            measured=float(edge_smaller),
            passed=edge_smaller,
            note="non-uniform profile over the FL cross-section"),
        Comparison(
            metric="center |Hz| ordering 35>55>90 nm",
            paper=1.0,
            measured=float(ordering),
            passed=ordering,
            note="smaller device, larger stray field"),
        Comparison(
            metric="center |Hz| at 20 nm >= 0.95x 35 nm",
            paper=1.0,
            measured=float(ordering_20),
            passed=ordering_20,
            note=("paper extrapolates to ~-500 Oe at 20 nm; our "
                  "calibrated two-loop model saturates (DESIGN.md)")),
    ]

    headers = ["eCD (nm)", "Hz center (Oe)", "Hz near edge (Oe)"]
    rows = [(e, center_values[e], edge_values[e]) for e in ECDS_NM]

    return ExperimentResult(
        experiment_id="fig3d",
        title="Hz_s_intra across the FL cross-section vs device size",
        headers=headers,
        rows=rows,
        series=series,
        comparisons=comparisons,
        extras={"center_values_oe": center_values,
                "edge_values_oe": edge_values},
    )
