"""Fig. 4a — Hz_s_inter vs neighborhood pattern (eCD=55 nm, pitch=90 nm).

Sweeps all 256 NP8 patterns, collapses them onto the 25 (direct, diagonal)
count classes, and checks the paper's quantitative anchors: extremes of
-16 / +64 Oe, steps of ~15 Oe per direct and ~5 Oe per diagonal neighbor,
and the 80 Oe maximum variation.
"""

from __future__ import annotations

import numpy as np

from ..core.inter import InterCellModel
from ..units import nm_to_m
from .base import Comparison, ExperimentResult
from .data import PAPER_ANCHORS


def run(ecd_nm=55.0, pitch_nm=90.0):
    """Compute the Fig. 4a class table and its anchors."""
    model = InterCellModel(nm_to_m(ecd_nm))
    pitch = nm_to_m(pitch_nm)
    table = model.class_table_oe(pitch)
    hz_all = model.np8_sweep_oe(pitch)
    lo, hi = model.extremes_oe(pitch)
    step_direct, step_diag = model.steps_oe(pitch)
    variation = hi - lo

    def close(measured, anchor, tol):
        return abs(measured - anchor) <= tol

    comparisons = [
        Comparison("Hz_inter at NP8=0 (Oe)",
                   PAPER_ANCHORS["hz_inter_min_oe"], lo,
                   close(lo, PAPER_ANCHORS["hz_inter_min_oe"], 8.0),
                   "all neighbors in P state"),
        Comparison("Hz_inter at NP8=255 (Oe)",
                   PAPER_ANCHORS["hz_inter_max_oe"], hi,
                   close(hi, PAPER_ANCHORS["hz_inter_max_oe"], 8.0),
                   "all neighbors in AP state"),
        Comparison("step per direct neighbor (Oe)",
                   PAPER_ANCHORS["hz_inter_step_direct_oe"], step_direct,
                   close(step_direct,
                         PAPER_ANCHORS["hz_inter_step_direct_oe"], 3.0),
                   ""),
        Comparison("step per diagonal neighbor (Oe)",
                   PAPER_ANCHORS["hz_inter_step_diagonal_oe"], step_diag,
                   close(step_diag,
                         PAPER_ANCHORS["hz_inter_step_diagonal_oe"], 2.0),
                   ""),
        Comparison("max variation (Oe)",
                   PAPER_ANCHORS["hz_inter_variation_oe"], variation,
                   close(variation,
                         PAPER_ANCHORS["hz_inter_variation_oe"], 10.0),
                   "range over all 256 patterns"),
        Comparison("distinct (direct, diagonal) classes",
                   25.0, float(len(table)), len(table) == 25,
                   "symmetry collapse of 256 patterns"),
    ]

    headers = ["#1s direct", "#1s diagonal", "Hz_s_inter (Oe)"]
    rows = [(nd, ng, table[(nd, ng)])
            for nd in range(5) for ng in range(5)]

    n_direct_axis = np.arange(5, dtype=float)
    series = {
        f"{ng} diagonal 1s": (
            n_direct_axis,
            np.array([table[(nd, ng)] for nd in range(5)]))
        for ng in range(5)
    }
    return ExperimentResult(
        experiment_id="fig4a",
        title=("Hz_s_inter at the victim vs neighborhood pattern "
               f"(eCD={ecd_nm:.0f} nm, pitch={pitch_nm:.0f} nm)"),
        headers=headers,
        rows=rows,
        series=series,
        comparisons=comparisons,
        extras={"hz_all_256_oe": hz_all, "class_table_oe": table},
    )
