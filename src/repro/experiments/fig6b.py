"""Fig. 6b — worst-case Delta_P(NP8=0) vs temperature at three pitches.

The retention worst corner (victim P, all neighbors P) compared across
pitch = 3x / 2x / 1.5x eCD: shrinking the pitch degrades the worst-case
``Delta`` only marginally — the paper's closing retention observation.
"""

from __future__ import annotations

import numpy as np

from ..core.impact import RetentionAnalysis
from ..units import celsius_to_kelvin
from .base import Comparison, ExperimentResult
from .data import eval_device

#: Pitch multiples compared in the panel.
PITCH_RATIOS = (3.0, 2.0, 1.5)


def run(t_min_c=0.0, t_max_c=150.0, n_temps=16):
    """Worst-case Delta vs temperature for the three pitches."""
    device = eval_device()
    analysis = RetentionAnalysis(device)
    temps_c = np.linspace(t_min_c, t_max_c, n_temps)
    temps_k = celsius_to_kelvin(temps_c)

    curves = {}
    for ratio in PITCH_RATIOS:
        pitch = ratio * device.params.ecd
        curves[ratio] = analysis.worst_case_vs_temperature(temps_k, pitch)

    room_idx = int(np.argmin(np.abs(temps_c - 25.0)))
    ordering = bool(np.all(curves[1.5] <= curves[2.0])
                    and np.all(curves[2.0] <= curves[3.0]))
    degradation = float(curves[3.0][room_idx] - curves[1.5][room_idx])
    relative = degradation / float(curves[3.0][room_idx])

    comparisons = [
        Comparison("worst-case Delta ordering 1.5x <= 2x <= 3x", 1.0,
                   float(ordering), ordering,
                   "denser arrays degrade retention"),
        Comparison("1.5x vs 3x degradation at 25 C (Delta units)", None,
                   degradation, 0.0 <= degradation < 5.0,
                   "paper: marginal degradation"),
        Comparison("relative degradation at 25 C", None, relative,
                   relative < 0.10,
                   "marginal (<10%)"),
    ]

    headers = ["T (C)"] + [f"Delta_P(NP0) {r}x eCD" for r in PITCH_RATIOS]
    rows = []
    for i, tc in enumerate(temps_c):
        rows.append((float(tc),) + tuple(
            float(curves[r][i]) for r in PITCH_RATIOS))

    series = {
        f"pitch={r}x eCD": (temps_c, curves[r]) for r in PITCH_RATIOS
    }
    return ExperimentResult(
        experiment_id="fig6b",
        title="Worst-case Delta_P(NP8=0) vs temperature at three pitches",
        headers=headers,
        rows=rows,
        series=series,
        comparisons=comparisons,
        extras={"degradation_at_25c": degradation},
    )
