"""Shared experiment-result structure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured line of an experiment.

    ``paper`` may be None for qualitative claims; ``passed`` records
    whether the reproduction criterion held.
    """

    metric: str
    paper: Optional[float]
    measured: float
    passed: bool
    note: str = ""

    def row(self):
        """Tuple view for tables."""
        paper = "-" if self.paper is None else self.paper
        return (self.metric, paper, self.measured,
                "ok" if self.passed else "DEVIATES", self.note)


@dataclass
class ExperimentResult:
    """Everything one figure reproduction produced.

    Attributes
    ----------
    experiment_id:
        Figure identifier, e.g. ``"fig4a"``.
    title:
        Human-readable description.
    headers, rows:
        The main data table of the figure.
    series:
        ``{name: (x, y)}`` arrays for plotting.
    comparisons:
        Paper-vs-measured records.
    extras:
        Free-form metadata (calibration values etc.).
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[Tuple]
    series: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict)
    comparisons: List[Comparison] = field(default_factory=list)
    extras: Dict = field(default_factory=dict)

    @property
    def all_passed(self):
        """True if every comparison criterion held."""
        return all(c.passed for c in self.comparisons)

    def comparison_table(self):
        """(headers, rows) for the paper-vs-measured table."""
        headers = ["metric", "paper", "measured", "status", "note"]
        return headers, [c.row() for c in self.comparisons]
