"""Fig. 2a — measured R-H hysteresis loop of a representative device.

Simulates the paper's measurement on the eCD = 55 nm wafer device: a
+/- 3 kOe perpendicular sweep with 1000 field points and a 20 mV readout,
then extracts ``Hsw_p``, ``Hsw_n``, ``Hc``, ``Hoffset`` and the eCD from
the loop, exactly as Section III describes.
"""

from __future__ import annotations

from ..characterization.extraction import extract_ecd
from ..device.hysteresis import SweepProtocol
from ..device.mtj import MTJDevice
from ..units import am_to_oe, m_to_nm, nm_to_m, oe_to_am
from .base import Comparison, ExperimentResult
from .data import PAPER_ANCHORS, WAFER_RESISTANCE, wafer_device_parameters


def run(seed=2020, ecd_nm=55.0, n_points=1000):
    """Simulate and analyze one R-H loop.

    Returns an :class:`ExperimentResult` whose series contain the full
    R(H) trace and whose comparisons check the extracted quantities.
    """
    params = wafer_device_parameters(nm_to_m(ecd_nm))
    device = MTJDevice(params)
    protocol = SweepProtocol(h_max=oe_to_am(3000.0), n_points=n_points)
    simulator = device.rh_simulator(protocol=protocol)
    loop = simulator.simulate(rng=seed)

    hc_oe = am_to_oe(loop.coercivity)
    hoffset_oe = am_to_oe(loop.offset_field)
    stray_oe = am_to_oe(loop.stray_field)
    ecd_extracted = extract_ecd(WAFER_RESISTANCE.ra, loop)
    model_stray_oe = device.intra_stray_field_oe()

    comparisons = [
        Comparison(
            metric="Hc (Oe)",
            paper=PAPER_ANCHORS["hc_oe"],
            measured=hc_oe,
            passed=abs(hc_oe - PAPER_ANCHORS["hc_oe"]) < 500.0,
            note="wafer coercivity from loop extraction"),
        Comparison(
            metric="Hoffset sign (+, loop offset to positive side)",
            paper=1.0,
            measured=float(1.0 if hoffset_oe > 0 else -1.0),
            passed=hoffset_oe > 0,
            note="paper: loop always offset to positive side"),
        Comparison(
            metric="recovered Hs_intra (Oe)",
            paper=None,
            measured=stray_oe,
            passed=abs(stray_oe - model_stray_oe) < 60.0,
            note=f"model value {model_stray_oe:.0f} Oe"),
        Comparison(
            metric="extracted eCD (nm)",
            paper=55.0,
            measured=m_to_nm(ecd_extracted),
            passed=abs(m_to_nm(ecd_extracted) - ecd_nm) < 3.0,
            note="eCD = sqrt(4/pi * RA / RP)"),
    ]

    headers = ["quantity", "value", "unit"]
    rows = [
        ("Hsw_p", am_to_oe(loop.hsw_p), "Oe"),
        ("Hsw_n", am_to_oe(loop.hsw_n), "Oe"),
        ("Hc", hc_oe, "Oe"),
        ("Hoffset", hoffset_oe, "Oe"),
        ("Hs_intra (= -Hoffset)", stray_oe, "Oe"),
        ("RP", loop.rp, "Ohm"),
        ("RAP", loop.rap, "Ohm"),
        ("eCD (from RP)", m_to_nm(ecd_extracted), "nm"),
    ]

    series = {
        "R(H) loop": (am_to_oe(loop.fields), loop.resistances),
    }
    return ExperimentResult(
        experiment_id="fig2a",
        title="R-H hysteresis loop of a representative MTJ (eCD=55 nm)",
        headers=headers,
        rows=rows,
        series=series,
        comparisons=comparisons,
        extras={"loop": loop, "protocol": protocol},
    )
