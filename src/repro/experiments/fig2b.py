"""Fig. 2b — size dependence of the intra-cell stray field.

Reproduces the paper's calibration loop end to end:

1. take the (synthetic) measured ``Hz_s_intra`` vs eCD dataset,
2. fit the effective RL/HL moments of the bound-current model to it,
3. evaluate the calibrated model on a dense size grid,
4. compare measurement and simulation (the paper's "match silicon data").
"""

from __future__ import annotations

import numpy as np

from ..core.calibration import fit_effective_moments
from ..core.intra import IntraCellModel
from ..units import am_to_oe, m_to_nm, nm_to_m
from .base import Comparison, ExperimentResult
from .data import synthetic_intra_dataset


def run(seed=2020, curve_points=33):
    """Calibrate the intra-cell model and produce the Fig. 2b curves."""
    dataset = synthetic_intra_dataset(seed=seed)
    ecds, hz_mean, hz_std = dataset.as_arrays()

    calibration = fit_effective_moments(ecds, hz_mean)
    model = IntraCellModel(stack_builder=calibration.stack_builder)

    curve_ecds = np.linspace(nm_to_m(20.0), nm_to_m(180.0), curve_points)
    curve_hz = model.hz_vs_ecd(curve_ecds)
    fit_at_measured = model.hz_vs_ecd(ecds)

    residual_oe = am_to_oe(fit_at_measured - hz_mean)
    rmse_oe = float(np.sqrt(np.mean(residual_oe ** 2)))
    hz35_oe = am_to_oe(model.hz_at_center(nm_to_m(35.0)))

    # |Hz| must grow as eCD shrinks over the *measured* range (>= 35 nm);
    # below ~30 nm the calibrated two-loop model saturates (DESIGN.md).
    measured_range = curve_ecds >= nm_to_m(34.0)
    monotonic = bool(np.all(
        np.diff(am_to_oe(curve_hz[measured_range])) > -1e-9))
    sizes_ok = bool(np.all(np.diff(np.abs(am_to_oe(fit_at_measured)))
                           < 0.0))

    comparisons = [
        Comparison(
            metric="model-vs-measured RMSE (Oe)",
            paper=None,
            measured=rmse_oe,
            passed=rmse_oe < 20.0,
            note="paper: simulation matches silicon data"),
        Comparison(
            metric="Hz_s_intra at eCD=35 nm (Oe)",
            paper=-325.0,
            measured=hz35_oe,
            passed=abs(hz35_oe - (-325.0)) < 40.0,
            note="value implied by the 7% Ic shift of Section V-A"),
        Comparison(
            metric="|Hz| grows monotonically as eCD shrinks (>=35 nm)",
            paper=1.0,
            measured=float(sizes_ok and monotonic),
            passed=sizes_ok and monotonic,
            note="trend grows steeply below eCD=100 nm"),
    ]

    headers = ["eCD (nm)", "measured Hz (Oe)", "std (Oe)",
               "model Hz (Oe)"]
    rows = [
        (m_to_nm(ecds[i]), am_to_oe(hz_mean[i]), am_to_oe(hz_std[i]),
         am_to_oe(fit_at_measured[i]))
        for i in range(ecds.size)
    ]
    series = {
        "measured (mean)": (m_to_nm(ecds), am_to_oe(hz_mean)),
        "simulation": (m_to_nm(curve_ecds), am_to_oe(curve_hz)),
    }
    return ExperimentResult(
        experiment_id="fig2b",
        title="Hz_s_intra vs eCD: measurement vs calibrated model",
        headers=headers,
        rows=rows,
        series=series,
        comparisons=comparisons,
        extras={"calibration": calibration.describe(),
                "dataset": dataset},
    )
