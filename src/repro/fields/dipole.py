"""Point-dipole field model.

The far-field limit of a current loop of moment ``m = I * pi * a^2`` is a
point dipole. For array-scale estimates (neighbor cells several diameters
away) the dipole model is accurate to a few percent and much faster than
loop evaluation; it also provides an independent cross-check for the loop
solvers in the test suite.
"""

from __future__ import annotations

import math

import numpy as np

from ..validation import as_point_array, require_positive


def loop_as_dipole(current, radius):
    """Magnetic moment [A*m^2] of a circular loop (along +z)."""
    require_positive(radius, "radius")
    return current * math.pi * radius * radius


def dipole_field(moment_z, points, position=(0.0, 0.0, 0.0)):
    """H-field [A/m] of a point dipole with moment ``moment_z`` along z.

    ``H(r) = (1 / 4 pi) * (3 (m . r_hat) r_hat - m) / |r|^3``

    Parameters
    ----------
    moment_z:
        Dipole moment z-component [A*m^2] (dipole along +z or -z).
    points:
        (N, 3) or (3,) evaluation points [m].
    position:
        Dipole location [m].

    Returns
    -------
    numpy.ndarray
        H vectors, (N, 3) (or (3,) for a single point).
    """
    pts = as_point_array(points)
    single = np.asarray(points).ndim == 1
    pos = np.asarray(position, dtype=float)

    r = pts - pos
    r2 = np.einsum("ns,ns->n", r, r)
    r_len = np.sqrt(r2)
    with np.errstate(divide="ignore", invalid="ignore"):
        r_hat = r / r_len[:, np.newaxis]
        m_dot_rhat = moment_z * r_hat[:, 2]
        field = (3.0 * m_dot_rhat[:, np.newaxis] * r_hat
                 - np.array([0.0, 0.0, moment_z]))
        field /= (4.0 * np.pi * r2 * r_len)[:, np.newaxis]
    return field[0] if single else field
