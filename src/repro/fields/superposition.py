"""Superposition of current-loop sources.

:class:`CurrentLoop` is the elementary source of the coupling model: a
z-normal circular loop at an arbitrary center. :class:`LoopCollection`
evaluates the total H-field of many loops at many points, using the exact
analytic solution by default and the discrete Biot-Savart solver on request
(both converge to each other; see the test suite).

Magnetostatics is linear, so the collection field is the plain sum of the
member fields — this module is also where that linearity is exploited for
caching per-source contributions in the array model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ParameterError
from ..validation import as_point_array, require_positive


@dataclass(frozen=True)
class CurrentLoop:
    """A circular current loop normal to z.

    Parameters
    ----------
    center:
        Loop center (x, y, z) [m].
    radius:
        Loop radius [m].
    current:
        Loop current [A]; positive current gives +z field at the center.
    """

    center: Tuple[float, float, float]
    radius: float
    current: float

    def __post_init__(self):
        require_positive(self.radius, "radius")
        center = tuple(float(c) for c in self.center)
        if len(center) != 3:
            raise ParameterError(
                f"center must have 3 components, got {len(center)}")
        object.__setattr__(self, "center", center)
        object.__setattr__(self, "current", float(self.current))

    @property
    def moment(self):
        """Magnetic moment z-component [A*m^2]."""
        return self.current * np.pi * self.radius ** 2

    def field(self, points):
        """H-field [A/m] of this loop at ``points`` (analytic)."""
        from .loop_analytic import loop_field_analytic
        pts = as_point_array(points)
        single = np.asarray(points).ndim == 1
        local = pts - np.asarray(self.center)
        out = loop_field_analytic(self.current, self.radius, local)
        return out[0] if single else out

    def field_biot_savart(self, points, n_segments=720):
        """H-field [A/m] via the discrete Biot-Savart reference solver."""
        from .biot_savart import loop_field_biot_savart
        return loop_field_biot_savart(
            self.current, self.radius, points,
            n_segments=n_segments, center=self.center)

    def scaled(self, factor):
        """Return a copy with the current multiplied by ``factor``."""
        return CurrentLoop(self.center, self.radius, self.current * factor)

    def translated(self, dx=0.0, dy=0.0, dz=0.0):
        """Return a copy displaced by (dx, dy, dz) [m]."""
        cx, cy, cz = self.center
        return CurrentLoop((cx + dx, cy + dy, cz + dz), self.radius,
                           self.current)


class LoopCollection:
    """An immutable bag of :class:`CurrentLoop` sources.

    Loop parameters are stored as packed numpy arrays so that
    :meth:`field` evaluates *all loops at all points* in one broadcasted
    :func:`~repro.fields.loop_analytic.loop_field_analytic_many` call;
    :meth:`field_per_loop` keeps the original loop-by-loop summation as
    the reference path for parity tests. Supports concatenation with
    ``+`` and scaling of all currents.
    """

    def __init__(self, loops=()):
        loops = tuple(loops)
        for loop in loops:
            if not isinstance(loop, CurrentLoop):
                raise ParameterError(
                    f"expected CurrentLoop, got {type(loop)!r}")
        self._loops = loops
        self._centers = np.array([lp.center for lp in loops],
                                 dtype=float).reshape(len(loops), 3)
        self._radii = np.array([lp.radius for lp in loops], dtype=float)
        self._currents = np.array([lp.current for lp in loops],
                                  dtype=float)
        # The packed arrays are exposed as read-only views; in-place
        # mutation would desynchronize them from the member loops.
        for arr in (self._centers, self._radii, self._currents):
            arr.flags.writeable = False

    @classmethod
    def from_arrays(cls, centers, radii, currents):
        """Build a collection from packed (M, 3) / (M,) / (M,) arrays."""
        centers = np.asarray(centers, dtype=float)
        radii = np.asarray(radii, dtype=float)
        currents = np.asarray(currents, dtype=float)
        if centers.ndim != 2 or centers.shape[1] != 3:
            raise ParameterError(
                f"centers must have shape (M, 3), got {centers.shape}")
        if radii.shape != (centers.shape[0],) or currents.shape != \
                (centers.shape[0],):
            raise ParameterError(
                "radii and currents must be 1-D arrays matching centers, "
                f"got {radii.shape} and {currents.shape}")
        return cls(CurrentLoop(tuple(c), float(r), float(i))
                   for c, r, i in zip(centers, radii, currents))

    @property
    def loops(self):
        """The member loops (tuple)."""
        return self._loops

    @property
    def centers(self):
        """Packed loop centers, shape (M, 3) [m] (read-only view)."""
        return self._centers

    @property
    def radii(self):
        """Packed loop radii, shape (M,) [m] (read-only view)."""
        return self._radii

    @property
    def currents(self):
        """Packed loop currents, shape (M,) [A] (read-only view)."""
        return self._currents

    def __len__(self):
        return len(self._loops)

    def __iter__(self):
        return iter(self._loops)

    def __add__(self, other):
        if isinstance(other, LoopCollection):
            return LoopCollection(self._loops + other.loops)
        return NotImplemented

    def scaled(self, factor):
        """Return a collection with every current multiplied by ``factor``."""
        return LoopCollection([lp.scaled(factor) for lp in self._loops])

    def translated(self, dx=0.0, dy=0.0, dz=0.0):
        """Return a collection with every loop displaced by (dx, dy, dz)."""
        return LoopCollection(
            [lp.translated(dx, dy, dz) for lp in self._loops])

    @property
    def total_moment(self):
        """Sum of loop moments (z-component) [A*m^2]."""
        return sum(lp.moment for lp in self._loops)

    def field(self, points):
        """Total H-field [A/m] at ``points``, all loops batched."""
        from .loop_analytic import loop_field_analytic_many
        pts = as_point_array(points)
        single = np.asarray(points).ndim == 1
        if not self._loops:
            total = np.zeros_like(pts)
        else:
            total = loop_field_analytic_many(
                self._currents, self._radii, self._centers, pts)
        return total[0] if single else total

    def field_per_loop(self, points):
        """Total H-field [A/m] summed loop by loop (reference path).

        Numerically identical to :meth:`field` up to floating-point
        summation order; kept for parity tests and as the readable
        specification of what the batched path computes.
        """
        pts = as_point_array(points)
        single = np.asarray(points).ndim == 1
        total = np.zeros_like(pts)
        for loop in self._loops:
            total += loop.field(pts)
        return total[0] if single else total

    def field_grid(self, points):
        """Batched :meth:`field` over points of any shape ``(..., 3)``.

        Accepts meshgrid-style arrays (e.g. from
        :func:`repro.fields.sampling.grid3d`) and returns H vectors with
        the same leading shape.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim < 1 or pts.shape[-1] != 3:
            raise ParameterError(
                f"points must have shape (..., 3), got {pts.shape}")
        flat = pts.reshape(-1, 3)
        out = self.field(flat)
        return out.reshape(pts.shape)

    def field_biot_savart(self, points, n_segments=720):
        """Total H-field [A/m] using the discrete reference solver."""
        pts = as_point_array(points)
        single = np.asarray(points).ndim == 1
        total = np.zeros_like(pts)
        for loop in self._loops:
            total += loop.field_biot_savart(pts, n_segments=n_segments)
        return total[0] if single else total

    def field_z(self, points):
        """Convenience: z-component of :meth:`field` only."""
        out = self.field(points)
        return out[..., 2]
