"""Superposition of current-loop sources.

:class:`CurrentLoop` is the elementary source of the coupling model: a
z-normal circular loop at an arbitrary center. :class:`LoopCollection`
evaluates the total H-field of many loops at many points, using the exact
analytic solution by default and the discrete Biot-Savart solver on request
(both converge to each other; see the test suite).

Magnetostatics is linear, so the collection field is the plain sum of the
member fields — this module is also where that linearity is exploited for
caching per-source contributions in the array model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ParameterError
from ..validation import as_point_array, require_positive


@dataclass(frozen=True)
class CurrentLoop:
    """A circular current loop normal to z.

    Parameters
    ----------
    center:
        Loop center (x, y, z) [m].
    radius:
        Loop radius [m].
    current:
        Loop current [A]; positive current gives +z field at the center.
    """

    center: Tuple[float, float, float]
    radius: float
    current: float

    def __post_init__(self):
        require_positive(self.radius, "radius")
        center = tuple(float(c) for c in self.center)
        if len(center) != 3:
            raise ParameterError(
                f"center must have 3 components, got {len(center)}")
        object.__setattr__(self, "center", center)
        object.__setattr__(self, "current", float(self.current))

    @property
    def moment(self):
        """Magnetic moment z-component [A*m^2]."""
        return self.current * np.pi * self.radius ** 2

    def field(self, points):
        """H-field [A/m] of this loop at ``points`` (analytic)."""
        from .loop_analytic import loop_field_analytic
        pts = as_point_array(points)
        single = np.asarray(points).ndim == 1
        local = pts - np.asarray(self.center)
        out = loop_field_analytic(self.current, self.radius, local)
        return out[0] if single else out

    def field_biot_savart(self, points, n_segments=720):
        """H-field [A/m] via the discrete Biot-Savart reference solver."""
        from .biot_savart import loop_field_biot_savart
        return loop_field_biot_savart(
            self.current, self.radius, points,
            n_segments=n_segments, center=self.center)

    def scaled(self, factor):
        """Return a copy with the current multiplied by ``factor``."""
        return CurrentLoop(self.center, self.radius, self.current * factor)

    def translated(self, dx=0.0, dy=0.0, dz=0.0):
        """Return a copy displaced by (dx, dy, dz) [m]."""
        cx, cy, cz = self.center
        return CurrentLoop((cx + dx, cy + dy, cz + dz), self.radius,
                           self.current)


class LoopCollection:
    """An immutable bag of :class:`CurrentLoop` sources.

    Supports field evaluation (analytic or Biot-Savart), concatenation with
    ``+``, and scaling of all currents.
    """

    def __init__(self, loops=()):
        loops = tuple(loops)
        for loop in loops:
            if not isinstance(loop, CurrentLoop):
                raise ParameterError(
                    f"expected CurrentLoop, got {type(loop)!r}")
        self._loops = loops

    @property
    def loops(self):
        """The member loops (tuple)."""
        return self._loops

    def __len__(self):
        return len(self._loops)

    def __iter__(self):
        return iter(self._loops)

    def __add__(self, other):
        if isinstance(other, LoopCollection):
            return LoopCollection(self._loops + other.loops)
        return NotImplemented

    def scaled(self, factor):
        """Return a collection with every current multiplied by ``factor``."""
        return LoopCollection([lp.scaled(factor) for lp in self._loops])

    def translated(self, dx=0.0, dy=0.0, dz=0.0):
        """Return a collection with every loop displaced by (dx, dy, dz)."""
        return LoopCollection(
            [lp.translated(dx, dy, dz) for lp in self._loops])

    @property
    def total_moment(self):
        """Sum of loop moments (z-component) [A*m^2]."""
        return sum(lp.moment for lp in self._loops)

    def field(self, points):
        """Total H-field [A/m] at ``points`` (analytic per-loop solution)."""
        pts = as_point_array(points)
        single = np.asarray(points).ndim == 1
        total = np.zeros_like(pts)
        for loop in self._loops:
            total += loop.field(pts)
        return total[0] if single else total

    def field_biot_savart(self, points, n_segments=720):
        """Total H-field [A/m] using the discrete reference solver."""
        pts = as_point_array(points)
        single = np.asarray(points).ndim == 1
        total = np.zeros_like(pts)
        for loop in self._loops:
            total += loop.field_biot_savart(pts, n_segments=n_segments)
        return total[0] if single else total

    def field_z(self, points):
        """Convenience: z-component of :meth:`field` only."""
        out = self.field(points)
        return out[..., 2]
