"""Bound-current reduction of uniformly magnetized layers.

A uniformly magnetized thin ferromagnet is magnetostatically equivalent to a
macroscopic *bound current* ``I_b = Ms * t`` circulating around its edge
(the paper's Fig. 3a; Griffiths, *Introduction to Electrodynamics*). A layer
of finite thickness is a stack of such loops — a short solenoid with surface
current density ``Ms`` — which we discretize into ``n_sub`` sub-loops spread
over the layer thickness. Lumping a thick layer at its midplane is a poor
approximation once the evaluation distance is comparable to the thickness;
the sub-loop discretization removes that error.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..geometry import Layer
from ..validation import require_int_in_range, require_positive
from .superposition import CurrentLoop

#: Target sub-loop spacing [m] when auto-selecting n_sub (0.5 nm).
_DEFAULT_SUBLOOP_SPACING = 0.5e-9


def bound_current(ms, thickness):
    """Bound edge current ``I_b = Ms * t`` [A] of a magnetized layer."""
    require_positive(ms, "ms")
    require_positive(thickness, "thickness")
    return ms * thickness


def auto_subloops(thickness, spacing=_DEFAULT_SUBLOOP_SPACING):
    """Number of sub-loops so their spacing is at most ``spacing``."""
    require_positive(thickness, "thickness")
    require_positive(spacing, "spacing")
    return max(1, int(np.ceil(thickness / spacing)))


def layer_to_loops(layer, radius, center_xy=(0.0, 0.0), n_sub=None,
                   direction=None, temperature=None):
    """Convert a magnetic :class:`~repro.geometry.Layer` to current loops.

    Parameters
    ----------
    layer:
        The layer to convert; must carry a magnetic moment.
    radius:
        Pillar radius [m] (loops share the pillar's lateral geometry).
    center_xy:
        Lateral position (x, y) [m] of the pillar axis.
    n_sub:
        Number of sub-loops across the layer thickness. Default: one loop
        per 0.5 nm of thickness (at least one).
    direction:
        Override of the layer's magnetization direction (+1/-1), e.g. for a
        free layer whose state is dynamic.
    temperature:
        If given [K], scales the layer ``Ms`` by the material's Bloch
        factor.

    Returns
    -------
    list[CurrentLoop]
        Sub-loops with equal currents summing to ``direction * Ms * t``.
    """
    if not isinstance(layer, Layer):
        raise ParameterError(f"layer must be a Layer, got {type(layer)!r}")
    if not layer.material.is_magnetic:
        raise ParameterError(
            f"layer {layer.role.value} is non-magnetic; no bound current")
    sign = layer.direction if direction is None else direction
    if sign not in (-1, +1):
        raise ParameterError(f"direction must be -1 or +1, got {sign!r}")
    require_positive(radius, "radius")

    ms = layer.material.ms
    if temperature is not None:
        ms = layer.material.ms_at(temperature)
    total_current = sign * ms * layer.thickness

    if n_sub is None:
        n_sub = auto_subloops(layer.thickness)
    n_sub = require_int_in_range(n_sub, "n_sub", 1, 10_000)

    # Place sub-loops at the centers of n_sub equal slabs of the layer.
    edges = np.linspace(layer.z_bottom, layer.z_top, n_sub + 1)
    z_centers = 0.5 * (edges[:-1] + edges[1:])
    per_loop = total_current / n_sub
    cx, cy = float(center_xy[0]), float(center_xy[1])
    return [
        CurrentLoop(center=(cx, cy, float(zc)), radius=radius,
                    current=per_loop)
        for zc in z_centers
    ]
