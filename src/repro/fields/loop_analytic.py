"""Exact magnetic field of a circular current loop.

Closed-form solution in terms of complete elliptic integrals K(m) and E(m)
(Smythe, *Static and Dynamic Electricity*; equivalent to integrating the
Biot-Savart law of the paper's Eq. (1) exactly).

For a loop of radius ``a`` carrying current ``I`` in the z=0 plane, centered
on the origin, the H-field at cylindrical coordinates (rho, z) is::

    m_ell  = 4 a rho / ((a + rho)^2 + z^2)
    Hz  = I / (2 pi sqrt((a+rho)^2+z^2)) * [K + E (a^2-rho^2-z^2)/((a-rho)^2+z^2)]
    Hrho = I z / (2 pi rho sqrt((a+rho)^2+z^2)) * [-K + E (a^2+rho^2+z^2)/((a-rho)^2+z^2)]

A positive current produces +z field at the loop center (right-hand rule);
with the bound-current model this means the field inside the loop is
parallel to the layer magnetization.

The field diverges on the wire itself (rho = a, z = 0); evaluation there
returns ``inf`` values rather than raising, mirroring the physics.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ellipe, ellipk

from ..errors import ParameterError
from ..validation import require_positive

#: Fraction of the loop radius below which a point counts as on-axis.
_AXIS_RHO_TOLERANCE = 1.0e-12


def loop_field_on_axis(current, radius, z):
    """On-axis H-field [A/m] of a circular loop (z component only).

    ``Hz = I a^2 / (2 (a^2 + z^2)^(3/2))``. Vectorized over ``z``.
    """
    require_positive(radius, "radius")
    z = np.asarray(z, dtype=float)
    a2 = radius * radius
    return current * a2 / (2.0 * np.power(a2 + z * z, 1.5))


def loop_field_analytic(current, radius, points):
    """H-field [A/m] of a circular current loop at arbitrary points.

    Parameters
    ----------
    current:
        Loop current [A] (sign sets the field direction via the right-hand
        rule; may be 0).
    radius:
        Loop radius [m], > 0.
    points:
        Array of shape (N, 3) or (3,) with Cartesian coordinates [m] in the
        loop frame (loop in z=0 plane, centered at origin).

    Returns
    -------
    numpy.ndarray
        H vectors, shape (N, 3) (or (3,) if a single point was given).
    """
    require_positive(radius, "radius")
    pts = np.asarray(points, dtype=float)
    single = pts.ndim == 1
    if single:
        pts = pts[np.newaxis, :]
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ParameterError(
            f"points must have shape (3,) or (N, 3), got {pts.shape}")

    x, y, z = pts[:, 0], pts[:, 1], pts[:, 2]
    rho = np.hypot(x, y)
    out = np.zeros_like(pts)

    on_axis = rho <= _AXIS_RHO_TOLERANCE * radius
    off_axis = ~on_axis

    if np.any(on_axis):
        out[on_axis, 2] = loop_field_on_axis(current, radius, z[on_axis])

    if np.any(off_axis):
        rr = rho[off_axis]
        zz = z[off_axis]
        a = radius
        denom_plus = (a + rr) ** 2 + zz * zz
        denom_minus = (a - rr) ** 2 + zz * zz
        m_ell = 4.0 * a * rr / denom_plus
        # Clip to the open domain of K; m_ell == 1 only on the wire itself.
        with np.errstate(divide="ignore", invalid="ignore"):
            k_int = ellipk(m_ell)
            e_int = ellipe(m_ell)
            root = np.sqrt(denom_plus)
            pref = current / (2.0 * np.pi * root)
            hz = pref * (k_int + e_int * (a * a - rr * rr - zz * zz)
                         / denom_minus)
            hrho = (pref * zz / rr) * (-k_int + e_int
                                       * (a * a + rr * rr + zz * zz)
                                       / denom_minus)
        # Resolve radial direction back to Cartesian components.
        cos_phi = np.where(rr > 0, x[off_axis] / rr, 0.0)
        sin_phi = np.where(rr > 0, y[off_axis] / rr, 0.0)
        out[off_axis, 0] = hrho * cos_phi
        out[off_axis, 1] = hrho * sin_phi
        out[off_axis, 2] = hz

    return out[0] if single else out
