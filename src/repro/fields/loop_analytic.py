"""Exact magnetic field of a circular current loop.

Closed-form solution in terms of complete elliptic integrals K(m) and E(m)
(Smythe, *Static and Dynamic Electricity*; equivalent to integrating the
Biot-Savart law of the paper's Eq. (1) exactly).

For a loop of radius ``a`` carrying current ``I`` in the z=0 plane, centered
on the origin, the H-field at cylindrical coordinates (rho, z) is::

    m_ell  = 4 a rho / ((a + rho)^2 + z^2)
    Hz  = I / (2 pi sqrt((a+rho)^2+z^2)) * [K + E (a^2-rho^2-z^2)/((a-rho)^2+z^2)]
    Hrho = I z / (2 pi rho sqrt((a+rho)^2+z^2)) * [-K + E (a^2+rho^2+z^2)/((a-rho)^2+z^2)]

A positive current produces +z field at the loop center (right-hand rule);
with the bound-current model this means the field inside the loop is
parallel to the layer magnetization.

The field diverges on the wire itself (rho = a, z = 0); evaluation there
returns ``inf`` values rather than raising, mirroring the physics.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ellipe, ellipk

from ..errors import ParameterError
from ..validation import require_positive

#: Fraction of the loop radius below which a point counts as on-axis.
_AXIS_RHO_TOLERANCE = 1.0e-12


def loop_field_on_axis(current, radius, z):
    """On-axis H-field [A/m] of a circular loop (z component only).

    ``Hz = I a^2 / (2 (a^2 + z^2)^(3/2))``. Vectorized over ``z``.
    """
    require_positive(radius, "radius")
    z = np.asarray(z, dtype=float)
    a2 = radius * radius
    return current * a2 / (2.0 * np.power(a2 + z * z, 1.5))


def loop_field_analytic_many(currents, radii, centers, points,
                             sum_sources=True):
    """H-field [A/m] of many circular loops at many points, broadcasted.

    Evaluates all M loops at all N points in one elliptic-integral call —
    the vectorized backend behind
    :meth:`repro.fields.superposition.LoopCollection.field`. The per-loop
    :func:`loop_field_analytic` path is retained as the reference
    implementation for parity tests.

    Parameters
    ----------
    currents, radii:
        Arrays of shape (M,) with the loop currents [A] and radii [m]
        (radii > 0; currents may be 0 or negative).
    centers:
        Array of shape (M, 3): loop centers [m]. Loops are z-normal.
    points:
        Array of shape (N, 3): evaluation points [m] in the lab frame.
    sum_sources:
        If True (default) return the superposed field of shape (N, 3);
        otherwise the per-source fields of shape (M, N, 3).

    Returns
    -------
    numpy.ndarray
        (N, 3) total H vectors, or (M, N, 3) with ``sum_sources=False``.
    """
    currents = np.asarray(currents, dtype=float)
    radii = np.asarray(radii, dtype=float)
    centers = np.asarray(centers, dtype=float)
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ParameterError(
            f"points must have shape (N, 3), got {pts.shape}")
    if currents.ndim != 1 or radii.shape != currents.shape:
        raise ParameterError(
            "currents and radii must be 1-D arrays of equal length, got "
            f"{currents.shape} and {radii.shape}")
    if centers.shape != (currents.shape[0], 3):
        raise ParameterError(
            f"centers must have shape (M, 3), got {centers.shape}")
    if np.any(radii <= 0) or not np.all(np.isfinite(radii)):
        raise ParameterError("radii must be finite and > 0")
    n_points = pts.shape[0]
    if currents.size == 0:
        if sum_sources:
            return np.zeros((n_points, 3))
        return np.zeros((0, n_points, 3))

    # Loop-frame coordinates, shape (M, N).
    local = pts[np.newaxis, :, :] - centers[:, np.newaxis, :]
    x, y, z = local[..., 0], local[..., 1], local[..., 2]
    rho = np.hypot(x, y)
    a = radii[:, np.newaxis]
    cur = currents[:, np.newaxis]

    denom_plus = (a + rho) ** 2 + z * z
    denom_minus = (a - rho) ** 2 + z * z
    m_ell = 4.0 * a * rho / denom_plus
    # On the axis (rho = 0) the Hz expression reduces exactly to the
    # on-axis formula (K = E = pi/2), so only Hrho needs a guard; on the
    # wire itself (m_ell = 1) the field diverges to inf, as physics says.
    with np.errstate(divide="ignore", invalid="ignore"):
        k_int = ellipk(m_ell)
        e_int = ellipe(m_ell)
        pref = cur / (2.0 * np.pi * np.sqrt(denom_plus))
        hz = pref * (k_int + e_int * (a * a - rho * rho - z * z)
                     / denom_minus)
        hrho = np.where(
            rho > _AXIS_RHO_TOLERANCE * a,
            (pref * z / np.where(rho > 0, rho, 1.0))
            * (-k_int + e_int * (a * a + rho * rho + z * z)
               / denom_minus),
            0.0)

    safe_rho = np.where(rho > 0, rho, 1.0)
    out = np.empty((currents.shape[0], n_points, 3))
    out[..., 0] = hrho * x / safe_rho
    out[..., 1] = hrho * y / safe_rho
    out[..., 2] = hz
    return out.sum(axis=0) if sum_sources else out


def loop_field_analytic(current, radius, points):
    """H-field [A/m] of a circular current loop at arbitrary points.

    Parameters
    ----------
    current:
        Loop current [A] (sign sets the field direction via the right-hand
        rule; may be 0).
    radius:
        Loop radius [m], > 0.
    points:
        Array of shape (N, 3) or (3,) with Cartesian coordinates [m] in the
        loop frame (loop in z=0 plane, centered at origin).

    Returns
    -------
    numpy.ndarray
        H vectors, shape (N, 3) (or (3,) if a single point was given).
    """
    require_positive(radius, "radius")
    pts = np.asarray(points, dtype=float)
    single = pts.ndim == 1
    if single:
        pts = pts[np.newaxis, :]
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ParameterError(
            f"points must have shape (3,) or (N, 3), got {pts.shape}")

    x, y, z = pts[:, 0], pts[:, 1], pts[:, 2]
    rho = np.hypot(x, y)
    out = np.zeros_like(pts)

    on_axis = rho <= _AXIS_RHO_TOLERANCE * radius
    off_axis = ~on_axis

    if np.any(on_axis):
        out[on_axis, 2] = loop_field_on_axis(current, radius, z[on_axis])

    if np.any(off_axis):
        rr = rho[off_axis]
        zz = z[off_axis]
        a = radius
        denom_plus = (a + rr) ** 2 + zz * zz
        denom_minus = (a - rr) ** 2 + zz * zz
        m_ell = 4.0 * a * rr / denom_plus
        # Clip to the open domain of K; m_ell == 1 only on the wire itself.
        with np.errstate(divide="ignore", invalid="ignore"):
            k_int = ellipk(m_ell)
            e_int = ellipe(m_ell)
            root = np.sqrt(denom_plus)
            pref = current / (2.0 * np.pi * root)
            hz = pref * (k_int + e_int * (a * a - rr * rr - zz * zz)
                         / denom_minus)
            hrho = (pref * zz / rr) * (-k_int + e_int
                                       * (a * a + rr * rr + zz * zz)
                                       / denom_minus)
        # Resolve radial direction back to Cartesian components.
        cos_phi = np.where(rr > 0, x[off_axis] / rr, 0.0)
        sin_phi = np.where(rr > 0, y[off_axis] / rr, 0.0)
        out[off_axis, 0] = hrho * cos_phi
        out[off_axis, 1] = hrho * sin_phi
        out[off_axis, 2] = hz

    return out[0] if single else out
