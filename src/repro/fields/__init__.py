"""Magnetostatic field solvers.

This subpackage is the magnetostatics substrate of the library. It models
uniformly magnetized cylindrical layers as bound-current loops (the paper's
Section IV-A) and provides three field evaluators of increasing speed:

* :mod:`repro.fields.biot_savart` — the paper's discrete segmented-loop
  Biot-Savart summation (reference implementation),
* :mod:`repro.fields.loop_analytic` — the exact circular-loop field via
  complete elliptic integrals (fast, used by default),
* :mod:`repro.fields.dipole` — the far-field point-dipole limit (used for
  cross-checks and fast array-scale estimates).

:mod:`repro.fields.bound_current` reduces stack layers to loop sources and
:mod:`repro.fields.superposition` evaluates fields of many sources at many
points.
"""

from .biot_savart import loop_field_biot_savart, segment_loop
from .bound_current import bound_current, layer_to_loops
from .dipole import dipole_field, loop_as_dipole
from .loop_analytic import (
    loop_field_analytic,
    loop_field_analytic_many,
    loop_field_on_axis,
)
from .sampling import disk_average, grid3d, radial_line
from .superposition import CurrentLoop, LoopCollection

__all__ = [
    "CurrentLoop",
    "LoopCollection",
    "bound_current",
    "dipole_field",
    "disk_average",
    "grid3d",
    "layer_to_loops",
    "loop_as_dipole",
    "loop_field_analytic",
    "loop_field_analytic_many",
    "loop_field_biot_savart",
    "loop_field_on_axis",
    "radial_line",
    "segment_loop",
]
