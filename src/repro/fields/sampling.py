"""Spatial sampling helpers for field evaluation.

Generates the point sets the experiments need: radial scans across the free
layer (paper Fig. 3d), 3-D grids around a device (Fig. 3c), and polar
quadrature nodes for averaging a field over the free-layer disk.
"""

from __future__ import annotations

import numpy as np

from ..validation import require_int_in_range, require_positive


def radial_line(radius, n_points=81, z=0.0, margin=1.0):
    """Points along a diameter of the FL cross-section.

    Parameters
    ----------
    radius:
        Disk radius [m].
    n_points:
        Number of sample points (odd counts include the exact center).
    z:
        Plane height [m] (default: FL midplane z=0).
    margin:
        Extent as a fraction of the radius (1.0 = edge to edge).

    Returns
    -------
    (positions, points):
        ``positions`` — signed radial positions [m], shape (n,);
        ``points`` — Cartesian sample points, shape (n, 3), along the x axis.
    """
    require_positive(radius, "radius")
    require_positive(margin, "margin")
    n = require_int_in_range(n_points, "n_points", 2, 1_000_000)
    extent = margin * radius
    xs = np.linspace(-extent, extent, n)
    pts = np.stack([xs, np.zeros_like(xs), np.full_like(xs, float(z))],
                   axis=1)
    return xs, pts


def grid3d(extent, n_per_axis=15, z_range=None):
    """A Cartesian grid of points around the origin.

    Parameters
    ----------
    extent:
        Half-width of the x/y range [m].
    n_per_axis:
        Points per axis.
    z_range:
        Optional (z_min, z_max) [m]; defaults to (-extent, extent).

    Returns
    -------
    points:
        Array of shape (n^3, 3).
    shape:
        The grid shape tuple (n, n, n) for reshaping results.
    """
    require_positive(extent, "extent")
    n = require_int_in_range(n_per_axis, "n_per_axis", 2, 512)
    if z_range is None:
        z_lo, z_hi = -extent, extent
    else:
        z_lo, z_hi = float(z_range[0]), float(z_range[1])
    xs = np.linspace(-extent, extent, n)
    ys = np.linspace(-extent, extent, n)
    zs = np.linspace(z_lo, z_hi, n)
    gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
    pts = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
    return pts, (n, n, n)


def disk_quadrature(radius, n_radial=8, n_angular=16, z=0.0):
    """Area-weighted quadrature nodes over a disk.

    Uses midpoint rings in ``r^2`` (equal-area annuli) with uniform angular
    sampling, which integrates smooth axisymmetric fields accurately.

    Returns
    -------
    (points, weights):
        ``points`` — (n_radial*n_angular, 3); ``weights`` — normalized to
        sum to 1.
    """
    require_positive(radius, "radius")
    nr = require_int_in_range(n_radial, "n_radial", 1, 10_000)
    na = require_int_in_range(n_angular, "n_angular", 1, 10_000)
    # Equal-area rings: r_i = R * sqrt((i + 0.5) / nr).
    ring_r = radius * np.sqrt((np.arange(nr) + 0.5) / nr)
    theta = 2.0 * np.pi * (np.arange(na) + 0.5) / na
    rr, tt = np.meshgrid(ring_r, theta, indexing="ij")
    xs = (rr * np.cos(tt)).ravel()
    ys = (rr * np.sin(tt)).ravel()
    pts = np.stack([xs, ys, np.full_like(xs, float(z))], axis=1)
    weights = np.full(pts.shape[0], 1.0 / pts.shape[0])
    return pts, weights


def disk_average(field_fn, radius, n_radial=8, n_angular=16, z=0.0):
    """Average of a vector field over a disk of ``radius`` at height ``z``.

    ``field_fn`` maps an (N, 3) point array to an (N, 3) field array.
    Returns the averaged field vector, shape (3,).
    """
    pts, weights = disk_quadrature(radius, n_radial, n_angular, z)
    values = np.asarray(field_fn(pts), dtype=float)
    return np.einsum("n,ns->s", weights, values)
