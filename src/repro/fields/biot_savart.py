"""Discrete Biot-Savart summation over a segmented current loop.

This is a direct implementation of the paper's Section IV-A: the loop is cut
into ``N`` straight segments ``dl_k`` and the field at a point P is the sum
of the elementary contributions::

    dH_k = (I / 4 pi) * (dl_k x r_k) / |r_k|^3

where ``r_k`` points from the segment midpoint to P. (The paper writes a
``mu_0/4pi`` prefactor for H; in SI the H-field of a current distribution
carries ``1/4pi``, which is what we use — the calibration absorbs any
constant convention anyway, but this choice makes the discrete sum converge
to the exact elliptic-integral solution of
:mod:`repro.fields.loop_analytic`.)

The discrete solver is the *reference* implementation used for validation;
production code paths use the analytic solution, which this converges to as
``N`` grows (second order in 1/N).
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..validation import as_point_array, require_int_in_range, require_positive

#: Default number of loop segments (relative error below 1e-6 off the wire).
DEFAULT_SEGMENTS = 720


def segment_loop(radius, n_segments=DEFAULT_SEGMENTS, center=(0.0, 0.0, 0.0)):
    """Cut a circular z-normal loop into straight segments.

    Returns
    -------
    (midpoints, dl):
        ``midpoints`` — (N, 3) segment midpoints [m];
        ``dl`` — (N, 3) segment vectors [m], oriented counter-clockwise when
        viewed from +z (so positive current gives +z field at the center).
    """
    require_positive(radius, "radius")
    n = require_int_in_range(n_segments, "n_segments", 3, 10_000_000)
    center = np.asarray(center, dtype=float)
    if center.shape != (3,):
        raise ParameterError(f"center must have shape (3,), got {center.shape}")

    theta = np.linspace(0.0, 2.0 * np.pi, n + 1)
    ring = np.stack(
        [radius * np.cos(theta), radius * np.sin(theta),
         np.zeros_like(theta)], axis=1)
    ring = ring + center
    dl = ring[1:] - ring[:-1]
    midpoints = 0.5 * (ring[1:] + ring[:-1])
    return midpoints, dl


def loop_field_biot_savart(current, radius, points,
                           n_segments=DEFAULT_SEGMENTS,
                           center=(0.0, 0.0, 0.0)):
    """H-field [A/m] of a segmented circular loop at ``points``.

    Parameters
    ----------
    current:
        Loop current [A].
    radius:
        Loop radius [m].
    points:
        (N, 3) or (3,) Cartesian points [m].
    n_segments:
        Number of straight segments used to discretize the loop.
    center:
        Loop center [m]; the loop is always z-normal.

    Returns
    -------
    numpy.ndarray
        H vectors, (N, 3) (or (3,) for a single input point).
    """
    pts = as_point_array(points)
    single = np.asarray(points).ndim == 1
    midpoints, dl = segment_loop(radius, n_segments, center)

    # r has shape (P, N, 3): from every segment midpoint to every point.
    r = pts[:, np.newaxis, :] - midpoints[np.newaxis, :, :]
    r_norm3 = np.power(np.einsum("pns,pns->pn", r, r), 1.5)
    cross = np.cross(np.broadcast_to(dl, r.shape), r)
    with np.errstate(divide="ignore", invalid="ignore"):
        contrib = cross / r_norm3[:, :, np.newaxis]
    field = (current / (4.0 * np.pi)) * np.sum(contrib, axis=1)
    return field[0] if single else field
