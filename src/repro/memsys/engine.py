"""Vectorized Monte-Carlo reliability engine.

Composes all three failure mechanisms — write error, read disturb,
retention — into the number a memory designer asks for: the
uncorrectable bit-error rate (UBER) of a coupled, dense array under real
traffic. Every per-epoch step is a numpy array operation over the whole
batch/array; there is no per-bit (or per-transaction) Python loop.

Two evaluation modes:

* :meth:`ReliabilityEngine.run` — transaction-by-transaction Monte
  Carlo: draws every error event, books ECC outcomes per read, applies
  write-back and scrubbing. The ground truth, with sampling noise.
* :meth:`ReliabilityEngine.expected_rates` — closed-form expectation
  over one write->read cycle per word against a fixed background: exact
  Poisson-binomial head (P[0], P[1] errors per word), noise-free. This
  is what the pitch sweeps use, so monotone coupling trends are not
  buried under Monte-Carlo noise. It draws nothing, so its output is
  bit-identical for every ``sampler``.

Monte Carlo itself has two samplers (see :mod:`repro.memsys.sampling`):

* ``sampler="bernoulli"`` — the reference path: one uniform per cell
  per mechanism against dense int8 state. Cost O(cells) per batch.
* ``sampler="binomial"`` — the rare-event fast path: flip *counts* are
  drawn per coupling class (at most 50 distinct probabilities) and
  placed by index choice; ``intended``/``actual`` live bit-packed in
  uint64 lanes (:mod:`repro.memsys.bitplane`) with XOR + popcount
  error counting; the class maps refresh incrementally around the
  cells that actually changed. Cost O(classified + flips), which is
  what makes nominal_wer <= 1e-6 scenarios reachable.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict

import numpy as np

from ..device.mtj import MTJDevice
from ..errors import ParameterError
from ..experiments.base import ExperimentResult
from ..resilience.checkpoint import as_checkpointer, checkpoint_key
from ..validation import require_non_negative, require_positive
from .backends import resolve_backend
from .bitplane import BitPlane
from .controller import ArrayController
from .ecc import DecodeOutcome, NoECC, make_ecc
from .sampling import (
    IncrementalClassMaps,
    sample_class_flips,
    sample_thinned_flips,
    validate_sampler,
)
from .scrub import no_scrub
from .traffic import StressPatternWorkload, Workload, make_workload

#: Shared do-nothing context for un-profiled runs: ``_prof(None, ...)``
#: must cost one attribute check, not an allocation per phase.
_NULL_CONTEXT = nullcontext()


def _prof(profiler, name):
    """Phase context of ``profiler``, or a no-op when profiling is off."""
    if profiler is None:
        return _NULL_CONTEXT
    return profiler.phase(name)


class PhaseProfiler:
    """Accumulates *self* wall-time per engine phase.

    Phases may nest (a scrub's rewrite draws flips); time booked to an
    inner phase is excluded from the enclosing one, so the phase totals
    partition the instrumented wall-time and sum to (at most) the run's
    elapsed time.
    """

    #: Canonical phase order for reports.
    PHASES = ("classify", "draw", "place", "ecc", "scrub")

    def __init__(self):
        self.seconds = {}
        self._stack = []

    @contextmanager
    def phase(self, name):
        """Time the enclosed block as ``name`` (exclusive of children)."""
        now = time.perf_counter()
        if self._stack:
            parent = self._stack[-1]
            self.seconds[parent[0]] = (self.seconds.get(parent[0], 0.0)
                                       + now - parent[1])
        self._stack.append([name, now])
        try:
            yield
        finally:
            entry = self._stack.pop()
            now = time.perf_counter()
            self.seconds[name] = (self.seconds.get(name, 0.0)
                                  + now - entry[1])
            if self._stack:
                self._stack[-1][1] = now

    def breakdown(self, total=None):
        """Ordered ``{phase: seconds}``; adds ``other``/``total`` rows
        when the run's total wall-time is known."""
        out = {name: self.seconds.get(name, 0.0)
               for name in self.PHASES if name in self.seconds}
        for name in self.seconds:
            if name not in out:
                out[name] = self.seconds[name]
        if total is not None:
            out["other"] = max(0.0, float(total) - sum(out.values()))
            out["total"] = float(total)
        return out


@dataclass
class MemsysResult:
    """Counters and rates of one engine run.

    ``raw_ber`` is the pre-correction bit-error rate observed at the
    sense amplifiers; ``uber`` counts the bits of words the ECC failed
    to correct (detected or silent) per bit read; ``word_fail_rate`` is
    the per-read-word uncorrectable probability.
    """

    config: Dict
    n_transactions: int = 0
    n_reads: int = 0
    n_writes: int = 0
    n_scrubs: int = 0
    bits_read: int = 0
    bits_written: int = 0
    write_errors: int = 0
    disturb_flips: int = 0
    retention_flips: int = 0
    sneak_flips: int = 0
    raw_bit_errors: int = 0
    uncorrectable_bit_errors: int = 0
    words_ok: int = 0
    words_corrected: int = 0
    words_detected: int = 0
    words_silent: int = 0
    scrub_corrected_words: int = 0
    scrub_uncorrectable_words: int = 0
    simulated_time: float = 0.0
    extras: Dict = field(default_factory=dict)

    @property
    def raw_ber(self):
        """Pre-ECC bit-error rate per bit read."""
        return (self.raw_bit_errors / self.bits_read
                if self.bits_read else 0.0)

    @property
    def uber(self):
        """Post-ECC uncorrectable bit-error rate per bit read."""
        return (self.uncorrectable_bit_errors / self.bits_read
                if self.bits_read else 0.0)

    @property
    def word_fail_rate(self):
        """Uncorrectable (detected + silent) words per word read."""
        if not self.n_reads:
            return 0.0
        return (self.words_detected + self.words_silent) / self.n_reads

    def summary_rows(self):
        """(headers, rows) of the headline metric table."""
        headers = ["metric", "value"]
        rows = [
            ("transactions", self.n_transactions),
            ("reads / writes", f"{self.n_reads} / {self.n_writes}"),
            ("raw BER (pre-ECC)", f"{self.raw_ber:.3e}"),
            ("post-ECC UBER", f"{self.uber:.3e}"),
            ("word fail rate", f"{self.word_fail_rate:.3e}"),
            ("words corrected", self.words_corrected),
            ("words detected uncorrectable", self.words_detected),
            ("words silently corrupt", self.words_silent),
            ("write errors injected", self.write_errors),
            ("read-disturb flips", self.disturb_flips),
            ("retention flips", self.retention_flips),
            ("half-select sneak flips", self.sneak_flips),
            ("scrubs (corrected words)",
             f"{self.n_scrubs} ({self.scrub_corrected_words})"),
        ]
        return headers, rows

    def to_experiment_result(self):
        """Render as an :class:`~repro.experiments.base.ExperimentResult`
        so :mod:`repro.reporting` and the report builder work for free.
        """
        headers, rows = self.summary_rows()
        return ExperimentResult(
            experiment_id="memsys",
            title=("System-level reliability: "
                   f"{self.config.get('workload', '?')} traffic, "
                   f"{self.config.get('ecc', '?')} ECC"),
            headers=headers,
            rows=rows,
            extras={"config": self.config, "raw_ber": self.raw_ber,
                    "uber": self.uber,
                    "word_fail_rate": self.word_fail_rate},
        )


def merge_results(results, config=None):
    """Merge per-shard (or per-chunk) results into one aggregate.

    Every counter field sums; ``simulated_time`` takes the maximum
    (shards run concurrently on real hardware, so elapsed simulated
    time is the longest shard's, not the sum). ``config`` defaults to
    the first result's config.

    Profile extras are *preserved*, not dropped: when every part
    carries ``extras["profile"]``, the merged result carries the
    per-phase totals summed across parts (``total`` then means
    aggregate engine-seconds, which can exceed wall-clock on parallel
    executors). A part without a profile poisons the merge — summing a
    partial profile would silently under-report — so the key is only
    present when it is complete.
    """
    results = list(results)
    if not results:
        raise ParameterError("merge_results needs at least one result")
    for result in results:
        if not isinstance(result, MemsysResult):
            raise ParameterError(
                f"results must be MemsysResult, got {type(result)!r}")
    merged = MemsysResult(config=dict(
        results[0].config if config is None else config))
    for spec in dataclass_fields(MemsysResult):
        if spec.name in ("config", "simulated_time", "extras"):
            continue
        setattr(merged, spec.name,
                sum(getattr(r, spec.name) for r in results))
    merged.simulated_time = max(r.simulated_time for r in results)
    profiles = [r.extras.get("profile") for r in results]
    if all(profile is not None for profile in profiles):
        combined = {}
        for profile in profiles:
            for phase, seconds in profile.items():
                combined[phase] = (combined.get(phase, 0.0)
                                   + float(seconds))
        merged.extras["profile"] = combined
    return merged


class ReliabilityEngine:
    """Workload-driven reliability engine over one array controller.

    Parameters
    ----------
    controller:
        :class:`~repro.memsys.controller.ArrayController`.
    workload:
        A workload from :mod:`repro.memsys.traffic` (or a registry name).
    scrub:
        A :class:`~repro.memsys.scrub.ScrubPolicy`; default no scrub.
    cycle_time:
        Seconds of simulated time per transaction — sets the retention
        exposure between accesses.
    writeback:
        Rewrite words whose read found a correctable error (through the
        write path, so the rewrite itself may inject an error).
    sampler:
        ``"bernoulli"`` (reference: one uniform per cell per mechanism)
        or ``"binomial"`` (rare-event fast path: class-grouped flip
        counts over bit-packed state). Statistically equivalent;
        ``expected_rates`` is identical under both.
    backend:
        Compute backend for the binomial fast path's hot kernels (see
        :mod:`repro.memsys.backends`): a registry name (``"numpy"`` /
        ``"numba"``), a backend instance, or ``None`` to consult
        ``REPRO_ENGINE_BACKEND`` and default to numpy. Resolved once at
        construction; a ``numba`` request degrades to numpy (warn once)
        when numba is absent. The bernoulli reference path never uses
        it.
    half_select_exposure:
        Half-selects accrued per cell per transaction — the cross-point
        sneak-path term (see :mod:`repro.memsys.topology`). Each batch
        draws extra flips against the controller's half-select disturb
        table with ``batch * exposure`` exposures per cell. The default
        0 skips the draw entirely, leaving 1T-1R draw streams
        untouched.
    """

    def __init__(self, controller, workload="random", scrub=None,
                 cycle_time=50e-9, writeback=True,
                 sampler="bernoulli", backend=None,
                 half_select_exposure=0.0):
        if not isinstance(controller, ArrayController):
            raise ParameterError(
                f"controller must be an ArrayController, got "
                f"{type(controller)!r}")
        require_positive(cycle_time, "cycle_time")
        self.controller = controller
        self.workload = (make_workload(workload)
                         if isinstance(workload, str) else workload)
        if not isinstance(self.workload, Workload):
            raise ParameterError(
                f"workload must be a Workload, got "
                f"{type(self.workload)!r}")
        self.scrub = no_scrub() if scrub is None else scrub
        self.cycle_time = float(cycle_time)
        self.writeback = bool(writeback)
        self.sampler = validate_sampler(sampler)
        self.backend = resolve_backend(backend)
        require_non_negative(half_select_exposure,
                             "half_select_exposure")
        self.half_select_exposure = float(half_select_exposure)

    def _config(self):
        config = {
            **self.controller.describe(),
            **self.workload.describe(),
            **self.scrub.describe(),
            "ecc": type(self.controller.ecc).__name__,
            "cycle_time_s": self.cycle_time,
            "writeback": self.writeback,
            "sampler": self.sampler,
            "backend": self.backend.name,
        }
        if self.half_select_exposure:
            config["half_select_exposure"] = self.half_select_exposure
        return config

    # -- Monte-Carlo mode ---------------------------------------------------

    def run(self, n_transactions, rng=None, batch_size=8192,
            progress=None, profile=False, checkpoint=None,
            checkpoint_every=None, resume=False):
        """Simulate ``n_transactions`` and return a :class:`MemsysResult`.

        Batches are split into *occurrence-rank rounds* — in round ``r``
        every word address appears at most once, so repeated accesses to
        the same word keep their exact sequential semantics while each
        round is a pure numpy array step. Coupling-class maps and
        retention exposure refresh at batch boundaries (the background
        data drifts slowly relative to a batch).

        The constructor's ``sampler`` selects how flips are drawn: the
        ``bernoulli`` reference draws one uniform per cell per
        mechanism; the ``binomial`` fast path draws per-class flip
        counts over bit-packed state. Both are deterministic under a
        seeded ``rng`` and statistically equivalent; their draw
        streams (and therefore individual seeded counters) differ.

        ``progress``, when given, is called after every batch as
        ``progress(transactions_done, n_transactions)``. It is also the
        cancellation point: raising
        :class:`~repro.errors.RunAborted` (or anything else) from the
        callback stops the run at that batch boundary — which is how
        the :mod:`repro.service` server streams progress and aborts
        abandoned queries. The callback never changes the draw stream,
        so a run with ``progress`` is bit-identical to one without.

        ``profile=True`` times the run's phases (classify / draw /
        place / ecc / scrub) and attaches the breakdown as
        ``result.extras["profile"]`` (seconds per phase, plus
        ``other``/``total``), so backend wins are attributable. Timing
        never touches the draw stream: a profiled run is bit-identical
        to an unprofiled one.

        ``checkpoint`` (a directory path, a
        :class:`~repro.resilience.checkpoint.CheckpointManager`, or a
        pre-built :class:`~repro.resilience.checkpoint.RunCheckpointer`)
        arms crash tolerance: the complete dynamic state — plane
        arrays, RNG generator state, counters, workload and scrub
        stream state — is snapshotted atomically at batch boundaries,
        at most every ``checkpoint_every`` transactions (default: every
        batch). With ``resume=True`` a matching checkpoint restores the
        run mid-stream and the completed result is byte-identical to
        the uninterrupted seeded run; a corrupt, stale, or absent
        checkpoint degrades to a clean restart with a counted
        :class:`~repro.errors.ResilienceWarning`. Saving never changes
        the draw stream: a checkpointed run is bit-identical to an
        unprotected one.
        """
        require_positive(n_transactions, "n_transactions")
        require_positive(batch_size, "batch_size")
        rng = np.random.default_rng(rng)
        ckpt = as_checkpointer(checkpoint, every=checkpoint_every)
        key = restored = identity = None
        if ckpt is not None:
            key = checkpoint_key((self._config(),
                                  int(n_transactions),
                                  int(batch_size)))
            # The run's identity record: every config field flattened,
            # plus the shape and a digest of the generator's *initial*
            # state (the seed's footprint — deliberately outside the
            # key, since resume restores the generator mid-stream, but
            # inside the identity so resuming with the wrong seed is a
            # named error rather than a silent seed swap).
            identity = {
                "n_transactions": int(n_transactions),
                "batch_size": int(batch_size),
                "seed_state": checkpoint_key(rng.bit_generator.state),
                **{str(k): v for k, v in self._config().items()},
            }
            if resume:
                restored = ckpt.restore(key, identity=identity)
                if restored is not None and restored.get("complete"):
                    return restored["result"]
        profiler = PhaseProfiler() if profile else None
        t0 = time.perf_counter()
        if self.sampler == "binomial":
            result = self._run_binomial(int(n_transactions), rng,
                                        int(batch_size), progress,
                                        profiler, ckpt, key, restored,
                                        identity)
        else:
            result = self._run_bernoulli(int(n_transactions), rng,
                                         int(batch_size), progress,
                                         profiler, ckpt, key, restored,
                                         identity)
        if profiler is not None:
            result.extras["profile"] = profiler.breakdown(
                total=time.perf_counter() - t0)
        return result

    # -- bernoulli reference path -------------------------------------------

    def _run_bernoulli(self, n_transactions, rng, batch_size,
                       progress=None, profiler=None, ckpt=None,
                       key=None, restored=None, identity=None):
        """One uniform per cell per mechanism over dense int8 state."""
        ctl = self.controller
        words = ctl.words
        rows, cols = ctl.layout.rows, ctl.layout.cols

        if restored is not None:
            # Resume mid-stream: the saved RNG state already accounts
            # for every draw up to the checkpointed boundary (including
            # initial_bits), so nothing is drawn here.
            intended = np.asarray(restored["intended"], dtype=np.int8)
            actual = np.asarray(restored["actual"], dtype=np.int8)
            self.workload = restored["workload"]
            self.scrub = restored["scrub"]
            self.workload.bind(words)
            result = restored["result"]
            now = float(restored["now"])
            remaining = int(restored["remaining"])
            rng.bit_generator.state = restored["rng_state"]
        else:
            intended = np.zeros(rows * cols, dtype=np.int8)
            initial = self.workload.initial_bits(rows, cols, rng)
            intended[:] = np.asarray(initial,
                                     dtype=np.int8).reshape(-1)
            actual = intended.copy()
            self.workload.bind(words)
            self.workload.reset()
            self.scrub.reset()
            result = MemsysResult(config=self._config())
            now = 0.0
            remaining = int(n_transactions)
        data_positions = ctl.ecc.data_positions
        while remaining > 0:
            n = min(int(batch_size), remaining)
            remaining -= n
            batch = self.workload.batch(n, words.n_words, rng)
            with _prof(profiler, "classify"):
                nd, ng = ctl.class_maps(actual)

            # Retention exposure accrued over this batch's window; a
            # due scrub repairs the accumulation *before* the window's
            # accesses observe it.
            dt = n * self.cycle_time
            now += dt
            with _prof(profiler, "draw"):
                p_ret = ctl.retention_flip_probability(actual, nd, ng,
                                                       dt)
                flips = (rng.random(actual.shape)
                         < p_ret).astype(np.int8)
            with _prof(profiler, "place"):
                actual ^= flips
            result.retention_flips += int(flips.sum())
            if self.half_select_exposure > 0.0:
                # Cross-point sneak term: every cell accrued ~exposure
                # half-selects per transaction of this batch's window.
                with _prof(profiler, "draw"):
                    p_hs = ctl.half_select_probability(
                        actual, nd, ng,
                        n * self.half_select_exposure)
                    sneak = (rng.random(actual.shape)
                             < p_hs).astype(np.int8)
                with _prof(profiler, "place"):
                    actual ^= sneak
                result.sneak_flips += int(sneak.sum())
            if self.scrub.due(now):
                with _prof(profiler, "scrub"):
                    self._run_scrub(intended, actual, rng, result)
                self.scrub.mark_done(now)

            rank = _occurrence_rank(batch.word)
            for r in range(int(rank.max()) + 1 if len(batch) else 0):
                sel = rank == r
                self._apply_round(
                    batch.word[sel], batch.is_write[sel], intended,
                    actual, nd, ng, data_positions, rng, result,
                    profiler)

            result.n_transactions += n
            if ckpt is not None and remaining > 0:
                ckpt.maybe_save(result.n_transactions, lambda: {
                    "key": key, "identity": identity,
                    "rng_state": rng.bit_generator.state,
                    "intended": intended, "actual": actual,
                    "workload": self.workload, "scrub": self.scrub,
                    "result": result, "now": now,
                    "remaining": remaining})
            if progress is not None:
                progress(result.n_transactions, n_transactions)

        result.simulated_time = now
        if ckpt is not None:
            ckpt.finalize(key, result, identity=identity)
        return result

    def _apply_round(self, round_words, is_write, intended, actual,
                     nd, ng, data_positions, rng, result,
                     profiler=None):
        """One round: every word in ``round_words`` is unique."""
        ctl = self.controller
        words = ctl.words
        ecc = ctl.ecc

        w_words = round_words[is_write]
        result.n_writes += int(w_words.size)
        if w_words.size:
            data = self._write_data(w_words, words, data_positions, rng)
            with _prof(profiler, "ecc"):
                cw = ecc.encode(data)
            cells = words.cells[w_words]
            with _prof(profiler, "draw"):
                p_wr = ctl.write_error_probability(cw, nd[cells],
                                                   ng[cells])
                errs = (rng.random(cw.shape) < p_wr).astype(np.int8)
            with _prof(profiler, "place"):
                intended[cells] = cw
                actual[cells] = cw ^ errs
            result.bits_written += int(cw.size)
            result.write_errors += int(errs.sum())

        # Reads: sense, classify via ECC, write back correctables, then
        # apply the disturb of the read current to the stored state.
        r_words = round_words[~is_write]
        result.n_reads += int(r_words.size)
        if r_words.size:
            cells = words.cells[r_words]
            with _prof(profiler, "ecc"):
                wrong = actual[cells] != intended[cells]
                n_err = wrong.sum(axis=1)
                outcomes = ecc.classify_errors(n_err)
                result.bits_read += int(cells.size)
                result.raw_bit_errors += int(n_err.sum())
                uncorr = outcomes >= DecodeOutcome.DETECTED
                result.uncorrectable_bit_errors += int(
                    n_err[uncorr].sum())
                result.words_ok += int(
                    (outcomes == DecodeOutcome.OK).sum())
                corrected = outcomes == DecodeOutcome.CORRECTED
                result.words_corrected += int(corrected.sum())
                result.words_detected += int(
                    (outcomes == DecodeOutcome.DETECTED).sum())
                result.words_silent += int(
                    (outcomes == DecodeOutcome.SILENT).sum())
            if self.writeback and np.any(corrected):
                with _prof(profiler, "place"):
                    self._rewrite(cells[corrected], intended, actual,
                                  nd, ng, rng, result)
            with _prof(profiler, "draw"):
                p_rd = ctl.disturb_probability(
                    actual[cells], nd[cells], ng[cells])
                flips = (rng.random(cells.shape) < p_rd).astype(np.int8)
            with _prof(profiler, "place"):
                actual[cells] ^= flips
            result.disturb_flips += int(flips.sum())

    def _write_data(self, uniq_words, word_map, data_positions, rng):
        """Data stored by a batch of writes (pattern-aware)."""
        if isinstance(self.workload, StressPatternWorkload):
            return self.workload.background_data(
                uniq_words, word_map, data_positions)
        return self.workload.write_data(
            uniq_words, self.controller.ecc.n_data, rng)

    def _rewrite(self, cells, intended, actual, nd, ng, rng, result):
        """Rewrite whole words through the (fallible) write path."""
        cw = intended[cells]
        p_wr = self.controller.write_error_probability(
            cw, nd[cells], ng[cells])
        errs = (rng.random(cw.shape) < p_wr).astype(np.int8)
        actual[cells] = cw ^ errs
        result.bits_written += int(cw.size)
        result.write_errors += int(errs.sum())

    def _run_scrub(self, intended, actual, rng, result):
        """One scrub pass over every word."""
        ctl = self.controller
        cells = ctl.words.cells
        nd, ng = ctl.class_maps(actual)
        n_err = (actual[cells] != intended[cells]).sum(axis=1)
        outcomes = ctl.ecc.classify_errors(n_err)
        fixable = ((outcomes == DecodeOutcome.CORRECTED)
                   | (outcomes == DecodeOutcome.OK)) & (n_err > 0)
        result.n_scrubs += 1
        result.scrub_corrected_words += int(fixable.sum())
        result.scrub_uncorrectable_words += int(
            (outcomes >= DecodeOutcome.DETECTED).sum())
        if np.any(fixable):
            self._rewrite(cells[fixable], intended, actual, nd, ng,
                          rng, result)

    # -- binomial fast path -------------------------------------------------
    #
    # Same batch/round structure as the reference, but flips are drawn
    # per coupling class (50 binomials instead of one uniform per
    # cell), state is bit-packed, class maps refresh incrementally, and
    # an exact array-wide wrong-bit counter short-circuits the common
    # all-clean read case. One deliberate second-order difference: the
    # reference recomputes class maps inside a scrub pass for its
    # rewrites, the fast path reuses the batch's maps — at rare-event
    # rates the maps differ only at the handful of freshly flipped
    # cells.

    def _run_binomial(self, n_transactions, rng, batch_size,
                      progress=None, profiler=None, ckpt=None,
                      key=None, restored=None, identity=None):
        """Class-grouped binomial draws over bit-packed planes."""
        ctl = self.controller
        words = ctl.words
        rows, cols = ctl.layout.rows, ctl.layout.cols
        backend = self.backend

        if restored is not None:
            # Resume mid-stream: planes and exact error counters come
            # from the snapshot; the class maps are a pure function of
            # the actual plane and rebuild from it (the loop refreshes
            # them at the batch boundary anyway).
            intended = restored["intended"]
            actual = restored["actual"]
            state = _PackedState(
                intended, actual,
                IncrementalClassMaps(rows, cols, actual,
                                     backend=backend),
                ctl, backend=backend)
            state.err_count = np.asarray(restored["err_count"],
                                         dtype=np.int16)
            state.wrong_bits = int(restored["wrong_bits"])
            self.workload = restored["workload"]
            self.scrub = restored["scrub"]
            self.workload.bind(words)
            result = restored["result"]
            now = float(restored["now"])
            remaining = int(restored["remaining"])
            rng.bit_generator.state = restored["rng_state"]
        else:
            initial = self.workload.initial_bits(rows, cols, rng)
            flat = np.asarray(initial, dtype=np.int8).reshape(-1)
            intended = BitPlane.from_bits(flat, words.n_words,
                                          ctl.ecc.n_code)
            state = _PackedState(intended, intended.copy(),
                                 IncrementalClassMaps(rows, cols,
                                                      intended,
                                                      backend=backend),
                                 ctl, backend=backend)
            self.workload.bind(words)
            self.workload.reset()
            self.scrub.reset()
            result = MemsysResult(config=self._config())
            now = 0.0
            remaining = int(n_transactions)
        data_positions = ctl.ecc.data_positions
        while remaining > 0:
            n = min(int(batch_size), remaining)
            remaining -= n
            batch = self.workload.batch(n, words.n_words, rng)
            with _prof(profiler, "classify"):
                state.maps.refresh(state.actual)

            dt = n * self.cycle_time
            now += dt
            with _prof(profiler, "draw"):
                flips = sample_class_flips(
                    state.maps.class_idx,
                    ctl.retention_class_probability(dt), rng,
                    hist=state.maps.hist, backend=backend)
            if flips.size:
                with _prof(profiler, "place"):
                    state.toggle(flips)
            result.retention_flips += int(flips.size)
            if self.half_select_exposure > 0.0:
                with _prof(profiler, "draw"):
                    sneak = sample_class_flips(
                        state.maps.class_idx,
                        ctl.half_select_class_probability(
                            n * self.half_select_exposure), rng,
                        hist=state.maps.hist, backend=backend)
                if sneak.size:
                    with _prof(profiler, "place"):
                        state.toggle(sneak)
                result.sneak_flips += int(sneak.size)
            if self.scrub.due(now):
                with _prof(profiler, "scrub"):
                    self._run_scrub_binomial(state, rng, result)
                self.scrub.mark_done(now)

            rank = _occurrence_rank(batch.word)
            for r in range(int(rank.max()) + 1 if len(batch) else 0):
                sel = rank == r
                self._apply_round_binomial(
                    batch.word[sel], batch.is_write[sel], state,
                    data_positions, rng, result, profiler)

            result.n_transactions += n
            if ckpt is not None and remaining > 0:
                ckpt.maybe_save(result.n_transactions, lambda: {
                    "key": key, "identity": identity,
                    "rng_state": rng.bit_generator.state,
                    "intended": state.intended,
                    "actual": state.actual,
                    "err_count": state.err_count,
                    "wrong_bits": state.wrong_bits,
                    "workload": self.workload, "scrub": self.scrub,
                    "result": result, "now": now,
                    "remaining": remaining})
            if progress is not None:
                progress(result.n_transactions, n_transactions)

        result.simulated_time = now
        if ckpt is not None:
            ckpt.finalize(key, result, identity=identity)
        return result

    def _apply_round_binomial(self, round_words, is_write, state,
                              data_positions, rng, result,
                              profiler=None):
        """One unique-word round over the packed state."""
        ctl = self.controller
        words = ctl.words
        ecc = ctl.ecc
        maps = state.maps

        w_words = round_words[is_write]
        result.n_writes += int(w_words.size)
        if w_words.size:
            data = self._write_data(w_words, words, data_positions, rng)
            with _prof(profiler, "ecc"):
                cw = ecc.encode(data)
            cells = words.cells[w_words].reshape(-1)
            cw_flat = cw.reshape(-1)
            with _prof(profiler, "draw"):
                flips = sample_thinned_flips(
                    cells.size, state.wer_p,
                    lambda cand: maps.cell_classes(cw_flat[cand],
                                                   cells[cand]),
                    rng, p_max=state.wer_pmax)
            with _prof(profiler, "place"):
                state.write_words(w_words, cw, cells[flips])
            result.bits_written += int(cw.size)
            result.write_errors += int(flips.size)

        r_words = round_words[~is_write]
        result.n_reads += int(r_words.size)
        if r_words.size:
            cells = words.cells[r_words].reshape(-1)
            result.bits_read += int(cells.size)
            if state.wrong_bits:
                with _prof(profiler, "ecc"):
                    self._book_read_errors(r_words, state, rng, result)
            else:
                # No mismatched bit anywhere in the array: every read
                # is clean without touching any per-word array.
                result.words_ok += int(r_words.size)
            # Disturb of the read current: candidates are classified
            # lazily, from the post-rewrite stored bits.
            actual = state.actual
            with _prof(profiler, "draw"):
                flips = sample_thinned_flips(
                    cells.size, state.disturb_p,
                    lambda cand: maps.cell_classes(
                        actual.get_cells(cells[cand]), cells[cand]),
                    rng, p_max=state.disturb_pmax)
            if flips.size:
                with _prof(profiler, "place"):
                    state.toggle(cells[flips])
            result.disturb_flips += int(flips.size)

    def _book_read_errors(self, r_words, state, rng, result):
        """ECC bookkeeping for a read round with live errors present."""
        ecc = self.controller.ecc
        n_err = state.err_count[r_words]
        outcomes = ecc.classify_errors(n_err)
        by_outcome = np.bincount(outcomes, minlength=4)
        result.raw_bit_errors += int(n_err.sum())
        result.words_ok += int(by_outcome[DecodeOutcome.OK])
        result.words_corrected += int(
            by_outcome[DecodeOutcome.CORRECTED])
        result.words_detected += int(by_outcome[DecodeOutcome.DETECTED])
        result.words_silent += int(by_outcome[DecodeOutcome.SILENT])
        if by_outcome[DecodeOutcome.DETECTED] or by_outcome[
                DecodeOutcome.SILENT]:
            uncorr = outcomes >= DecodeOutcome.DETECTED
            result.uncorrectable_bit_errors += int(n_err[uncorr].sum())
        if self.writeback and by_outcome[DecodeOutcome.CORRECTED]:
            corrected = outcomes == DecodeOutcome.CORRECTED
            self._rewrite_binomial(r_words[corrected], state, rng,
                                   result)

    def _rewrite_binomial(self, word_idx, state, rng, result):
        """Rewrite whole words through the (fallible) write path."""
        ctl = self.controller
        cells = ctl.words.cells[word_idx].reshape(-1)
        maps = state.maps
        intended = state.intended
        flips = sample_thinned_flips(
            cells.size, state.wer_p,
            lambda cand: maps.cell_classes(
                intended.get_cells(cells[cand]), cells[cand]),
            rng, p_max=state.wer_pmax)
        state.restore_words(word_idx, cells[flips])
        result.bits_written += int(cells.size)
        result.write_errors += int(flips.size)

    def _run_scrub_binomial(self, state, rng, result):
        """One scrub pass over the maintained per-word error counts."""
        ctl = self.controller
        n_err = state.err_count
        outcomes = ctl.ecc.classify_errors(n_err)
        fixable = ((outcomes == DecodeOutcome.CORRECTED)
                   | (outcomes == DecodeOutcome.OK)) & (n_err > 0)
        result.n_scrubs += 1
        result.scrub_corrected_words += int(fixable.sum())
        result.scrub_uncorrectable_words += int(
            (outcomes >= DecodeOutcome.DETECTED).sum())
        if np.any(fixable):
            self._rewrite_binomial(np.flatnonzero(fixable), state, rng,
                                   result)

    # -- expectation mode ---------------------------------------------------

    def expected_rates(self, rng=None):
        """Noise-free expected rates over one write->read cycle per word.

        Against the workload's (seeded) background data, every mapped
        cell accrues a write error, one read disturb, and the retention
        exposure of one ``cycle_time``; the per-word uncorrectable
        probability follows from the exact Poisson-binomial head::

            P0 = prod(1 - p_i),  P1 = P0 * sum(p_i / (1 - p_i))

        Returns a dict with ``raw_ber``, ``word_fail_rate`` and ``uber``
        (expected uncorrected wrong bits per bit read).
        """
        ctl = self.controller
        rows, cols = ctl.layout.rows, ctl.layout.cols
        rng = np.random.default_rng(rng)
        bits = np.asarray(self.workload.initial_bits(rows, cols, rng),
                          dtype=np.int8).reshape(-1)
        nd, ng = ctl.class_maps(bits)
        cells = ctl.words.cells
        b = bits[cells]
        p_wr = ctl.write_error_probability(b, nd[cells], ng[cells])
        p_rd = ctl.disturb_probability(b, nd[cells], ng[cells])
        p_ret = ctl.retention_flip_probability(
            b, nd[cells], ng[cells], self.cycle_time)
        p = 1.0 - (1.0 - p_wr) * (1.0 - p_rd) * (1.0 - p_ret)
        if self.half_select_exposure > 0.0:
            p_hs = ctl.half_select_probability(
                b, nd[cells], ng[cells], self.half_select_exposure)
            p = 1.0 - (1.0 - p) * (1.0 - p_hs)
        p = np.clip(p, 0.0, 1.0 - 1e-12)

        p0 = np.prod(1.0 - p, axis=1)
        p1 = p0 * np.sum(p / (1.0 - p), axis=1)
        sum_p = p.sum(axis=1)
        if isinstance(ctl.ecc, NoECC):
            # No redundancy: every wrong bit reaches the user.
            uncorrected = sum_p
            word_fail = 1.0 - p0
        else:
            # SEC-DED: single errors vanish, everything else survives.
            uncorrected = sum_p - p1
            word_fail = 1.0 - p0 - p1
        total_bits = p.size
        return {
            "raw_ber": float(sum_p.sum() / total_bits),
            "word_fail_rate": float(word_fail.mean()),
            "uber": float(uncorrected.sum() / total_bits),
        }


class _PackedState:
    """Packed planes + class maps + exact per-word error counters.

    ``err_count[w]`` tracks, exactly, how many cells of word ``w``
    currently disagree with their intended value; ``wrong_bits`` is its
    array-wide total. Both are maintained at every mutation — O(flips)
    each — so a read books its error count with one int gather and, at
    rare-event operating points (where ``wrong_bits`` is almost always
    zero), without touching any per-word array at all. The packed
    planes stay the ground truth: ``BitPlane.diff_counts`` (XOR +
    popcount) must agree with ``err_count`` at any instant, which the
    equivalence tests assert.
    """

    def __init__(self, intended, actual, maps, controller,
                 backend=None):
        self.intended = intended
        self.actual = actual
        self.maps = maps
        self.backend = backend
        self.err_count = np.zeros(intended.n_words, dtype=np.int16)
        self.wrong_bits = 0
        # Run-scoped clipped copies of the controller's fixed per-class
        # tables (plus their maxima), so the thinned draws skip a table
        # scan per call without leaking state onto the engine.
        self.wer_p = np.clip(controller.wer_class_probability(),
                             0.0, 1.0)
        self.wer_pmax = float(self.wer_p.max())
        self.disturb_p = np.clip(
            controller.disturb_class_probability(), 0.0, 1.0)
        self.disturb_pmax = float(self.disturb_p.max())

    def toggle(self, flat_idx):
        """Flip ``actual`` at flat cells (duplicate-free indices)."""
        if self.backend is not None:
            delta = self.backend.toggle_and_count(
                self.intended, self.actual, flat_idx, self.err_count)
            if delta is not None:
                # The fused kernel performed the toggles itself.
                self.wrong_bits += int(delta)
                return
        mapped = flat_idx[flat_idx < self.actual.n_mapped]
        if mapped.size:
            wrong_before = (self.actual.get_cells(mapped)
                            != self.intended.get_cells(mapped))
            delta = (1 - 2 * wrong_before.astype(np.int16))
            np.add.at(self.err_count,
                      mapped // self.actual.code_bits, delta)
            self.wrong_bits += int(delta.sum())
        self.actual.toggle_cells(flat_idx)

    def write_words(self, word_idx, cw, flip_cells):
        """``intended = actual = cw``, then inject errors at
        ``flip_cells`` (flat cell indices inside the written words)."""
        self.wrong_bits -= int(self.err_count[word_idx].sum())
        self.err_count[word_idx] = 0
        self.intended.set_words(word_idx, cw)
        self.actual.set_words(word_idx, cw)
        self._inject(flip_cells)

    def restore_words(self, word_idx, flip_cells):
        """``actual = intended`` for whole words, plus write errors."""
        self.wrong_bits -= int(self.err_count[word_idx].sum())
        self.err_count[word_idx] = 0
        self.actual.lanes[word_idx] = self.intended.lanes[word_idx]
        self._inject(flip_cells)

    def _inject(self, flip_cells):
        if not flip_cells.size:
            return
        if self.backend is not None:
            injected = self.backend.inject_and_count(
                self.actual, flip_cells, self.err_count)
            if injected is not None:
                self.wrong_bits += int(injected)
                return
        self.actual.toggle_cells(flip_cells)
        np.add.at(self.err_count,
                  flip_cells // self.actual.code_bits,
                  np.int16(1))
        self.wrong_bits += int(flip_cells.size)


def build_engine(device, pitch, rows=64, cols=64, ecc="secded",
                 workload="random", data_bits=64, scrub=None,
                 vp=0.95, nominal_wer=2e-3, read_voltage=0.15,
                 t_read=20e-9, cycle_time=50e-9, temperature=None,
                 writeback=True, sampler="bernoulli", backend=None,
                 sense=None, topology=None, banks=None, subarrays=None,
                 half_select_exposure=0.0):
    """Convenience factory: device + knobs -> a reliability engine.

    ``ecc`` and ``workload`` accept registry names (see
    :data:`repro.memsys.ecc.ECC_SCHEMES` and
    :data:`repro.memsys.traffic.WORKLOADS`); ``sampler`` selects the
    Monte-Carlo draw strategy (see :data:`repro.memsys.sampling.\
SAMPLERS` — use ``"binomial"`` for rare-event operating points);
    ``backend`` selects the fast path's compute backend (see
    :data:`repro.memsys.backends.BACKENDS`; default consults
    ``REPRO_ENGINE_BACKEND``, then numpy); ``sense`` optionally gates
    reads through a :class:`~repro.memsys.sense.SenseMarginModel`.

    ``topology``/``banks``/``subarrays`` select the array organization
    (see :data:`repro.memsys.topology.TOPOLOGIES`): the default flat
    1x1 case returns a plain :class:`ReliabilityEngine`; anything
    sharded (or any explicit non-flat ``topology``) returns a
    :class:`~repro.memsys.topology.TopologyEngine` over ``rows x
    cols`` tiled into banks x subarrays.
    """
    from ..arrays.layout import ArrayLayout
    if not isinstance(device, MTJDevice):
        raise ParameterError(
            f"device must be an MTJDevice, got {type(device)!r}")
    n_banks = 1 if banks is None else int(banks)
    n_subarrays = 1 if subarrays is None else int(subarrays)
    if (topology is not None and str(topology) != "flat") \
            or n_banks != 1 or n_subarrays != 1:
        from .topology import ArrayTopology, TopologyEngine
        topo = ArrayTopology(
            kind="banked" if topology is None else topology,
            banks=n_banks, subarrays=n_subarrays, rows=rows,
            cols=cols)
        return TopologyEngine(
            device, topo, pitch=pitch, ecc=ecc, workload=workload,
            data_bits=data_bits, scrub=scrub, vp=vp,
            nominal_wer=nominal_wer, read_voltage=read_voltage,
            t_read=t_read, cycle_time=cycle_time,
            temperature=temperature, writeback=writeback,
            sampler=sampler, backend=backend, sense=sense)
    layout = ArrayLayout(pitch=pitch, rows=rows, cols=cols)
    ecc_obj = make_ecc(ecc, data_bits=data_bits) if isinstance(
        ecc, str) else ecc
    controller = ArrayController(
        device, layout, ecc_obj, vp=vp, nominal_wer=nominal_wer,
        read_voltage=read_voltage, t_read=t_read,
        temperature=temperature, sense=sense)
    return ReliabilityEngine(controller, workload=workload, scrub=scrub,
                             cycle_time=cycle_time, writeback=writeback,
                             sampler=sampler, backend=backend,
                             half_select_exposure=half_select_exposure)


def _occurrence_rank(words):
    """Occurrence index of every element within its equal-value group.

    ``_occurrence_rank([7, 3, 7, 7, 3]) == [0, 0, 1, 2, 1]`` — the r-th
    access to each word lands in round ``r``, preserving the sequential
    semantics of repeated accesses without a per-transaction loop.
    """
    n = words.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(words, kind="stable")
    sorted_words = words[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_words[1:], sorted_words[:-1],
                 out=new_group[1:])
    starts = np.maximum.accumulate(
        np.where(new_group, np.arange(n), 0))
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n) - starts
    return rank
