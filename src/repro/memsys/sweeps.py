"""Pitch x pattern x ECC reliability sweeps — the paper's density axis
carried to the system level.

The paper's Figs. 5/6 show the device-level cost of shrinking the pitch;
these sweeps show its system-level analogue: the pitch at which SEC-DED
stops hiding the coupling-induced error inflation. Rates come from the
engine's noise-free expectation mode so the monotone coupling trend is
not buried under Monte-Carlo noise.

Both sweeps run on the generic :mod:`repro.sweep` engine: the parameter
grid is a :class:`~repro.sweep.spec.SweepSpec`, the per-point evaluation
is a module-level function (so process pools — and the spool-directory
workers of the ``distributed`` executor — can pickle it), and result
order is the spec's enumeration order for every executor — which is why
``executor="process"`` (or ``"distributed"``, fanning the dense pitch
grids of the paper's density claims out across machines) produces
byte-identical tables to the serial baseline for the same seed.

Sampler contract: expectation mode draws nothing, so these sweeps are
*bit-identical* under every ``sampler=`` engine kwarg — passing
``sampler="binomial"`` through ``engine_kwargs`` is valid (and what the
CLI does), it simply cannot change the numbers. Monte-Carlo runs at the
sweep's operating points are where the sampler matters; see
:mod:`repro.memsys.sampling`. The same holds for ``backend=`` (see
:mod:`repro.memsys.backends`): expectation mode never enters the
binomial hot loop, and the backend kernels are bit-exact against the
numpy reference anyway — but the kwarg travels to every worker as a
plain registry *name*, so distributed workers resolve it (or the
``REPRO_ENGINE_BACKEND`` environment) in their own process, falling
back to numpy wherever numba is missing.

Topology contract: ``topology=``/``banks=``/``subarrays=`` ride
``engine_kwargs`` into :func:`~repro.memsys.engine.build_engine`, so a
sweep can price a banked or cross-point organization point-for-point
(each point evaluates the sharded expectation of
:meth:`~repro.memsys.topology.TopologyEngine.expected_rates`); a 1x1
banked grid is bit-identical to the flat grid.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from ..arrays.kernel_store import get_kernel_store
from ..errors import ParameterError
from ..experiments.base import Comparison, ExperimentResult
from ..sweep import SweepRunner, SweepSpec, executor_for_jobs
from ..validation import require_positive
from .engine import build_engine

#: Default pitch multiples, densest last (paper evaluates 1.5x-3x eCD).
DEFAULT_PITCH_RATIOS = (3.0, 2.5, 2.0, 1.75, 1.5)

#: Default data patterns covering the stress corners and the mean case.
DEFAULT_PATTERNS = ("random", "checkerboard", "solid0")

SWEEP_HEADERS = ["pitch", "(nm)", "pattern", "ecc", "raw BER",
                 "word fail", "UBER"]


def _rates_point(device, rows, cols, seed, engine_kwargs, pattern, ecc,
                 ratio):
    """Expected rates of one (pattern, ecc, ratio) grid point.

    Module-level so the process executors can pickle it; each worker
    re-derives the engine from the (picklable) device and warms its own
    process-wide kernel store.
    """
    require_positive(ratio, "pitch ratio")
    engine = build_engine(
        device, pitch=ratio * device.params.ecd, rows=rows, cols=cols,
        ecc=ecc, workload=pattern, **engine_kwargs)
    rates = engine.expected_rates(rng=seed)
    return (rates["raw_ber"], rates["word_fail_rate"], rates["uber"])


def uber_sweep(device, pitch_ratios=DEFAULT_PITCH_RATIOS,
               patterns=DEFAULT_PATTERNS, eccs=("none", "secded"),
               rows=64, cols=64, seed=0, jobs=None, executor=None,
               progress=None, **engine_kwargs):
    """Expected UBER over pitch x pattern x ECC.

    Returns an :class:`~repro.experiments.base.ExperimentResult` whose
    rows are ``(ratio, pitch_nm, pattern, ecc, raw_ber, word_fail,
    uber)`` and whose comparisons assert the headline system-level
    claims: UBER rises as pitch shrinks, and SEC-DED buys orders of
    magnitude at every density.

    ``jobs`` > 1 (or an explicit ``executor`` from
    :data:`repro.sweep.EXECUTORS`) distributes the grid over a process
    pool; results are identical to the serial run for the same ``seed``.
    ``progress`` (a ``progress(done, total)`` callable) is forwarded to
    the :class:`~repro.sweep.runner.SweepRunner` — raise
    :class:`~repro.errors.RunAborted` from it to cancel at the next
    point boundary. ``engine_kwargs`` pass through to
    :func:`repro.memsys.engine.build_engine` (vp, nominal_wer, ...).
    """
    pitch_ratios = [float(r)
                    for r in np.atleast_1d(np.asarray(pitch_ratios))]
    if not pitch_ratios:
        raise ParameterError("pitch_ratios must not be empty")
    for ratio in pitch_ratios:
        require_positive(ratio, "pitch ratio")
    # Bind once: these are iterated again below (table/series assembly
    # and comparisons), which would silently exhaust a generator.
    patterns = list(patterns)
    eccs = list(eccs)
    ecd = device.params.ecd
    spec = SweepSpec.product(pattern=patterns, ecc=eccs,
                             ratio=pitch_ratios)
    func = partial(_rates_point, device, rows, cols, seed,
                   engine_kwargs)
    executor = executor or executor_for_jobs(jobs, n_points=len(spec))
    sweep_result = SweepRunner(func, executor=executor, jobs=jobs,
                               progress=progress).run(spec)

    rows_out = []
    series = {}
    uber_by_key = {}
    # (pattern, ecc, ratio) grid, ratio fastest — matches the spec.
    grid = sweep_result.values_array(dtype=float)
    for i, pattern in enumerate(patterns):
        for j, ecc in enumerate(eccs):
            ubers = grid[i, j, :, 2]
            for r, ratio in enumerate(pitch_ratios):
                raw_ber, word_fail, uber = grid[i, j, r]
                rows_out.append((
                    f"{ratio:g}x", ratio * ecd * 1e9, pattern, ecc,
                    raw_ber, word_fail, uber))
            key = (pattern, ecc)
            uber_by_key[key] = np.array(ubers)
            series[f"UBER {pattern}/{ecc}"] = (
                np.array(pitch_ratios), uber_by_key[key])

    comparisons = _sweep_comparisons(patterns, eccs, pitch_ratios,
                                     uber_by_key)
    return ExperimentResult(
        experiment_id="memsys_sweep",
        title=("System-level UBER vs pitch (expectation mode, "
               f"{rows}x{cols} array)"),
        headers=SWEEP_HEADERS,
        rows=rows_out,
        series=series,
        comparisons=comparisons,
        extras={"pitch_ratios": list(pitch_ratios),
                "patterns": list(patterns), "eccs": list(eccs),
                "uber": {f"{p}/{e}": v.tolist()
                         for (p, e), v in uber_by_key.items()},
                "sweep": sweep_result.describe()},
    )


def _sweep_comparisons(patterns, eccs, pitch_ratios, uber_by_key):
    """The reproduction criteria of the sweep.

    The paper's coupling claims are worst-corner claims (NP8 = 0/255),
    and so are their system-level analogues: the *worst-case-pattern*
    UBER rises monotonically as pitch shrinks and the pattern envelope
    (worst / best UBER) widens. The mean (random-data) effect is a
    fraction of a percent — reported in the table, not asserted.
    """
    comparisons = []
    densest, widest = pitch_ratios[-1], pitch_ratios[0]
    for ecc in eccs:
        stack = np.array([uber_by_key[(p, ecc)] for p in patterns])
        worst = stack.max(axis=0)
        if np.all(worst > 0.0):
            rises = bool(np.all(np.diff(worst) > 0.0))
            comparisons.append(Comparison(
                metric=f"worst-pattern UBER rises as pitch shrinks "
                       f"({ecc})",
                paper=1.0,
                measured=float(rises),
                passed=rises,
                note="system-level analogue of Fig. 5/6"))
            comparisons.append(Comparison(
                metric=(f"worst-pattern UBER inflation "
                        f"{widest:g}x->{densest:g}x ({ecc})"),
                paper=None,
                measured=float(worst[-1] / worst[0]),
                passed=worst[-1] > worst[0],
                note="density cost at the system level"))
        if len(patterns) > 1 and np.all(stack > 0.0):
            envelope = worst / stack.min(axis=0)
            widens = bool(np.all(np.diff(envelope) > 0.0))
            comparisons.append(Comparison(
                metric=f"pattern envelope widens as pitch shrinks "
                       f"({ecc})",
                paper=1.0,
                measured=float(widens),
                passed=widens,
                note="worst/best-pattern UBER ratio, the Fig. 5 "
                     "spread in UBER space"))
    if "secded" in eccs and "none" in eccs:
        gains = [uber_by_key[(p, "none")] / uber_by_key[(p, "secded")]
                 for p in patterns
                 if np.all(uber_by_key[(p, "secded")] > 0.0)]
        min_gain = float(np.min(gains)) if gains else float("inf")
        comparisons.append(Comparison(
            metric="min SEC-DED gain (raw/post UBER)",
            paper=None,
            measured=min_gain,
            passed=min_gain > 1.0,
            note="ECC must help at every pitch and pattern"))
    return comparisons


def secded_margin_pitch(device, uber_target, pattern="solid0",
                        ratios=np.linspace(3.0, 1.5, 13), rows=64,
                        cols=64, seed=0, jobs=None, executor=None,
                        **engine_kwargs):
    """Densest pitch ratio where SEC-DED still meets ``uber_target``.

    Scans from the widest ratio down and returns ``(ratio, uber)`` of
    the last point meeting the target before the first miss, or
    ``(None, uber_at_widest)`` when even the widest pitch misses it —
    the quantitative form of "the pitch at which SEC-DED stops hiding
    coupling-induced WER". Raises
    :class:`~repro.errors.ParameterError` for an empty ``ratios``.

    The candidate points are evaluated through the sweep engine
    (``jobs``/``executor`` as in :func:`uber_sweep`); the scan over the
    results preserves the sequential early-stop semantics exactly.
    """
    require_positive(uber_target, "uber_target")
    ratios = [float(r) for r in np.atleast_1d(np.asarray(ratios))]
    if not ratios:
        raise ParameterError("ratios must not be empty")
    func = partial(_rates_point, device, rows, cols, seed,
                   engine_kwargs)
    executor = executor or executor_for_jobs(jobs,
                                             n_points=len(ratios))
    if executor == "serial":
        # Lazy scan: stop at the first miss, like the pre-engine loop.
        # This path bypasses SweepRunner, so it persists its own
        # kernels (SweepRunner.run flushes for every other path).
        first_uber = None
        last = None
        for ratio in ratios:
            uber = func(pattern=pattern, ecc="secded", ratio=ratio)[2]
            if first_uber is None:
                first_uber = uber
            if uber <= uber_target:
                last = (ratio, uber)
            else:
                break
        get_kernel_store().flush_disk()
        return last if last is not None else (None, first_uber)

    spec = SweepSpec.product(pattern=[pattern], ecc=["secded"],
                             ratio=ratios)
    result = SweepRunner(func, executor=executor, jobs=jobs).run(spec)
    ubers = [value[2] for value in result.values]
    last = None
    for ratio, uber in zip(ratios, ubers):
        if uber <= uber_target:
            last = (ratio, uber)
        else:
            break
    return last if last is not None else (None, ubers[0])
