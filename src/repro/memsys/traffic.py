"""Workload generators: seeded read/write transaction streams.

A workload produces *batches* of word-level transactions — numpy arrays
of word addresses and read/write flags — so the Monte-Carlo engine never
loops over individual transactions. Each workload also defines the
initial array content (reusing :mod:`repro.arrays.pattern` for the
solid/checkerboard stress backgrounds) and the data its writes store.

Available workloads (see :data:`WORKLOADS`):

``random``
    Uniform random addresses, random write data, balanced read/write.
``read-heavy`` / ``write-heavy``
    Uniform random with a 90/10 (10/90) read/write mix.
``sequential``
    Striding sweep over the address space (stride configurable).
``hot-row`` / ``hot-col``
    Most accesses hammer the words of one row (column) of the array.
``checkerboard`` / ``solid0`` / ``solid1``
    Data-pattern stress: the background holds the pattern and every
    write rewrites the background data, keeping the coupling
    neighborhoods pinned at the pattern's classes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arrays.pattern import checkerboard, random_pattern, solid
from ..errors import ParameterError
from ..validation import require_in_range, require_positive


@dataclass(frozen=True)
class TrafficBatch:
    """One batch of word transactions.

    ``is_write[i]`` marks transaction ``i`` as a write of word
    ``word[i]``; reads carry no data.
    """

    word: np.ndarray
    is_write: np.ndarray

    def __post_init__(self):
        word = np.asarray(self.word, dtype=np.int64)
        is_write = np.asarray(self.is_write, dtype=bool)
        if word.shape != is_write.shape or word.ndim != 1:
            raise ParameterError(
                f"word/is_write must be matching 1-D arrays, got "
                f"{word.shape} and {is_write.shape}")
        object.__setattr__(self, "word", word)
        object.__setattr__(self, "is_write", is_write)

    def __len__(self):
        return self.word.shape[0]


class Workload:
    """Base workload: uniform random addresses, random write data.

    Parameters
    ----------
    read_fraction:
        Probability that a transaction is a read.
    """

    name = "random"

    def __init__(self, read_fraction=0.5):
        require_in_range(read_fraction, "read_fraction", 0.0, 1.0)
        self.read_fraction = float(read_fraction)

    def initial_bits(self, rows, cols, rng):
        """Initial (rows, cols) array content."""
        return random_pattern(rows, cols, rng=rng).bits

    def bind(self, word_map):
        """Attach the array's word map (geometry-aware workloads)."""
        return self

    def reset(self):
        """Restart any address-stream state (engine calls per run)."""

    def addresses(self, n, n_words, rng):
        """``n`` word addresses of the stream."""
        return rng.integers(0, n_words, size=n)

    def batch(self, n, n_words, rng):
        """A :class:`TrafficBatch` of ``n`` transactions."""
        require_positive(n, "n")
        require_positive(n_words, "n_words")
        return TrafficBatch(
            word=self.addresses(int(n), int(n_words), rng),
            is_write=rng.random(int(n)) >= self.read_fraction)

    def write_data(self, words, data_bits, rng):
        """(n_writes, data_bits) data stored by writes to ``words``."""
        return (rng.random((words.shape[0], data_bits))
                < 0.5).astype(np.int8)

    def describe(self):
        """Summary dict for reports."""
        return {"workload": self.name,
                "read_fraction": self.read_fraction}


class SequentialWorkload(Workload):
    """Striding sweep over the word address space."""

    name = "sequential"

    def __init__(self, read_fraction=0.5, stride=1):
        super().__init__(read_fraction)
        require_positive(stride, "stride")
        self.stride = int(stride)
        self._next = 0

    def reset(self):
        self._next = 0

    def addresses(self, n, n_words, rng):
        start = self._next
        addresses = (start + self.stride * np.arange(n)) % n_words
        self._next = int((start + self.stride * n) % n_words)
        return addresses

    def describe(self):
        return {**super().describe(), "stride": self.stride}


class HotSpotWorkload(Workload):
    """Accesses concentrated on the words of a hot row or column band.

    ``hot_fraction`` of the transactions land uniformly on the hot word
    set; the rest are uniform over the whole space. Once the engine
    binds the array's word map, the hot set is derived from the actual
    geometry: the words holding cells of the first ``rows // 8`` rows
    (``axis="row"``) or the first ``cols // 8`` columns
    (``axis="col"``). Note that column locality maps poorly onto
    row-major codewords — a column band touches one short run of cells
    in almost every word, so the ``hot-col`` set is correspondingly
    wide, exactly as it would be in hardware. Unbound (library use
    without an array), the hot set falls back to the first 1/16th of
    the word address space.
    """

    def __init__(self, read_fraction=0.5, hot_fraction=0.9, axis="row"):
        super().__init__(read_fraction)
        require_in_range(hot_fraction, "hot_fraction", 0.0, 1.0)
        if axis not in ("row", "col"):
            raise ParameterError(f"axis must be 'row'/'col', got {axis!r}")
        self.hot_fraction = float(hot_fraction)
        self.axis = axis
        self.name = f"hot-{axis}"
        self._bound_words = None
        self._fallback = None

    def bind(self, word_map):
        layout = word_map.layout
        flat = np.arange(word_map.n_mapped_cells)
        if self.axis == "row":
            band = max(1, layout.rows // 8)
            hot_cells = flat[flat // layout.cols < band]
        else:
            band = max(1, layout.cols // 8)
            hot_cells = flat[flat % layout.cols < band]
        words = np.unique(hot_cells // word_map.code_bits)
        self._bound_words = words if words.size else np.array([0])
        return self

    def hot_words(self, n_words):
        """The hot word set (geometry-derived once bound)."""
        if self._bound_words is not None:
            return self._bound_words
        if self._fallback is None or self._fallback[0] != n_words:
            self._fallback = (n_words,
                              np.arange(max(1, n_words // 16)))
        return self._fallback[1]

    def addresses(self, n, n_words, rng):
        hot = self.hot_words(n_words)
        pick_hot = rng.random(n) < self.hot_fraction
        addresses = rng.integers(0, n_words, size=n)
        addresses[pick_hot] = hot[rng.integers(0, hot.size,
                                               size=int(pick_hot.sum()))]
        return addresses

    def describe(self):
        return {**super().describe(), "hot_fraction": self.hot_fraction,
                "axis": self.axis}


class StressPatternWorkload(Workload):
    """Solid / checkerboard data-pattern stress.

    The array background holds the stress pattern and every write
    rewrites the background's own data for that word, so the coupling
    neighborhoods stay pinned at the pattern's classes — the system-level
    version of the paper's NP8 = 0 / 255 corners.
    """

    def __init__(self, pattern="checkerboard", read_fraction=0.5):
        super().__init__(read_fraction)
        if pattern not in ("checkerboard", "solid0", "solid1"):
            raise ParameterError(
                f"pattern must be checkerboard/solid0/solid1, got "
                f"{pattern!r}")
        self.pattern = pattern
        self._background = None

    @property
    def name(self):
        return self.pattern

    def initial_bits(self, rows, cols, rng):
        if self.pattern == "checkerboard":
            bits = checkerboard(rows, cols).bits
        else:
            bits = solid(rows, cols, bit=int(self.pattern[-1])).bits
        self._background = bits
        return bits

    def background_data(self, words, word_map, data_positions):
        """The pattern's data bits for each of ``words``.

        ``data_positions`` are the data-bit indices inside a codeword
        (the ECC's systematic positions).
        """
        if self._background is None:
            raise ParameterError(
                "initial_bits() must run before background_data()")
        flat = self._background.reshape(-1)
        cells = word_map.cells[np.asarray(words)][:, data_positions]
        return flat[cells]

    def describe(self):
        return {"workload": self.name,
                "read_fraction": self.read_fraction}


def make_workload(name, read_fraction=None, **kwargs):
    """Instantiate a workload by registry name (see :data:`WORKLOADS`)."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ParameterError(
            f"unknown workload {name!r}; choose from "
            f"{sorted(WORKLOADS)}") from None
    if read_fraction is not None:
        kwargs["read_fraction"] = read_fraction
    return factory(**kwargs)


#: Workload registry: name -> factory.
WORKLOADS = {
    "random": Workload,
    "read-heavy": lambda read_fraction=0.9, **kw: Workload(
        read_fraction, **kw),
    "write-heavy": lambda read_fraction=0.1, **kw: Workload(
        read_fraction, **kw),
    "sequential": SequentialWorkload,
    "hot-row": lambda **kw: HotSpotWorkload(axis="row", **kw),
    "hot-col": lambda **kw: HotSpotWorkload(axis="col", **kw),
    "checkerboard": lambda **kw: StressPatternWorkload(
        "checkerboard", **kw),
    "solid0": lambda **kw: StressPatternWorkload("solid0", **kw),
    "solid1": lambda **kw: StressPatternWorkload("solid1", **kw),
}
