"""Behavioral array controller: transactions onto coupled physics.

The controller owns the mapping from word transactions to cells of an
:class:`~repro.arrays.layout.ArrayLayout` and translates the library's
device-level failure models into *per-access error probabilities* that a
vectorized Monte-Carlo engine can draw from.

Because the inter-cell field of the 3x3 neighborhood collapses onto the
25 symmetry classes ``(n_direct_AP, n_diagonal_AP)`` (paper Fig. 4a),
every mechanism reduces to a 2 x 5 x 5 lookup table — (stored/target
bit, direct count, diagonal count) — evaluated once per configuration:

* write-error probability from :class:`~repro.apps.write_error.\
WriteErrorModel` (per write polarity, with the pulse width of each
  polarity *trimmed* at the array's mean operating field, the way a real
  controller trims its write timing per die — what survives is purely
  the data-dependent coupling spread the paper quantifies),
* read-disturb probability from
  :class:`~repro.apps.read_disturb.ReadDisturbAnalysis`,
* retention flip rate from the stray-field-shifted Delta (paper Eq. 5).

Border cells are treated as if surrounded by P-initialized dummy cells
(missing neighbors count as data 0), matching the dummy rows/columns
real arrays place at the edge.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from ..apps.read_disturb import ReadDisturbAnalysis
from ..apps.write_error import WriteErrorModel
from ..arrays.layout import ArrayLayout
from ..arrays.victim import VictimAnalysis
from ..device.mtj import MTJDevice, MTJState
from ..device.retention import flip_rate
from ..errors import ParameterError
from ..validation import (
    require_in_range,
    require_non_negative,
    require_positive,
)


def neighborhood_class_map(bits):
    """Vectorized ``(n_direct, n_diagonal)`` AP counts for every cell.

    ``bits`` is a (rows, cols) 0/1 array; returns two int8 arrays of the
    same shape. Missing neighbors beyond the array edge count as 0 (P) —
    the dummy-cell boundary convention.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ParameterError(f"bits must be 2-D, got shape {bits.shape}")
    rows, cols = bits.shape
    padded = np.zeros((rows + 2, cols + 2), dtype=np.int8)
    padded[1:-1, 1:-1] = bits
    n_direct = (padded[:-2, 1:-1] + padded[2:, 1:-1]
                + padded[1:-1, :-2] + padded[1:-1, 2:])
    n_diagonal = (padded[:-2, :-2] + padded[:-2, 2:]
                  + padded[2:, :-2] + padded[2:, 2:])
    return n_direct.astype(np.int8), n_diagonal.astype(np.int8)


class WordMap:
    """Word-address to cell-index mapping of one array organization.

    Codewords are laid out along the row-major flattened array: word
    ``w`` occupies flat cells ``[w * n_code, (w + 1) * n_code)``.
    Trailing cells that do not fill a whole codeword stay unused.
    """

    def __init__(self, layout, code_bits):
        if not isinstance(layout, ArrayLayout):
            raise ParameterError(
                f"layout must be an ArrayLayout, got {type(layout)!r}")
        require_positive(code_bits, "code_bits")
        self.layout = layout
        self.code_bits = int(code_bits)
        self.n_words = layout.n_cells // self.code_bits
        if self.n_words < 1:
            raise ParameterError(
                f"array of {layout.n_cells} cells cannot hold one "
                f"{self.code_bits}-bit codeword")
        self.cells = np.arange(
            self.n_words * self.code_bits).reshape(self.n_words,
                                                   self.code_bits)

    @property
    def n_mapped_cells(self):
        """Number of cells that belong to some codeword."""
        return self.n_words * self.code_bits


class ArrayController:
    """Maps transactions onto the array and prices every access.

    Parameters
    ----------
    device:
        :class:`~repro.device.mtj.MTJDevice` (all cells identical).
    layout:
        :class:`~repro.arrays.layout.ArrayLayout`.
    ecc:
        An ECC scheme from :mod:`repro.memsys.ecc`.
    vp:
        Write voltage [V].
    nominal_wer:
        Per-polarity write-error target the controller trims its pulse
        widths to at the array's mean operating field. The default is an
        accelerated-stress corner (a shipping part trims to ~1e-9;
        Monte-Carlo at that rate would need 1e11 draws per event).
    read_voltage, t_read:
        Read-pulse operating point [V], [s].
    temperature:
        Cell temperature [K]; default is the device reference.
    sense:
        Optional :class:`~repro.memsys.sense.SenseMarginModel`. When
        given, the per-state misread probability (sense margin against
        the device's resistance spread, through the access-transistor
        divider) is folded into the read-disturb tables — a misread is
        booked like a read-induced flip of the sensed value, which is
        the pessimistic choice for ECC. Default ``None`` leaves the
        tables untouched.
    """

    def __init__(self, device, layout, ecc, vp=0.95, nominal_wer=2e-3,
                 read_voltage=0.15, t_read=20e-9, temperature=None,
                 sense=None):
        if not isinstance(device, MTJDevice):
            raise ParameterError(
                f"device must be an MTJDevice, got {type(device)!r}")
        require_positive(vp, "vp")
        require_in_range(nominal_wer, "nominal_wer", 0.0, 1.0,
                         inclusive=False)
        require_positive(read_voltage, "read_voltage")
        require_positive(t_read, "t_read")
        self.device = device
        self.layout = layout
        self.ecc = ecc
        self.vp = float(vp)
        self.nominal_wer = float(nominal_wer)
        self.read_voltage = float(read_voltage)
        self.t_read = float(t_read)
        self.temperature = temperature
        self.sense = sense
        self.words = WordMap(layout, ecc.n_code)

        self.victim = VictimAnalysis(device, layout.pitch)
        # The four symmetry-reduced kernels ride the store's batch path
        # (InterCellCoupling.kernels fetches them via kernel_batch): one
        # broadcasted field evaluation per kind on a cold store, pure
        # lookups on a warm or disk-backed one.
        kernels = self.victim.coupling.kernels()
        #: Mean operating field: intra + pattern-independent inter [A/m].
        self.hz_operating = (self.victim.hz_intra()
                             + kernels.pattern_independent)
        self._fl_direct = kernels.fl_direct
        self._fl_diagonal = kernels.fl_diagonal

        wem = WriteErrorModel(device)
        #: Trimmed write pulse widths [s] per written bit (0 -> AP->P).
        self.t_pulse = (
            wem.pulse_for_wer(self.nominal_wer, self.vp,
                              self.hz_operating, MTJState.AP),
            wem.pulse_for_wer(self.nominal_wer, self.vp,
                              self.hz_operating, MTJState.P),
        )
        self._build_tables(wem)

    # -- per-class probability tables ---------------------------------------

    def class_field(self, n_direct, n_diagonal):
        """Total stray field [A/m] of coupling class ``(nd, ng)``.

        Vectorized over integer arrays of AP-neighbor counts.
        """
        n_direct = np.asarray(n_direct)
        n_diagonal = np.asarray(n_diagonal)
        return (self.hz_operating
                + (4 - 2 * n_direct) * self._fl_direct
                + (4 - 2 * n_diagonal) * self._fl_diagonal)

    def _build_tables(self, wem):
        rda = ReadDisturbAnalysis(self.device)
        f0 = self.device.params.attempt_frequency
        self.wer_table = np.empty((2, 5, 5))
        self.disturb_table = np.empty((2, 5, 5))
        self.retention_rate_table = np.empty((2, 5, 5))
        for bit in (0, 1):
            state = MTJState.from_bit(bit)
            initial = state.opposite   # writing `bit` starts from there
            for nd in range(5):
                for ng in range(5):
                    hz = float(self.class_field(nd, ng))
                    self.wer_table[bit, nd, ng] = wem.wer(
                        self.t_pulse[bit], self.vp, hz,
                        initial_state=initial)
                    self.disturb_table[bit, nd, ng] = (
                        rda.disturb_probability(
                            state, self.read_voltage, self.t_read, hz))
                    self.retention_rate_table[bit, nd, ng] = flip_rate(
                        self.device.delta(state, hz, self.temperature),
                        f0)
        if self.sense is not None:
            # Sense-margin read gating: a misread corrupts the sensed
            # word exactly like a disturbed cell, so the per-state
            # misread probability composes into the disturb tables as
            # an independent failure mode.
            p_fail = self.sense.read_failure_probability(
                self.device, self.read_voltage)
            for bit in (0, 1):
                self.disturb_table[bit] = 1.0 - (
                    (1.0 - self.disturb_table[bit])
                    * (1.0 - float(p_fail[bit])))

    # -- vectorized per-cell probability maps -------------------------------

    def class_maps(self, bits):
        """Flat ``(n_direct, n_diagonal)`` maps of a (rows, cols) array."""
        nd, ng = neighborhood_class_map(
            np.asarray(bits).reshape(self.layout.rows, self.layout.cols))
        return nd.reshape(-1), ng.reshape(-1)

    def write_error_probability(self, new_bits, nd, ng):
        """Per-cell write-error probability for writing ``new_bits``."""
        return self.wer_table[np.asarray(new_bits), nd, ng]

    def disturb_probability(self, stored_bits, nd, ng):
        """Per-cell single-read disturb probability."""
        return self.disturb_table[np.asarray(stored_bits), nd, ng]

    @cached_property
    def half_select_table(self):
        """(2, 5, 5) single half-select disturb probability per class.

        The cross-point sneak-path term (Zhao et al., arXiv:1202.1782):
        an access puts ~half the read bias across the unselected cells
        sharing the accessed row/column, priced with the same thermal
        read-disturb model as a full select. Built lazily — 1T-1R
        configurations never touch it.
        """
        rda = ReadDisturbAnalysis(self.device)
        table = np.empty((2, 5, 5))
        for bit in (0, 1):
            state = MTJState.from_bit(bit)
            for nd in range(5):
                for ng in range(5):
                    hz = float(self.class_field(nd, ng))
                    table[bit, nd, ng] = rda.disturb_probability(
                        state, 0.5 * self.read_voltage, self.t_read,
                        hz)
        return table

    def half_select_probability(self, stored_bits, nd, ng, exposures):
        """Per-cell flip probability after ``exposures`` half-selects
        (``exposures`` may be fractional: a mean exposure count)."""
        require_non_negative(exposures, "exposures")
        single = np.clip(
            self.half_select_table[np.asarray(stored_bits), nd, ng],
            0.0, 1.0 - 1e-15)
        return 1.0 - (1.0 - single) ** exposures

    def retention_flip_probability(self, stored_bits, nd, ng, interval):
        """Per-cell retention-flip probability over ``interval`` [s].

        ``interval == 0`` is a valid zero-dwell window (a scrub
        immediately followed by an access) and yields probability 0.
        """
        require_non_negative(interval, "interval")
        rate = self.retention_rate_table[np.asarray(stored_bits), nd, ng]
        return -np.expm1(-rate * interval)

    # -- flat per-class probability views -----------------------------------
    #
    # The binomial fast path draws per *coupling class* rather than per
    # cell; these views expose the tables in class_index order (bit
    # major, then n_direct, then n_diagonal — the tables' memory
    # layout), so ``flat[class_index(bit, nd, ng)] == table[bit, nd,
    # ng]`` exactly.

    def wer_class_probability(self):
        """Flat (50,) per-class write-error probability."""
        return self.wer_table.reshape(-1)

    def disturb_class_probability(self):
        """Flat (50,) per-class single-read disturb probability."""
        return self.disturb_table.reshape(-1)

    def retention_class_probability(self, interval):
        """Flat (50,) per-class retention-flip probability over
        ``interval`` [s] (``interval == 0`` allowed, yielding zeros)."""
        require_non_negative(interval, "interval")
        return -np.expm1(-self.retention_rate_table.reshape(-1)
                         * interval)

    def half_select_class_probability(self, exposures):
        """Flat (50,) per-class flip probability after ``exposures``
        half-selects (fractional exposure counts allowed)."""
        require_non_negative(exposures, "exposures")
        single = np.clip(self.half_select_table.reshape(-1), 0.0,
                         1.0 - 1e-15)
        return 1.0 - (1.0 - single) ** exposures

    def describe(self):
        """Summary dict (for reports and the CLI header)."""
        out = {
            "pitch_nm": self.layout.pitch * 1e9,
            "rows": self.layout.rows,
            "cols": self.layout.cols,
            "n_words": self.words.n_words,
            "code_bits": self.ecc.n_code,
            "data_bits": self.ecc.n_data,
            "vp": self.vp,
            "t_pulse0_ns": self.t_pulse[0] * 1e9,
            "t_pulse1_ns": self.t_pulse[1] * 1e9,
            "nominal_wer": self.nominal_wer,
            "wer_spread": float(self.wer_table.max()
                                / self.wer_table.min()),
        }
        if self.sense is not None:
            out["sense"] = self.sense.describe()
        return out
