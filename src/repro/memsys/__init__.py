"""System-level memory reliability: controller, ECC, traffic, UBER.

The device and array layers answer *how much worse does one cell get*;
this package answers the question a memory designer actually asks:
*what uncorrectable bit-error rate does a coupled, dense array deliver
under real read/write traffic?* It composes the library's three failure
mechanisms — write error, read disturb, retention — into one number.

* :mod:`repro.memsys.traffic` — seeded workload generators (uniform,
  sequential, hot-row/col, read/write-heavy, data-pattern stress),
* :mod:`repro.memsys.controller` — behavioral array controller that
  prices every access from the coupling-class probability tables,
* :mod:`repro.memsys.ecc` — vectorized Hamming SEC-DED (72, 64 by
  default) plus a no-ECC baseline,
* :mod:`repro.memsys.scrub` — periodic scrubbing policy,
* :mod:`repro.memsys.engine` — vectorized Monte-Carlo engine plus a
  noise-free expectation mode,
* :mod:`repro.memsys.sampling` — rare-event fast path: class-grouped
  binomial flip draws and incrementally maintained coupling-class
  maps (``sampler="binomial"``; the per-cell ``bernoulli`` reference
  is retained),
* :mod:`repro.memsys.bitplane` — bit-packed ``intended``/``actual``
  array state (uint64 lanes, XOR + popcount error counting),
* :mod:`repro.memsys.backends` — pluggable compute backends for the
  fast path's hot kernels (``"numpy"`` reference / JIT ``"numba"``,
  selected per engine or via ``REPRO_ENGINE_BACKEND``),
* :mod:`repro.memsys.topology` — banks x subarrays array topology:
  hierarchical address map, per-subarray traffic sharding with
  spawned per-shard RNGs (subarray-parallel through the sweep
  executors), and the selector-less cross-point variant with its
  sneak-path disturb term,
* :mod:`repro.memsys.sense` — sense-margin read model: resistance
  spread through the access-transistor divider folded into the
  read-disturb tables as a misread probability,
* :mod:`repro.memsys.sweeps` — pitch x pattern x ECC sweeps: the
  paper's density axis carried to the system level.

Quick start::

    from repro import MTJDevice, PAPER_EVAL_DEVICE
    from repro.memsys import build_engine

    engine = build_engine(MTJDevice(PAPER_EVAL_DEVICE), pitch=70e-9)
    result = engine.run(100_000, rng=1)
    print(f"raw BER {result.raw_ber:.2e} -> UBER {result.uber:.2e}")
"""

from .backends import (
    BACKENDS,
    ENGINE_BACKEND_ENV,
    get_backend,
    numba_available,
    resolve_backend,
    validate_backend,
)
from .controller import (
    ArrayController,
    WordMap,
    neighborhood_class_map,
)
from .ecc import (
    DecodeOutcome,
    ECC_SCHEMES,
    HammingSECDED,
    NoECC,
    make_ecc,
)
from .bitplane import BitPlane
from .engine import (
    MemsysResult,
    ReliabilityEngine,
    build_engine,
    merge_results,
)
from .sampling import (
    IncrementalClassMaps,
    N_CLASSES,
    SAMPLERS,
    class_index,
    sample_class_flips,
)
from .scrub import ScrubPolicy, no_scrub
from .sense import SenseMarginModel
from .sweeps import secded_margin_pitch, uber_sweep
from .topology import (
    ArrayTopology,
    HierarchicalAddressMap,
    TOPOLOGIES,
    TopologyEngine,
    normalize_topology,
)
from .traffic import (
    HotSpotWorkload,
    SequentialWorkload,
    StressPatternWorkload,
    TrafficBatch,
    WORKLOADS,
    Workload,
    make_workload,
)

__all__ = [
    "ArrayController",
    "ArrayTopology",
    "BACKENDS",
    "BitPlane",
    "DecodeOutcome",
    "ENGINE_BACKEND_ENV",
    "ECC_SCHEMES",
    "HammingSECDED",
    "HierarchicalAddressMap",
    "HotSpotWorkload",
    "IncrementalClassMaps",
    "MemsysResult",
    "N_CLASSES",
    "NoECC",
    "ReliabilityEngine",
    "SAMPLERS",
    "ScrubPolicy",
    "SenseMarginModel",
    "SequentialWorkload",
    "StressPatternWorkload",
    "TOPOLOGIES",
    "TopologyEngine",
    "TrafficBatch",
    "WORKLOADS",
    "WordMap",
    "Workload",
    "build_engine",
    "class_index",
    "get_backend",
    "make_ecc",
    "merge_results",
    "numba_available",
    "resolve_backend",
    "sample_class_flips",
    "make_workload",
    "neighborhood_class_map",
    "no_scrub",
    "normalize_topology",
    "secded_margin_pitch",
    "uber_sweep",
    "validate_backend",
]
