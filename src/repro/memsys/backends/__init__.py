"""Pluggable engine-compute backends for the binomial hot loop.

At rare-event operating points the binomial sampler's cost is no
longer the math but per-batch numpy *dispatch* on four hot kernels:
the incremental class-map update around changed cells, the XOR +
popcount diff over packed uint64 lanes, the grouped flip placement of
:func:`~repro.memsys.sampling.sample_class_flips`, and the per-word
error-count bookkeeping that feeds the all-clean read short-circuit.
This package gives each of those a *backend*:

* ``"numpy"`` — the bit-exact parity reference: every hook returns
  ``None`` ("use the library's vectorized numpy code"), so selecting
  it changes nothing at all. This is the default.
* ``"numba"`` — JIT-compiled scalar kernels
  (:mod:`~repro.memsys.backends.numba_backend`), fidimag-style flat
  index walks instead of scattered ``np.add.at``. Requires the
  optional ``numba`` dependency (``pip install repro[fast]``).

Selection mirrors the sweep-executor convention
(:data:`repro.sweep.runner.SWEEP_EXECUTOR_ENV`): an explicit
``backend=`` argument (CLI ``--backend``) wins, then the
:data:`ENGINE_BACKEND_ENV` environment variable — which is how
distributed sweep workers and the service inherit a fleet-wide choice
— then the numpy default. Degradation is graceful and warn-once: a
``numba`` selection on a machine without numba (or where the kernels
fail their compile self-check) falls back to numpy with a single
:class:`RuntimeWarning`, never an error; a *misspelled*
``REPRO_ENGINE_BACKEND`` value is likewise ignored with one warning so
a stale environment cannot break a plain run (an invalid explicit
argument still raises, as every other registry in the library does).

Backend hook contract (every hook may return ``None`` to mean "run
the reference numpy path"; the numpy backend always does):

========================  ==============================================
``xor_popcount_rows``     per-row set-bit count of ``a ^ b`` (uint64
                          lanes) without materializing the XOR temp
``rebuild_class_maps``    full ``(nd, ng, class_idx, hist)`` rebuild
                          from a flat bit array
``apply_class_changes``   in-place neighbor-count/class/histogram
                          update around changed cells
``group_class_members``   ``(order, bounds)`` grouping of cells by
                          coupling class (counting sort, no argsort)
``toggle_and_count``      fused bit toggles + per-word error-count
                          maintenance; returns the wrong-bits delta
``inject_and_count``      fused write-error injection (all cells
                          become wrong); returns the flip count
========================  ==============================================

``preferred_rebuild_fraction`` is a backend tuning knob: the churn
fraction above which :class:`~repro.memsys.sampling.\
IncrementalClassMaps` abandons incremental updates for a full rebuild.
The compiled incremental walk is so much cheaper than scattered numpy
updates that the numba backend raises the threshold (see its class
docstring), which is an algorithmic choice — the resulting maps are
identical either way.
"""

from __future__ import annotations

import os
import warnings

from ...errors import ParameterError

#: Registry names accepted by the engine, the CLI, and the env var.
BACKENDS = ("numpy", "numba")

#: Environment override of the engine backend, mirroring
#: ``REPRO_SWEEP_EXECUTOR``: consulted whenever no explicit backend is
#: passed, so sweep workers and the service pick a fleet-wide choice
#: up without new plumbing.
ENGINE_BACKEND_ENV = "REPRO_ENGINE_BACKEND"

#: One-shot warning keys already emitted (see :func:`_warn_once`).
_warned = set()

#: Singleton backend instances by registry name.
_instances = {}


def validate_backend(name):
    """Return ``name`` if it names a known backend, else raise."""
    if name not in BACKENDS:
        raise ParameterError(
            f"unknown engine backend {name!r}; choose from "
            f"{sorted(BACKENDS)}")
    return name


def numba_available():
    """True when the optional numba dependency imports."""
    from .numba_backend import NUMBA_AVAILABLE
    return NUMBA_AVAILABLE


def _warn_once(key, message):
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def get_backend(name):
    """The singleton backend instance registered under ``name``."""
    validate_backend(name)
    backend = _instances.get(name)
    if backend is None:
        if name == "numba":
            from .numba_backend import NumbaEngineBackend
            backend = NumbaEngineBackend()
        else:
            from .numpy_backend import NumpyEngineBackend
            backend = NumpyEngineBackend()
        _instances[name] = backend
    return backend


def resolve_backend(backend=None):
    """Resolve a backend selection into a backend instance.

    Precedence mirrors the sweep executors: an explicit ``backend``
    (a registry name, or an already-constructed backend object passed
    through untouched) wins; otherwise :data:`ENGINE_BACKEND_ENV` is
    consulted; otherwise the numpy reference. A ``numba`` selection
    degrades to numpy — with one :class:`RuntimeWarning`, never an
    error — when numba is absent or its kernels fail the one-time
    compile self-check.
    """
    if backend is not None and not isinstance(backend, str):
        return backend
    if backend is not None:
        name = validate_backend(backend)
    else:
        name = os.environ.get(ENGINE_BACKEND_ENV) or None
        if name is not None and name not in BACKENDS:
            _warn_once(
                ("env", name),
                f"ignoring invalid {ENGINE_BACKEND_ENV}={name!r} "
                f"(known backends: {', '.join(sorted(BACKENDS))})")
            name = None
        name = name or "numpy"
    if name == "numba":
        candidate = get_backend("numba")
        if candidate.ready():
            return candidate
        _warn_once(
            "numba-unavailable",
            "numba engine backend unavailable "
            f"({candidate.unavailable_reason()}); falling back to the "
            "numpy reference — install the [fast] extra for the "
            "compiled kernels")
        return get_backend("numpy")
    return get_backend(name)


__all__ = [
    "BACKENDS",
    "ENGINE_BACKEND_ENV",
    "get_backend",
    "numba_available",
    "resolve_backend",
    "validate_backend",
]
