"""The numpy reference backend: identity hooks, zero behavior change.

The library's vectorized numpy code *is* the reference implementation
of every engine kernel — it lives where it always did, in
:mod:`repro.memsys.sampling`, :mod:`repro.memsys.bitplane` and the
engine's packed-state bookkeeping. This backend therefore implements
the hook contract of :mod:`repro.memsys.backends` in the laziest
correct way possible: every hook returns ``None``, which the call
sites read as "run the inline reference path". Selecting
``backend="numpy"`` is guaranteed to be bit-identical to not selecting
a backend at all — it is the parity baseline the numba kernels are
tested (and benchmarked) against.
"""

from __future__ import annotations


class NumpyEngineBackend:
    """Identity backend: every hook defers to the inline numpy path."""

    name = "numpy"

    #: ``None`` keeps :class:`~repro.memsys.sampling.\
    #: IncrementalClassMaps`'s own default rebuild threshold.
    preferred_rebuild_fraction = None

    def ready(self):
        """The reference is always available."""
        return True

    def unavailable_reason(self):
        return None

    # Every kernel hook defers to the caller's reference code.

    def xor_popcount_rows(self, a, b):
        return None

    def rebuild_class_maps(self, bits, rows, cols):
        return None

    def apply_class_changes(self, maps, changed, new_bits, plane):
        return None

    def group_class_members(self, class_idx, hist):
        return None

    def toggle_and_count(self, intended, actual, idx, err_count):
        return None

    def inject_and_count(self, actual, cells, err_count):
        return None
