"""Numba-JIT kernels for the binomial engine's four hot loops.

Each kernel is written as a plain scalar loop over flat indices — the
fidimag ``lib/`` idiom: precompute nothing fancy, walk a flat
neighbor-index pattern, and let the compiler remove the dispatch —
then wrapped by ``@njit`` when numba imports. Without numba the
module still imports and every kernel runs as ordinary (slow) Python,
which is what lets the parity/property tests exercise the exact
compiled logic on machines without the ``[fast]`` extra; the registry
(:func:`repro.memsys.backends.resolve_backend`) never *selects* this
backend there, it falls back to numpy with one warning.

Two deliberate representation choices keep the kernels simple and
portable:

* All bit manipulation happens on ``uint8`` views of the uint64
  lanes. ``LANE_DTYPE`` is explicitly little-endian, so byte ``k`` of
  a lane always holds codeword bits ``8k..8k+7`` regardless of
  platform, and staying in uint8/int64 arithmetic sidesteps numba's
  uint64/int64 promotion pitfalls.
* The class-map kernels mutate the caller's arrays in place and
  deduplicate touched cells with a sort + scan over a small scratch
  buffer (at most ``9 x changed`` entries), not a whole-array pass.

A one-time :meth:`NumbaEngineBackend.ready` self-check compiles every
kernel on tiny inputs and verifies it against the numpy reference, so
a numba/LLVM environment problem degrades to the numpy backend at
resolve time instead of crashing mid-run.
"""

from __future__ import annotations

import numpy as np

from ..bitplane import _POPCOUNT_TABLE

try:
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised via python mode
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):
        """No-numba stand-in: leave the kernel as plain Python."""
        def decorate(func):
            return func
        return decorate

#: Per-byte set-bit counts widened to int64 once, so kernel sums never
#: touch uint8 accumulation.
_TABLE64 = _POPCOUNT_TABLE.astype(np.int64)


@njit(cache=True)
def _xor_popcount_rows(a8, b8, table, out):
    """Per-row popcount of ``a ^ b`` over uint8 views, no XOR temp."""
    n, m = a8.shape
    for i in range(n):
        total = 0
        for j in range(m):
            total += table[a8[i, j] ^ b8[i, j]]
        out[i] = total


@njit(cache=True)
def _rebuild_class_maps(bits, rows, cols, nd, ng, class_idx, hist):
    """Fused whole-array rebuild: neighbor counts + class + histogram.

    One pass over the grid replaces the reference's four vectorized
    stages (pad/shift sums, class_index, astype, bincount) and all
    their temporaries. Missing neighbors beyond the edge count as 0
    (P) — the dummy-cell boundary convention.
    """
    for k in range(hist.size):
        hist[k] = 0
    for r in range(rows):
        up = r > 0
        down = r < rows - 1
        base = r * cols
        for c in range(cols):
            i = base + c
            left = c > 0
            right = c < cols - 1
            d = 0
            g = 0
            if up:
                d += bits[i - cols]
                if left:
                    g += bits[i - cols - 1]
                if right:
                    g += bits[i - cols + 1]
            if down:
                d += bits[i + cols]
                if left:
                    g += bits[i + cols - 1]
                if right:
                    g += bits[i + cols + 1]
            if left:
                d += bits[i - 1]
            if right:
                d += bits[i + 1]
            ci = bits[i] * 25 + d * 5 + g
            nd[i] = d
            ng[i] = g
            class_idx[i] = ci
            hist[ci] += 1


@njit(cache=True)
def _apply_class_changes(changed, new_bits, nd, ng, class_idx, hist,
                         changed_mask, scratch, rows, cols):
    """Incremental class-map update around ``changed`` cells.

    Every changed cell has been toggled exactly once since the last
    refresh; ``new_bits`` holds its *new* value. Neighbor counts are
    bumped with a flat index walk (the fidimag neighbor pattern),
    touched cells collect into ``scratch`` (<= 9 per change), and one
    sort + scan re-derives class index and histogram for each distinct
    affected cell.
    """
    n = changed.size
    for k in range(n):
        changed_mask[changed[k]] = 1
    m = 0
    for k in range(n):
        i = changed[k]
        delta = 2 * new_bits[k] - 1  # 0 -> 1: +1, 1 -> 0: -1
        r = i // cols
        c = i % cols
        up = r > 0
        down = r < rows - 1
        left = c > 0
        right = c < cols - 1
        scratch[m] = i
        m += 1
        if up:
            nd[i - cols] += delta
            scratch[m] = i - cols
            m += 1
            if left:
                ng[i - cols - 1] += delta
                scratch[m] = i - cols - 1
                m += 1
            if right:
                ng[i - cols + 1] += delta
                scratch[m] = i - cols + 1
                m += 1
        if down:
            nd[i + cols] += delta
            scratch[m] = i + cols
            m += 1
            if left:
                ng[i + cols - 1] += delta
                scratch[m] = i + cols - 1
                m += 1
            if right:
                ng[i + cols + 1] += delta
                scratch[m] = i + cols + 1
                m += 1
        if left:
            nd[i - 1] += delta
            scratch[m] = i - 1
            m += 1
        if right:
            nd[i + 1] += delta
            scratch[m] = i + 1
            m += 1
    touched = scratch[:m]
    touched.sort()
    prev = -1
    for k in range(m):
        j = touched[k]
        if j == prev:
            continue
        prev = j
        old = class_idx[j]
        bit = old // 25
        if changed_mask[j] == 1:
            bit = 1 - bit
        new = bit * 25 + nd[j] * 5 + ng[j]
        class_idx[j] = new
        hist[old] -= 1
        hist[new] += 1
    for k in range(n):
        changed_mask[changed[k]] = 0


@njit(cache=True)
def _group_class_members(flat, cursor, order):
    """Counting-sort grouping: scatter each cell into its class slot.

    ``cursor`` starts at each class's group offset and advances as
    members land, so within a class the member order is ascending —
    exactly the stable-argsort order of the reference, which keeps
    seeded ``rng.choice`` draws bit-identical across backends.
    """
    for i in range(flat.size):
        c = flat[i]
        k = cursor[c]
        order[k] = i
        cursor[c] = k + 1


@njit(cache=True)
def _toggle_and_count(i8, a8, tail, idx, err_count, code_bits,
                      n_mapped):
    """Fused toggle + exact per-word error-count maintenance.

    Flips ``actual`` at every flat cell index, updating the per-word
    mismatch counters against ``intended`` as it goes; returns the
    array-wide wrong-bit delta that keeps the engine's all-clean read
    short-circuit exact. Tail cells (beyond the word-mapped prefix)
    toggle without touching any counter, as in the reference.
    """
    delta_total = 0
    for k in range(idx.size):
        cell = idx[k]
        if cell < n_mapped:
            w = cell // code_bits
            b = cell % code_bits
            byte = b >> 3
            mask = np.uint8(1 << (b & 7))
            wrong_before = (a8[w, byte] & mask) != (i8[w, byte] & mask)
            a8[w, byte] ^= mask
            if wrong_before:
                err_count[w] -= 1
                delta_total -= 1
            else:
                err_count[w] += 1
                delta_total += 1
        else:
            tail[cell - n_mapped] = tail[cell - n_mapped] ^ 1
    return delta_total


@njit(cache=True)
def _inject_and_count(a8, cells, err_count, code_bits):
    """Write-error injection: every cell was just written clean, so
    each toggle makes exactly one new wrong bit."""
    for k in range(cells.size):
        cell = cells[k]
        w = cell // code_bits
        b = cell % code_bits
        a8[w, b >> 3] ^= np.uint8(1 << (b & 7))
        err_count[w] += 1


class NumbaEngineBackend:
    """Compiled kernels for the binomial fast path.

    ``preferred_rebuild_fraction`` is raised well above the numpy
    default (0.02): the compiled incremental walk costs ~9 scalar
    updates per changed cell, so it beats a full rebuild up to far
    higher churn than scattered ``np.add.at`` does. The maps produced
    are identical either way — the threshold only picks which kernel
    computes them.
    """

    name = "numba"
    preferred_rebuild_fraction = 0.25

    def __init__(self):
        self._ready = None
        self._error = None

    # -- availability -------------------------------------------------------

    def ready(self):
        """True once the kernels compiled and passed the self-check."""
        if self._ready is None:
            if not NUMBA_AVAILABLE:
                self._ready = False
                self._error = "numba is not installed"
            else:
                try:
                    self.self_check()
                except Exception as exc:  # degrade, never fail
                    self._ready = False
                    self._error = (f"kernel self-check failed: "
                                   f"{type(exc).__name__}: {exc}")
                else:
                    self._ready = True
        return self._ready

    def unavailable_reason(self):
        return self._error

    def self_check(self):
        """Compile every kernel on tiny inputs and verify it against
        the numpy reference; raises on any mismatch."""
        from ..bitplane import BitPlane, popcount_rows
        from ..controller import neighborhood_class_map
        from ..sampling import class_index

        rng = np.random.default_rng(0)
        lanes = rng.integers(0, 2**63, size=(5, 2)).astype("<u8")
        other = lanes.copy()
        other[2, 1] ^= np.uint64(0b1011)
        expect = popcount_rows(lanes ^ other)
        if not np.array_equal(self.xor_popcount_rows(lanes, other),
                              expect):
            raise AssertionError("xor_popcount_rows mismatch")

        rows = cols = 6
        bits = rng.integers(0, 2, size=rows * cols).astype(np.int8)
        nd, ng, ci, hist = self.rebuild_class_maps(bits, rows, cols)
        nd_ref, ng_ref = neighborhood_class_map(
            bits.reshape(rows, cols))
        ci_ref = class_index(bits, nd_ref.reshape(-1),
                             ng_ref.reshape(-1))
        if not (np.array_equal(nd, nd_ref.reshape(-1))
                and np.array_equal(ng, ng_ref.reshape(-1))
                and np.array_equal(ci, ci_ref)
                and np.array_equal(hist, np.bincount(ci_ref,
                                                     minlength=50))):
            raise AssertionError("rebuild_class_maps mismatch")

        order, bounds = self.group_class_members(ci, hist)
        ref = np.argsort(ci, kind="stable")
        if not np.array_equal(order, ref):
            raise AssertionError("group_class_members mismatch")

        # 4 x 8-bit words over 36 cells: cells 32..35 are tail.
        intended = BitPlane.from_bits(bits, n_words=4, code_bits=8)
        actual = intended.copy()
        err = np.zeros(4, dtype=np.int16)
        flips = np.array([0, 9, 17, 19, 34], dtype=np.int64)
        delta = self.toggle_and_count(intended, actual, flips, err)
        if (delta != 4
                or not np.array_equal(err, np.array([1, 1, 2, 0]))
                or not np.array_equal(actual.diff_counts(intended),
                                      np.array([1, 1, 2, 0]))
                or actual.tail[2] == intended.tail[2]):
            raise AssertionError("toggle_and_count mismatch")
        if self.toggle_and_count(intended, actual, flips, err) != -4:
            raise AssertionError("toggle_and_count undo mismatch")
        if int(err.sum()) != 0 or not np.array_equal(
                actual.tail, intended.tail):
            raise AssertionError("toggle_and_count undo mismatch")
        self.inject_and_count(actual, flips[:2], err)
        if not np.array_equal(err, np.array([1, 1, 0, 0])):
            raise AssertionError("inject_and_count mismatch")

    # -- kernel hooks -------------------------------------------------------

    def xor_popcount_rows(self, a, b):
        a8 = np.ascontiguousarray(a).view(np.uint8)
        b8 = np.ascontiguousarray(b).view(np.uint8)
        out = np.empty(a8.shape[0], dtype=np.int64)
        _xor_popcount_rows(a8, b8, _TABLE64, out)
        return out

    def rebuild_class_maps(self, bits, rows, cols):
        bits = np.ascontiguousarray(bits, dtype=np.int8).reshape(-1)
        n = bits.size
        nd = np.empty(n, dtype=np.int8)
        ng = np.empty(n, dtype=np.int8)
        class_idx = np.empty(n, dtype=np.int8)
        hist = np.zeros(50, dtype=np.int64)
        _rebuild_class_maps(bits, rows, cols, nd, ng, class_idx, hist)
        return nd, ng, class_idx, hist

    def apply_class_changes(self, maps, changed, new_bits, plane):
        n_cells = maps.rows * maps.cols
        mask = getattr(maps, "_numba_changed_mask", None)
        if mask is None or mask.size != n_cells:
            mask = np.zeros(n_cells, dtype=np.uint8)
            maps._numba_changed_mask = mask
        changed = np.ascontiguousarray(changed, dtype=np.int64)
        new_bits = np.ascontiguousarray(new_bits, dtype=np.int8)
        scratch = np.empty(changed.size * 9, dtype=np.int64)
        _apply_class_changes(changed, new_bits, maps.nd, maps.ng,
                             maps.class_idx, maps.hist, mask, scratch,
                             maps.rows, maps.cols)
        return True

    def group_class_members(self, class_idx, hist):
        bounds = np.empty(hist.size + 1, dtype=np.int64)
        bounds[0] = 0
        np.cumsum(hist, out=bounds[1:])
        cursor = bounds[:-1].copy()
        order = np.empty(class_idx.size, dtype=np.int64)
        _group_class_members(class_idx, cursor, order)
        return order, bounds

    def toggle_and_count(self, intended, actual, idx, err_count):
        idx = np.ascontiguousarray(idx, dtype=np.int64).reshape(-1)
        if idx.size == 0:
            return 0
        return int(_toggle_and_count(
            intended.lanes.view(np.uint8), actual.lanes.view(np.uint8),
            actual.tail, idx, err_count, actual.code_bits,
            actual.n_mapped))

    def inject_and_count(self, actual, cells, err_count):
        cells = np.ascontiguousarray(cells, dtype=np.int64).reshape(-1)
        if cells.size:
            _inject_and_count(actual.lanes.view(np.uint8), cells,
                              err_count, actual.code_bits)
        return int(cells.size)
