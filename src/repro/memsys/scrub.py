"""Periodic scrubbing: bound retention-error accumulation.

A scrub walks every word, decodes it, and rewrites correctable words so
retention flips cannot pile up into uncorrectable pairs between natural
accesses — the mitigation :mod:`repro.apps.retention_budget` sizes from
the worst-case Delta. The rewrite goes through the ordinary write path,
so scrubbing itself can (rarely) inject write errors; an aggressive
scrub interval is not free.
"""

from __future__ import annotations

import math

from ..errors import ParameterError
from ..validation import require_positive


class ScrubPolicy:
    """Scrub every ``interval`` seconds of simulated memory time.

    Parameters
    ----------
    interval:
        Seconds of simulated time between scrub passes; ``math.inf``
        disables scrubbing (see :func:`no_scrub`).
    """

    def __init__(self, interval):
        if interval != math.inf:
            require_positive(interval, "interval")
        self.interval = float(interval)
        self._next_due = self.interval

    @property
    def enabled(self):
        """False for the no-scrub policy."""
        return math.isfinite(self.interval)

    def due(self, now):
        """True when simulated time ``now`` [s] has reached a scrub."""
        return self.enabled and now >= self._next_due

    def mark_done(self, now):
        """Advance the schedule after a scrub at time ``now``."""
        if not self.enabled:
            raise ParameterError("no-scrub policy cannot mark a scrub")
        # Catch up if the engine stepped over several periods at once.
        periods = max(1, int(now / self.interval))
        self._next_due = (periods + 1) * self.interval

    def reset(self):
        """Restart the schedule (engine calls this per run)."""
        self._next_due = self.interval

    def describe(self):
        """Summary dict for reports."""
        return {"scrub_interval_s":
                (self.interval if self.enabled else None)}


def no_scrub():
    """The disabled scrub policy."""
    return ScrubPolicy(math.inf)
