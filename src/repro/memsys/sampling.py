"""Rare-event flip sampling: class-grouped binomial draws.

Every per-cell error probability in the memsys stack is a pure function
of the cell's coupling class — (stored/target bit, direct AP-neighbor
count, diagonal AP-neighbor count) — so a whole array, or any accessed
subset of it, takes at most ``2 x 5 x 5 = 50`` distinct probabilities
(the controller's probability tables). The reference ``bernoulli``
sampler draws one uniform per cell per mechanism; at rare-event
operating points (WER <= 1e-6) that is billions of uniforms per
observed flip. The ``binomial`` sampler instead

1. classifies cells into their 50 classes (:func:`class_index`),
2. histograms the classes (``np.bincount``),
3. draws one flip *count* per class (``rng.binomial(n_c, p_c)``),
4. places the (few) flips uniformly within each class group.

Cost: O(cells classified + flips drawn) instead of O(cells) uniform
draws — and :class:`IncrementalClassMaps` maintains the classification
itself incrementally between engine batches, leaving the per-batch
whole-array sampling cost at O(50 + flips).

The two samplers are statistically equivalent: a sum of independent
equal-``p`` Bernoulli draws is ``Binomial(n, p)``, and cells of one
class are exchangeable, so placing ``k`` flips uniformly without
replacement reproduces the conditional law of the Bernoulli field given
its per-class counts. Seeded runs of either sampler are individually
deterministic; their streams differ, but every expected counter agrees
(see ``tests/test_memsys_sampling.py``).
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from .bitplane import popcount_rows, unpack_bits
from .controller import neighborhood_class_map

#: Number of coupling classes: bit x n_direct x n_diagonal.
N_CLASSES = 2 * 5 * 5

#: Sampler registry names accepted by the engine and the CLI.
SAMPLERS = ("bernoulli", "binomial")


def validate_sampler(name):
    """Return ``name`` if it names a known sampler, else raise."""
    if name not in SAMPLERS:
        raise ParameterError(
            f"unknown sampler {name!r}; choose from {sorted(SAMPLERS)}")
    return name


def class_index(bits, nd, ng):
    """Flat 0..49 coupling-class index: ``bit * 25 + nd * 5 + ng``.

    Matches the memory order of the controller's ``(2, 5, 5)``
    probability tables, so ``table.reshape(-1)[class_index(...)]``
    equals ``table[bits, nd, ng]``.
    """
    idx = (np.asarray(bits, dtype=np.int16) * 25
           + np.asarray(nd, dtype=np.int16) * 5
           + np.asarray(ng, dtype=np.int16))
    return idx.astype(np.int8)


def sample_thinned_flips(n, p_class, class_of, rng, p_max=None):
    """Flat indices of flipped cells among ``n`` accessed cells.

    The class-grouped draw of :func:`sample_class_flips` needs the
    class histogram of the sampled population — O(cells) to build for a
    freshly gathered access batch. For *accessed subsets* (the cells of
    one round's writes or reads) this thinned variant is exact at
    O(candidates) instead: draw the candidate count from ``Binomial(n,
    p_max)`` where ``p_max = max(p_class)``, place candidates by index
    choice, then classify only the candidates (``class_of(idx) ->
    0..49``) and accept each with ``p_class[class] / p_max``.

    Equivalence: i.i.d. ``Bernoulli(p_max)`` indicators over ``n``
    cells have exactly the law Binomial-total + uniform placement
    (exchangeability), and independent acceptance with ``p_c / p_max``
    thins each candidate to ``Bernoulli(p_c)`` — the target field.

    Callers on a hot loop may pass ``p_max`` (with ``p_class`` already
    clipped to [0, 1]) to skip the per-call table scan.
    """
    if p_max is None:
        p_class = np.clip(np.asarray(p_class, dtype=float), 0.0, 1.0)
        p_max = float(p_class.max())
    p = p_class
    if p_max <= 0.0 or n <= 0:
        return np.empty(0, dtype=np.intp)
    k = int(rng.binomial(int(n), p_max))
    if k == 0:
        return np.empty(0, dtype=np.intp)
    candidates = rng.choice(int(n), size=k, replace=False)
    accept = rng.random(k) * p_max < p[class_of(candidates)]
    return candidates[accept]


def sample_class_flips(class_idx, p_class, rng, hist=None,
                       backend=None):
    """Flat indices of flipped cells among ``class_idx``.

    ``class_idx`` is any-shape array of 0..49 classes (flattened
    internally; returned indices address the flattened view).
    ``p_class`` is the flat ``(50,)`` per-class flip probability.
    ``hist`` is the precomputed class histogram when the caller
    maintains one (:class:`IncrementalClassMaps`); recomputed otherwise.
    ``backend`` is an optional engine backend (see
    :mod:`repro.memsys.backends`) whose ``group_class_members`` hook
    may replace the stable-argsort grouping with a counting sort; both
    yield ascending member order per class, so the seeded draws are
    bit-identical either way.

    One vectorized ``rng.binomial`` over the 50 classes, then one
    ``rng.choice`` per class that actually flipped — at rare-event
    rates the common case is an immediate empty return.
    """
    flat = np.asarray(class_idx).reshape(-1)
    if hist is None:
        hist = np.bincount(flat, minlength=N_CLASSES)
    p = np.clip(np.asarray(p_class, dtype=float), 0.0, 1.0)
    counts = rng.binomial(hist, p)
    hot = np.flatnonzero(counts)
    if hot.size == 0:
        return np.empty(0, dtype=np.intp)
    if hot.size == 1:
        members_by_class = {int(hot[0]):
                            np.flatnonzero(flat == hot[0])}
    else:
        # One stable grouping pass instead of a whole-array scan per
        # hot class; stable sort keeps each group ascending, exactly
        # like flatnonzero, so the draws are unchanged.
        grouped = (backend.group_class_members(flat, hist)
                   if backend is not None else None)
        if grouped is not None:
            order, bounds = grouped
        else:
            order = np.argsort(flat, kind="stable")
            bounds = np.concatenate([[0], np.cumsum(hist)])
        members_by_class = {int(c): order[bounds[c]:bounds[c + 1]]
                            for c in hot}
    picks = []
    for c in hot:
        picks.append(rng.choice(members_by_class[int(c)],
                                size=int(counts[c]), replace=False))
    return np.concatenate(picks)


class IncrementalClassMaps:
    """Per-cell coupling-class state, refreshed incrementally.

    Holds, for every cell of the array (mapped words plus unmapped
    tail), the ``(n_direct, n_diagonal)`` AP-neighbor counts, the
    combined 0..49 :func:`class_index`, and the 50-bin class histogram
    the binomial sampler draws from.

    :meth:`refresh` diffs the current ``actual`` plane against a packed
    snapshot of the plane at the previous refresh (XOR + popcount, so
    the diff costs word-wide bit ops). When the touched fraction is
    small the neighbor counts are updated in place around the changed
    cells only — O(changed x 9); past :attr:`full_rebuild_fraction` of
    the array a full vectorized
    :func:`~repro.memsys.controller.neighborhood_class_map` recompute
    is cheaper and the maps rebuild from scratch.

    ``backend`` (see :mod:`repro.memsys.backends`) may take over the
    diff popcount, the full rebuild, and the incremental update via its
    kernel hooks; any hook returning ``None`` falls through to the
    reference numpy path, and the maps are identical either way. A
    backend may also retune :attr:`full_rebuild_fraction` through its
    ``preferred_rebuild_fraction`` (an explicit
    ``full_rebuild_fraction`` argument still wins).
    """

    #: Touched-cell fraction above which a full rebuild wins over
    #: scattered in-place updates (each changed cell touches itself
    #: plus 8 neighbors via ``np.add.at``).
    full_rebuild_fraction = 0.02

    _DIRECT_OFFSETS = ((-1, 0), (1, 0), (0, -1), (0, 1))
    _DIAGONAL_OFFSETS = ((-1, -1), (-1, 1), (1, -1), (1, 1))

    def __init__(self, rows, cols, plane, full_rebuild_fraction=None,
                 backend=None):
        self.rows = int(rows)
        self.cols = int(cols)
        if self.rows * self.cols != plane.n_cells:
            raise ParameterError(
                f"plane has {plane.n_cells} cells, expected "
                f"{rows} x {cols}")
        self.backend = backend
        if full_rebuild_fraction is not None:
            self.full_rebuild_fraction = float(full_rebuild_fraction)
        elif (backend is not None
                and backend.preferred_rebuild_fraction is not None):
            self.full_rebuild_fraction = float(
                backend.preferred_rebuild_fraction)
        self.rebuilds = 0
        self.incremental_refreshes = 0
        self._rebuild(plane)

    # -- refresh ------------------------------------------------------------

    def refresh(self, plane):
        """Bring the maps up to date with ``plane``.

        Cheap no-op when nothing changed since the last refresh (one
        XOR + popcount over the packed lanes).
        """
        snap = self._snapshot
        per_word = None
        if self.backend is not None:
            # Fused XOR + popcount: no whole-plane XOR temp.
            per_word = self.backend.xor_popcount_rows(snap.lanes,
                                                      plane.lanes)
        xor = None
        if per_word is None:
            xor = snap.lanes ^ plane.lanes
            per_word = popcount_rows(xor)
        tail_changed = np.flatnonzero(snap.tail != plane.tail)
        n_changed = int(per_word.sum()) + tail_changed.size
        if n_changed == 0:
            return
        if n_changed > self.full_rebuild_fraction * plane.n_cells:
            self._rebuild(plane)
            return
        changed_words = np.flatnonzero(per_word)
        if changed_words.size:
            xor_changed = (xor[changed_words] if xor is not None
                           else snap.lanes[changed_words]
                           ^ plane.lanes[changed_words])
            diff_bits = unpack_bits(xor_changed, plane.code_bits)
            word_row, bit = np.nonzero(diff_bits)
            changed = changed_words[word_row] * plane.code_bits + bit
        else:
            changed = np.empty(0, dtype=np.intp)
        if tail_changed.size:
            changed = np.concatenate(
                [changed, tail_changed + plane.n_mapped])
        self._apply_changes(changed, plane)
        # Patch the snapshot in place — O(changed words), not a whole
        # plane copy per refresh.
        self._snapshot.lanes[changed_words] = plane.lanes[changed_words]
        self._snapshot.tail[tail_changed] = plane.tail[tail_changed]
        self.incremental_refreshes += 1

    def _rebuild(self, plane):
        bits = plane.to_bits()
        rebuilt = (self.backend.rebuild_class_maps(bits, self.rows,
                                                   self.cols)
                   if self.backend is not None else None)
        if rebuilt is not None:
            self.nd, self.ng, self.class_idx, self.hist = rebuilt
        else:
            nd2, ng2 = neighborhood_class_map(
                bits.reshape(self.rows, self.cols))
            self.nd = nd2.reshape(-1)
            self.ng = ng2.reshape(-1)
            self.class_idx = class_index(bits, self.nd, self.ng)
            self.hist = np.bincount(self.class_idx,
                                    minlength=N_CLASSES)
        self._snapshot = plane.copy()
        self.rebuilds += 1

    def _apply_changes(self, changed, plane):
        """Scattered update: every changed cell toggled exactly once."""
        new_bits = plane.get_cells(changed)
        if self.backend is not None and self.backend.apply_class_changes(
                self, changed, new_bits, plane):
            return
        if changed.size <= 8:
            # The per-batch common case at rare-event rates is one or
            # two flipped cells; scalar neighbor updates beat a dozen
            # numpy dispatches by an order of magnitude.
            affected = self._update_counts_scalar(changed, new_bits)
        else:
            affected = self._update_counts_vector(changed, new_bits)
        old_ci = self.class_idx[affected]
        new_ci = class_index(plane.get_cells(affected),
                             self.nd[affected], self.ng[affected])
        self.class_idx[affected] = new_ci
        np.subtract.at(self.hist, old_ci, 1)
        np.add.at(self.hist, new_ci, 1)

    def _update_counts_scalar(self, changed, new_bits):
        rows, cols = self.rows, self.cols
        nd, ng = self.nd, self.ng
        affected = set()
        for i in range(changed.size):
            idx = int(changed[i])
            delta = 2 * int(new_bits[i]) - 1  # 0->1: +1, 1->0: -1
            r, c = divmod(idx, cols)
            affected.add(idx)
            for dr in (-1, 0, 1):
                rr = r + dr
                if not 0 <= rr < rows:
                    continue
                for dc in (-1, 0, 1):
                    if dr == 0 and dc == 0:
                        continue
                    cc = c + dc
                    if not 0 <= cc < cols:
                        continue
                    j = rr * cols + cc
                    if dr == 0 or dc == 0:
                        nd[j] += delta
                    else:
                        ng[j] += delta
                    affected.add(j)
        return np.fromiter(affected, dtype=np.intp,
                           count=len(affected))

    def _update_counts_vector(self, changed, new_bits):
        delta = (new_bits.astype(np.int8) * 2 - 1)
        r, c = np.divmod(changed, self.cols)
        nd2 = self.nd.reshape(self.rows, self.cols)
        ng2 = self.ng.reshape(self.rows, self.cols)
        affected = [changed]
        for grid, offsets in ((nd2, self._DIRECT_OFFSETS),
                              (ng2, self._DIAGONAL_OFFSETS)):
            for dr, dc in offsets:
                rr, cc = r + dr, c + dc
                ok = ((rr >= 0) & (rr < self.rows)
                      & (cc >= 0) & (cc < self.cols))
                if not np.any(ok):
                    continue
                np.add.at(grid, (rr[ok], cc[ok]), delta[ok])
                affected.append(rr[ok] * self.cols + cc[ok])
        return np.unique(np.concatenate(affected))

    # -- class lookups -------------------------------------------------------

    def cell_classes(self, bits, cells):
        """Classes of ``cells`` when they hold ``bits``.

        The neighbor-count part comes from the maps (the batch's frozen
        classes); the bit part is the caller's — stored bits for a
        disturb draw, target bits for a write draw. ``bits`` and
        ``cells`` may be any matching shape (a whole access batch or
        the handful of candidates of a thinned draw).
        """
        neighbor_part = self.class_idx[cells] % 25
        return (np.asarray(bits, dtype=np.int16) * 25
                + neighbor_part).astype(np.int8)
