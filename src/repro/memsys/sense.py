"""Sense-margin read model: resistance distributions -> misread rates.

The engine's read-disturb tables price what the read *current does to
the cell*; this module prices whether the sense amplifier *resolves the
cell at all*. A 1T-1R read compares the selected branch resistance —
MTJ in series with the access transistor — against the midpoint
reference between the two nominal branch resistances:

* the P branch is bias-independent: ``R_P = rp(ecd) + r_on``,
* the AP branch sees the read bias *after* the access-device divider,
  so its resistance rolls off with the applied TMR bias; the operating
  point ``v_mtj = v_read * R_AP(v_mtj) / (R_AP(v_mtj) + r_on)`` is the
  read-bias analogue of :meth:`repro.device.access.WritePath.\
mtj_voltage` and is solved by the same damped fixed-point iteration.

Device-to-device resistance spread (RA and TMR sigma lumped into one
relative sigma per branch) turns the margin into a misread
probability: a Gaussian tail ``0.5 * erfc(margin / (sigma * sqrt 2))``
per stored state. :class:`~repro.memsys.controller.ArrayController`
folds these probabilities into its per-class read-disturb tables
(``sense=`` parameter), so a misread is booked exactly like a
read-induced flip — pessimistic for ECC, since a misread corrupts the
sensed word the same way a disturbed cell does.

Both margins shrink monotonically as the read voltage grows (the TMR
roll-off pulls ``R_AP`` toward ``R_P``) and grow monotonically with the
zero-bias TMR — the property tests assert exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..device.access import AccessTransistor
from ..device.mtj import MTJDevice
from ..device.resistance import ResistanceModel
from ..errors import ParameterError, SimulationError
from ..validation import require_in_range, require_positive

_SQRT2 = math.sqrt(2.0)


def read_bias_voltage(resistance, ecd, v_read, r_on, tolerance=1e-12,
                      max_iterations=200):
    """MTJ terminal voltage [V] of an AP-state read at ``v_read``.

    Solves ``v = v_read * R_AP(v) / (R_AP(v) + r_on)`` by damped
    fixed-point iteration; monotone in ``v_read`` for the physical
    parameter range (the AP resistance only shrinks with bias).
    """
    require_positive(v_read, "v_read")
    require_positive(r_on, "r_on")
    v = 0.7 * v_read
    for _ in range(max_iterations):
        r = resistance.rap(ecd, v)
        v_next = v_read * r / (r + r_on)
        if abs(v_next - v) < tolerance:
            return v_next
        v = 0.5 * (v + v_next)
    raise SimulationError(
        f"read-path operating point did not converge at "
        f"v_read={v_read} V")


@dataclass(frozen=True)
class SenseMarginModel:
    """Midpoint-reference sense amplifier over a 1T-1R branch.

    Parameters
    ----------
    access:
        :class:`~repro.device.access.AccessTransistor` in series with
        the MTJ on the read path.
    sigma_r:
        Relative (sigma / R) device-to-device spread of each branch
        resistance — RA and TMR variation lumped into one Gaussian
        width. Must lie in (0, 1).
    """

    access: AccessTransistor
    sigma_r: float = 0.03

    def __post_init__(self):
        if not isinstance(self.access, AccessTransistor):
            raise ParameterError(
                f"access must be an AccessTransistor, got "
                f"{type(self.access)!r}")
        require_in_range(self.sigma_r, "sigma_r", 0.0, 1.0,
                         inclusive=False)

    # -- pure resistance-level API (what the property tests drive) ----------

    def branch_resistances(self, resistance, ecd, read_voltage):
        """``(R_P, R_AP)`` series branch resistances [Ohm] at the read
        operating point (AP evaluated at its divider bias)."""
        if not isinstance(resistance, ResistanceModel):
            raise ParameterError(
                f"resistance must be a ResistanceModel, got "
                f"{type(resistance)!r}")
        r_on = self.access.r_on
        v_ap = read_bias_voltage(resistance, ecd, read_voltage, r_on)
        return (resistance.rp(ecd) + r_on,
                resistance.rap(ecd, v_ap) + r_on)

    def margins(self, resistance, ecd, read_voltage):
        """Normalized sense margins ``(m_P, m_AP)`` per stored state.

        Each margin is the distance from the branch resistance to the
        midpoint reference, relative to the branch's own resistance —
        i.e. in units of that branch's sigma when divided by
        ``sigma_r``. Both are positive whenever the two states are
        distinguishable at all.
        """
        r_p, r_ap = self.branch_resistances(resistance, ecd,
                                            read_voltage)
        r_ref = 0.5 * (r_p + r_ap)
        return (r_ref - r_p) / r_p, (r_ap - r_ref) / r_ap

    # -- device-level API (what the controller consumes) ---------------------

    def read_failure_probability(self, device, read_voltage):
        """Per-stored-bit misread probability, shape ``(2,)``.

        Index 0 is a stored P (data 0) sensed above the reference,
        index 1 a stored AP (data 1) sensed below it — the Gaussian
        tail of the branch resistance crossing the midpoint.
        """
        if not isinstance(device, MTJDevice):
            raise ParameterError(
                f"device must be an MTJDevice, got {type(device)!r}")
        m_p, m_ap = self.margins(device.params.resistance,
                                 device.params.ecd, read_voltage)
        scale = self.sigma_r * _SQRT2
        return np.array([0.5 * math.erfc(m_p / scale),
                         0.5 * math.erfc(m_ap / scale)])

    def describe(self):
        """Summary dict (folded into the controller's config)."""
        return {"r_on": self.access.r_on, "sigma_r": self.sigma_r}
