"""Hamming SEC-DED error-correcting code (and a no-ECC baseline).

The system-level question of the paper — does coupling-induced error
inflation survive to the user — depends on what the controller's ECC can
hide. This module implements the standard extended Hamming code
(single-error-correcting, double-error-detecting) over a configurable
data width, fully vectorized over batches of words: ``encode``/``decode``
operate on ``(..., k)`` / ``(..., n)`` bit arrays.

Construction: codeword positions 1..m (``m = k + r``) carry the data and
the ``r`` Hamming parity bits (at the power-of-two positions); position
``m + 1`` holds the overall parity that upgrades SEC to SEC-DED. The
syndrome of a received word is the XOR of the position indices of its
erroneous bits, so a single error is located exactly and a double error
(syndrome != 0, even overall parity) is flagged uncorrectable.
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import ParameterError
from ..validation import require_int_in_range


class DecodeOutcome(enum.IntEnum):
    """Per-word result of a decode (or of a statistical classification)."""

    OK = 0          #: clean word
    CORRECTED = 1   #: single error corrected
    DETECTED = 2    #: uncorrectable error detected (word flagged)
    SILENT = 3      #: uncorrectable error NOT detected (data corrupted)


class NoECC:
    """The no-ECC baseline: codeword == data word, errors pass through."""

    def __init__(self, data_bits=64):
        self.n_data = require_int_in_range(data_bits, "data_bits", 1,
                                           4096)

    @property
    def n_parity(self):
        """Number of check bits (zero)."""
        return 0

    @property
    def n_code(self):
        """Codeword width in bits."""
        return self.n_data

    @property
    def data_positions(self):
        """Indices of the data bits inside a codeword."""
        return np.arange(self.n_data)

    def encode(self, data):
        """Identity map; validates shape."""
        data = _as_bits(data, self.n_data, "data")
        return data.copy()

    def decode(self, codewords):
        """Identity decode: every erroneous word is a silent failure.

        Returns ``(data, outcomes)``; without redundancy the decoder
        cannot see errors, so every word reports ``OK`` — use
        :meth:`classify_errors` for the ground-truth bookkeeping.
        """
        codewords = _as_bits(codewords, self.n_code, "codewords")
        outcomes = np.zeros(codewords.shape[:-1], dtype=np.int8)
        return codewords.copy(), outcomes

    def classify_errors(self, n_errors):
        """Ground-truth outcome for words with ``n_errors`` wrong bits."""
        n_errors = np.asarray(n_errors)
        return np.where(n_errors == 0, DecodeOutcome.OK,
                        DecodeOutcome.SILENT).astype(np.int8)


class HammingSECDED:
    """Extended Hamming SEC-DED code over ``data_bits`` data bits.

    Parameters
    ----------
    data_bits:
        Data word width ``k``; the default 64 yields the classic (72, 64)
        memory code — 64 data + 7 Hamming + 1 overall parity.
    """

    def __init__(self, data_bits=64):
        k = require_int_in_range(data_bits, "data_bits", 1, 4096)
        r = 1
        while (1 << r) < k + r + 1:
            r += 1
        self.n_data = k
        self.n_parity = r + 1        # r Hamming bits + overall parity
        m = k + r
        self._m = m
        positions = np.arange(1, m + 1)
        parity_mask = (positions & (positions - 1)) == 0  # powers of two
        self._parity_pos = positions[parity_mask]
        self._data_pos = positions[~parity_mask]
        # pos_code[p - 1, i] = bit i of position index p.
        self._pos_code = ((positions[:, None] >> np.arange(r)) & 1
                          ).astype(np.int64)

    @property
    def n_code(self):
        """Codeword width in bits (``k + r + 1``)."""
        return self._m + 1

    @property
    def data_positions(self):
        """Indices of the data bits inside a codeword."""
        return self._data_pos - 1

    def encode(self, data):
        """Encode ``(..., k)`` data bits into ``(..., n)`` codewords."""
        data = _as_bits(data, self.n_data, "data")
        shape = data.shape[:-1] + (self.n_code,)
        cw = np.zeros(shape, dtype=np.int8)
        cw[..., self._data_pos - 1] = data
        # With the parity positions still zero the syndrome equals the
        # parity values that zero it out.
        syndrome = cw[..., :self._m].astype(np.int64) @ self._pos_code
        cw[..., self._parity_pos - 1] = (syndrome & 1).astype(np.int8)
        cw[..., self._m] = cw[..., :self._m].sum(axis=-1) % 2
        return cw

    def syndrome(self, codewords):
        """(syndrome integer, overall parity) of received codewords."""
        cw = _as_bits(codewords, self.n_code, "codewords")
        bits = cw[..., :self._m].astype(np.int64) @ self._pos_code & 1
        weights = np.int64(1) << np.arange(self._pos_code.shape[1])
        return bits @ weights, cw.sum(axis=-1) % 2

    def decode(self, codewords):
        """Decode ``(..., n)`` codewords; returns ``(data, outcomes)``.

        ``outcomes`` is an int8 array of :class:`DecodeOutcome` values.
        Words with >= 3 errors are beyond the code's guarantee — an odd
        number aliases onto a single-error syndrome and is silently
        miscorrected (reported ``CORRECTED``), the true outcome an
        engine must book as ``SILENT`` via :meth:`classify_errors`.
        """
        cw = _as_bits(codewords, self.n_code, "codewords").copy()
        syn, overall = self.syndrome(cw)
        outcomes = np.full(cw.shape[:-1], DecodeOutcome.OK,
                           dtype=np.int8)
        # Odd overall parity: a single (odd) number of flips.
        single = (overall == 1)
        outcomes[single] = DecodeOutcome.CORRECTED
        in_word = single & (syn >= 1) & (syn <= self._m)
        if np.any(in_word):
            flat = cw.reshape(-1, self.n_code)
            idx = np.nonzero(in_word.reshape(-1))[0]
            pos = syn.reshape(-1)[idx] - 1
            flat[idx, pos] ^= 1
        # syn == 0 with odd parity: the overall-parity bit itself.
        fix_overall = single & (syn == 0)
        if np.any(fix_overall):
            flat = cw.reshape(-1, self.n_code)
            idx = np.nonzero(fix_overall.reshape(-1))[0]
            flat[idx, self._m] ^= 1
        # syn out of range with odd parity cannot happen for <= 1 flips;
        # even parity with nonzero syndrome is the double-error signature.
        outcomes[single & (syn > self._m)] = DecodeOutcome.DETECTED
        outcomes[(overall == 0) & (syn != 0)] = DecodeOutcome.DETECTED
        return cw[..., self._data_pos - 1], outcomes

    def classify_errors(self, n_errors):
        """Statistical outcome for words with ``n_errors`` wrong bits.

        The vectorized engine hot path books outcomes from error counts
        instead of running the full decoder: 0 -> OK, 1 -> CORRECTED,
        2 -> DETECTED, >= 3 -> SILENT (beyond the guarantee; the word may
        be miscorrected or mis-flagged, either way the data is wrong).
        """
        n_errors = np.asarray(n_errors)
        out = np.full(n_errors.shape, DecodeOutcome.SILENT, dtype=np.int8)
        out[n_errors == 0] = DecodeOutcome.OK
        out[n_errors == 1] = DecodeOutcome.CORRECTED
        out[n_errors == 2] = DecodeOutcome.DETECTED
        return out


#: Registry used by the CLI and the sweeps.
ECC_SCHEMES = {"none": NoECC, "secded": HammingSECDED}


def make_ecc(name, data_bits=64):
    """Instantiate an ECC scheme by registry name (``none``/``secded``)."""
    try:
        scheme = ECC_SCHEMES[name]
    except KeyError:
        raise ParameterError(
            f"unknown ECC scheme {name!r}; choose from "
            f"{sorted(ECC_SCHEMES)}") from None
    return scheme(data_bits=data_bits)


def _as_bits(array, width, name):
    arr = np.asarray(array)
    if arr.ndim < 1 or arr.shape[-1] != width:
        raise ParameterError(
            f"{name} must have last dimension {width}, got shape "
            f"{arr.shape}")
    if not np.all((arr == 0) | (arr == 1)):
        raise ParameterError(f"{name} must contain only 0/1 bits")
    return arr.astype(np.int8)
