"""Bit-packed array state: codeword bits in uint64 lanes.

The reference engine keeps the ``intended``/``actual`` planes as one
int8 byte per cell — 1 MiB per plane for a 1024 x 1024 array. The
rare-event fast path packs 64 cells per uint64 lane instead (128 KiB
per plane), and counts errors with XOR + popcount, so per-read word
checks and whole-plane scrub passes become word-wide bit ops instead of
per-cell byte gathers.

Layout: word ``w``'s ``code_bits`` cells pack little-endian into
``lanes[w, :]`` — codeword bit ``b`` lives in lane ``b // 64`` at bit
``b % 64``. Cells past the last whole codeword (the unmapped tail of
the flattened array) live in a small int8 ``tail`` array, so
whole-array mechanisms (retention, neighborhood class maps) still see
every cell.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError

#: Lane dtype: explicit little-endian so the packbits/view pair agrees
#: on bit order regardless of platform.
LANE_DTYPE = np.dtype("<u8")

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Set-bit count of every byte value (fallback for numpy < 2.0).
_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)],
                           dtype=np.uint8)


def pack_bits(bits):
    """Pack ``(n, k)`` 0/1 bits into ``(n, ceil(k / 64))`` uint64 lanes."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 2:
        raise ParameterError(
            f"bits must be 2-D, got shape {bits.shape}")
    n, k = bits.shape
    n_lanes = (k + 63) // 64
    padded = np.zeros((n, n_lanes * 64), dtype=np.uint8)
    padded[:, :k] = bits
    packed = np.packbits(padded, axis=1, bitorder="little")
    return packed.view(LANE_DTYPE)


def unpack_bits(lanes, code_bits):
    """Unpack ``(n, n_lanes)`` uint64 lanes into ``(n, code_bits)`` int8."""
    lanes = np.ascontiguousarray(lanes)
    u8 = lanes.view(np.uint8)
    bits = np.unpackbits(u8, axis=1, bitorder="little")
    return bits[:, :int(code_bits)].astype(np.int8)


def popcount_rows(lanes):
    """Total set bits per row of a 2-D uint64 array."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(lanes).sum(axis=1, dtype=np.int64)
    return _popcount_rows_table(lanes)


def _popcount_rows_table(lanes):
    """Byte-table popcount (the numpy < 2.0 fallback, kept testable).

    For the narrow rows the engine actually diffs (a 72-bit codeword
    is 2 lanes = 16 byte columns) the gathered ``(n, 8 * n_lanes)``
    table temp plus its reduction is the dominant cost; accumulating
    one looked-up column at a time keeps the peak temp at a single
    ``(n,)`` column and is ~20% faster (see
    ``benchmarks/test_bench_engine.py``). Past a few dozen columns the
    per-column strided gathers lose to the one big contiguous gather,
    so wide rows keep the original reduction.
    """
    u8 = np.ascontiguousarray(lanes).view(np.uint8)
    if u8.ndim == 2 and 0 < u8.shape[1] <= 32:
        out = np.zeros(u8.shape[0], dtype=np.int64)
        for j in range(u8.shape[1]):
            out += _POPCOUNT_TABLE[u8[:, j]]
        return out
    return _POPCOUNT_TABLE[u8].sum(axis=1, dtype=np.int64)


class BitPlane:
    """One bit-packed plane of a word-mapped array.

    Parameters
    ----------
    n_words, code_bits:
        The word organization (matches
        :class:`~repro.memsys.controller.WordMap`).
    n_cells:
        Total flat cells of the array; the ``n_cells - n_words *
        code_bits`` unmapped trailing cells are stored unpacked in
        :attr:`tail`.
    """

    def __init__(self, n_words, code_bits, n_cells):
        self.n_words = int(n_words)
        self.code_bits = int(code_bits)
        self.n_cells = int(n_cells)
        self.n_mapped = self.n_words * self.code_bits
        if self.n_mapped > self.n_cells:
            raise ParameterError(
                f"{n_words} x {code_bits}-bit words exceed "
                f"{n_cells} cells")
        self.n_lanes = (self.code_bits + 63) // 64
        self.lanes = np.zeros((self.n_words, self.n_lanes),
                              dtype=LANE_DTYPE)
        self.tail = np.zeros(self.n_cells - self.n_mapped,
                             dtype=np.int8)

    @classmethod
    def from_bits(cls, flat_bits, n_words, code_bits):
        """Pack a flat (n_cells,) 0/1 array into a plane."""
        flat = np.asarray(flat_bits, dtype=np.int8).reshape(-1)
        plane = cls(n_words, code_bits, flat.shape[0])
        plane.lanes = pack_bits(
            flat[:plane.n_mapped].reshape(n_words, code_bits))
        plane.tail[:] = flat[plane.n_mapped:]
        return plane

    def copy(self):
        """Independent copy of the packed state."""
        other = BitPlane(self.n_words, self.code_bits, self.n_cells)
        other.lanes[:] = self.lanes
        other.tail[:] = self.tail
        return other

    def to_bits(self):
        """Unpack the whole plane to a flat (n_cells,) int8 array."""
        mapped = unpack_bits(self.lanes, self.code_bits).reshape(-1)
        if self.tail.size == 0:
            return mapped
        return np.concatenate([mapped, self.tail])

    # -- word-granular access ----------------------------------------------

    def word_bits(self, words):
        """(len(words), code_bits) int8 bits of the given words."""
        return unpack_bits(self.lanes[np.asarray(words)],
                           self.code_bits)

    def set_words(self, words, bits):
        """Replace the codewords at ``words`` with ``bits``."""
        self.lanes[np.asarray(words)] = pack_bits(bits)

    def diff_counts(self, other, words=None):
        """Per-word mismatch counts vs ``other`` via XOR + popcount.

        ``words`` selects a subset; default is every word (the scrub
        pass). The tail is not word-mapped and is never counted.
        """
        if words is None:
            return popcount_rows(self.lanes ^ other.lanes)
        words = np.asarray(words)
        return popcount_rows(self.lanes[words] ^ other.lanes[words])

    # -- cell-granular access ----------------------------------------------

    def _mapped_coords(self, idx):
        w, b = np.divmod(idx, self.code_bits)
        lane, shift = np.divmod(b, 64)
        return w, lane, shift.astype(np.uint64)

    def get_cells(self, flat_idx):
        """int8 bits at the given flat cell indices (mapped or tail)."""
        idx = np.asarray(flat_idx)
        out = np.empty(idx.shape, dtype=np.int8)
        mapped = idx < self.n_mapped
        if np.any(mapped):
            w, lane, shift = self._mapped_coords(idx[mapped])
            out[mapped] = ((self.lanes[w, lane] >> shift)
                           & np.uint64(1)).astype(np.int8)
        if not np.all(mapped):
            out[~mapped] = self.tail[idx[~mapped] - self.n_mapped]
        return out

    def toggle_cells(self, flat_idx):
        """XOR-flip the bits at the given flat cell indices.

        Duplicate indices toggle repeatedly (unbuffered), matching the
        semantics of independent flip events landing on one cell.
        """
        idx = np.asarray(flat_idx).reshape(-1)
        if idx.size == 0:
            return
        mapped = idx < self.n_mapped
        if np.any(mapped):
            w, lane, shift = self._mapped_coords(idx[mapped])
            np.bitwise_xor.at(self.lanes, (w, lane),
                              np.uint64(1) << shift)
        if not np.all(mapped):
            np.bitwise_xor.at(self.tail, idx[~mapped] - self.n_mapped,
                              np.int8(1))
