"""Banked array topology: banks x subarrays sharding over the engine.

Real STT-MRAM parts are not one flat mat: a chip is banks of subarrays
with shared peripherals, and — the physical fact this layer exploits —
the paper's magnetic coupling acts only over the pitch-limited 3x3
neighborhood, i.e. *within* a subarray. A banked array is therefore
exactly a set of independent flat arrays: per-subarray coupling-class
maps, per-subarray :class:`~repro.memsys.bitplane.BitPlane` shards, and
an embarrassingly parallel Monte-Carlo axis.

:class:`ArrayTopology` describes the decomposition (banks tile rows,
subarrays tile columns) and :class:`HierarchicalAddressMap` carries a
word address to ``(bank, subarray, local word)`` and back, round-trip
exact. :class:`TopologyEngine` runs one
:class:`~repro.memsys.engine.ReliabilityEngine` sub-run per shard —
each with its own child RNG spawned from the run seed — and merges the
per-shard error/ECC/scrub counters with
:func:`~repro.memsys.engine.merge_results`. Shard sub-runs dispatch
through the ordinary sweep executors (``executor="thread" | "process" |
"distributed"``), so a chip-scale run scales across cores with the
same determinism contract as every other sweep: seeded results are
byte-identical for every executor, and a 1x1 banked run passes the
parent generator through unspawned so it is byte-identical to the flat
engine.

Two non-flat topology kinds:

* ``"banked"`` — 1T-1R banks x subarrays; sharding only.
* ``"cross_point"`` — the selector-less cross-point array of Zhao et
  al. (arXiv:1202.1782): every access half-selects the other cells on
  the accessed row and column at ~half the read bias. The engine prices
  that as a per-cell half-select exposure of ``1/sub_rows +
  1/sub_cols`` per transaction against the controller's half-select
  disturb table (see
  :meth:`~repro.memsys.controller.ArrayController.half_select_table`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from ..errors import ParameterError
from ..resilience.checkpoint import CheckpointManager, RunCheckpointer
from ..sweep.runner import SweepRunner, executor_for_jobs
from ..sweep.spec import SweepSpec
from ..validation import require_int_in_range, require_positive
from .backends import resolve_backend
from .engine import build_engine, merge_results

#: Recognized topology kinds (the CLI also accepts ``cross-point``).
TOPOLOGIES = ("flat", "banked", "cross_point")


def normalize_topology(kind):
    """Canonical topology name; accepts the CLI's ``cross-point``."""
    canonical = str(kind).replace("-", "_")
    if canonical not in TOPOLOGIES:
        raise ParameterError(
            f"topology must be one of {TOPOLOGIES}, got {kind!r}")
    return canonical


@dataclass(frozen=True)
class ArrayTopology:
    """Banks x subarrays decomposition of a rows x cols chip.

    Banks tile the row dimension, subarrays the column dimension; both
    must divide their dimension exactly, so every shard is the same
    ``sub_rows x sub_cols`` geometry (which is what lets one template
    engine describe them all). ``"flat"`` is the degenerate 1x1 case.
    """

    kind: str = "flat"
    banks: int = 1
    subarrays: int = 1
    rows: int = 64
    cols: int = 64

    def __post_init__(self):
        object.__setattr__(self, "kind", normalize_topology(self.kind))
        require_int_in_range(self.banks, "banks", 1, 4096)
        require_int_in_range(self.subarrays, "subarrays", 1, 4096)
        require_int_in_range(self.rows, "rows", 1, 1 << 20)
        require_int_in_range(self.cols, "cols", 1, 1 << 20)
        if self.kind == "flat" and (self.banks != 1
                                    or self.subarrays != 1):
            raise ParameterError(
                "flat topology has exactly one bank and one subarray; "
                "use kind='banked' to shard")
        if self.rows % self.banks:
            raise ParameterError(
                f"rows={self.rows} is not divisible by "
                f"banks={self.banks}")
        if self.cols % self.subarrays:
            raise ParameterError(
                f"cols={self.cols} is not divisible by "
                f"subarrays={self.subarrays}")

    @property
    def n_shards(self):
        """Independent subarray shards (banks * subarrays)."""
        return self.banks * self.subarrays

    @property
    def sub_rows(self):
        """Rows per subarray shard."""
        return self.rows // self.banks

    @property
    def sub_cols(self):
        """Columns per subarray shard."""
        return self.cols // self.subarrays

    def shard_index(self, bank, subarray):
        """Flat shard index of ``(bank, subarray)`` (bank-major)."""
        require_int_in_range(bank, "bank", 0, self.banks - 1)
        require_int_in_range(subarray, "subarray", 0,
                             self.subarrays - 1)
        return bank * self.subarrays + subarray

    def shard_coords(self, shard):
        """``(bank, subarray)`` of a flat shard index."""
        require_int_in_range(shard, "shard", 0, self.n_shards - 1)
        return divmod(int(shard), self.subarrays)

    def address_map(self, code_bits):
        """:class:`HierarchicalAddressMap` for ``code_bits``-bit words."""
        return HierarchicalAddressMap(self, code_bits)

    def describe(self):
        """Summary dict (merged into run configs and reports)."""
        return {
            "topology": self.kind,
            "banks": self.banks,
            "subarrays": self.subarrays,
            "rows": self.rows,
            "cols": self.cols,
            "sub_rows": self.sub_rows,
            "sub_cols": self.sub_cols,
            "n_shards": self.n_shards,
        }


class HierarchicalAddressMap:
    """Word address <-> ``(bank, subarray, local word)``, exactly.

    Global word addresses enumerate shards bank-major (bank 0's
    subarrays first), ``words_per_shard`` local words per shard — the
    hierarchical-decoder convention: high address bits select the bank,
    middle bits the subarray, low bits the local word. ``compose`` and
    ``decompose`` are exact inverses over the whole address space, and
    :meth:`shard_cells` partitions the chip's flat cell indices with no
    overlap; the property tests assert both.
    """

    def __init__(self, topology, code_bits):
        if not isinstance(topology, ArrayTopology):
            raise ParameterError(
                f"topology must be an ArrayTopology, got "
                f"{type(topology)!r}")
        require_int_in_range(code_bits, "code_bits", 1, 1 << 20)
        self.topology = topology
        self.code_bits = int(code_bits)
        shard_cells = topology.sub_rows * topology.sub_cols
        self.words_per_shard = shard_cells // self.code_bits
        if self.words_per_shard < 1:
            raise ParameterError(
                f"subarray of {shard_cells} cells cannot hold one "
                f"{self.code_bits}-bit codeword")
        self.n_words = topology.n_shards * self.words_per_shard

    def decompose(self, word):
        """``word -> (bank, subarray, local)``; vectorized, validated."""
        scalar = np.ndim(word) == 0
        word = np.asarray(word)
        if word.size and (np.any(word < 0)
                          or np.any(word >= self.n_words)):
            raise ParameterError(
                f"word address out of range [0, {self.n_words})")
        shard, local = np.divmod(word, self.words_per_shard)
        bank, subarray = np.divmod(shard, self.topology.subarrays)
        if scalar:
            return int(bank), int(subarray), int(local)
        return bank, subarray, local

    def compose(self, bank, subarray, local):
        """``(bank, subarray, local) -> word``; exact inverse of
        :meth:`decompose`."""
        scalar = (np.ndim(bank) == 0 and np.ndim(subarray) == 0
                  and np.ndim(local) == 0)
        bank = np.asarray(bank)
        subarray = np.asarray(subarray)
        local = np.asarray(local)
        topo = self.topology
        for value, name, bound in ((bank, "bank", topo.banks),
                                   (subarray, "subarray",
                                    topo.subarrays),
                                   (local, "local",
                                    self.words_per_shard)):
            if value.size and (np.any(value < 0)
                               or np.any(value >= bound)):
                raise ParameterError(
                    f"{name} out of range [0, {bound})")
        word = ((bank * topo.subarrays + subarray)
                * self.words_per_shard + local)
        return int(word) if scalar else word

    def shard_of(self, word):
        """Flat shard index owning ``word``."""
        bank, subarray, _ = self.decompose(word)
        return bank * self.topology.subarrays + subarray

    def shard_cells(self, bank, subarray):
        """Chip-global flat cell indices of one subarray shard.

        Row-major over the full ``rows x cols`` chip; the union over
        all ``(bank, subarray)`` pairs is exactly ``arange(rows *
        cols)`` with no overlap.
        """
        topo = self.topology
        require_int_in_range(bank, "bank", 0, topo.banks - 1)
        require_int_in_range(subarray, "subarray", 0,
                             topo.subarrays - 1)
        r = np.arange(topo.sub_rows) + bank * topo.sub_rows
        c = np.arange(topo.sub_cols) + subarray * topo.sub_cols
        return (r[:, None] * topo.cols + c[None, :]).reshape(-1)


def _spawn_generators(gen, n):
    """``n`` child generators derived deterministically from ``gen``."""
    try:
        return list(gen.spawn(n))
    except AttributeError:  # numpy < 1.25: spawn via the seed sequence
        seed_seq = gen.bit_generator._seed_seq
        return [np.random.default_rng(s) for s in seed_seq.spawn(n)]


def _run_shard(device, sub_rows, sub_cols, engine_kwargs, batch_size,
               profile, checkpoint_dir, checkpoint_every, resume,
               shard, n_transactions, rng):
    """One subarray sub-run; module-level so process executors can
    pickle it (the ``shard`` axis labels the sweep point and names the
    shard's checkpoint tag; the checkpoint directory travels as a
    plain path so process/distributed executors can ship it)."""
    engine = build_engine(device, rows=sub_rows, cols=sub_cols,
                          **engine_kwargs)
    ckpt = None
    if checkpoint_dir is not None:
        ckpt = RunCheckpointer(CheckpointManager(checkpoint_dir),
                               tag=f"shard-{int(shard)}",
                               every=checkpoint_every)
    return engine.run(n_transactions, rng=rng,
                      batch_size=batch_size, profile=profile,
                      checkpoint=ckpt, resume=resume)


class TopologyEngine:
    """Reliability engine over an :class:`ArrayTopology`.

    Every shard is the same geometry at the same pitch, so one
    *template* :class:`~repro.memsys.engine.ReliabilityEngine` (built
    lazily, sized ``sub_rows x sub_cols``) describes them all; a run
    splits the transaction budget across shards, gives each shard a
    child generator spawned from the run seed, and merges the per-shard
    results. With exactly one shard the parent generator passes through
    unspawned — a seeded 1x1 banked run is byte-identical to the flat
    engine, which the parity matrix asserts.

    Accepts the same knobs as :func:`~repro.memsys.engine.build_engine`
    (ecc/workload/scrub/sampler/backend/sense/...); ``cross_point``
    topologies additionally arm the flat engines' half-select sneak
    term with an exposure of ``1/sub_rows + 1/sub_cols`` per cell per
    transaction.
    """

    def __init__(self, device, topology, pitch, ecc="secded",
                 workload="random", data_bits=64, scrub=None, vp=0.95,
                 nominal_wer=2e-3, read_voltage=0.15, t_read=20e-9,
                 cycle_time=50e-9, temperature=None, writeback=True,
                 sampler="bernoulli", backend=None, sense=None):
        if not isinstance(topology, ArrayTopology):
            raise ParameterError(
                f"topology must be an ArrayTopology, got "
                f"{type(topology)!r}")
        self.device = device
        self.topology = topology
        # Resolve the backend once (env lookup, numba fallback, warn)
        # and ship the registry *name* to workers — instances are
        # process-local, names travel the same way sweeps ship them.
        self._engine_kwargs = dict(
            pitch=pitch, ecc=ecc, workload=workload,
            data_bits=data_bits, scrub=scrub, vp=vp,
            nominal_wer=nominal_wer, read_voltage=read_voltage,
            t_read=t_read, cycle_time=cycle_time,
            temperature=temperature, writeback=writeback,
            sampler=sampler, backend=resolve_backend(backend).name,
            sense=sense,
            half_select_exposure=self.half_select_exposure(topology))
        self._template = None

    @staticmethod
    def half_select_exposure(topology):
        """Half-selects per cell per transaction for ``topology``.

        Cross-point only: an access at ``(r, c)`` half-selects the
        ``sub_cols - 1`` other cells of row ``r`` and the ``sub_rows -
        1`` other cells of column ``c``, so a uniformly accessed cell
        accrues ~``1/sub_rows + 1/sub_cols`` half-selects per
        transaction.
        """
        if topology.kind != "cross_point":
            return 0.0
        return 1.0 / topology.sub_rows + 1.0 / topology.sub_cols

    @property
    def template(self):
        """The shared per-shard flat engine (built on first use)."""
        if self._template is None:
            self._template = build_engine(
                self.device, rows=self.topology.sub_rows,
                cols=self.topology.sub_cols, **self._engine_kwargs)
        return self._template

    # CLI/service compatibility with the flat engine's surface.
    @property
    def controller(self):
        return self.template.controller

    @property
    def backend(self):
        return self.template.backend

    @property
    def sampler(self):
        return self.template.sampler

    @property
    def cycle_time(self):
        return self.template.cycle_time

    def address_map(self):
        """The chip's hierarchical address map (template's code bits)."""
        return self.topology.address_map(
            self.template.controller.ecc.n_code)

    def transaction_shares(self, n_transactions):
        """Per-shard transaction counts: even split, remainder to the
        leading shards (some shares may be 0 for tiny runs)."""
        require_positive(n_transactions, "n_transactions")
        n = int(n_transactions)
        shards = self.topology.n_shards
        base, rem = divmod(n, shards)
        return [base + (1 if i < rem else 0) for i in range(shards)]

    def run(self, n_transactions, rng=None, batch_size=8192,
            progress=None, profile=False, executor=None, jobs=None,
            spool=None, checkpoint=None, checkpoint_every=None,
            resume=False):
        """Simulate ``n_transactions`` across the shards and merge.

        ``executor``/``jobs``/``spool`` select how shard sub-runs
        dispatch — any :data:`repro.sweep.runner.EXECUTORS` entry;
        default is the small-sweep heuristic of
        :func:`~repro.sweep.runner.executor_for_jobs` over ``n_shards``
        points. Seeded results are byte-identical for every executor:
        the child generators are spawned before dispatch and the merge
        is shard-ordered.

        ``checkpoint``/``checkpoint_every``/``resume`` arm per-shard
        crash tolerance (see :meth:`ReliabilityEngine.run
        <repro.memsys.engine.ReliabilityEngine.run>`): one checkpoint
        tag per shard in one directory, so a resumed run skips
        completed shards outright and continues interrupted ones
        mid-stream — on any executor, since the directory travels as a
        plain path.
        """
        require_positive(n_transactions, "n_transactions")
        n = int(n_transactions)
        gen = (rng if isinstance(rng, np.random.Generator)
               else np.random.default_rng(rng))
        topo = self.topology
        manager = None
        if checkpoint is not None:
            manager = (checkpoint
                       if isinstance(checkpoint, CheckpointManager)
                       else CheckpointManager(str(checkpoint)))
        if topo.n_shards == 1:
            result = self.template.run(
                n, rng=gen, batch_size=batch_size, progress=progress,
                profile=profile, checkpoint=manager,
                checkpoint_every=checkpoint_every, resume=resume)
            return self._finalize([result], executor="serial")
        shares = self.transaction_shares(n)
        children = _spawn_generators(gen, topo.n_shards)
        active = [(shard, share, child) for shard, (share, child)
                  in enumerate(zip(shares, children)) if share > 0]
        executor = executor or executor_for_jobs(
            jobs, n_points=len(active))
        if executor == "serial":
            results = []
            done = 0
            for shard, share, child in active:
                sub_progress = None
                if progress is not None:
                    def sub_progress(d, _total, base=done):
                        progress(base + d, n)
                ckpt = None
                if manager is not None:
                    ckpt = RunCheckpointer(manager,
                                           tag=f"shard-{shard}",
                                           every=checkpoint_every)
                results.append(self.template.run(
                    share, rng=child, batch_size=batch_size,
                    progress=sub_progress, profile=profile,
                    checkpoint=ckpt, resume=resume))
                done += share
        else:
            func = partial(_run_shard, self.device, topo.sub_rows,
                           topo.sub_cols, self._engine_kwargs,
                           int(batch_size), bool(profile),
                           manager.directory if manager is not None
                           else None, checkpoint_every, bool(resume))
            spec = SweepSpec.zipped(
                shard=[shard for shard, _, _ in active],
                n_transactions=[share for _, share, _ in active],
                rng=[child for _, _, child in active])
            sweep_progress = None
            if progress is not None:
                def sweep_progress(done_shards, total_shards):
                    progress(n * done_shards // total_shards, n)
            runner = SweepRunner(func, executor=executor, jobs=jobs,
                                 spool=spool,
                                 progress=sweep_progress)
            results = list(runner.run(spec).values)
        return self._finalize(results, executor=executor)

    def _finalize(self, results, executor):
        merged = merge_results(
            results,
            config={**results[0].config, **self.topology.describe()})
        merged.extras["topology"] = {
            **self.topology.describe(),
            "executor": executor,
            "per_shard_transactions": [r.n_transactions
                                       for r in results],
        }
        return merged

    def expected_rates(self, rng=None):
        """Noise-free expected rates, averaged over the shards.

        Every shard is the same size, so the chip-level rates are the
        plain mean of the per-shard rates (each evaluated against its
        own child-seeded background). One shard passes the generator
        through unspawned — identical to the flat engine.
        """
        gen = (rng if isinstance(rng, np.random.Generator)
               else np.random.default_rng(rng))
        if self.topology.n_shards == 1:
            return self.template.expected_rates(rng=gen)
        children = _spawn_generators(gen, self.topology.n_shards)
        per_shard = [self.template.expected_rates(rng=child)
                     for child in children]
        return {key: float(np.mean([rates[key]
                                    for rates in per_shard]))
                for key in per_shard[0]}
