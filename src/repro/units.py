"""Unit conversions between SI and the practical CGS units of the paper.

The STT-MRAM literature (and this paper) quotes magnetic fields in oersted
(Oe), magnetizations in emu/cc, and resistance-area products in Ohm*um^2.
Internally every computation in this library is SI:

* magnetic field ``H`` in A/m,
* magnetization ``Ms`` in A/m,
* lengths in m,
* moments in A*m^2.

These helpers are the single authority for conversions; they are written as
plain functions (vectorized over numpy arrays) so there is exactly one
obvious way to convert a quantity.
"""

from __future__ import annotations

import math

#: A/m per oersted: 1 Oe = 1000/(4*pi) A/m.
AM_PER_OE = 1.0e3 / (4.0 * math.pi)

#: A/m per emu/cc: 1 emu/cc = 1000 A/m.
AM_PER_EMU_CC = 1.0e3


def oe_to_am(field_oe):
    """Convert a magnetic field from oersted to A/m."""
    return field_oe * AM_PER_OE


def am_to_oe(field_am):
    """Convert a magnetic field from A/m to oersted."""
    return field_am / AM_PER_OE


def koe_to_am(field_koe):
    """Convert a magnetic field from kilo-oersted to A/m."""
    return field_koe * 1.0e3 * AM_PER_OE


def am_to_koe(field_am):
    """Convert a magnetic field from A/m to kilo-oersted."""
    return field_am / (1.0e3 * AM_PER_OE)


def emu_cc_to_am(ms_emu_cc):
    """Convert a magnetization from emu/cc to A/m."""
    return ms_emu_cc * AM_PER_EMU_CC


def am_to_emu_cc(ms_am):
    """Convert a magnetization from A/m to emu/cc."""
    return ms_am / AM_PER_EMU_CC


def ohm_um2_to_ohm_m2(ra_ohm_um2):
    """Convert a resistance-area product from Ohm*um^2 to Ohm*m^2."""
    return ra_ohm_um2 * 1.0e-12


def ohm_m2_to_ohm_um2(ra_ohm_m2):
    """Convert a resistance-area product from Ohm*m^2 to Ohm*um^2."""
    return ra_ohm_m2 * 1.0e12


def nm_to_m(length_nm):
    """Convert a length from nanometres to metres."""
    return length_nm * 1.0e-9


def m_to_nm(length_m):
    """Convert a length from metres to nanometres."""
    return length_m * 1.0e9


def celsius_to_kelvin(temp_c):
    """Convert a temperature from degrees Celsius to kelvin."""
    return temp_c + 273.15


def kelvin_to_celsius(temp_k):
    """Convert a temperature from kelvin to degrees Celsius."""
    return temp_k - 273.15


def ua_to_a(current_ua):
    """Convert a current from microampere to ampere."""
    return current_ua * 1.0e-6


def a_to_ua(current_a):
    """Convert a current from ampere to microampere."""
    return current_a * 1.0e6


def ns_to_s(time_ns):
    """Convert a time from nanoseconds to seconds."""
    return time_ns * 1.0e-9


def s_to_ns(time_s):
    """Convert a time from seconds to nanoseconds."""
    return time_s * 1.0e9
