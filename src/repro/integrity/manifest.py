"""Run manifests and digest primitives — the trust layer's vocabulary.

Everything this repo persists across a process boundary (spool chunk
results, engine checkpoints, service disk-cache entries) now carries a
digest a later reader can verify, and every *run* can emit a
:class:`RunManifest` recording its identity plus per-chunk/per-batch
result digests. The contract shared by every consumer is **counted
miss, never a wrong answer**: a verification failure surfaces as an
:class:`~repro.errors.IntegrityError` that callers translate into a
retry, a quarantine record, or a cache miss — never into silently
serving the corrupt bytes.

Three digest flavors, each matched to what it protects:

``record_digest``
    Digest of *semantic content*: the object is canonicalized with the
    exact collapse rules of
    :func:`repro.service.protocol.query_fingerprint` (dict ordering is
    irrelevant, ``70`` and ``70.0`` digest identically, bools stay
    bools) and the digest is taken over its canonical JSON. Used where
    two logically-equal payloads must verify equal even if they were
    serialized by different writers.

``blob_digest`` / ``pickle_digest``
    Digest of *exact bytes* — byte-for-byte replay verification. A
    reproduced chunk must re-pickle to the same bytes, which is the
    strongest statement of determinism the audit can make.

``pack_record`` / ``unpack_record``
    A self-verifying frame for pickled payloads on disk (magic, length,
    sha256 — same shape as the checkpoint frame). A torn or truncated
    spool write fails structurally, without guessing at pickle errors.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
import uuid

from ..errors import IntegrityError

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "RunManifest",
    "blob_digest",
    "canonical",
    "canonical_scalar",
    "load_sealed",
    "pack_record",
    "pickle_digest",
    "record_digest",
    "seal_record",
    "unpack_record",
    "verify_sealed",
    "write_sealed",
]

#: File name of a run manifest, written next to the artifacts it covers.
MANIFEST_NAME = "manifest.json"

#: Bumped when the manifest schema changes shape incompatibly.
MANIFEST_VERSION = 1

#: Key carrying a sealed record's own digest (see :func:`seal_record`).
CHECK_FIELD = "check"

# Framed pickled payloads: magic, payload length, payload sha256.
# Deliberately the same frame shape as the checkpoint format
# (``RCHKPT01``) so torn writes fail the same way everywhere.
_MAGIC = b"RRECORD1"
_HEADER = struct.Struct("<8sQ32s")


# ---------------------------------------------------------------------------
# canonicalization — one set of collapse rules for every digest
# ---------------------------------------------------------------------------

def canonical_scalar(value):
    """Collapse a scalar to its canonical JSON spelling.

    The *same* collapse rule ``query_fingerprint`` applies per field:
    ints and floats unify (``70`` == ``70.0``), bools stay bools
    (``True`` is not ``1.0``), numpy scalars drop to native Python.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        return canonical_scalar(value.item())
    return value


def canonical(value):
    """Recursively canonicalize ``value`` for digesting.

    Dicts sort by (stringified) key, tuples become lists, scalars
    collapse via :func:`canonical_scalar`; anything not JSON-shaped
    falls back to its ``repr`` so digesting never raises.
    """
    if isinstance(value, dict):
        return {str(key): canonical(value[key])
                for key in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return canonical(tolist())
    scalar = canonical_scalar(value)
    if scalar is None or isinstance(scalar, (bool, float, str)):
        return scalar
    return repr(scalar)


def record_digest(obj):
    """128-bit hex digest of ``obj``'s canonical JSON form.

    Stable under dict reordering and int/float respelling — the
    hypothesis properties in ``tests/test_integrity.py`` pin this.
    Same width (32 hex chars) as a query fingerprint.
    """
    payload = json.dumps(canonical(obj), sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:32]


def blob_digest(data):
    """Full sha256 hex digest of exact bytes."""
    return hashlib.sha256(data).hexdigest()


def pickle_digest(obj):
    """Byte-exact digest of ``obj``'s pickled form.

    This is the replay-audit invariant: recomputing a chunk from its
    recorded inputs must reproduce these exact bytes.
    """
    return blob_digest(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


# ---------------------------------------------------------------------------
# framed pickle blobs — self-verifying result files
# ---------------------------------------------------------------------------

def pack_record(payload):
    """Serialize ``payload`` into a self-verifying framed blob."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(body).digest()
    return _HEADER.pack(_MAGIC, len(body), digest) + body


def unpack_record(blob):
    """Verify and deserialize a :func:`pack_record` blob.

    Raises :class:`IntegrityError` on any structural or digest
    mismatch — truncation, torn write, flipped byte, wrong magic.
    """
    if len(blob) < _HEADER.size:
        raise IntegrityError(
            f"record blob shorter than its header "
            f"({len(blob)} < {_HEADER.size} bytes)")
    magic, length, digest = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise IntegrityError(f"bad record magic {magic!r}")
    body = blob[_HEADER.size:]
    if len(body) != length:
        raise IntegrityError(
            f"record body length {len(body)} != header length {length}")
    if hashlib.sha256(body).digest() != digest:
        raise IntegrityError("record sha256 mismatch")
    return pickle.loads(body)


# ---------------------------------------------------------------------------
# sealed JSON records — manifests and checkpoint sidecars
# ---------------------------------------------------------------------------

def seal_record(record):
    """Return a copy of ``record`` carrying its own content digest."""
    body = {key: record[key] for key in record if key != CHECK_FIELD}
    sealed = dict(body)
    sealed[CHECK_FIELD] = record_digest(body)
    return sealed

def verify_sealed(record):
    """True iff ``record``'s embedded digest matches its content."""
    if not isinstance(record, dict) or CHECK_FIELD not in record:
        return False
    body = {key: record[key] for key in record if key != CHECK_FIELD}
    return record[CHECK_FIELD] == record_digest(body)


def write_sealed(path, record, fs=None):
    """Atomically write a sealed JSON record (temp file + rename)."""
    data = json.dumps(seal_record(record), sort_keys=True,
                      indent=2).encode("utf-8")
    directory = os.path.dirname(path) or "."
    tmp = os.path.join(directory,
                       f".tmp-{uuid.uuid4().hex[:8]}-{os.path.basename(path)}")
    if fs is not None:
        fs.makedirs(directory)
        fs.write_bytes(tmp, data)
        fs.replace(tmp, path)
        return
    os.makedirs(directory, exist_ok=True)
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)


def load_sealed(path, fs=None):
    """Load a sealed JSON record, raising :class:`IntegrityError` if
    it does not parse or its embedded digest does not verify."""
    try:
        if fs is not None:
            data = fs.read_bytes(path)
        else:
            with open(path, "rb") as handle:
                data = handle.read()
        record = json.loads(data.decode("utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IntegrityError(f"unreadable sealed record {path}: {exc}")
    if not verify_sealed(record):
        raise IntegrityError(f"sealed record failed verification: {path}")
    return record


# ---------------------------------------------------------------------------
# run manifests
# ---------------------------------------------------------------------------

class RunManifest:
    """Identity plus per-entry digests for one run.

    ``identity`` answers *which run produced these artifacts* (seed,
    stack fingerprint, backend, topology, protocol version — whatever
    the emitting layer knows); ``entries`` maps artifact names
    (``chunk-000003``, ``batch-0012``) to digest records. The manifest
    file is itself sealed, so a tampered manifest is as detectable as
    a tampered artifact.
    """

    def __init__(self, kind, identity=None, entries=None):
        self.kind = str(kind)
        self.identity = dict(identity or {})
        self.entries = dict(entries or {})

    def add_entry(self, name, **fields):
        self.entries[str(name)] = dict(fields)

    def entry(self, name):
        return self.entries.get(str(name))

    @property
    def fingerprint(self):
        """Digest of the run identity alone — the run's short name."""
        return record_digest({"kind": self.kind, "identity": self.identity})

    def to_record(self):
        return {
            "manifest_version": MANIFEST_VERSION,
            "kind": self.kind,
            "identity": dict(self.identity),
            "entries": {name: dict(fields)
                        for name, fields in self.entries.items()},
        }

    def write(self, path, fs=None):
        write_sealed(path, self.to_record(), fs=fs)
        return path

    @classmethod
    def load(cls, path, fs=None):
        record = load_sealed(path, fs=fs)
        version = record.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise IntegrityError(
                f"unsupported manifest version {version!r} in {path}")
        identity = record.get("identity")
        entries = record.get("entries")
        if not isinstance(identity, dict) or not isinstance(entries, dict):
            raise IntegrityError(f"malformed manifest {path}")
        return cls(record.get("kind", "unknown"), identity, entries)


def identity_diff(current, stored):
    """Human-readable list of fields on which two identities differ.

    Powers the :class:`~repro.errors.RunIdentityError` message: the
    operator sees *which* of seed/backend/topology/shape moved, not
    just "key mismatch".
    """
    if not isinstance(stored, dict) or not stored:
        return ["stored run predates identity records (no fields to compare)"]
    lines = []
    for name in sorted(set(current) | set(stored), key=str):
        mine = canonical(current.get(name, "<absent>"))
        theirs = canonical(stored.get(name, "<absent>"))
        if mine != theirs:
            lines.append(f"{name}: run={mine!r} != stored={theirs!r}")
    if not lines:
        lines.append("identities compare equal field-by-field "
                     "(key derivation changed?)")
    return lines
