"""Crash-consistency scanner for the distributed sweep spool.

A spool that hosted crashes, kills, and injected faults accumulates
debris the normal protocol never cleans up: claims whose worker died
*after* committing, torn or truncated result files from interrupted
writes, jobs re-queued after their result already landed, temp files
orphaned mid-rename, and quarantine records superseded by a later
successful commit. None of this debris can corrupt an answer — every
reader verifies frames and digests — but it wastes retries, pins disk,
and obscures what actually happened.

:func:`fsck_spool` walks a spool and names each problem as a
:class:`Finding`; with ``repair=True`` it also applies the (always
conservative, always deletion-of-provably-redundant-state) fix.
:func:`list_quarantine` renders the poison ledger without ever
unpickling anything — legacy pickle records are listed by size only.

Spool-protocol constants import lazily inside functions: the sweep
module imports this package's manifest layer, so eager imports here
would cycle.
"""

from __future__ import annotations

import json
import os

from ..errors import IntegrityError
from .manifest import unpack_record

__all__ = ["Finding", "fsck_spool", "list_quarantine"]


class Finding:
    """One problem fsck identified (and possibly repaired)."""

    __slots__ = ("kind", "path", "detail", "repaired")

    def __init__(self, kind, path, detail="", repaired=False):
        self.kind = str(kind)
        self.path = str(path)
        self.detail = str(detail)
        self.repaired = bool(repaired)

    def to_record(self):
        return {"kind": self.kind, "path": self.path,
                "detail": self.detail, "repaired": self.repaired}

    def __repr__(self):  # pragma: no cover - debugging aid
        flag = " repaired" if self.repaired else ""
        return f"Finding({self.kind!r}, {self.path!r}{flag})"


def _try_unlink(path, repair):
    if not repair:
        return False
    try:
        os.unlink(path)
        return True
    except OSError:
        return False


def _listdir(path):
    try:
        return sorted(os.listdir(path))
    except OSError:
        return []


def _verified_chunks(results_dir):
    """Chunk ordinals whose committed result passes frame
    verification, plus the torn file names that do not."""
    good, torn = set(), []
    for name in _listdir(results_dir):
        if name.startswith(".") or not name.endswith(".pkl"):
            continue
        path = os.path.join(results_dir, name)
        try:
            with open(path, "rb") as fh:
                unpack_record(fh.read())
        except OSError:
            continue
        except IntegrityError as exc:
            torn.append((name, str(exc)))
            continue
        try:
            good.add(int(name[len("chunk-"):-len(".pkl")]))
        except ValueError:
            torn.append((name, "unparseable chunk name"))
    return good, torn


def _scan_run(run_path, repair, findings):
    """Findings for one ``run-*`` directory; returns its verified
    chunk set for the quarantine cross-check."""
    from ..sweep.distributed import _CLAIM_SEP, _JOB_SUFFIX

    results_dir = os.path.join(run_path, "results")
    queue_dir = os.path.join(run_path, "queue")
    claimed_dir = os.path.join(run_path, "claimed")
    done = os.path.exists(os.path.join(run_path, "DONE"))

    good, torn = _verified_chunks(results_dir)
    for name, why in torn:
        path = os.path.join(results_dir, name)
        repaired = _try_unlink(path, repair)
        findings.append(Finding(
            "torn-result", path,
            f"{why}; removing re-arms the retry path", repaired))

    # Temp files orphaned mid-rename by a crash inside _atomic_write.
    for sub in ("", "queue", "claimed", "results"):
        directory = os.path.join(run_path, sub) if sub else run_path
        for name in _listdir(directory):
            if not name.startswith(".tmp-"):
                continue
            path = os.path.join(directory, name)
            repaired = _try_unlink(path, repair)
            findings.append(Finding(
                "stray-temp", path,
                "orphaned atomic-write temp file", repaired))

    # A queued job whose chunk already has a verified commit would be
    # executed (and committed) a second time for nothing.
    for name in _listdir(queue_dir):
        if name.startswith(".") or not name.endswith(_JOB_SUFFIX):
            continue
        try:
            chunk = int(name[len("chunk-"):-len(_JOB_SUFFIX)])
        except ValueError:
            continue
        if chunk in good:
            path = os.path.join(queue_dir, name)
            repaired = _try_unlink(path, repair)
            findings.append(Finding(
                "duplicate-commit", path,
                f"chunk {chunk} already has a verified result",
                repaired))

    # A claim is orphaned when its work is provably over: the chunk
    # has a verified commit, or the whole run is marked DONE.
    for name in _listdir(claimed_dir):
        if name.startswith(".") or _CLAIM_SEP not in name:
            continue
        job = name.split(_CLAIM_SEP, 1)[0]
        try:
            chunk = int(job[len("chunk-"):-len(_JOB_SUFFIX)])
        except ValueError:
            continue
        if chunk in good or done:
            why = (f"chunk {chunk} already has a verified result"
                   if chunk in good else "run is marked DONE")
            path = os.path.join(claimed_dir, name)
            repaired = _try_unlink(path, repair)
            findings.append(Finding("orphaned-claim", path, why,
                                    repaired))
    return good


def fsck_spool(spool, repair=False):
    """Scan ``spool`` for crash debris; optionally repair it.

    Returns the list of :class:`Finding` records. Every repair is a
    deletion of provably redundant state — fsck never rewrites or
    fabricates results.
    """
    from ..sweep.distributed import QUARANTINE_DIR, _RUN_PREFIX

    findings = []
    spool = str(spool)
    committed = set()
    for name in _listdir(spool):
        if not name.startswith(_RUN_PREFIX):
            continue
        run_path = os.path.join(spool, name)
        if not os.path.isdir(run_path):
            continue
        committed |= _scan_run(run_path, repair, findings)

    quarantine_dir = os.path.join(spool, QUARANTINE_DIR)
    for name in _listdir(quarantine_dir):
        if not name.endswith(".json"):
            continue
        path = os.path.join(quarantine_dir, name)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
            chunk = int(record["chunk"])
        except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                KeyError, TypeError, ValueError):
            repaired = _try_unlink(path, repair)
            findings.append(Finding(
                "stray-quarantine", path,
                "unparseable quarantine record", repaired))
            continue
        if chunk in committed:
            repaired = _try_unlink(path, repair)
            findings.append(Finding(
                "stray-quarantine", path,
                f"chunk {chunk} has a verified result in a live run; "
                f"the quarantine record is superseded", repaired))
    return findings


def list_quarantine(spool):
    """Metadata of every quarantine record under ``spool``.

    JSON records surface their chunk/error/attempt fields; legacy
    pickle records (pre-integrity spools) are listed by name and size
    only — this function never unpickles anything, so a poisoned
    record cannot execute code at listing time.
    """
    from ..sweep.distributed import QUARANTINE_DIR

    quarantine_dir = os.path.join(str(spool), QUARANTINE_DIR)
    records = []
    for name in _listdir(quarantine_dir):
        path = os.path.join(quarantine_dir, name)
        try:
            size = os.path.getsize(path)
        except OSError:
            continue
        if name.endswith(".json"):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    record = json.load(fh)
            except (OSError, json.JSONDecodeError,
                    UnicodeDecodeError):
                records.append({"name": name, "bytes": size,
                                "unreadable": True})
                continue
            if not isinstance(record, dict):
                records.append({"name": name, "bytes": size,
                                "unreadable": True})
                continue
            records.append({
                "name": name,
                "bytes": size,
                "chunk": record.get("chunk"),
                "error": record.get("error"),
                "error_type": record.get("error_type"),
                "attempts": record.get("attempts"),
                "workers": record.get("workers"),
            })
        elif name.endswith(".pkl"):
            records.append({"name": name, "bytes": size,
                            "legacy": True})
    return records
