"""Replay audit: prove a finished run's artifacts are what it computed.

The manifest layer (:mod:`repro.integrity.manifest`) makes corruption
*detectable* on the hot path; this module is the cold-path prosecutor
behind ``repro audit``. It verifies three artifact families —

* **spool runs** (:func:`audit_spool_run`) — every committed result
  file's frame and digest against the run's manifest, plus a seeded
  sample of chunks *replayed byte-for-byte*: the chunk's archived
  input points are re-evaluated through the run's own task function
  and must re-pickle to the exact bytes the manifest recorded.
* **checkpoint directories** (:func:`audit_checkpoint_dir`) — each
  ``.ckpt`` blob's framed checksum plus its sealed manifest sidecar.
* **disk-cache directories** (:func:`audit_cache_dir`) — each service
  memo envelope's payload digest and fingerprint.

plus a **cross-backend canary** (:func:`cross_backend_canary`): the
same small seeded grid run on the numpy reference and the numba JIT
backend must produce identical counters — the cheap standing guard
against a miscompiled kernel poisoning a campaign.

Every check lands in an :class:`AuditReport`; a single flipped byte
anywhere fails the report.

Cross-package imports (engine, checkpoint, spool protocol) happen
lazily inside functions: those modules import the manifest layer, and
this package's ``__init__`` imports this module, so eager imports here
would cycle.
"""

from __future__ import annotations

import json
import os
import pickle

import numpy as np

from ..errors import IntegrityError
from .manifest import (
    MANIFEST_NAME,
    RunManifest,
    blob_digest,
    pickle_digest,
    record_digest,
    unpack_record,
)

__all__ = [
    "AuditCheck",
    "AuditReport",
    "audit_cache_dir",
    "audit_checkpoint_dir",
    "audit_spool_run",
    "cross_backend_canary",
]


class AuditCheck:
    """One named verification with a pass/fail/skipped verdict."""

    __slots__ = ("name", "status", "detail")

    def __init__(self, name, status, detail=""):
        if status not in ("pass", "fail", "skipped"):
            raise ValueError(f"bad audit status {status!r}")
        self.name = str(name)
        self.status = status
        self.detail = str(detail)

    def to_record(self):
        return {"name": self.name, "status": self.status,
                "detail": self.detail}

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"AuditCheck({self.name!r}, {self.status!r})"


class AuditReport:
    """An ordered bundle of :class:`AuditCheck` results."""

    def __init__(self, subject):
        self.subject = str(subject)
        self.checks = []

    def add(self, name, status, detail=""):
        self.checks.append(AuditCheck(name, status, detail))

    def extend(self, other):
        self.checks.extend(other.checks)

    @property
    def passed(self):
        return all(check.status != "fail" for check in self.checks)

    def counts(self):
        out = {"pass": 0, "fail": 0, "skipped": 0}
        for check in self.checks:
            out[check.status] += 1
        return out

    def to_record(self):
        return {"subject": self.subject, "passed": self.passed,
                "counts": self.counts(),
                "checks": [c.to_record() for c in self.checks]}


# ---------------------------------------------------------------------------
# spool runs
# ---------------------------------------------------------------------------

def _chunk_result_path(run_path, name):
    return os.path.join(run_path, "results", f"{name}.pkl")


def audit_spool_run(run_path, sample=4, seed=0):
    """Verify a preserved spool run against its manifest.

    Three passes: (1) every result file's frame + values digest against
    the manifest entry, (2) manifest entries with no result file (and
    result files with no entry) flagged, (3) a seeded sample of up to
    ``sample`` chunks replayed byte-for-byte — archived input points
    re-evaluated through the run's task function must reproduce the
    recorded digest exactly.
    """
    from ..sweep.distributed import REPLAY_DIR

    report = AuditReport(run_path)
    manifest_path = os.path.join(run_path, MANIFEST_NAME)
    try:
        manifest = RunManifest.load(manifest_path)
    except IntegrityError as exc:
        report.add("manifest", "fail", str(exc))
        return report
    report.add("manifest", "pass",
               f"{len(manifest.entries)} entries, identity "
               f"{manifest.fingerprint}")

    verifiable = []
    for name in sorted(manifest.entries):
        entry = manifest.entries[name]
        if entry.get("quarantined"):
            report.add(f"{name}/digest", "skipped",
                       "quarantined chunk (no reproducible values)")
            continue
        path = _chunk_result_path(run_path, name)
        try:
            with open(path, "rb") as fh:
                payload = unpack_record(fh.read())
        except FileNotFoundError:
            report.add(f"{name}/digest", "fail",
                       "result file missing")
            continue
        except IntegrityError as exc:
            report.add(f"{name}/digest", "fail",
                       f"result frame failed verification: {exc}")
            continue
        digest = pickle_digest(payload.get("values"))
        if digest != entry.get("values_sha256"):
            report.add(f"{name}/digest", "fail",
                       f"values digest {digest[:16]}… != manifest "
                       f"{str(entry.get('values_sha256'))[:16]}…")
            continue
        report.add(f"{name}/digest", "pass", "")
        verifiable.append(name)

    # Unmanifested strays are as suspicious as missing files.
    try:
        on_disk = {name[:-len(".pkl")] for name in
                   os.listdir(os.path.join(run_path, "results"))
                   if name.endswith(".pkl") and not name.startswith(".")}
    except OSError:
        on_disk = set()
    for name in sorted(on_disk - set(manifest.entries)):
        report.add(f"{name}/digest", "fail",
                   "result file not in the manifest")

    if not verifiable:
        report.add("replay", "skipped", "no verifiable chunks")
        return report
    rng = np.random.default_rng(seed)
    count = min(int(sample), len(verifiable))
    picks = sorted(rng.choice(len(verifiable), size=count,
                              replace=False).tolist())
    task_path = os.path.join(run_path, "task.pkl")
    try:
        with open(task_path, "rb") as fh:
            task_blob = fh.read()
        func = pickle.loads(task_blob)
    except (OSError, Exception) as exc:
        report.add("replay", "fail", f"task.pkl unusable: {exc!r}")
        return report
    expected_task = manifest.identity.get("task_sha256")
    if expected_task and blob_digest(task_blob) != expected_task:
        report.add("replay", "fail", "task.pkl digest mismatch")
        return report
    for index in picks:
        name = verifiable[index]
        replay_path = os.path.join(run_path, REPLAY_DIR,
                                   f"{name}.pkl")
        try:
            with open(replay_path, "rb") as fh:
                points = pickle.load(fh)
        except (OSError, Exception) as exc:
            report.add(f"{name}/replay", "fail",
                       f"replay inputs unusable: {exc!r}")
            continue
        try:
            values = [func(**params) for params in points]
        except Exception as exc:
            report.add(f"{name}/replay", "fail",
                       f"replay evaluation raised {exc!r}")
            continue
        digest = pickle_digest(values)
        expected = manifest.entries[name].get("values_sha256")
        if digest != expected:
            report.add(f"{name}/replay", "fail",
                       f"replayed values digest {digest[:16]}… != "
                       f"manifest {str(expected)[:16]}…")
        else:
            report.add(f"{name}/replay", "pass",
                       f"{len(points)} point(s) byte-identical")
    return report


# ---------------------------------------------------------------------------
# checkpoint directories
# ---------------------------------------------------------------------------

def audit_checkpoint_dir(directory):
    """Verify every ``.ckpt`` blob (framed checksum) and its sealed
    manifest sidecar in ``directory``."""
    from ..resilience.checkpoint import (
        _SIDECAR_SUFFIX,
        _SUFFIX,
        _decode,
    )
    from .manifest import load_sealed

    report = AuditReport(directory)
    try:
        names = sorted(os.listdir(directory))
    except OSError as exc:
        report.add("checkpoints", "fail",
                   f"directory unreadable: {exc}")
        return report
    tags = [name[:-len(_SUFFIX)] for name in names
            if name.endswith(_SUFFIX) and not name.startswith(".")]
    if not tags:
        report.add("checkpoints", "skipped", "no checkpoint files")
        return report
    for tag in tags:
        path = os.path.join(directory, f"{tag}{_SUFFIX}")
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
            _decode(blob)
        except (OSError, ValueError) as exc:
            report.add(f"{tag}/frame", "fail", str(exc))
            continue
        report.add(f"{tag}/frame", "pass", f"{len(blob)} bytes")
        sidecar = os.path.join(directory,
                               f"{tag}{_SIDECAR_SUFFIX}")
        if not os.path.exists(sidecar):
            report.add(f"{tag}/sidecar", "skipped",
                       "no manifest sidecar")
            continue
        try:
            record = load_sealed(sidecar)
        except IntegrityError as exc:
            report.add(f"{tag}/sidecar", "fail", str(exc))
            continue
        if record.get("sha256") != blob_digest(blob):
            report.add(f"{tag}/sidecar", "fail",
                       "checkpoint blob does not match its sidecar "
                       "digest (tamper or swapped file)")
        else:
            report.add(f"{tag}/sidecar", "pass", "")
    return report


# ---------------------------------------------------------------------------
# service disk-cache directories
# ---------------------------------------------------------------------------

def audit_cache_dir(directory):
    """Verify every service memo envelope in ``directory``."""
    report = AuditReport(directory)
    try:
        names = sorted(name for name in os.listdir(directory)
                       if name.endswith(".json"))
    except OSError as exc:
        report.add("cache", "fail", f"directory unreadable: {exc}")
        return report
    if not names:
        report.add("cache", "skipped", "no cache entries")
        return report
    for name in names:
        key = name[:-len(".json")]
        path = os.path.join(directory, name)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                envelope = json.load(fh)
        except (OSError, json.JSONDecodeError,
                UnicodeDecodeError) as exc:
            report.add(key, "fail", f"unreadable envelope: {exc}")
            continue
        if (not isinstance(envelope, dict)
                or not isinstance(envelope.get("payload"), dict)):
            report.add(key, "fail", "malformed envelope")
            continue
        if envelope.get("fingerprint") != key:
            report.add(key, "fail",
                       f"fingerprint {envelope.get('fingerprint')!r} "
                       f"does not match file name")
            continue
        if record_digest(envelope["payload"]) != envelope.get("sha256"):
            report.add(key, "fail", "payload digest mismatch")
            continue
        report.add(key, "pass", "")
    return report


# ---------------------------------------------------------------------------
# cross-backend canary
# ---------------------------------------------------------------------------

def _default_canary_runner(n_transactions, batch_size, seed):
    """Counter dict of one small seeded binomial run per backend."""
    import dataclasses

    from ..device import MTJDevice, PAPER_EVAL_DEVICE
    from ..memsys import build_engine
    from ..units import nm_to_m

    def run(backend):
        engine = build_engine(
            MTJDevice(PAPER_EVAL_DEVICE), pitch=nm_to_m(70.0),
            rows=16, cols=16, ecc="secded", workload="random",
            sampler="binomial", backend=backend)
        result = engine.run(int(n_transactions),
                            rng=np.random.default_rng(seed),
                            batch_size=int(batch_size))
        return {f.name: getattr(result, f.name)
                for f in dataclasses.fields(result)
                if f.name not in ("config", "extras")}

    return run


def cross_backend_canary(n_transactions=2048, batch_size=512, seed=0,
                         runner=None):
    """One :class:`AuditCheck`: numpy and numba must agree exactly.

    The binomial sampler's numba kernels are bit-exact ports of the
    numpy reference, so a single diverging counter on the same seeded
    grid means a miscompile (or a port regression) — exactly the
    silent-poison failure a statistics repo cannot tolerate.

    ``runner`` (a ``runner(backend_name) -> counter dict`` callable)
    is the injection seam the tests use to force a divergence; the
    default runs the real engine. Without ``runner``, the check is
    ``skipped`` when numba is unavailable (there is nothing to compare
    the reference against).
    """
    from ..memsys.backends import numba_available

    forced = runner is not None
    if runner is None:
        if not numba_available():
            return AuditCheck(
                "cross-backend-canary", "skipped",
                "numba unavailable: no second backend to compare")
        runner = _default_canary_runner(n_transactions, batch_size,
                                        seed)
    try:
        reference = dict(runner("numpy"))
        candidate = dict(runner("numba"))
    except Exception as exc:
        return AuditCheck("cross-backend-canary", "fail",
                          f"canary run raised {exc!r}")
    diverging = sorted(
        name for name in set(reference) | set(candidate)
        if reference.get(name) != candidate.get(name))
    if diverging:
        detail = "; ".join(
            f"{name}: numpy={reference.get(name)!r} != "
            f"numba={candidate.get(name)!r}" for name in diverging)
        return AuditCheck("cross-backend-canary", "fail", detail)
    return AuditCheck(
        "cross-backend-canary", "pass",
        f"{len(reference)} counters identical on "
        f"{n_transactions} transactions"
        + (" (injected runner)" if forced else ""))
