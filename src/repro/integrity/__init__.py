"""Run-integrity layer: manifests, replay audit, and spool fsck.

PR 9's resilience layer made runs *survive* faults; this package makes
them *provable* — every persisted artifact carries a digest, every run
can emit a manifest of what it computed, and two operator commands
(``repro audit``, ``repro spool fsck``) verify and repair after the
fact. See :mod:`repro.integrity.manifest` for the digest contract.
"""

from .audit import (
    AuditCheck,
    AuditReport,
    audit_cache_dir,
    audit_checkpoint_dir,
    audit_spool_run,
    cross_backend_canary,
)
from .fsck import Finding, fsck_spool, list_quarantine
from .manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    RunManifest,
    blob_digest,
    canonical,
    canonical_scalar,
    identity_diff,
    load_sealed,
    pack_record,
    pickle_digest,
    record_digest,
    seal_record,
    unpack_record,
    verify_sealed,
    write_sealed,
)

__all__ = [
    "AuditCheck",
    "AuditReport",
    "Finding",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "RunManifest",
    "audit_cache_dir",
    "audit_checkpoint_dir",
    "audit_spool_run",
    "blob_digest",
    "canonical",
    "canonical_scalar",
    "cross_backend_canary",
    "fsck_spool",
    "identity_diff",
    "list_quarantine",
    "load_sealed",
    "pack_record",
    "pickle_digest",
    "record_digest",
    "seal_record",
    "unpack_record",
    "verify_sealed",
    "write_sealed",
]
