"""Material models for MTJ stack layers.

A :class:`Material` bundles the magnetic parameters of one layer material:
its room-temperature saturation magnetization, its Curie temperature (for
the Bloch-law temperature scaling used by the retention analysis), and an
optional free-text note describing the physical composition.

The registry at the bottom provides the calibrated *effective* materials of
the reference stack (see DESIGN.md section 6). The RL and HL entries are
effective two-loop reductions of the real multilayer SAF: only the product
``Ms * t`` enters the bound-current stray-field model, and those products are
calibrated against the paper's reported offset-field anchors.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .constants import ROOM_TEMPERATURE
from .errors import ParameterError
from .validation import require_positive


@dataclass(frozen=True)
class Material:
    """A (possibly effective) ferromagnetic layer material.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"CoFeB-FL"``.
    ms:
        Saturation magnetization at the reference temperature [A/m].
        Zero for non-magnetic materials (MgO, Ru, Ta).
    curie_temperature:
        Curie temperature [K] used by :meth:`ms_at`. Ignored for
        non-magnetic materials.
    reference_temperature:
        Temperature [K] at which ``ms`` is quoted (default 298.15 K).
    note:
        Free-text physical description.
    """

    name: str
    ms: float
    curie_temperature: float = 1300.0
    reference_temperature: float = ROOM_TEMPERATURE
    note: str = ""

    def __post_init__(self):
        if self.ms < 0:
            raise ParameterError(f"ms must be >= 0, got {self.ms!r}")
        if self.ms > 0:
            require_positive(self.curie_temperature, "curie_temperature")
            require_positive(
                self.reference_temperature, "reference_temperature")
            if self.reference_temperature >= self.curie_temperature:
                raise ParameterError(
                    "reference_temperature must be below curie_temperature")

    @property
    def is_magnetic(self):
        """True if the material carries a magnetic moment."""
        return self.ms > 0.0

    def bloch_factor(self, temperature):
        """Bloch-law magnetization ratio ``Ms(T) / Ms(T_ref)``.

        Uses ``Ms(T) = Ms(0) * (1 - (T/Tc)^1.5)`` normalized to the
        reference temperature. Returns 0 at or above the Curie temperature.
        """
        if not self.is_magnetic:
            return 0.0
        require_positive(temperature, "temperature")
        if temperature >= self.curie_temperature:
            return 0.0
        tc = self.curie_temperature
        raw = 1.0 - (temperature / tc) ** 1.5
        ref = 1.0 - (self.reference_temperature / tc) ** 1.5
        return raw / ref

    def ms_at(self, temperature):
        """Saturation magnetization at ``temperature`` [A/m]."""
        return self.ms * self.bloch_factor(temperature)

    def with_ms(self, ms):
        """Return a copy of this material with a different ``ms``."""
        return replace(self, ms=ms)


#: CoFeB dual-MgO free layer (data-storing layer).
COFEB_FREE = Material(
    name="CoFeB-FL",
    ms=1.1e6,
    curie_temperature=1300.0,
    note="CoFeB free layer between dual MgO interfaces",
)

#: Effective reference layer: thin CoFeB/Co with dead-layer correction.
#: The effective Ms*t is calibrated; see DESIGN.md section 6.
COFEB_REFERENCE_EFF = Material(
    name="CoFeB-RL-eff",
    ms=1.0e6,
    curie_temperature=1300.0,
    note=("Effective RL of the SAF: thin Co/spacer/CoFeB multilayer, "
          "dead-layer corrected net moment"),
)

#: Effective hard layer: [Co/Pt]x multilayer lumped with the SAF bottom.
COPT_HARD_EFF = Material(
    name="CoPt-HL-eff",
    ms=6.0e5,
    curie_temperature=1100.0,
    note="Effective [Co/Pt]x hard layer (Pt-diluted net magnetization)",
)

#: MgO tunnel barrier (non-magnetic dielectric).
MGO = Material(name="MgO", ms=0.0, note="MgO tunnel barrier")

#: Ru/Ta/W spacer material (non-magnetic).
SPACER = Material(name="Ru-spacer", ms=0.0, note="SAF coupling spacer stack")


_REGISTRY = {
    mat.name: mat
    for mat in (COFEB_FREE, COFEB_REFERENCE_EFF, COPT_HARD_EFF, MGO, SPACER)
}


def get_material(name):
    """Look up a registered material by name.

    Raises :class:`~repro.errors.ParameterError` for unknown names, listing
    the available ones.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ParameterError(
            f"unknown material {name!r}; known materials: {known}") from None


def registered_materials():
    """Return the names of all registered materials (sorted)."""
    return sorted(_REGISTRY)
