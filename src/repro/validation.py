"""Parameter validation helpers.

Small guard functions used at public API boundaries. They raise
:class:`repro.errors.ParameterError` with a message that names the offending
parameter, so user mistakes fail fast and clearly instead of producing NaNs
deep inside a solver.
"""

from __future__ import annotations

import math
import numbers

import numpy as np

from .errors import ParameterError


def require_positive(value, name):
    """Return ``value`` if it is a finite number > 0, else raise."""
    require_finite(value, name)
    if value <= 0:
        raise ParameterError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value, name):
    """Return ``value`` if it is a finite number >= 0, else raise."""
    require_finite(value, name)
    if value < 0:
        raise ParameterError(f"{name} must be >= 0, got {value!r}")
    return value


def require_finite(value, name):
    """Return ``value`` if it is a finite real number, else raise."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ParameterError(f"{name} must be a real number, got {value!r}")
    if not math.isfinite(value):
        raise ParameterError(f"{name} must be finite, got {value!r}")
    return value


def require_in_range(value, name, low, high, inclusive=True):
    """Return ``value`` if ``low <= value <= high`` (or strict), else raise."""
    require_finite(value, name)
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ParameterError(f"{name} must be in {bounds}, got {value!r}")
    return value


def require_fraction(value, name):
    """Return ``value`` if it lies in [0, 1], else raise."""
    return require_in_range(value, name, 0.0, 1.0)


def require_int_in_range(value, name, low, high):
    """Return ``value`` if it is an integer in [low, high], else raise."""
    if not isinstance(value, numbers.Integral) or isinstance(value, bool):
        raise ParameterError(f"{name} must be an integer, got {value!r}")
    if not low <= value <= high:
        raise ParameterError(
            f"{name} must be in [{low}, {high}], got {value!r}")
    return int(value)


def jobs_argument(value):
    """``argparse`` type for a ``--jobs`` flag: a positive worker count.

    Shared by every CLI that forwards into :mod:`repro.sweep`, so the
    flag validates identically everywhere.
    """
    import argparse
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 1, got {jobs}")
    return jobs


def as_point_array(points, name="points"):
    """Coerce ``points`` to a float array of shape (N, 3).

    Accepts a single (3,) point or an (N, 3) array. Raises
    :class:`ParameterError` for anything else or for non-finite entries.
    """
    arr = np.asarray(points, dtype=float)
    if arr.ndim == 1:
        if arr.shape != (3,):
            raise ParameterError(
                f"{name} must have shape (3,) or (N, 3), got {arr.shape}")
        arr = arr[np.newaxis, :]
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ParameterError(
            f"{name} must have shape (3,) or (N, 3), got {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ParameterError(f"{name} contains non-finite coordinates")
    return arr
