"""Command-line interface: the library's analyses without writing code.

Subcommands::

    python -m repro.cli reproduce [--out DIR]      all paper figures
    python -m repro.cli psi --ecd-nm 35 [...]      coupling-factor sweep
    python -m repro.cli design --ecds-nm 25,35,45  design-space table
    python -m repro.cli wer --vp 0.95 [...]        write-error pulse sizing
    python -m repro.cli memsys --pitch-nm 70 [...] system-level UBER
    python -m repro.cli model-card --out DIR       compact-model export

Stochastic subcommands (``wer``, ``memsys``) accept ``--seed N``; every
random draw of the run flows from that one ``numpy.random.Generator``,
so identical invocations print identical numbers.

Sweep-shaped subcommands (``reproduce``, ``design``, ``memsys``) accept
``--jobs N`` to fan the underlying :mod:`repro.sweep` grid out over N
worker processes; results are identical to the serial run.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .apps import DESIGN_HEADERS, DesignSpaceExplorer, WriteErrorModel
from .core.psi import psi_threshold_pitch, psi_vs_pitch
from .device import MTJDevice, PAPER_EVAL_DEVICE
from .device.compact import export_model_card
from .reporting import ascii_plot, format_table
from .units import nm_to_m, oe_to_am


def _generator(args):
    """The run's shared RNG; ``--seed`` makes the output reproducible."""
    return np.random.default_rng(args.seed)


def _jobs_arg(value):
    """argparse type for ``--jobs``: a positive worker count."""
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 1, got {jobs}")
    return jobs


def _cmd_reproduce(args):
    from .experiments.runner import main as runner_main
    argv = [args.out] if args.out else []
    if args.jobs:
        argv += ["--jobs", str(args.jobs)]
    return runner_main(argv)


def _cmd_psi(args):
    ecd = nm_to_m(args.ecd_nm)
    hc = oe_to_am(args.hc_oe)
    pitches = np.linspace(args.ratio_min * ecd, nm_to_m(args.pitch_max_nm),
                          args.points)
    psi = psi_vs_pitch(ecd, pitches, hc)
    print(ascii_plot({"Psi": (pitches * 1e9, psi * 100.0)},
                     title=f"Psi vs pitch (eCD={args.ecd_nm:g} nm)",
                     x_label="pitch (nm)", y_label="Psi (%)"))
    threshold = psi_threshold_pitch(ecd, hc, psi_target=args.target)
    print(f"\nPsi = {args.target * 100:g}% at pitch = "
          f"{threshold * 1e9:.1f} nm")
    return 0


def _cmd_design(args):
    ecds = [nm_to_m(float(v)) for v in args.ecds_nm.split(",")]
    ratios = [float(v) for v in args.ratios.split(",")]
    explorer = DesignSpaceExplorer(PAPER_EVAL_DEVICE,
                                   probe_voltage=args.vp)
    points = explorer.sweep(ecds, ratios, jobs=args.jobs)
    print(format_table(DESIGN_HEADERS, [p.row() for p in points],
                       float_format=".3g"))
    return 0


def _cmd_wer(args):
    from .arrays.pattern import ALL_AP, ALL_P
    from .arrays.victim import VictimAnalysis
    device = MTJDevice(PAPER_EVAL_DEVICE)
    model = WriteErrorModel(device)
    rng = _generator(args)
    rows = []
    for ratio in (3.0, 2.0, 1.5):
        victim = VictimAnalysis(device, ratio * device.params.ecd)
        hz_worst = victim.hz_total(ALL_P)
        pulse = model.pulse_for_wer(args.target, args.vp, hz_worst)
        penalty = pulse - model.pulse_for_wer(args.target, args.vp,
                                              victim.hz_total(ALL_AP))
        sampled = model.sample_wer(pulse, args.vp, hz_worst,
                                   n_samples=args.samples, rng=rng)
        rows.append((f"{ratio:g}x", pulse * 1e9, penalty * 1e9, sampled))
    print(format_table(
        ["pitch", f"pulse for WER={args.target:g} (ns)",
         "pattern penalty (ns)", "sampled WER"], rows,
        float_format=".3g"))
    return 0


def _cmd_memsys(args):
    from .memsys import ScrubPolicy, build_engine, uber_sweep
    from .memsys.sweeps import SWEEP_HEADERS
    device = MTJDevice(PAPER_EVAL_DEVICE)
    rng = _generator(args)
    scrub = (ScrubPolicy(args.scrub_interval)
             if args.scrub_interval else None)
    engine = build_engine(
        device, pitch=nm_to_m(args.pitch_nm), rows=args.rows,
        cols=args.cols, ecc=args.ecc, workload=args.pattern,
        scrub=scrub, vp=args.vp, nominal_wer=args.nominal_wer)
    config = engine.controller.describe()
    print(f"memsys: {args.rows}x{args.cols} array at "
          f"{args.pitch_nm:g} nm pitch, {args.pattern} traffic, "
          f"{args.ecc} ECC, write pulses trimmed to "
          f"{config['t_pulse0_ns']:.1f}/{config['t_pulse1_ns']:.1f} ns "
          f"(nominal WER {args.nominal_wer:g})")
    print()
    result = engine.run(args.transactions, rng=rng)
    headers, rows = result.summary_rows()
    print(format_table(headers, rows))
    print()

    seed = 0 if args.seed is None else args.seed
    sweep = uber_sweep(device, rows=args.rows, cols=args.cols,
                       seed=seed, jobs=args.jobs, vp=args.vp,
                       nominal_wer=args.nominal_wer)
    print("pitch sweep (expectation mode; UBER of the worst-case data "
          "pattern rises as pitch shrinks):")
    print(format_table(SWEEP_HEADERS, sweep.rows, float_format=".3e"))
    print()
    comp_headers, comp_rows = sweep.comparison_table()
    print(format_table(comp_headers, comp_rows, float_format=".3g"))

    if args.out:
        from .experiments.runner import export
        from .reporting import write_json
        import dataclasses
        export(sweep, args.out)
        run_payload = dataclasses.asdict(result)
        run_payload.update(raw_ber=result.raw_ber, uber=result.uber,
                           word_fail_rate=result.word_fail_rate)
        import os
        path = write_json(os.path.join(args.out, "memsys_run.json"),
                          run_payload)
        print(f"\nwrote {path} and memsys_sweep.* to {args.out}")
    return 0


def _cmd_model_card(args):
    device = MTJDevice(PAPER_EVAL_DEVICE)
    paths = export_model_card(device, args.out, name=args.name)
    for path in paths:
        print(f"wrote {path}")
    return 0


def build_parser():
    """The argparse parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STT-MRAM magnetic coupling analyses (DATE 2020 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("reproduce", help="regenerate all paper figures")
    p.add_argument("--out", default=None,
                   help="directory for CSV/JSON exports")
    p.add_argument("--jobs", type=_jobs_arg, default=None,
                   help="worker processes for parallel figure execution")
    p.set_defaults(func=_cmd_reproduce)

    p = sub.add_parser("psi", help="coupling factor vs pitch")
    p.add_argument("--ecd-nm", type=float, default=35.0)
    p.add_argument("--hc-oe", type=float, default=2200.0)
    p.add_argument("--ratio-min", type=float, default=1.5)
    p.add_argument("--pitch-max-nm", type=float, default=200.0)
    p.add_argument("--points", type=int, default=40)
    p.add_argument("--target", type=float, default=0.02)
    p.set_defaults(func=_cmd_psi)

    p = sub.add_parser("design", help="design-space sweep table")
    p.add_argument("--ecds-nm", default="25,35,45")
    p.add_argument("--ratios", default="1.5,2.0,3.0")
    p.add_argument("--vp", type=float, default=0.85)
    p.add_argument("--jobs", type=_jobs_arg, default=None,
                   help="worker processes for the design-space sweep")
    p.set_defaults(func=_cmd_design)

    p = sub.add_parser("wer", help="write-error pulse sizing")
    p.add_argument("--vp", type=float, default=0.95)
    p.add_argument("--target", type=float, default=1e-6)
    p.add_argument("--samples", type=int, default=200_000,
                   help="Monte-Carlo draws for the sampled-WER column")
    p.add_argument("--seed", type=int, default=None,
                   help="seed of the run's random generator")
    p.set_defaults(func=_cmd_wer)

    p = sub.add_parser(
        "memsys", help="system-level UBER under read/write traffic")
    from .memsys.ecc import ECC_SCHEMES
    from .memsys.traffic import WORKLOADS
    p.add_argument("--pitch-nm", type=float, default=70.0)
    p.add_argument("--pattern", default="random",
                   choices=sorted(WORKLOADS))
    p.add_argument("--ecc", default="secded",
                   choices=sorted(ECC_SCHEMES))
    p.add_argument("--rows", type=int, default=64)
    p.add_argument("--cols", type=int, default=64)
    p.add_argument("--transactions", type=int, default=50_000)
    p.add_argument("--vp", type=float, default=0.95)
    p.add_argument("--nominal-wer", type=float, default=2e-3,
                   help="per-polarity write-error trim target "
                        "(accelerated-stress corner)")
    p.add_argument("--scrub-interval", type=float, default=None,
                   help="scrub period in seconds of simulated time")
    p.add_argument("--seed", type=int, default=None,
                   help="seed of the run's random generator")
    p.add_argument("--jobs", type=_jobs_arg, default=None,
                   help="worker processes for the pitch sweep")
    p.add_argument("--out", default=None,
                   help="directory for CSV/JSON exports")
    p.set_defaults(func=_cmd_memsys)

    p = sub.add_parser("model-card", help="export a compact model")
    p.add_argument("--out", default="model_card")
    p.add_argument("--name", default="mtj_cell")
    p.set_defaults(func=_cmd_model_card)

    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
