"""Command-line interface: the library's analyses without writing code.

Subcommands::

    python -m repro.cli reproduce [--out DIR]      all paper figures
    python -m repro.cli psi --ecd-nm 35 [...]      coupling-factor sweep
    python -m repro.cli design --ecds-nm 25,35,45  design-space table
    python -m repro.cli wer --vp 0.95 [...]        write-error pulse sizing
    python -m repro.cli model-card --out DIR       compact-model export
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .apps import DESIGN_HEADERS, DesignSpaceExplorer, WriteErrorModel
from .core.psi import psi_threshold_pitch, psi_vs_pitch
from .device import MTJDevice, PAPER_EVAL_DEVICE
from .device.compact import export_model_card
from .reporting import ascii_plot, format_table
from .units import nm_to_m, oe_to_am


def _cmd_reproduce(args):
    from .experiments.runner import main as runner_main
    return runner_main([args.out] if args.out else [])


def _cmd_psi(args):
    ecd = nm_to_m(args.ecd_nm)
    hc = oe_to_am(args.hc_oe)
    pitches = np.linspace(args.ratio_min * ecd, nm_to_m(args.pitch_max_nm),
                          args.points)
    psi = psi_vs_pitch(ecd, pitches, hc)
    print(ascii_plot({"Psi": (pitches * 1e9, psi * 100.0)},
                     title=f"Psi vs pitch (eCD={args.ecd_nm:g} nm)",
                     x_label="pitch (nm)", y_label="Psi (%)"))
    threshold = psi_threshold_pitch(ecd, hc, psi_target=args.target)
    print(f"\nPsi = {args.target * 100:g}% at pitch = "
          f"{threshold * 1e9:.1f} nm")
    return 0


def _cmd_design(args):
    ecds = [nm_to_m(float(v)) for v in args.ecds_nm.split(",")]
    ratios = [float(v) for v in args.ratios.split(",")]
    explorer = DesignSpaceExplorer(PAPER_EVAL_DEVICE,
                                   probe_voltage=args.vp)
    points = explorer.sweep(ecds, ratios)
    print(format_table(DESIGN_HEADERS, [p.row() for p in points],
                       float_format=".3g"))
    return 0


def _cmd_wer(args):
    device = MTJDevice(PAPER_EVAL_DEVICE)
    model = WriteErrorModel(device)
    rows = []
    for ratio in (3.0, 2.0, 1.5):
        pitch = ratio * device.params.ecd
        pulse = model.worst_case_pulse(args.target, args.vp, pitch)
        penalty = model.pattern_pulse_penalty(args.target, args.vp, pitch)
        rows.append((f"{ratio:g}x", pulse * 1e9, penalty * 1e9))
    print(format_table(
        ["pitch", f"pulse for WER={args.target:g} (ns)",
         "pattern penalty (ns)"], rows, float_format=".3g"))
    return 0


def _cmd_model_card(args):
    device = MTJDevice(PAPER_EVAL_DEVICE)
    paths = export_model_card(device, args.out, name=args.name)
    for path in paths:
        print(f"wrote {path}")
    return 0


def build_parser():
    """The argparse parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STT-MRAM magnetic coupling analyses (DATE 2020 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("reproduce", help="regenerate all paper figures")
    p.add_argument("--out", default=None,
                   help="directory for CSV/JSON exports")
    p.set_defaults(func=_cmd_reproduce)

    p = sub.add_parser("psi", help="coupling factor vs pitch")
    p.add_argument("--ecd-nm", type=float, default=35.0)
    p.add_argument("--hc-oe", type=float, default=2200.0)
    p.add_argument("--ratio-min", type=float, default=1.5)
    p.add_argument("--pitch-max-nm", type=float, default=200.0)
    p.add_argument("--points", type=int, default=40)
    p.add_argument("--target", type=float, default=0.02)
    p.set_defaults(func=_cmd_psi)

    p = sub.add_parser("design", help="design-space sweep table")
    p.add_argument("--ecds-nm", default="25,35,45")
    p.add_argument("--ratios", default="1.5,2.0,3.0")
    p.add_argument("--vp", type=float, default=0.85)
    p.set_defaults(func=_cmd_design)

    p = sub.add_parser("wer", help="write-error pulse sizing")
    p.add_argument("--vp", type=float, default=0.95)
    p.add_argument("--target", type=float, default=1e-6)
    p.set_defaults(func=_cmd_wer)

    p = sub.add_parser("model-card", help="export a compact model")
    p.add_argument("--out", default="model_card")
    p.add_argument("--name", default="mtj_cell")
    p.set_defaults(func=_cmd_model_card)

    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
