"""Command-line interface: the library's analyses without writing code.

Subcommands::

    python -m repro.cli reproduce [--out DIR]      all paper figures
    python -m repro.cli psi --ecd-nm 35 [...]      coupling-factor sweep
    python -m repro.cli design --ecds-nm 25,35,45  design-space table
    python -m repro.cli wer --vp 0.95 [...]        write-error pulse sizing
    python -m repro.cli memsys --pitch-nm 70 [...] system-level UBER
    python -m repro.cli worker --spool DIR         distributed-sweep worker
    python -m repro.cli fleet --spool DIR          worker-fleet supervisor
    python -m repro.cli serve --socket PATH        reliability-query service
    python -m repro.cli query uber --socket PATH   ask a running service
    python -m repro.cli cache info|clear|warm      on-disk kernel cache
    python -m repro.cli model-card --out DIR       compact-model export

Stochastic subcommands (``wer``, ``memsys``) accept ``--seed N``; every
random draw of the run flows from that one ``numpy.random.Generator``,
so identical invocations print identical numbers.

``memsys`` additionally accepts ``--sampler bernoulli|binomial`` (the
per-cell reference draw vs the class-grouped rare-event fast path) and
``--preset stress|macro-512|chip-1024`` — large-geometry operating
points that bundle array size, traffic volume, and write-error trim;
the dense presets select the binomial sampler, without which a
``nominal_wer <= 1e-6`` run would need billions of uniform draws per
observed flip. ``--checkpoint DIR`` makes the Monte-Carlo run
crash-tolerant (atomic, checksummed snapshots at batch boundaries;
``--checkpoint-every N`` sets the cadence in transactions) and
``--resume`` continues a killed run mid-stream, byte-identical to the
uninterrupted seeded run.

``fleet`` supervises a pool of ``repro worker`` processes against a
spool directory: it spawns workers when queue-depth x chunk-cost
exceeds ``--latency-target``, restarts crashes with exponential
backoff, and retires the fleet after ``--idle-grace`` seconds of empty
spool (see :mod:`repro.resilience.supervisor`).

Sweep-shaped subcommands (``reproduce``, ``design``, ``memsys``) accept
``--jobs N`` to fan the underlying :mod:`repro.sweep` grid out over N
workers; results are identical to the serial run. ``--executor`` picks
the worker flavor explicitly (``thread`` parallelizes inside one
process and shares its kernel store; ``process``/``chunked`` fork;
``distributed`` ships chunks over a spool-directory job queue that
``repro worker`` processes — started on any host sharing the
``REPRO_SWEEP_SPOOL`` directory — serve, warm-started from a shared
``REPRO_KERNEL_CACHE``).

``cache`` manages the persistent kernel cache that the
``REPRO_KERNEL_CACHE`` environment variable enables: ``info`` inspects
it, ``clear`` deletes it, ``warm`` precomputes the coupling kernels of
a geometry x pitch grid so later sweeps start warm.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .apps import DESIGN_HEADERS, DesignSpaceExplorer, WriteErrorModel
from .core.psi import psi_threshold_pitch, psi_vs_pitch
from .device import MTJDevice, PAPER_EVAL_DEVICE
from .device.compact import export_model_card
from .errors import RunIdentityError
from .reporting import ascii_plot, format_table
from .units import nm_to_m, oe_to_am


def _generator(args):
    """The run's shared RNG; ``--seed`` makes the output reproducible."""
    return np.random.default_rng(args.seed)


def _cmd_reproduce(args):
    from .experiments.runner import main as runner_main
    argv = [args.out] if args.out else []
    if args.jobs:
        argv += ["--jobs", str(args.jobs)]
    if args.executor:
        argv += ["--executor", args.executor]
    return runner_main(argv)


def _cmd_psi(args):
    ecd = nm_to_m(args.ecd_nm)
    hc = oe_to_am(args.hc_oe)
    pitches = np.linspace(args.ratio_min * ecd, nm_to_m(args.pitch_max_nm),
                          args.points)
    psi = psi_vs_pitch(ecd, pitches, hc)
    print(ascii_plot({"Psi": (pitches * 1e9, psi * 100.0)},
                     title=f"Psi vs pitch (eCD={args.ecd_nm:g} nm)",
                     x_label="pitch (nm)", y_label="Psi (%)"))
    threshold = psi_threshold_pitch(ecd, hc, psi_target=args.target)
    print(f"\nPsi = {args.target * 100:g}% at pitch = "
          f"{threshold * 1e9:.1f} nm")
    return 0


def _cmd_design(args):
    ecds = [nm_to_m(float(v)) for v in args.ecds_nm.split(",")]
    ratios = [float(v) for v in args.ratios.split(",")]
    explorer = DesignSpaceExplorer(PAPER_EVAL_DEVICE,
                                   probe_voltage=args.vp)
    points = explorer.sweep(ecds, ratios, jobs=args.jobs,
                            executor=args.executor)
    print(format_table(DESIGN_HEADERS, [p.row() for p in points],
                       float_format=".3g"))
    return 0


def _cmd_wer(args):
    from .arrays.pattern import ALL_AP, ALL_P
    from .arrays.victim import VictimAnalysis
    device = MTJDevice(PAPER_EVAL_DEVICE)
    model = WriteErrorModel(device)
    rng = _generator(args)
    rows = []
    for ratio in (3.0, 2.0, 1.5):
        victim = VictimAnalysis(device, ratio * device.params.ecd)
        hz_worst = victim.hz_total(ALL_P)
        pulse = model.pulse_for_wer(args.target, args.vp, hz_worst)
        penalty = pulse - model.pulse_for_wer(args.target, args.vp,
                                              victim.hz_total(ALL_AP))
        # The class-grouped binomial draw: each stress corner is one
        # class of n_samples exchangeable write attempts, so the whole
        # column costs one count draw per row instead of the retired
        # per-sample angle loop (method="angles" keeps the reference).
        sampled = model.sample_wer(pulse, args.vp, hz_worst,
                                   n_samples=args.samples, rng=rng,
                                   method="binomial")
        rows.append((f"{ratio:g}x", pulse * 1e9, penalty * 1e9, sampled))
    print(format_table(
        ["pitch", f"pulse for WER={args.target:g} (ns)",
         "pattern penalty (ns)", "sampled WER"], rows,
        float_format=".3g"))
    return 0


#: Large-geometry presets for ``repro memsys``. Each bundles the array
#: size, traffic volume, and write-error trim of a realistic operating
#: point; the dense presets pick the binomial sampler (the bernoulli
#: reference would spend billions of uniform draws observing a handful
#: of flips) and skip the expectation-mode pitch sweep, which scales
#: with the cell count. Explicit flags override preset values.
MEMSYS_PRESETS = {
    "stress": dict(rows=64, cols=64, transactions=100_000,
                   nominal_wer=2e-3, pattern="checkerboard"),
    "macro-512": dict(rows=512, cols=512, transactions=500_000,
                      nominal_wer=1e-6, sampler="binomial",
                      pattern="read-heavy", no_sweep=True),
    "chip-1024": dict(rows=1024, cols=1024, transactions=1_000_000,
                      nominal_wer=1e-6, sampler="binomial",
                      pattern="read-heavy", no_sweep=True,
                      topology="banked", banks=4, subarrays=4),
}

#: Baseline values of every preset-controlled ``memsys`` flag. The
#: parser leaves these flags at ``None`` so an explicit flag — even one
#: spelling out the baseline value — is distinguishable from an absent
#: one; :func:`_apply_memsys_preset` resolves the precedence.
_MEMSYS_DEFAULTS = dict(rows=64, cols=64, transactions=50_000,
                        nominal_wer=2e-3, sampler="bernoulli",
                        pattern="random", no_sweep=False,
                        topology="flat", banks=1, subarrays=1)


def _apply_memsys_preset(args):
    """Resolve preset-controlled flags: explicit > preset > baseline."""
    preset = MEMSYS_PRESETS[args.preset] if args.preset else {}
    for key, baseline in _MEMSYS_DEFAULTS.items():
        if getattr(args, key) is None:
            setattr(args, key, preset.get(key, baseline))


def _cmd_memsys(args):
    from .memsys import ScrubPolicy, build_engine, uber_sweep
    from .memsys.sweeps import SWEEP_HEADERS
    from .memsys.topology import TopologyEngine
    _apply_memsys_preset(args)
    device = MTJDevice(PAPER_EVAL_DEVICE)
    rng = _generator(args)
    scrub = (ScrubPolicy(args.scrub_interval)
             if args.scrub_interval else None)
    topology_kwargs = {}
    if args.topology != "flat" or args.banks != 1 or args.subarrays != 1:
        topology_kwargs = dict(topology=args.topology,
                               banks=args.banks,
                               subarrays=args.subarrays)
    engine = build_engine(
        device, pitch=nm_to_m(args.pitch_nm), rows=args.rows,
        cols=args.cols, ecc=args.ecc, workload=args.pattern,
        scrub=scrub, vp=args.vp, nominal_wer=args.nominal_wer,
        read_voltage=args.read_voltage, sampler=args.sampler,
        backend=args.backend, **topology_kwargs)
    config = engine.controller.describe()
    print(f"memsys: {args.rows}x{args.cols} array at "
          f"{args.pitch_nm:g} nm pitch, {args.pattern} traffic, "
          f"{args.ecc} ECC, {args.sampler} sampler "
          f"({engine.backend.name} backend), write pulses trimmed to "
          f"{config['t_pulse0_ns']:.1f}/{config['t_pulse1_ns']:.1f} ns "
          f"(nominal WER {args.nominal_wer:g})")
    if isinstance(engine, TopologyEngine):
        topo = engine.topology
        print(f"topology: {topo.kind}, {topo.banks} banks x "
              f"{topo.subarrays} subarrays "
              f"({topo.sub_rows}x{topo.sub_cols} cells per shard, "
              f"{topo.n_shards} parallel sub-runs)")
    print()
    manager = None
    run_kwargs = {}
    if args.resume and not args.checkpoint:
        print("--resume needs --checkpoint DIR")
        return 2
    if args.checkpoint:
        from .resilience import CheckpointManager
        manager = CheckpointManager(args.checkpoint)
        run_kwargs = dict(checkpoint=manager,
                          checkpoint_every=args.checkpoint_every,
                          resume=args.resume)
    try:
        if isinstance(engine, TopologyEngine):
            result = engine.run(args.transactions, rng=rng,
                                profile=args.profile,
                                executor=args.executor, jobs=args.jobs,
                                **run_kwargs)
        else:
            result = engine.run(args.transactions, rng=rng,
                                profile=args.profile, **run_kwargs)
    except RunIdentityError as exc:
        print(f"resume refused: {exc}")
        print("pass a fresh --checkpoint directory (or drop --resume) "
              "to start over")
        return 2
    if manager is not None:
        ck = manager.stats()
        line = (f"checkpoints: {ck['directory']} "
                f"({ck['saves']} save(s)")
        for label in ("save_failures", "corrupt_fallbacks",
                      "stale_fallbacks"):
            if ck[label]:
                line += f", {ck[label]} {label.replace('_', ' ')}"
        print(line + ")")
        print()
    headers, rows = result.summary_rows()
    print(format_table(headers, rows))
    print()
    if args.profile:
        profile = result.extras["profile"]
        total = profile.get("total") or 0.0
        print("phase wall-time breakdown "
              f"({engine.backend.name} backend):")
        prof_rows = [
            (phase, f"{seconds:.3f}",
             f"{100.0 * seconds / total:.1f}%" if total else "-")
            for phase, seconds in profile.items() if phase != "total"]
        prof_rows.append(("total", f"{total:.3f}", "100.0%"))
        print(format_table(["phase", "seconds", "share"], prof_rows))
        print()

    sweep = None
    if args.no_sweep:
        print("pitch sweep skipped (--no-sweep)")
    else:
        seed = 0 if args.seed is None else args.seed
        sweep = uber_sweep(device, rows=args.rows, cols=args.cols,
                           seed=seed, jobs=args.jobs,
                           executor=args.executor, vp=args.vp,
                           nominal_wer=args.nominal_wer,
                           read_voltage=args.read_voltage,
                           sampler=args.sampler,
                           backend=args.backend,
                           **topology_kwargs)
        print("pitch sweep (expectation mode; UBER of the worst-case "
              "data pattern rises as pitch shrinks):")
        print(format_table(SWEEP_HEADERS, sweep.rows,
                           float_format=".3e"))
        print()
        comp_headers, comp_rows = sweep.comparison_table()
        print(format_table(comp_headers, comp_rows, float_format=".3g"))

    if args.out:
        from .experiments.runner import export
        from .reporting import write_json
        import dataclasses
        if sweep is not None:
            export(sweep, args.out)
        run_payload = dataclasses.asdict(result)
        run_payload.update(raw_ber=result.raw_ber, uber=result.uber,
                           word_fail_rate=result.word_fail_rate)
        import os
        path = write_json(os.path.join(args.out, "memsys_run.json"),
                          run_payload)
        suffix = "" if sweep is None else " and memsys_sweep.*"
        print(f"\nwrote {path}{suffix} to {args.out}")
    return 0


def _cmd_worker(args):
    from .sweep.distributed import run_worker
    return run_worker(spool=args.spool, worker_id=args.id,
                      poll=args.poll, max_idle=args.max_idle,
                      timeout=args.timeout)


def _cmd_fleet(args):
    from .resilience.supervisor import run_fleet
    return run_fleet(spool=args.spool,
                     latency_target=args.latency_target,
                     chunk_cost=args.chunk_cost,
                     min_workers=args.min_workers,
                     max_workers=args.max_workers,
                     idle_grace=args.idle_grace, poll=args.poll,
                     duration=args.duration,
                     until_idle=args.until_idle)


def _cmd_cache(args):
    import os

    from .arrays.kernel_disk import KERNEL_CACHE_ENV, DiskKernelCache
    from .arrays.kernel_store import get_kernel_store

    directory = args.dir or os.environ.get(KERNEL_CACHE_ENV)
    if not directory:
        print(f"no kernel cache configured: pass --dir or set "
              f"{KERNEL_CACHE_ENV}")
        return 1
    disk = DiskKernelCache(directory)

    if args.action == "info":
        info = disk.describe()
        print(f"kernel cache at {info['directory']}")
        print(f"  schema      v{info['schema']}")
        print(f"  entries     {info['entries']}")
        print(f"  size        {info['size_bytes']} bytes")
        print(f"  valid       {info['valid']}")
        if not info["valid"]:
            print(f"  error       {info['error']}")
        return 0

    if args.action == "clear":
        removed = disk.clear()
        print(f"removed {removed} cache file(s) from {disk.directory}")
        return 0

    # warm: precompute the 3x3 + extended-window kernels of the grid.
    from .arrays.coupling import InterCellCoupling
    from .arrays.extended import ExtendedNeighborhood
    from .stack import build_reference_stack

    store = get_kernel_store()
    previous = store.disk
    previous_from_env = store.disk_from_env
    entries_before = disk.describe()["entries"]   # 0 if absent/corrupt
    store.attach_disk(disk)
    try:
        # Drop in-memory entries so every grid kernel is either
        # recomputed (and queued for the disk) or served by the disk
        # itself — a store that happens to be warm in memory must not
        # leave the file cold.
        store.clear()
        ecds = [nm_to_m(float(v)) for v in args.ecds_nm.split(",")]
        ratios = [float(v) for v in args.ratios.split(",")]
        for ecd in ecds:
            stack = build_reference_stack(ecd)
            for ratio in ratios:
                pitch = ratio * ecd
                InterCellCoupling(stack, pitch).kernels()
                ExtendedNeighborhood(stack, pitch,
                                     order=args.order).kernels()
        store.flush_disk()
        # Write failures (mid-warm autoflushes included) are swallowed
        # into this counter, and a pre-populated cache can look healthy
        # even when the warm persisted nothing — capture it while still
        # attached. (Read-side fallbacks, e.g. warming over a corrupt
        # file this warm then replaces, are not failures.)
        write_failed = store.stats().get("disk_write_failures", 0) > 0
    finally:
        if previous is None:
            store.detach_disk()
        else:
            store.attach_disk(previous, _from_env=previous_from_env)
    post = DiskKernelCache(directory).describe()
    # Report new kernels as the on-disk delta — mid-warm autoflushes
    # mean the final flush's count alone would under-report.
    print(f"warmed {len(ecds)} eCD(s) x {len(ratios)} pitch ratio(s) "
          f"(order {args.order}): "
          f"{max(post['entries'] - entries_before, 0)} new kernel(s) "
          f"written, {post['entries']} on disk")
    if write_failed or not post["valid"] or post["entries"] == 0:
        print(f"cache warm failed: "
              f"{post.get('error', 'no kernels persisted')}")
        return 1
    return 0


def _cmd_serve(args):
    from .service.server import serve_main
    if args.socket is None and args.port is None:
        print("pass --socket PATH or --port N to pick a listen "
              "address")
        return 2
    return serve_main(path=args.socket, host=args.host,
                      port=args.port, capacity=args.cache_size,
                      memo_ttl=args.memo_ttl, stale_ttl=args.stale_ttl)


def _print_report(report, as_json):
    import json

    if as_json:
        print(json.dumps(report.to_record(), indent=2, sort_keys=True))
        return
    counts = report.counts()
    for check in report.checks:
        mark = {"pass": "ok  ", "fail": "FAIL", "skipped": "skip"}
        line = f"  {mark[check.status]}  {check.name}"
        if check.detail:
            line += f": {check.detail}"
        print(line)
    verdict = "PASS" if report.passed else "FAIL"
    print(f"{verdict}  {report.subject}  ({counts['pass']} ok, "
          f"{counts['fail']} failed, {counts['skipped']} skipped)")


def _cmd_audit(args):
    import os

    from .integrity import (AuditReport, audit_cache_dir,
                            audit_checkpoint_dir, audit_spool_run,
                            cross_backend_canary)
    from .sweep.distributed import SWEEP_SPOOL_ENV, _RUN_PREFIX

    reports = []
    run_dirs = list(args.run or ())
    spool = args.spool or (os.environ.get(SWEEP_SPOOL_ENV)
                           if not (run_dirs or args.checkpoint
                                   or args.cache or args.canary)
                           else None)
    if spool:
        try:
            run_dirs.extend(
                os.path.join(spool, name)
                for name in sorted(os.listdir(spool))
                if name.startswith(_RUN_PREFIX)
                and os.path.isdir(os.path.join(spool, name)))
        except OSError as exc:
            print(f"spool {spool!r} unreadable: {exc}")
            return 2
    for run_dir in run_dirs:
        reports.append(audit_spool_run(run_dir, sample=args.sample,
                                       seed=args.seed))
    if args.checkpoint:
        reports.append(audit_checkpoint_dir(args.checkpoint))
    if args.cache:
        reports.append(audit_cache_dir(args.cache))
    if args.canary:
        canary = AuditReport("cross-backend canary")
        check = cross_backend_canary(seed=args.seed)
        canary.checks.append(check)
        reports.append(canary)
    if not reports:
        print("nothing to audit: pass --spool/--run/--checkpoint/"
              "--cache/--canary (preserved spool runs need "
              "REPRO_SWEEP_KEEP_RUNS=1)")
        return 2
    for report in reports:
        _print_report(report, args.json)
    return 0 if all(report.passed for report in reports) else 1


def _cmd_spool(args):
    import json
    import os

    from .integrity import fsck_spool, list_quarantine
    from .sweep.distributed import SWEEP_SPOOL_ENV

    spool = args.spool or os.environ.get(SWEEP_SPOOL_ENV)
    if not spool:
        print(f"no spool given: pass --spool DIR or set "
              f"{SWEEP_SPOOL_ENV}")
        return 2

    if args.action == "ls-quarantine":
        records = list_quarantine(spool)
        if args.json:
            print(json.dumps(records, indent=2, sort_keys=True))
            return 0
        if not records:
            print(f"no quarantine records under {spool}")
            return 0
        for record in records:
            if record.get("legacy"):
                print(f"  {record['name']}  {record['bytes']} bytes  "
                      f"(legacy pickle record, not deserialized)")
            elif record.get("unreadable"):
                print(f"  {record['name']}  {record['bytes']} bytes  "
                      f"(unreadable)")
            else:
                print(f"  {record['name']}  chunk {record['chunk']}  "
                      f"{record['attempts']} attempt(s)  "
                      f"{record['error_type']}: {record['error']}")
        print(f"{len(records)} quarantine record(s) under {spool}")
        return 0

    findings = fsck_spool(spool, repair=args.repair)
    if args.json:
        print(json.dumps([f.to_record() for f in findings],
                         indent=2, sort_keys=True))
    else:
        for finding in findings:
            mark = "repaired" if finding.repaired else "found   "
            print(f"  {mark}  {finding.kind}  {finding.path}"
                  + (f": {finding.detail}" if finding.detail else ""))
        repaired = sum(1 for f in findings if f.repaired)
        print(f"fsck {spool}: {len(findings)} finding(s), "
              f"{repaired} repaired")
    return 0 if all(f.repaired for f in findings) else 1


def _cmd_query(args):
    import json

    from .errors import ServiceError
    from .service.client import ServiceClient

    try:
        params = json.loads(args.params) if args.params else {}
    except json.JSONDecodeError as exc:
        print(f"--params is not valid JSON: {exc}")
        return 2
    if not isinstance(params, dict):
        print("--params must be a JSON object")
        return 2

    def on_progress(event):
        print(f"progress {event.get('done')}/{event.get('total')}",
              file=sys.stderr, flush=True)

    try:
        with ServiceClient(path=args.socket, host=args.host,
                           port=args.port,
                           timeout=args.timeout) as client:
            event = client.request({"op": args.op, **params},
                                   on_progress=on_progress)
    except ServiceError as exc:
        print(f"query failed: {exc}")
        return 1
    print(json.dumps(event, indent=2, sort_keys=True))
    return 0 if event.get("ok") else 1


def _cmd_model_card(args):
    device = MTJDevice(PAPER_EVAL_DEVICE)
    paths = export_model_card(device, args.out, name=args.name)
    for path in paths:
        print(f"wrote {path}")
    return 0


def build_parser():
    """The argparse parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STT-MRAM magnetic coupling analyses (DATE 2020 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    from .sweep import add_sweep_arguments

    p = sub.add_parser("reproduce", help="regenerate all paper figures")
    p.add_argument("--out", default=None,
                   help="directory for CSV/JSON exports")
    add_sweep_arguments(p)
    p.set_defaults(func=_cmd_reproduce)

    p = sub.add_parser("psi", help="coupling factor vs pitch")
    p.add_argument("--ecd-nm", type=float, default=35.0)
    p.add_argument("--hc-oe", type=float, default=2200.0)
    p.add_argument("--ratio-min", type=float, default=1.5)
    p.add_argument("--pitch-max-nm", type=float, default=200.0)
    p.add_argument("--points", type=int, default=40)
    p.add_argument("--target", type=float, default=0.02)
    p.set_defaults(func=_cmd_psi)

    p = sub.add_parser("design", help="design-space sweep table")
    p.add_argument("--ecds-nm", default="25,35,45")
    p.add_argument("--ratios", default="1.5,2.0,3.0")
    p.add_argument("--vp", type=float, default=0.85)
    add_sweep_arguments(p)
    p.set_defaults(func=_cmd_design)

    p = sub.add_parser("wer", help="write-error pulse sizing")
    p.add_argument("--vp", type=float, default=0.95)
    p.add_argument("--target", type=float, default=1e-6)
    p.add_argument("--samples", type=int, default=200_000,
                   help="Monte-Carlo draws for the sampled-WER column")
    p.add_argument("--seed", type=int, default=None,
                   help="seed of the run's random generator")
    p.set_defaults(func=_cmd_wer)

    p = sub.add_parser(
        "memsys", help="system-level UBER under read/write traffic")
    from .memsys.ecc import ECC_SCHEMES
    from .memsys.sampling import SAMPLERS
    from .memsys.traffic import WORKLOADS
    p.add_argument("--pitch-nm", type=float, default=70.0)
    p.add_argument("--pattern", default=None,
                   choices=sorted(WORKLOADS),
                   help="traffic workload "
                        f"(default {_MEMSYS_DEFAULTS['pattern']})")
    p.add_argument("--ecc", default="secded",
                   choices=sorted(ECC_SCHEMES))
    p.add_argument("--rows", type=int, default=None,
                   help=f"default {_MEMSYS_DEFAULTS['rows']}")
    p.add_argument("--cols", type=int, default=None,
                   help=f"default {_MEMSYS_DEFAULTS['cols']}")
    p.add_argument("--topology", default=None,
                   choices=("flat", "banked", "cross-point"),
                   help="array organization: one 'flat' mat "
                        "(default), 'banked' banks x subarrays "
                        "(each subarray an independent parallel "
                        "sub-run), or selector-less 'cross-point' "
                        "with the sneak-path half-select disturb "
                        "term")
    p.add_argument("--banks", type=int, default=None,
                   help="banks tiling the rows (banked/cross-point; "
                        f"default {_MEMSYS_DEFAULTS['banks']})")
    p.add_argument("--subarrays", type=int, default=None,
                   help="subarrays tiling the columns per bank "
                        f"(default {_MEMSYS_DEFAULTS['subarrays']})")
    p.add_argument("--transactions", type=int, default=None,
                   help=f"default {_MEMSYS_DEFAULTS['transactions']}")
    p.add_argument("--vp", type=float, default=0.95)
    p.add_argument("--nominal-wer", type=float, default=None,
                   help="per-polarity write-error trim target "
                        f"(default {_MEMSYS_DEFAULTS['nominal_wer']:g}"
                        ", an accelerated-stress corner; production "
                        "parts trim to <= 1e-6 — use --sampler "
                        "binomial there)")
    p.add_argument("--read-voltage", type=float, default=0.15,
                   help="read bias [V] (default 0.15; raising it "
                        "stresses read disturb and, on cross-point "
                        "arrays, half-select sneak flips)")
    p.add_argument("--sampler", default=None,
                   choices=sorted(SAMPLERS),
                   help="Monte-Carlo draw strategy: per-cell "
                        "'bernoulli' reference (default) or "
                        "class-grouped 'binomial' rare-event fast "
                        "path")
    from .memsys.backends import BACKENDS, ENGINE_BACKEND_ENV
    p.add_argument("--backend", default=None,
                   choices=sorted(BACKENDS),
                   help="compute backend of the binomial fast path: "
                        "'numpy' reference or JIT-compiled 'numba' "
                        "(falls back to numpy with a warning when "
                        "numba is missing; default consults "
                        f"{ENGINE_BACKEND_ENV}, then numpy)")
    p.add_argument("--profile", action="store_true",
                   help="print a per-phase wall-time breakdown "
                        "(classify/draw/place/ecc/scrub) after the "
                        "Monte-Carlo run")
    p.add_argument("--preset", default=None,
                   choices=sorted(MEMSYS_PRESETS),
                   help="large-geometry operating points "
                        "(rows/cols/transactions/nominal-wer/sampler "
                        "bundles; explicit flags override)")
    p.add_argument("--no-sweep", action="store_true", default=None,
                   help="skip the expectation-mode pitch sweep after "
                        "the Monte-Carlo run")
    p.add_argument("--scrub-interval", type=float, default=None,
                   help="scrub period in seconds of simulated time")
    p.add_argument("--seed", type=int, default=None,
                   help="seed of the run's random generator")
    p.add_argument("--checkpoint", default=None, metavar="DIR",
                   help="snapshot run state to this directory at "
                        "batch boundaries (atomic + checksummed), "
                        "making the run crash-tolerant")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   metavar="N",
                   help="minimum transactions between snapshots "
                        "(default: every batch boundary)")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint DIR; the completed "
                        "run is byte-identical to the uninterrupted "
                        "seeded run (corrupt/stale checkpoints fall "
                        "back to a clean restart with a warning)")
    add_sweep_arguments(p)
    p.add_argument("--out", default=None,
                   help="directory for CSV/JSON exports")
    p.set_defaults(func=_cmd_memsys)

    from .sweep.distributed import add_worker_arguments
    p = sub.add_parser(
        "worker",
        help="serve distributed sweep chunks from a spool directory")
    add_worker_arguments(p)
    p.set_defaults(func=_cmd_worker)

    from .resilience.supervisor import add_fleet_arguments
    p = sub.add_parser(
        "fleet",
        help="supervise a worker fleet against a spool directory "
             "(spawn on demand, restart crashes, retire on idle)")
    add_fleet_arguments(p)
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser(
        "cache", help="inspect/clear/warm the on-disk kernel cache")
    p.add_argument("action", choices=("info", "clear", "warm"))
    p.add_argument("--dir", default=None,
                   help="cache directory (default: $REPRO_KERNEL_CACHE)")
    p.add_argument("--ecds-nm", default="35",
                   help="comma-separated eCDs [nm] for `warm`")
    p.add_argument("--ratios", default="1.5,1.75,2.0,2.5,3.0",
                   help="comma-separated pitch/eCD ratios for `warm`")
    p.add_argument("--order", type=int, default=2,
                   help="extended-neighborhood half-width for `warm`")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser(
        "serve",
        help="run the long-lived reliability-query service")
    p.add_argument("--socket", default=None,
                   help="unix-socket path to listen on")
    p.add_argument("--host", default=None,
                   help="TCP listen host (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=None,
                   help="TCP listen port (0 picks a free one)")
    p.add_argument("--cache-size", type=int, default=256,
                   help="in-memory memo-cache entries (disk tier "
                        "follows $REPRO_KERNEL_CACHE)")
    p.add_argument("--memo-ttl", type=float, default=None,
                   metavar="SECONDS",
                   help="age past which a memoized answer reads as a "
                        "miss (default: never expires)")
    p.add_argument("--stale-ttl", type=float, default=3600.0,
                   metavar="SECONDS",
                   help="degraded mode: with the breaker open, serve "
                        "digest-verified memo entries up to this old, "
                        "tagged 'stale: true' (0 disables; default "
                        "3600)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "audit",
        help="replay-verify run artifacts against their integrity "
             "manifests")
    p.add_argument("--spool", default=None, metavar="DIR",
                   help="audit every preserved run-* directory under "
                        "this spool (default: $REPRO_SWEEP_SPOOL when "
                        "no other target is given)")
    p.add_argument("--run", action="append", default=None,
                   metavar="DIR",
                   help="audit one preserved spool run directory "
                        "(repeatable)")
    p.add_argument("--checkpoint", default=None, metavar="DIR",
                   help="audit a checkpoint directory (framed "
                        "checksums + manifest sidecars)")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="audit a service results-cache directory "
                        "(memo envelopes)")
    p.add_argument("--canary", action="store_true",
                   help="run the numpy-vs-numba cross-backend canary "
                        "(skipped when numba is unavailable)")
    p.add_argument("--sample", type=int, default=4,
                   help="chunks per run to replay byte-for-byte "
                        "(default 4)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed of the replay sample (and canary)")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable audit records")
    p.set_defaults(func=_cmd_audit)

    p = sub.add_parser(
        "spool",
        help="crash-consistency fsck and quarantine listing for a "
             "sweep spool")
    p.add_argument("action", choices=("fsck", "ls-quarantine"))
    p.add_argument("--spool", default=None, metavar="DIR",
                   help="spool directory (default: $REPRO_SWEEP_SPOOL)")
    p.add_argument("--repair", action="store_true",
                   help="apply fsck repairs (deletions of provably "
                        "redundant state only)")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable findings")
    p.set_defaults(func=_cmd_spool)

    from .service.protocol import QUERY_TYPES
    p = sub.add_parser(
        "query", help="ask a running reliability service one question")
    p.add_argument("op", choices=sorted(QUERY_TYPES),
                   help="query type")
    p.add_argument("--socket", default=None,
                   help="unix-socket path of the service")
    p.add_argument("--host", default=None,
                   help="TCP host of the service")
    p.add_argument("--port", type=int, default=None,
                   help="TCP port of the service")
    p.add_argument("--params", default=None,
                   help="JSON object of query parameters, e.g. "
                        "'{\"pitch_nm\": 60, \"ecc\": \"none\"}'")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="socket read timeout in seconds")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("model-card", help="export a compact model")
    p.add_argument("--out", default="model_card")
    p.add_argument("--name", default="mtj_cell")
    p.set_defaults(func=_cmd_model_card)

    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
