"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build. ``python setup.py develop``
installs the package in editable mode with plain setuptools instead; all
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
