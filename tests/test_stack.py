"""Tests for the MTJ stack builder and accessors."""

from __future__ import annotations

import pytest

from repro.errors import GeometryError, ParameterError
from repro.geometry import LayerRole
from repro.stack import (
    DEFAULT_THICKNESSES,
    MTJStack,
    build_reference_stack,
)


class TestReferenceStack:
    def test_layer_roles_present(self, stack35):
        roles = {layer.role for layer in stack35.layers}
        assert {LayerRole.FREE, LayerRole.BARRIER, LayerRole.REFERENCE,
                LayerRole.SPACER, LayerRole.HARD} <= roles

    def test_fl_midplane_at_origin(self, stack35):
        fl = stack35.free_layer
        assert fl.z_center == pytest.approx(0.0, abs=1e-15)

    def test_vertical_order(self, stack35):
        # Bottom-pinned: HL below SAF spacer below RL below TB below FL.
        assert (stack35.hard_layer.z_top
                <= stack35.reference_layer.z_bottom)
        assert (stack35.reference_layer.z_top
                <= stack35.barrier.z_bottom + 1e-15)
        assert stack35.barrier.z_top == pytest.approx(
            stack35.free_layer.z_bottom)

    def test_saf_antiparallel(self, stack35):
        assert stack35.reference_layer.direction == +1
        assert stack35.hard_layer.direction == -1

    def test_thicknesses_match_defaults(self, stack35):
        assert stack35.free_layer.thickness == pytest.approx(
            DEFAULT_THICKNESSES["free"])
        assert stack35.hard_layer.thickness == pytest.approx(
            DEFAULT_THICKNESSES["hard"])

    def test_ecd_and_area(self, stack35):
        assert stack35.ecd == pytest.approx(35e-9)
        assert stack35.radius == pytest.approx(17.5e-9)
        assert stack35.area == pytest.approx(9.6211e-16, rel=1e-3)

    def test_with_ecd(self, stack35):
        bigger = stack35.with_ecd(55e-9)
        assert bigger.ecd == pytest.approx(55e-9)
        # Vertical geometry unchanged.
        assert bigger.free_layer.thickness == pytest.approx(
            stack35.free_layer.thickness)

    def test_with_layer_ms(self, stack35):
        modified = stack35.with_layer_ms(LayerRole.HARD, 1.0e5)
        assert modified.hard_layer.material.ms == pytest.approx(1.0e5)
        assert stack35.hard_layer.material.ms != pytest.approx(1.0e5)

    def test_with_layer_ms_unknown_role(self, stack35):
        with pytest.raises(GeometryError):
            stack35.with_layer_ms(LayerRole.CAP, 1e5)

    def test_magnetic_layers(self, stack35):
        mags = stack35.magnetic_layers()
        assert [la.role for la in mags] == [
            LayerRole.HARD, LayerRole.REFERENCE, LayerRole.FREE]


class TestBuilderOptions:
    def test_override_thickness(self):
        stack = build_reference_stack(
            35e-9, thicknesses={"barrier": 1.5e-9})
        assert stack.barrier.thickness == pytest.approx(1.5e-9)

    def test_unknown_thickness_key_rejected(self):
        with pytest.raises(ParameterError):
            build_reference_stack(35e-9, thicknesses={"oxide": 1e-9})

    def test_ms_overrides(self):
        stack = build_reference_stack(35e-9, rl_ms=2e5, hl_ms=3e5,
                                      fl_ms=9e5)
        assert stack.reference_layer.material.ms == pytest.approx(2e5)
        assert stack.hard_layer.material.ms == pytest.approx(3e5)
        assert stack.free_layer.material.ms == pytest.approx(9e5)

    def test_duplicate_role_rejected(self, stack35):
        layers = stack35.layers + (stack35.free_layer,)
        with pytest.raises(GeometryError):
            MTJStack(layers=layers, pillar=stack35.pillar)
