"""Tests for array layout and the 3x3 neighborhood geometry."""

from __future__ import annotations

import math

import pytest

from repro.arrays import ArrayLayout, Neighborhood3x3
from repro.errors import ParameterError


class TestArrayLayout:
    def test_positions(self):
        layout = ArrayLayout(pitch=90e-9, rows=3, cols=3)
        assert layout.position(0, 0) == (0.0, 0.0)
        assert layout.position(0, 2)[0] == pytest.approx(180e-9)
        assert layout.position(2, 0)[1] == pytest.approx(-180e-9)

    def test_cell_count_and_iteration(self):
        layout = ArrayLayout(pitch=90e-9, rows=4, cols=5)
        assert layout.n_cells == 20
        assert len(list(layout.cells())) == 20

    def test_interior_neighbor_count(self):
        layout = ArrayLayout(pitch=90e-9, rows=3, cols=3)
        assert len(layout.neighbors(1, 1)) == 8
        assert len(layout.neighbors(1, 1, include_diagonal=False)) == 4

    def test_corner_neighbor_count(self):
        layout = ArrayLayout(pitch=90e-9, rows=3, cols=3)
        assert len(layout.neighbors(0, 0)) == 3

    def test_out_of_bounds(self):
        layout = ArrayLayout(pitch=90e-9, rows=3, cols=3)
        with pytest.raises(ParameterError):
            layout.position(3, 0)
        with pytest.raises(ParameterError):
            layout.neighbors(0, 5)


class TestNeighborhood3x3:
    def test_aggressor_count(self):
        hood = Neighborhood3x3(pitch=90e-9)
        assert len(hood.aggressor_positions()) == 8

    def test_direct_distances(self):
        hood = Neighborhood3x3(pitch=90e-9)
        for i in range(4):
            assert hood.aggressor_distance(i) == pytest.approx(90e-9)
            assert hood.is_direct(i)

    def test_diagonal_distances(self):
        hood = Neighborhood3x3(pitch=90e-9)
        for i in range(4, 8):
            assert hood.aggressor_distance(i) == pytest.approx(
                90e-9 * math.sqrt(2))
            assert not hood.is_direct(i)

    def test_from_pitch_ratio(self):
        hood = Neighborhood3x3.from_pitch_ratio(35e-9, 1.5)
        assert hood.pitch == pytest.approx(52.5e-9)

    def test_victim_at_origin(self):
        assert Neighborhood3x3(pitch=90e-9).victim_position == (0.0, 0.0)

    def test_index_validation(self):
        hood = Neighborhood3x3(pitch=90e-9)
        with pytest.raises(ParameterError):
            hood.aggressor_distance(8)
