"""Tests for the extension experiments and temperature-scaled coupling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays.coupling import InterCellCoupling
from repro.core.intra import IntraCellModel
from repro.experiments import runner
from repro.experiments import ext_neighborhood, ext_temperature, ext_wer
from repro.stack import build_reference_stack
from repro.units import celsius_to_kelvin, nm_to_m

pytestmark = pytest.mark.integration


class TestExtensionExperiments:
    @pytest.fixture(scope="class")
    def results(self):
        return {name: module.run()
                for name, module in runner.EXTENSIONS.items()}

    def test_all_extensions_pass(self, results):
        failed = {
            name: [c.metric for c in r.comparisons if not c.passed]
            for name, r in results.items() if not r.all_passed
        }
        assert not failed, f"failing criteria: {failed}"

    def test_registered_in_runner(self):
        assert set(runner.EXTENSIONS) == {
            "ext_neighborhood", "ext_random_data", "ext_temperature",
            "ext_wer"}
        combined = runner.run_all(include_extensions=True)
        assert len(combined) == len(runner.EXPERIMENTS) + 4

    def test_truncation_error_value(self, results):
        trunc = results["ext_neighborhood"].extras[
            "truncation_by_pitch"][90.0]
        # The headline extension finding: the 3x3 window misses ~25 %.
        assert trunc == pytest.approx(0.26, abs=0.08)

    def test_wer_penalty_ordering(self, results):
        penalties = results["ext_wer"].extras["penalties_ns"]
        assert penalties[1.5] > penalties[2.0] > penalties[3.0] > 0

    def test_temperature_correction_small_positive(self, results):
        extras = results["ext_temperature"].extras
        assert 0.0 < extras["relative_correction_at_hot"] < 0.05

    def test_random_data_overestimates_ordered(self, results):
        over = results["ext_random_data"].extras["overestimates"]
        assert over[1.5] > over[2.0] > over[3.0] >= 1.0


class TestTemperatureScaledCoupling:
    def test_intra_field_weakens_when_hot(self):
        model = IntraCellModel()
        room = model.hz_at_center(nm_to_m(35.0))
        hot = model.hz_at_center(nm_to_m(35.0),
                                 temperature=celsius_to_kelvin(150.0))
        assert abs(hot) < abs(room)
        assert np.sign(hot) == np.sign(room)

    def test_intra_field_strengthens_when_cold(self):
        model = IntraCellModel()
        room = model.hz_at_center(nm_to_m(35.0))
        cold = model.hz_at_center(nm_to_m(35.0),
                                  temperature=celsius_to_kelvin(0.0))
        assert abs(cold) > abs(room)

    def test_inter_variation_weakens_when_hot(self):
        stack = build_reference_stack(nm_to_m(55.0))
        room = InterCellCoupling(stack, nm_to_m(90.0)).max_variation()
        hot = InterCellCoupling(
            stack, nm_to_m(90.0),
            temperature=celsius_to_kelvin(150.0)).max_variation()
        assert hot < room

    def test_default_matches_reference_temperature(self):
        stack = build_reference_stack(nm_to_m(55.0))
        default = InterCellCoupling(stack, nm_to_m(90.0)).kernels()
        from repro.constants import ROOM_TEMPERATURE
        at_ref = InterCellCoupling(
            stack, nm_to_m(90.0),
            temperature=ROOM_TEMPERATURE).kernels()
        assert default.fl_direct == pytest.approx(at_ref.fl_direct,
                                                  rel=1e-9)
