"""Tests for the read-disturb analysis."""

from __future__ import annotations

import math

import pytest

from repro.apps import ReadDisturbAnalysis
from repro.device import MTJState
from repro.errors import ParameterError


@pytest.fixture
def analysis(eval_device):
    return ReadDisturbAnalysis(eval_device)


@pytest.fixture
def hz_intra(eval_device):
    return eval_device.intra_stray_field()


class TestEffectiveBarrier:
    def test_read_lowers_barrier(self, analysis, hz_intra,
                                 eval_device):
        static = eval_device.delta(MTJState.P, hz_intra)
        tilted = analysis.effective_delta(MTJState.P, 0.1, hz_intra)
        assert tilted < static

    def test_tiny_read_voltage_keeps_barrier(self, analysis, hz_intra,
                                             eval_device):
        static = eval_device.delta(MTJState.P, hz_intra)
        tilted = analysis.effective_delta(MTJState.P, 1e-3, hz_intra)
        assert tilted == pytest.approx(static, rel=0.05)

    def test_overdriven_read_collapses_barrier(self, analysis,
                                               hz_intra):
        assert analysis.effective_delta(MTJState.P, 0.9,
                                        hz_intra) == 0.0

    def test_rejects_non_device(self):
        with pytest.raises(ParameterError):
            ReadDisturbAnalysis("device")


class TestDisturbProbability:
    def test_monotone_in_voltage(self, analysis, hz_intra):
        probs = [analysis.disturb_probability(MTJState.P, v, 10e-9,
                                              hz_intra)
                 for v in (0.02, 0.1, 0.2, 0.4)]
        assert all(a <= b for a, b in zip(probs, probs[1:]))

    def test_paper_read_voltage_is_safe(self, analysis, hz_intra):
        # The paper reads at 20 mV: disturb must be negligible.
        p = analysis.disturb_probability(MTJState.P, 0.02, 10e-9,
                                         hz_intra)
        assert p < 1e-12

    def test_longer_read_more_disturb(self, analysis, hz_intra):
        short = analysis.disturb_probability(MTJState.P, 0.3, 10e-9,
                                             hz_intra)
        long = analysis.disturb_probability(MTJState.P, 0.3, 100e-9,
                                            hz_intra)
        assert long > short

    def test_reads_to_failure_inverse(self, analysis, hz_intra):
        p = analysis.disturb_probability(MTJState.P, 0.3, 10e-9,
                                         hz_intra)
        n = analysis.reads_to_failure(MTJState.P, 0.3, 10e-9, hz_intra,
                                      budget=1e-6)
        if p > 0:
            assert n == pytest.approx(1e-6 / p, rel=1e-9)
        else:
            assert math.isinf(n)


class TestReadVoltageSizing:
    def test_sized_voltage_meets_target(self, analysis, hz_intra):
        target = 1e-15
        v_max = analysis.max_read_voltage(MTJState.P, target,
                                          hz_stray=hz_intra)
        p = analysis.disturb_probability(MTJState.P, v_max, 10e-9,
                                         hz_intra)
        assert p <= target * 1.05

    def test_looser_target_higher_voltage(self, analysis, hz_intra):
        tight = analysis.max_read_voltage(MTJState.P, 1e-14,
                                          hz_stray=hz_intra)
        loose = analysis.max_read_voltage(MTJState.P, 1e-9,
                                          hz_stray=hz_intra)
        assert loose >= tight


class TestPatternSensitivity:
    def test_np0_worse_for_p_state(self, analysis, eval_device):
        pitch = 1.5 * eval_device.params.ecd
        p_np0, p_np255 = analysis.pattern_sensitivity(
            MTJState.P, 0.35, pitch)
        # NP8=0 lowers Delta_P -> easier disturb out of P.
        assert p_np0 >= p_np255

    def test_sensitivity_shrinks_with_pitch(self, analysis,
                                            eval_device):
        ecd = eval_device.params.ecd
        dense = analysis.pattern_sensitivity(MTJState.P, 0.35,
                                             1.5 * ecd)
        sparse = analysis.pattern_sensitivity(MTJState.P, 0.35,
                                              3.0 * ecd)
        spread_dense = dense[0] - dense[1]
        spread_sparse = sparse[0] - sparse[1]
        assert spread_dense >= spread_sparse >= 0
