"""Tests for the R-H measurement emulation and extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterization import (
    RHMeasurement,
    extract_ecd,
    extract_hc_oe,
    extract_offset_oe,
    loop_statistics,
)
from repro.device import MTJDevice
from repro.errors import MeasurementError, ParameterError
from repro.experiments.data import (
    WAFER_RESISTANCE,
    wafer_device_parameters,
)
from repro.units import am_to_oe, nm_to_m


@pytest.fixture(scope="module")
def wafer55():
    return MTJDevice(wafer_device_parameters(nm_to_m(55.0)))


@pytest.fixture(scope="module")
def stats55(wafer55):
    return RHMeasurement(wafer55).run(n_cycles=12, rng=2020)


class TestRHMeasurement:
    def test_counts(self, stats55):
        assert stats55.n_cycles == 12
        assert stats55.n_valid == 12

    def test_hc_in_wafer_range(self, stats55):
        assert 1500.0 < stats55.hc_oe < 3200.0

    def test_offset_positive(self, stats55):
        assert stats55.hoffset_oe > 0

    def test_stray_recovers_model(self, wafer55, stats55):
        model = wafer55.intra_stray_field()
        assert am_to_oe(stats55.stray_field) == pytest.approx(
            am_to_oe(model), abs=40.0)

    def test_cycle_spread_nonzero(self, stats55):
        assert stats55.hsw_p_std > 0

    def test_tmr_positive(self, stats55):
        assert 0.5 < stats55.tmr < 1.3

    def test_rejects_non_device(self):
        with pytest.raises(ParameterError):
            RHMeasurement("device")


class TestLoopLevelExtraction:
    def test_statistics_keys(self, wafer55):
        sim = wafer55.rh_simulator()
        rng = np.random.default_rng(5)
        loops = [sim.simulate(rng=rng) for _ in range(5)]
        stats = loop_statistics(loops)
        assert stats["hsw_p_oe"] > 0 > stats["hsw_n_oe"]
        assert stats["hc_oe"] == pytest.approx(
            (stats["hsw_p_oe"] - stats["hsw_n_oe"]) / 2, rel=1e-9)
        assert stats["stray_oe"] == pytest.approx(
            -stats["hoffset_oe"], rel=1e-9)

    def test_hc_offset_helpers(self, wafer55):
        sim = wafer55.rh_simulator()
        rng = np.random.default_rng(6)
        loops = [sim.simulate(rng=rng) for _ in range(4)]
        assert extract_hc_oe(loops) > 0
        assert extract_offset_oe(loops) > 0

    def test_empty_loops_rejected(self):
        with pytest.raises(MeasurementError):
            loop_statistics([])

    def test_ecd_extraction(self, wafer55):
        sim = wafer55.rh_simulator()
        loop = sim.simulate(rng=8)
        ecd = extract_ecd(WAFER_RESISTANCE.ra, loop)
        assert ecd == pytest.approx(nm_to_m(55.0), rel=0.02)
