"""Tests for the resistance / TMR / eCD model."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.device import ResistanceModel, ecd_from_rp, rp_from_ecd
from repro.errors import ParameterError

ECDS = st.floats(min_value=10e-9, max_value=300e-9)
RAS = st.floats(min_value=1e-12, max_value=20e-12)


@pytest.fixture
def wafer_model():
    # The measured wafer: RA = 4.5 Ohm*um^2, TMR0 = 120 %.
    return ResistanceModel(ra=4.5e-12, tmr0=1.2, v_half=0.55)


class TestEcdExtraction:
    @given(ra=RAS, ecd=ECDS)
    def test_roundtrip(self, ra, ecd):
        rp = rp_from_ecd(ra, ecd)
        assert ecd_from_rp(ra, rp) == pytest.approx(ecd, rel=1e-12)

    def test_paper_example(self, wafer_model):
        # The paper's Fig. 2a device: eCD = 55 nm at RA = 4.5 Ohm*um^2.
        rp = wafer_model.rp(55e-9)
        area_um2 = math.pi * (0.0275) ** 2
        assert rp == pytest.approx(4.5 / area_um2, rel=1e-9)
        assert ecd_from_rp(4.5e-12, rp) == pytest.approx(55e-9)

    def test_smaller_device_higher_rp(self, wafer_model):
        assert wafer_model.rp(35e-9) > wafer_model.rp(55e-9)

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            rp_from_ecd(-1.0, 50e-9)
        with pytest.raises(ParameterError):
            ecd_from_rp(4.5e-12, 0.0)


class TestTmrBias:
    def test_zero_bias_value(self, wafer_model):
        assert wafer_model.tmr(0.0) == pytest.approx(1.2)

    def test_half_at_vhalf(self, wafer_model):
        assert wafer_model.tmr(0.55) == pytest.approx(0.6)

    def test_symmetric_in_sign(self, wafer_model):
        assert wafer_model.tmr(0.3) == pytest.approx(wafer_model.tmr(-0.3))

    def test_monotone_rolloff(self, wafer_model):
        values = [wafer_model.tmr(v) for v in (0.0, 0.2, 0.5, 0.9, 1.2)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_rap_above_rp(self, wafer_model):
        assert wafer_model.rap(55e-9, 1.0) > wafer_model.rp(55e-9)


class TestResistanceDispatch:
    def test_states(self, wafer_model):
        assert wafer_model.resistance(55e-9, "P") == pytest.approx(
            wafer_model.rp(55e-9))
        assert wafer_model.resistance(55e-9, "AP", 0.0) == pytest.approx(
            wafer_model.rap(55e-9, 0.0))

    def test_bad_state(self, wafer_model):
        with pytest.raises(ParameterError):
            wafer_model.resistance(55e-9, "X")

    def test_current_increases_with_voltage(self, wafer_model):
        # Even with TMR roll-off, I(V) must be monotone for the AP branch.
        currents = [wafer_model.current(35e-9, "AP", v)
                    for v in (0.2, 0.5, 0.8, 1.1)]
        assert all(a < b for a, b in zip(currents, currents[1:]))

    @given(ecd=ECDS, voltage=st.floats(min_value=0.01, max_value=1.5))
    def test_rap_between_bounds(self, ecd, voltage):
        model = ResistanceModel(ra=6.4e-12, tmr0=1.5, v_half=0.55)
        rap = model.rap(ecd, voltage)
        assert model.rp(ecd) < rap <= model.rap(ecd, 0.0)
